// ablation_dma — legacy alias of `rtmbench run ablation_dma`.
// The scenario body lives in bench/harness/scenarios/ablation_dma.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("ablation_dma"); }
