// ablation_intra — legacy alias of `rtmbench run ablation_intra`.
// The scenario body lives in bench/harness/scenarios/ablation_intra.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("ablation_intra"); }
