// The interplay of inter- and intra-DBC placement (paper contribution 3):
// the full cross product of inter policies (AFD, DMA, DMA2) and intra
// policies (OFU, Chen, SR, GE) over the suite, per DBC count. The paper's
// claim to check: the DMA distribution "provides a promising base for the
// Chen and ShiftsReduce heuristics" — i.e. intra optimization helps BOTH
// inter policies, DMA dominates for every intra choice, and the intra gain
// shrinks as DBCs increase (sparser DBCs leave less to reorder).
#include <cstdio>

#include "common.h"
#include "core/strategy.h"
#include "util/stats.h"

int main() {
  using namespace rtmp;

  std::printf("== Interplay: inter policy x intra policy (geomean shifts "
              "normalized to afd-ofu) ==\n\n");
  benchtool::PrintEffortNote(benchtool::Effort());

  sim::ExperimentOptions options;
  options.strategies.clear();
  const core::InterPolicy inters[] = {core::InterPolicy::kAfd,
                                      core::InterPolicy::kDma,
                                      core::InterPolicy::kDmaMulti};
  const core::IntraHeuristic intras[] = {
      core::IntraHeuristic::kOfu, core::IntraHeuristic::kChen,
      core::IntraHeuristic::kShiftsReduce, core::IntraHeuristic::kGreedyEdge};
  for (const auto inter : inters) {
    for (const auto intra : intras) {
      options.strategies.push_back({inter, intra});
    }
  }
  benchtool::ConfigureMatrix(options);  // effort, threads, progress
  const auto suite = offsetstone::GenerateSuite();
  const sim::ResultTable table(RunMatrix(suite, options));
  const auto names = benchtool::SuiteNames();
  const core::StrategySpec baseline{core::InterPolicy::kAfd,
                                    core::IntraHeuristic::kOfu};

  double dma_sr_gain[4] = {};
  double afd_sr_gain[4] = {};
  for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
    const unsigned dbcs = options.dbc_counts[i];
    std::printf("-- %u DBCs --\n", dbcs);
    util::TextTable out;
    out.SetHeader({"inter \\ intra", "ofu", "chen", "sr", "ge"});
    out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});
    const char* inter_labels[] = {"afd", "dma", "dma2"};
    for (std::size_t inter_idx = 0; inter_idx < std::size(inters);
         ++inter_idx) {
      const auto inter = inters[inter_idx];
      std::vector<std::string> row{inter_labels[inter_idx]};
      for (const auto intra : intras) {
        const auto normalized =
            table.NormalizedShifts(names, dbcs, {inter, intra}, baseline);
        const double g = util::GeoMean(normalized);
        row.push_back(util::FormatFixed(g, 2));
        if (inter == core::InterPolicy::kDma &&
            intra == core::IntraHeuristic::kShiftsReduce) {
          dma_sr_gain[i] = g;
        }
        if (inter == core::InterPolicy::kAfd &&
            intra == core::IntraHeuristic::kShiftsReduce) {
          afd_sr_gain[i] = g;
        }
      }
      out.AddRow(std::move(row));
    }
    std::fputs(out.Render().c_str(), stdout);
    std::printf("\n");
  }

  std::printf("-- shape checks --\n");
  bool dma_dominates = true;
  for (std::size_t i = 0; i < 4; ++i) {
    dma_dominates = dma_dominates && dma_sr_gain[i] <= afd_sr_gain[i] + 0.02;
  }
  std::printf("DMA base never loses to AFD base under SR: %s\n",
              dma_dominates ? "yes" : "NO");
  std::printf("(smaller is better; every column is normalized to afd-ofu "
              "= 1.00)\n");
  return 0;
}
