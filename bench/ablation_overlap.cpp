// ablation_overlap — legacy alias of `rtmbench run ablation_overlap`.
// The scenario body lives in bench/harness/scenarios/ablation_overlap.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("ablation_overlap"); }
