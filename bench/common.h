// Shared plumbing for the paper-reproduction bench binaries.
//
// Every bench regenerates one table/figure of the paper. They share the
// OffsetStone-lite suite, the effort convention (RTMPLACE_EFFORT scales
// GA/RW search effort; 1.0 = the paper's parameters) and the side-by-side
// "paper vs measured" presentation.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "offsetstone/suite.h"
#include "sim/experiment.h"
#include "util/stats.h"
#include "util/table.h"

namespace rtmp::benchtool {

/// Default effort: fast enough for `for b in build/bench/*; do $b; done`
/// to finish in minutes. Paper-scale: RTMPLACE_EFFORT=1.
inline constexpr double kDefaultEffort = 0.05;

inline double Effort() { return sim::SearchEffortFromEnv(kDefaultEffort); }

inline void PrintEffortNote(double effort) {
  std::printf("search effort: %.3g of the paper's GA/RW parameters "
              "(set RTMPLACE_EFFORT=1 for paper scale)\n\n",
              effort);
}

/// Single-line progress meter on stderr (stdout stays clean for tables).
/// Returns an empty callback when stderr is not a terminal, so redirected
/// logs and CI output are not spammed with carriage-return frames.
inline sim::ProgressCallback StderrProgress() {
  if (::isatty(::fileno(stderr)) == 0) return {};
  return [](const sim::RunResult&, std::size_t completed, std::size_t total) {
    std::fprintf(stderr, "\r[%zu/%zu cells]%s", completed, total,
                 completed == total ? "\n" : "");
    std::fflush(stderr);
  };
}

/// Shared matrix setup for all benches: effort + progress + thread count
/// (hardware concurrency, overridable via RTMPLACE_THREADS).
inline void ConfigureMatrix(sim::ExperimentOptions& options) {
  options.search_effort = Effort();
  options.num_threads = sim::ThreadCountFromEnv(0);
  options.progress = StderrProgress();
}

/// Names of all suite benchmarks, in Fig. 4 order.
inline std::vector<std::string> SuiteNames() {
  std::vector<std::string> names;
  for (const auto& profile : offsetstone::SuiteProfiles()) {
    names.push_back(profile.name);
  }
  return names;
}

/// "paper X / measured Y" cell helper.
inline std::string PaperVsMeasured(double paper, double measured,
                                   int digits = 2) {
  return util::FormatFixed(paper, digits) + " / " +
         util::FormatFixed(measured, digits);
}

/// Factor by which `strategy` reduces shifts relative to `baseline`
/// (geomean over all benchmarks): baseline_shifts / strategy_shifts.
inline double GeoMeanImprovement(const sim::ResultTable& table,
                                 const std::vector<std::string>& benchmarks,
                                 unsigned dbcs,
                                 const core::StrategySpec& strategy,
                                 const core::StrategySpec& baseline) {
  const auto normalized =
      table.NormalizedShifts(benchmarks, dbcs, strategy, baseline);
  const double ratio = util::GeoMean(normalized);
  return ratio == 0.0 ? 0.0 : 1.0 / ratio;
}

}  // namespace rtmp::benchtool
