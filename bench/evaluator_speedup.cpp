// Full vs incremental shift-cost evaluation throughput (CostEvaluator).
//
// Reproduces the GA's inner question on every OffsetStone-lite benchmark:
// "what would this mutation cost?". Start from a realistic individual
// (DMA-SR), draw mutations with the GA's move/transpose/permute weights,
// and score each candidate
//   * the pre-evaluator way: copy the placement, mutate, ShiftCost replay;
//   * the incremental way: CostEvaluator::Peek* — read-only trial scoring
//     over the per-DBC transition weights (commit would be Apply*+Undo).
// Both sides score the SAME mutation stream (re-seeded RNG) under the
// paper's single-port cost model, and every score is cross-checked for
// exact equality. Prints per-benchmark throughput and the geomean
// speedup; the acceptance bar for the evaluator subsystem is >= 5x.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/cost_evaluator.h"
#include "core/cost_model.h"
#include "core/inter_dma.h"
#include "core/intra_heuristics.h"
#include "core/placement.h"
#include "offsetstone/suite.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace rtmp;

constexpr std::uint32_t kDbcs = 8;
constexpr int kFullTrials = 400;
constexpr int kIncrementalTrials = 4000;

struct Mutation {
  enum class Kind { kMove, kTranspose, kPermute } kind;
  trace::VariableId v = 0;
  std::uint32_t dbc = 0;
  std::size_t i = 0, j = 0;
  std::vector<trace::VariableId> order;
};

/// Draws one GA-style mutation (weights 10:10:3) against `base`.
Mutation DrawMutation(const core::Placement& base, util::Rng& rng) {
  const double weights[] = {10.0, 10.0, 3.0};
  Mutation m;
  switch (rng.NextWeighted(weights)) {
    case 0: {
      m.kind = Mutation::Kind::kMove;
      m.v = static_cast<trace::VariableId>(
          rng.NextBelow(base.num_variables()));
      m.dbc = static_cast<std::uint32_t>(rng.NextBelow(base.num_dbcs()));
      return m;
    }
    case 1: {
      m.kind = Mutation::Kind::kTranspose;
      std::vector<std::uint32_t> candidates;
      for (std::uint32_t d = 0; d < base.num_dbcs(); ++d) {
        if (base.dbc(d).size() >= 2) candidates.push_back(d);
      }
      if (candidates.empty()) {
        m.kind = Mutation::Kind::kMove;
        m.v = 0;
        m.dbc = 0;
        return m;
      }
      m.dbc = rng.Pick(candidates);
      const std::size_t size = base.dbc(m.dbc).size();
      m.i = static_cast<std::size_t>(rng.NextBelow(size));
      m.j = static_cast<std::size_t>(rng.NextBelow(size));
      return m;
    }
    default: {
      m.kind = Mutation::Kind::kPermute;
      m.dbc = static_cast<std::uint32_t>(rng.NextBelow(base.num_dbcs()));
      m.order = base.dbc(m.dbc);
      rng.Shuffle(m.order);
      return m;
    }
  }
}

std::uint64_t ScoreFull(const trace::AccessSequence& seq,
                        const core::Placement& base, const Mutation& m,
                        const core::CostOptions& cost) {
  core::Placement candidate = base;
  switch (m.kind) {
    case Mutation::Kind::kMove:
      candidate.MoveToEnd(m.v, m.dbc);
      break;
    case Mutation::Kind::kTranspose:
      candidate.Transpose(m.dbc, m.i, m.j);
      break;
    case Mutation::Kind::kPermute:
      candidate.Reorder(m.dbc, m.order);
      break;
  }
  return core::ShiftCost(seq, candidate, cost);
}

std::uint64_t ScoreIncremental(core::CostEvaluator& evaluator,
                               const Mutation& m) {
  switch (m.kind) {
    case Mutation::Kind::kMove:
      return evaluator.PeekMove(m.v, m.dbc);
    case Mutation::Kind::kTranspose:
      return evaluator.PeekTranspose(m.dbc, m.i, m.j);
    case Mutation::Kind::kPermute:
      return evaluator.PeekReorder(m.dbc, m.order);
  }
  return 0;
}

// This whole binary measures throughput (mutations scored per second);
// its wall-clock reads are the measurement, not a determinism leak.
// NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
double SecondsSince(std::chrono::steady_clock::time_point start) {
  // NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  std::printf("CostEvaluator: GA mutation scoring, full replay vs "
              "incremental (single port, %u DBCs)\n\n",
              kDbcs);
  std::printf("%-12s %8s %6s %14s %14s %9s\n", "benchmark", "|S|", "vars",
              "full evals/s", "incr evals/s", "speedup");

  std::vector<double> speedups;
  bool all_match = true;
  std::uint64_t sink = 0;
  for (const auto& profile : offsetstone::SuiteProfiles()) {
    const auto benchmark = offsetstone::Generate(profile, 0);
    // Largest sequence of the benchmark: the GA's worst case.
    const trace::AccessSequence* seq = &benchmark.sequences.front();
    for (const auto& candidate : benchmark.sequences) {
      if (candidate.size() > seq->size()) seq = &candidate;
    }
    if (seq->num_variables() < 2 || seq->empty()) continue;

    const core::CostOptions cost;
    const core::Placement base =
        core::DistributeDma(*seq, kDbcs, core::kUnboundedCapacity,
                            {core::IntraHeuristic::kShiftsReduce})
            .placement;

    // -- full replay path --------------------------------------------------
    util::Rng full_rng(0xBEEF);
    // NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
    const auto full_start = std::chrono::steady_clock::now();
    for (int t = 0; t < kFullTrials; ++t) {
      sink += ScoreFull(*seq, base, DrawMutation(base, full_rng), cost);
    }
    const double full_rate = kFullTrials / SecondsSince(full_start);

    // -- incremental path --------------------------------------------------
    core::CostEvaluator evaluator(*seq, cost);
    evaluator.Bind(base);
    util::Rng incr_rng(0xBEEF);
    // NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
    const auto incr_start = std::chrono::steady_clock::now();
    for (int t = 0; t < kIncrementalTrials; ++t) {
      sink += ScoreIncremental(evaluator, DrawMutation(base, incr_rng));
    }
    const double incr_rate = kIncrementalTrials / SecondsSince(incr_start);

    // -- cross-check: every score of a common stream must agree exactly ---
    util::Rng check_rng(0x5EED);
    bool match = true;
    for (int t = 0; t < kFullTrials && match; ++t) {
      const Mutation m = DrawMutation(base, check_rng);
      match = ScoreFull(*seq, base, m, cost) == ScoreIncremental(evaluator, m);
    }
    all_match = all_match && match;

    const double speedup = incr_rate / full_rate;
    speedups.push_back(speedup);
    std::printf("%-12s %8zu %6zu %14.0f %14.0f %8.1fx%s\n",
                benchmark.name.c_str(), seq->size(), seq->num_variables(),
                full_rate, incr_rate, speedup,
                match ? "" : "  COST MISMATCH");
  }

  std::printf("\ngeomean speedup: %.1fx (acceptance: >= 5x); costs %s "
              "(sink %llx)\n",
              util::GeoMean(speedups),
              all_match ? "bit-identical" : "MISMATCHED",
              static_cast<unsigned long long>(sink));
  return all_match ? 0 : 1;
}
