// Thin alias of `rtmbench run throughput` (which absorbed this binary's
// mutation-scoring comparison; see bench/harness/scenarios/throughput.cpp).
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("throughput"); }
