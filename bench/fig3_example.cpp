// fig3_example — legacy alias of `rtmbench run fig3_example`.
// The scenario body lives in bench/harness/scenarios/fig3_example.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("fig3_example"); }
