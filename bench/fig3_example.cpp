// Reproduces Fig. 3: the paper's worked data-placement example. Every
// number printed here is also locked down by tests/paper_example_test.cpp.
#include <cstdio>
#include <string>

#include "core/cost_model.h"
#include "core/inter_afd.h"
#include "core/inter_dma.h"
#include "core/placement.h"
#include "trace/access_sequence.h"
#include "trace/variable_stats.h"
#include "util/table.h"

namespace {

rtmp::trace::AccessSequence PaperSequence() {
  rtmp::trace::AccessSequence seq;
  for (char c = 'a'; c <= 'i'; ++c) seq.AddVariable(std::string(1, c));
  for (const char c : std::string_view("ababcacaddaiefefgeghgihi")) {
    seq.Append(*seq.FindVariable(std::string_view(&c, 1)));
  }
  return seq;
}

void PrintPlacement(const rtmp::trace::AccessSequence& seq,
                    const rtmp::core::Placement& placement,
                    const char* label) {
  std::printf("%s\n", label);
  const auto per_dbc = rtmp::core::PerDbcShiftCost(seq, placement);
  std::uint64_t total = 0;
  for (std::uint32_t d = 0; d < placement.num_dbcs(); ++d) {
    std::printf("  DBC%u:", d);
    for (const auto v : placement.dbc(d)) {
      std::printf(" %s", seq.name_of(v).c_str());
    }
    std::printf("   -> %llu shifts\n",
                static_cast<unsigned long long>(per_dbc[d]));
    total += per_dbc[d];
  }
  std::printf("  total: %llu shifts\n\n",
              static_cast<unsigned long long>(total));
}

}  // namespace

int main() {
  using namespace rtmp;
  std::printf("== Fig. 3: worked example (V = a..i, |S| = 24) ==\n\n");
  const trace::AccessSequence seq = PaperSequence();

  std::printf("S:");
  for (const auto& access : seq.accesses()) {
    std::printf(" %s", seq.name_of(access.variable).c_str());
  }
  std::printf("\n\n");

  // Fig. 3(e): per-variable stats (printed 1-based, as in the paper).
  const auto stats = trace::ComputeVariableStats(seq);
  util::TextTable stat_table;
  stat_table.SetHeader({"v", "Av", "Fv", "Lv", "lifespan"});
  stat_table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                            util::Align::kRight, util::Align::kRight,
                            util::Align::kRight});
  for (trace::VariableId v = 0; v < seq.num_variables(); ++v) {
    stat_table.AddRow({seq.name_of(v),
                       std::to_string(stats[v].frequency),
                       std::to_string(stats[v].first + 1),
                       std::to_string(stats[v].last + 1),
                       std::to_string(stats[v].Lifespan())});
  }
  std::fputs(stat_table.Render().c_str(), stdout);
  std::printf("\n");

  // Fig. 3(c): the AFD baseline layout; paper: 24 + 15 = 39 shifts.
  const core::Placement afd = core::DistributeAfd(
      seq, 2, core::kUnboundedCapacity, {core::IntraHeuristic::kNone});
  PrintPlacement(seq, afd, "AFD placement (paper Fig. 3c; expected 24+15=39):");

  // Fig. 3(d): the paper's hand-drawn sequence-aware layout; 4 + 7 = 11.
  std::vector<std::vector<trace::VariableId>> hand(2);
  for (const char c : std::string_view("bcdeh")) {
    hand[0].push_back(*seq.FindVariable(std::string_view(&c, 1)));
  }
  for (const char c : std::string_view("afgi")) {
    hand[1].push_back(*seq.FindVariable(std::string_view(&c, 1)));
  }
  const auto paper_layout =
      core::Placement::FromLists(hand, seq.num_variables());
  PrintPlacement(seq, paper_layout,
                 "Sequence-aware placement (paper Fig. 3d; expected 4+7=11):");

  // Algorithm 1's own output on the same trace.
  const auto dma = core::DistributeDma(seq, 2, core::kUnboundedCapacity,
                                       {core::IntraHeuristic::kOfu});
  std::printf("Algorithm 1 selects Vdj = {");
  for (std::size_t i = 0; i < dma.disjoint.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", seq.name_of(dma.disjoint[i]).c_str());
  }
  std::uint64_t freq_sum = 0;
  for (const auto v : dma.disjoint) freq_sum += stats[v].frequency;
  std::printf("} with frequency sum %llu (paper: {b, c, d, e, h}, 11)\n\n",
              static_cast<unsigned long long>(freq_sum));
  PrintPlacement(seq, dma.placement, "DMA-OFU placement (Algorithm 1):");

  const double afd_cost =
      static_cast<double>(core::ShiftCost(seq, afd));
  const double hand_cost =
      static_cast<double>(core::ShiftCost(seq, paper_layout));
  std::printf("improvement of the paper layout over AFD: %.2fx "
              "(paper: 3.54x)\n",
              afd_cost / hand_cost);
  return 0;
}
