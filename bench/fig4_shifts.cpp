// fig4_shifts — legacy alias of `rtmbench run fig4_shifts`.
// The scenario body lives in bench/harness/scenarios/fig4_shifts.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("fig4_shifts"); }
