// fig5_energy — legacy alias of `rtmbench run fig5_energy`.
// The scenario body lives in bench/harness/scenarios/fig5_energy.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("fig5_energy"); }
