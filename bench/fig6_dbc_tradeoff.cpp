// fig6_dbc_tradeoff — legacy alias of `rtmbench run fig6_dbc_tradeoff`.
// The scenario body lives in bench/harness/scenarios/fig6_dbc_tradeoff.cpp;
// this binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("fig6_dbc_tradeoff"); }
