// ga_convergence — legacy alias of `rtmbench run ga_convergence`.
// The scenario body lives in bench/harness/scenarios/ga_convergence.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("ga_convergence"); }
