#include "harness/compare.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>
#include <utility>

namespace rtmp::benchtool {

namespace {

/// The exact counters of one cell, by schema name. Compared as uint64 —
/// a double cast would collapse >2^53 neighbors and defeat the "must
/// match exactly" policy the raw-text JSON numbers exist to uphold.
std::array<std::pair<std::string_view, std::uint64_t>, 4> CellCounters(
    const sim::RunResult& cell) {
  return {{{"shifts", cell.metrics.shifts},
           {"accesses", cell.metrics.accesses},
           {"placement_cost", cell.placement_cost},
           {"search_evaluations",
            static_cast<std::uint64_t>(cell.search_evaluations)}}};
}

/// The tolerance-compared double metrics of one cell. benchmark, dbcs
/// and strategy are the match key (CellKey), not metrics.
std::array<std::pair<std::string_view, double>, 6> CellMetrics(
    const sim::RunResult& cell) {
  return {{{"runtime_ns", cell.metrics.runtime_ns},
           {"leakage_pj", cell.metrics.leakage_pj},
           {"read_write_pj", cell.metrics.read_write_pj},
           {"shift_pj", cell.metrics.shift_pj},
           {"area_mm2", cell.metrics.area_mm2},
           {"placement_wall_ms", cell.placement_wall_ms}}};
}

std::string CellKey(const sim::RunResult& cell) {
  return cell.benchmark + "/" + std::to_string(cell.dbcs) + "/" +
         cell.strategy_name;
}

bool IsWallMetric(std::string_view name) {
  return name.find("wall") != std::string_view::npos;
}

}  // namespace

MetricPolicy PolicyFor(std::string_view metric) {
  if (IsWallMetric(metric)) return {kWallRelTol};
  if (metric == "shifts" || metric == "accesses" ||
      metric == "placement_cost" || metric == "search_evaluations") {
    return {0.0};  // deterministic counters: exact
  }
  return {kFpRelTol};
}

bool WithinTolerance(double golden, double current,
                     const MetricPolicy& policy) {
  if (golden == current) return true;
  // Two NaNs agree: a scenario that deterministically produces a
  // non-finite value (stored as null) still matches its golden.
  if (std::isnan(golden) && std::isnan(current)) return true;
  if (std::isnan(golden) || std::isnan(current)) return false;
  if (policy.rel_tol <= 0.0) return false;
  if (policy.rel_tol >= 1.0) {
    // Ratio bound (wall-clock metrics). A sub-resolution timing on
    // either side carries no signal — never fail on it.
    const double lo = std::min(golden, current);
    const double hi = std::max(golden, current);
    if (lo <= 0.0) return true;
    return hi / lo <= policy.rel_tol;
  }
  const double scale = std::max(std::fabs(golden), std::fabs(current));
  return std::fabs(current - golden) <= policy.rel_tol * scale;
}

Comparison CompareReports(const BenchReport& golden,
                          const BenchReport& current) {
  Comparison comparison;
  const auto structural_fail = [&comparison](std::string what) {
    comparison.structural.push_back(std::move(what));
    comparison.pass = false;
  };

  if (golden.schema_version != current.schema_version) {
    structural_fail("schema_version mismatch: golden v" +
                    std::to_string(golden.schema_version) + ", current v" +
                    std::to_string(current.schema_version));
    return comparison;
  }
  if (golden.scenario != current.scenario) {
    structural_fail("scenario mismatch: golden '" + golden.scenario +
                    "', current '" + current.scenario + "'");
    return comparison;
  }
  // A search scenario's numbers are only comparable at equal effort; 0
  // marks an effort-independent report.
  if (golden.search_effort != current.search_effort) {
    structural_fail(
        "search_effort mismatch: golden " +
        util::JsonNumber(golden.search_effort) + ", current " +
        util::JsonNumber(current.search_effort) +
        " (set RTMPLACE_EFFORT to the golden's effort, or regenerate the "
        "golden with --update-golden)");
    return comparison;
  }
  if (golden.suite_seed != current.suite_seed) {
    structural_fail("suite seed mismatch: golden " +
                    std::to_string(golden.suite_seed) + ", current " +
                    std::to_string(current.suite_seed));
    return comparison;
  }
  if (golden.search_seed != current.search_seed) {
    structural_fail("search seed mismatch: golden " +
                    std::to_string(golden.search_seed) + ", current " +
                    std::to_string(current.search_seed));
    return comparison;
  }

  const auto add_diff = [&comparison](std::string where, std::string_view name,
                                      double golden_value,
                                      double current_value) {
    if (golden_value == current_value) return;
    MetricDiff diff;
    diff.where = std::move(where);
    diff.metric = std::string(name);
    diff.golden = golden_value;
    diff.current = current_value;
    diff.ok = WithinTolerance(golden_value, current_value, PolicyFor(name));
    if (!diff.ok) comparison.pass = false;
    comparison.diffs.push_back(std::move(diff));
  };

  // Disjoint keys never throw: a key present on only one side is
  // reported by name ("missing ..." for removed, "added ..." for new) so
  // `rtmbench diff` across scenario revisions names exactly what grew or
  // shrank instead of failing with bare counts. Duplicate keys in the
  // current report are flagged too — the match maps would otherwise
  // silently compare only the first occurrence.

  // -- cells, matched by (benchmark, dbcs, strategy) -----------------------
  std::map<std::string, const sim::RunResult*> current_cells;
  for (const sim::RunResult& cell : current.cells) {
    if (!current_cells.emplace(CellKey(cell), &cell).second) {
      structural_fail("duplicate cell " + CellKey(cell) +
                      " in current report");
    }
  }
  std::set<std::string> golden_cell_keys;
  for (const sim::RunResult& cell : golden.cells) {
    golden_cell_keys.insert(CellKey(cell));
  }
  for (const sim::RunResult& golden_cell : golden.cells) {
    const auto it = current_cells.find(CellKey(golden_cell));
    if (it == current_cells.end()) {
      structural_fail("missing cell " + CellKey(golden_cell));
      continue;
    }
    const auto golden_counters = CellCounters(golden_cell);
    const auto current_counters = CellCounters(*it->second);
    for (std::size_t m = 0; m < golden_counters.size(); ++m) {
      if (golden_counters[m].second == current_counters[m].second) continue;
      MetricDiff diff;
      diff.where = "cell " + CellKey(golden_cell);
      diff.metric = std::string(golden_counters[m].first);
      diff.golden = static_cast<double>(golden_counters[m].second);
      diff.current = static_cast<double>(current_counters[m].second);
      diff.ok = false;  // counters are exact: any uint64 drift fails
      comparison.pass = false;
      comparison.diffs.push_back(std::move(diff));
    }
    const auto golden_metrics = CellMetrics(golden_cell);
    const auto current_metrics = CellMetrics(*it->second);
    for (std::size_t m = 0; m < golden_metrics.size(); ++m) {
      add_diff("cell " + CellKey(golden_cell), golden_metrics[m].first,
               golden_metrics[m].second, current_metrics[m].second);
    }
  }
  // Extra cells are fine for a diff but suspicious for a golden check:
  // flag each by key so a scenario that silently grew is noticed.
  for (const auto& [key, cell] : current_cells) {
    if (!golden_cell_keys.contains(key)) {
      structural_fail("added cell " + key);
    }
  }

  // -- scalars, matched by name -------------------------------------------
  std::map<std::string, double> current_scalars;
  for (const ScalarResult& scalar : current.scalars) {
    if (!current_scalars.emplace(scalar.name, scalar.value).second) {
      structural_fail("duplicate scalar " + scalar.name +
                      " in current report");
    }
  }
  for (const ScalarResult& golden_scalar : golden.scalars) {
    const auto it = current_scalars.find(golden_scalar.name);
    if (it == current_scalars.end()) {
      structural_fail("missing scalar " + golden_scalar.name);
      continue;
    }
    add_diff("scalar", golden_scalar.name, golden_scalar.value, it->second);
  }
  {
    std::set<std::string> golden_scalars;
    for (const ScalarResult& scalar : golden.scalars) {
      golden_scalars.insert(scalar.name);
    }
    for (const auto& [name, value] : current_scalars) {
      if (!golden_scalars.contains(name)) {
        structural_fail("added scalar " + name);
      }
    }
  }

  // -- checks: a pass in the golden must not regress -----------------------
  std::map<std::string, bool> current_checks;
  for (const CheckResult& check : current.checks) {
    if (!current_checks.emplace(check.name, check.pass).second) {
      structural_fail("duplicate check " + check.name + " in current report");
    }
  }
  for (const CheckResult& golden_check : golden.checks) {
    const auto it = current_checks.find(golden_check.name);
    if (it == current_checks.end()) {
      structural_fail("missing check " + golden_check.name);
      continue;
    }
    if (golden_check.pass != it->second) {
      MetricDiff diff;
      diff.where = "check";
      diff.metric = golden_check.name;
      diff.golden = golden_check.pass ? 1.0 : 0.0;
      diff.current = it->second ? 1.0 : 0.0;
      // A check that newly passes is an improvement, not a regression.
      diff.ok = it->second;
      if (!diff.ok) comparison.pass = false;
      comparison.diffs.push_back(std::move(diff));
    }
  }
  {
    std::set<std::string> golden_checks;
    for (const CheckResult& check : golden.checks) {
      golden_checks.insert(check.name);
    }
    for (const auto& [name, pass] : current_checks) {
      if (!golden_checks.contains(name)) {
        structural_fail("added check " + name);
      }
    }
  }

  return comparison;
}

std::size_t PrintComparison(std::FILE* out, const Comparison& comparison,
                            bool verbose) {
  std::size_t failures = 0;
  for (const std::string& what : comparison.structural) {
    std::fprintf(out, "FAIL  %s\n", what.c_str());
    ++failures;
  }
  for (const MetricDiff& diff : comparison.diffs) {
    if (diff.ok && !verbose) continue;
    const double scale = std::max(std::fabs(diff.golden),
                                  std::fabs(diff.current));
    const double rel = scale > 0.0 ? (diff.current - diff.golden) / scale : 0.0;
    std::fprintf(out, "%s  %s %s: golden %s, current %s (%+.3g%%)\n",
                 diff.ok ? "drift" : "FAIL ", diff.where.c_str(),
                 diff.metric.c_str(), util::JsonNumber(diff.golden).c_str(),
                 util::JsonNumber(diff.current).c_str(), 100.0 * rel);
    if (!diff.ok) ++failures;
  }
  return failures;
}

}  // namespace rtmp::benchtool
