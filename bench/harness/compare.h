// Golden comparison with per-metric tolerances.
//
// Deterministic counters (shift counts, placement costs, evaluation
// counts, accesses) must match EXACTLY — any drift is a placement or
// cost-model regression. Simulated times/energies are doubles derived
// deterministically from those counters, so they only get FP-level
// headroom. Wall-clock metrics are machine-dependent: they never fail a
// comparison short of a pathological (1000x) regression.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "harness/report.h"

namespace rtmp::benchtool {

/// rel_tol == 0 compares exactly; rel_tol in (0, 1) bounds the relative
/// difference: |current - golden| <= rel_tol * max(|golden|, |current|);
/// rel_tol >= 1 is a ratio bound, max/min <= rel_tol — the only
/// formulation that can still fail for arbitrarily large drift (a
/// max-normalized relative difference saturates at 1).
struct MetricPolicy {
  double rel_tol = 0.0;
};

/// FP headroom for metrics that are deterministic functions of exact
/// counters (simulated runtime, energies, area).
inline constexpr double kFpRelTol = 1e-6;
/// Wall-clock metrics: only a 1000x drift fails.
inline constexpr double kWallRelTol = 1e3;

/// Policy for a cell-metric or scalar name (see header comment).
[[nodiscard]] MetricPolicy PolicyFor(std::string_view metric);

[[nodiscard]] bool WithinTolerance(double golden, double current,
                                   const MetricPolicy& policy);

/// One metric whose value differs between golden and current.
struct MetricDiff {
  std::string where;   ///< "cell gsm/8/dma-sr", "scalar ...", "check ..."
  std::string metric;  ///< metric or scalar/check name
  double golden = 0.0;
  double current = 0.0;
  bool ok = false;  ///< within the metric's tolerance
};

struct Comparison {
  bool pass = true;
  /// Structural failures: schema/scenario/effort mismatch, missing cells,
  /// missing checks.
  std::vector<std::string> structural;
  /// Every compared metric whose value differs at all (in- and
  /// out-of-tolerance; `ok` tells which).
  std::vector<MetricDiff> diffs;
};

/// Diffs `current` against `golden`. Comparison::pass is false iff any
/// structural failure or out-of-tolerance metric was found.
[[nodiscard]] Comparison CompareReports(const BenchReport& golden,
                                        const BenchReport& current);

/// Prints failures to `out`; with `verbose` also the in-tolerance drifts
/// (the `rtmbench diff` view). Returns the number of failures printed.
std::size_t PrintComparison(std::FILE* out, const Comparison& comparison,
                            bool verbose);

}  // namespace rtmp::benchtool
