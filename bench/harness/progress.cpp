#include "harness/progress.h"

#include <unistd.h>

#include <cstdio>

namespace rtmp::benchtool {

bool StderrIsTty() { return ::isatty(::fileno(stderr)) != 0; }

sim::ProgressCallback StderrProgress() {
  if (!StderrIsTty()) return {};
  return [](const sim::RunResult&, std::size_t completed, std::size_t total) {
    std::fprintf(stderr, "\r[%zu/%zu cells]%s", completed, total,
                 completed == total ? "\n" : "");
    std::fflush(stderr);
  };
}

}  // namespace rtmp::benchtool
