// The ONE tty-aware progress helper for all bench tools. Every scenario
// and bench binary streams matrix progress through StderrProgress() so
// stdout stays clean for tables/JSON and the output is byte-stable when
// piped (no binary re-implements the stderr/tty check).
#pragma once

#include "sim/experiment.h"

namespace rtmp::benchtool {

/// True when stderr is attached to a terminal.
[[nodiscard]] bool StderrIsTty();

/// Single-line progress meter on stderr. Returns an empty callback when
/// stderr is not a terminal, so redirected logs and CI output are never
/// spammed with carriage-return frames.
[[nodiscard]] sim::ProgressCallback StderrProgress();

}  // namespace rtmp::benchtool
