#include "harness/report.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rtmp::benchtool {

namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("bench report: " + what);
}

}  // namespace

std::string BenchReport::ToJson() const {
  std::string out;
  util::JsonWriter writer(&out);
  writer.BeginObject();
  writer.Member("schema_version", schema_version);
  writer.Member("tool", "rtmbench");
  writer.Member("scenario", scenario);
  writer.Member("git_sha", git_sha);
  writer.Member("search_effort", search_effort);
  writer.Member("suite_seed", suite_seed);
  writer.Member("search_seed", search_seed);
  writer.Member("wall_s", wall_s);
  writer.Key("cells");
  writer.BeginArray();
  for (const sim::RunResult& cell : cells) WriteJson(writer, cell);
  writer.EndArray();
  writer.Key("scalars");
  writer.BeginArray();
  for (const ScalarResult& scalar : scalars) {
    writer.BeginObject();
    writer.Member("name", scalar.name);
    writer.Member("value", scalar.value);
    if (!scalar.unit.empty()) writer.Member("unit", scalar.unit);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("checks");
  writer.BeginArray();
  for (const CheckResult& check : checks) {
    writer.BeginObject();
    writer.Member("name", check.name);
    writer.Member("pass", check.pass);
    if (check.fatal) writer.Member("fatal", true);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  out += "\n";
  return out;
}

BenchReport BenchReport::FromJson(const util::JsonValue& value) {
  BenchReport report;
  report.schema_version = static_cast<int>(value.At("schema_version").AsInt());
  if (report.schema_version != kBenchSchemaVersion) {
    Fail("unsupported schema_version " +
         std::to_string(report.schema_version) + " (this build reads v" +
         std::to_string(kBenchSchemaVersion) + ")");
  }
  report.scenario = value.At("scenario").AsString();
  report.git_sha = value.At("git_sha").AsString();
  report.search_effort = value.At("search_effort").AsDouble();
  report.suite_seed = value.At("suite_seed").AsUInt();
  report.search_seed = value.At("search_seed").AsUInt();
  report.wall_s = value.At("wall_s").AsDouble();
  for (const util::JsonValue& cell : value.At("cells").Items()) {
    report.cells.push_back(sim::RunResultFromJson(cell));
  }
  for (const util::JsonValue& scalar : value.At("scalars").Items()) {
    ScalarResult result;
    result.name = scalar.At("name").AsString();
    result.value = scalar.At("value").AsDouble();
    if (const util::JsonValue* unit = scalar.Find("unit")) {
      result.unit = unit->AsString();
    }
    report.scalars.push_back(std::move(result));
  }
  for (const util::JsonValue& check : value.At("checks").Items()) {
    CheckResult result;
    result.name = check.At("name").AsString();
    result.pass = check.At("pass").AsBool();
    if (const util::JsonValue* fatal = check.Find("fatal")) {
      result.fatal = fatal->AsBool();
    }
    report.checks.push_back(std::move(result));
  }
  return report;
}

BenchReport BenchReport::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return FromJson(util::JsonValue::Parse(buffer.str()));
  } catch (const std::exception& error) {
    Fail(path + ": " + error.what());
  }
}

void BenchReport::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) Fail("cannot write " + path);
  out << ToJson();
  if (!out) Fail("write to " + path + " failed");
}

std::string CurrentGitSha() {
  if (const char* sha = std::getenv("GITHUB_SHA");
      sha != nullptr && *sha != '\0') {
    return sha;
  }
  std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[128] = {};
  const std::size_t n = std::fread(buffer, 1, sizeof buffer - 1, pipe);
  const int status = ::pclose(pipe);
  std::string sha(buffer, n);
  while (!sha.empty() && std::isspace(static_cast<unsigned char>(sha.back()))) {
    sha.pop_back();
  }
  if (status != 0 || sha.size() < 7) return "unknown";
  for (const char c : sha) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return "unknown";
  }
  return sha;
}

}  // namespace rtmp::benchtool
