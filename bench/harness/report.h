// Schema-versioned JSON bench reports (the BENCH_<scenario>.json files).
//
// A report is everything one scenario run measured: the raw experiment
// cells (sim::RunResult per benchmark x DBC count x strategy), named
// scalar results (geomean improvements, headline numbers, ...) and the
// scenario's shape checks — plus the metadata needed to interpret and
// compare it (schema version, scenario name, git commit, search effort,
// suite seed, wall time). Goldens under bench/golden/ are reports of this
// exact format; bench/harness/compare.h diffs two of them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/json.h"

namespace rtmp::benchtool {

/// Bump when the JSON layout changes incompatibly; the comparator
/// refuses to diff reports of different schema versions.
inline constexpr int kBenchSchemaVersion = 1;

/// One pass/fail shape check of a scenario (e.g. "DMA-OFU >= AFD-OFU on
/// geomean for every DBC count"). `fatal` checks fail the binary's exit
/// code; plain checks only fail golden comparisons.
struct CheckResult {
  std::string name;
  bool pass = false;
  bool fatal = false;
};

/// One named scalar result (e.g. "fig4/geomean_dma_sr_over_ga/8dbc").
/// Names containing "wall" are treated as wall-clock metrics by the
/// comparator (machine-dependent, loose tolerance).
struct ScalarResult {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct BenchReport {
  int schema_version = kBenchSchemaVersion;
  std::string scenario;
  std::string git_sha = "unknown";
  /// GA/RW effort the cells ran at; 0 when the scenario involves no
  /// search strategy (such reports are comparable across any effort).
  double search_effort = 0.0;
  /// Suite seed the OffsetStone-lite traces were generated from
  /// (offsetstone::GenerateSuite's seed; every cell depends on it).
  std::uint64_t suite_seed = 0;
  /// Base seed RunMatrix derived its per-cell GA/RW seeds from
  /// (sim::ExperimentOptions::seed); 0 when the scenario ran no
  /// experiment matrix. Scenario-local searches (ga_convergence,
  /// ablation_dma) use fixed seeds declared in the scenario source.
  std::uint64_t search_seed = 0;
  /// Whole-scenario wall time (machine-dependent; never compared
  /// strictly).
  double wall_s = 0.0;
  std::vector<sim::RunResult> cells;
  std::vector<ScalarResult> scalars;
  std::vector<CheckResult> checks;

  [[nodiscard]] std::string ToJson() const;
  /// Throws std::runtime_error on schema mismatch / malformed input.
  [[nodiscard]] static BenchReport FromJson(const util::JsonValue& value);

  /// File convenience wrappers around ToJson/FromJson; both throw
  /// std::runtime_error on I/O errors.
  [[nodiscard]] static BenchReport Load(const std::string& path);
  void Save(const std::string& path) const;
};

/// The commit a report is produced at: $GITHUB_SHA when set (CI), else
/// `git rev-parse HEAD`, else "unknown".
[[nodiscard]] std::string CurrentGitSha();

}  // namespace rtmp::benchtool
