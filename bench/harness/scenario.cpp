#include "harness/scenario.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "util/stats.h"

namespace rtmp::benchtool {

namespace internal {
// Defined in harness/scenarios/register.cpp.
void RegisterBuiltinScenarios(ScenarioRegistry& registry);
}  // namespace internal

// ---- ScenarioContext -------------------------------------------------------

void ScenarioContext::Print(const char* format, ...) {
  if (quiet_) return;
  std::va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
}

void ScenarioContext::PrintTable(const util::TextTable& table) {
  if (quiet_) return;
  std::fputs(table.Render().c_str(), stdout);
}

void ScenarioContext::PrintEffortNote() {
  Print("search effort: %.3g of the paper's GA/RW parameters "
        "(set RTMPLACE_EFFORT=1 for paper scale)\n\n",
        effort_);
}

void ScenarioContext::Configure(sim::ExperimentOptions& options) {
  options.search_effort = effort_;
  options.num_threads = sim::ThreadCountFromEnv(0);
  options.progress = StderrProgress();
  options.obs = obs_;
  // Record the seed the matrix cells will actually run with.
  report_.search_seed = options.seed;
}

void ScenarioContext::Check(std::string name, bool pass,
                            std::string_view suffix, bool fatal) {
  Print("%s: %s%.*s\n", name.c_str(), pass ? "yes" : "NO",
        static_cast<int>(suffix.size()), suffix.data());
  RecordCheck(std::move(name), pass, fatal);
}

void ScenarioContext::RecordCheck(std::string name, bool pass, bool fatal) {
  report_.checks.push_back({std::move(name), pass, fatal});
}

void ScenarioContext::Scalar(std::string name, double value,
                             std::string unit) {
  report_.scalars.push_back({std::move(name), value, std::move(unit)});
}

void ScenarioContext::AddCells(const std::vector<sim::RunResult>& cells) {
  report_.cells.insert(report_.cells.end(), cells.begin(), cells.end());
}

// ---- ScenarioRegistry ------------------------------------------------------

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = [] {
    // Leaked Global() singleton: must outlive scenario lookups that
    // run during static destruction.
    // NOLINTNEXTLINE(rtmlint:naked-new): leaked Global() singleton.
    auto* r = new ScenarioRegistry();
    internal::RegisterBuiltinScenarios(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::Register(Scenario scenario) {
  if (Find(scenario.name) != nullptr) {
    throw std::invalid_argument("duplicate scenario '" + scenario.name + "'");
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::Find(std::string_view name) const {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) names.push_back(scenario.name);
  return names;
}

// ---- running ---------------------------------------------------------------

BenchReport RunScenario(const Scenario& scenario, bool quiet,
                        obs::ObsConfig obs) {
  const double effort = sim::SearchEffortFromEnv(kDefaultEffort);
  ScenarioContext context(effort, quiet, obs);
  BenchReport& report = context.report();
  report.scenario = scenario.name;
  report.git_sha = CurrentGitSha();
  report.search_effort = scenario.uses_search ? effort : 0.0;
  // Every scenario generates its traces with GenerateSuite's default
  // suite seed; Configure() fills in search_seed when a matrix runs.
  report.suite_seed = 0;

  // wall_s IS a wall-clock metric (loose-tolerance in the comparator),
  // not part of the deterministic results — a raw clock is the point.
  // NOLINTNEXTLINE(rtmlint:determinism-rng): wall-clock metric by design.
  const auto start = std::chrono::steady_clock::now();
  scenario.run(context);
  report.wall_s =
      // NOLINTNEXTLINE(rtmlint:determinism-rng): wall-clock metric.
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

int RunLegacyAlias(std::string_view name) {
  const Scenario* scenario = ScenarioRegistry::Global().Find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "rtmbench: unknown scenario '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    return 2;
  }
  const BenchReport report = RunScenario(*scenario, /*quiet=*/false);
  for (const CheckResult& check : report.checks) {
    if (check.fatal && !check.pass) return 1;
  }
  return 0;
}

// ---- shared helpers --------------------------------------------------------

std::vector<std::string> SuiteNames() {
  std::vector<std::string> names;
  for (const auto& profile : offsetstone::SuiteProfiles()) {
    names.push_back(profile.name);
  }
  return names;
}

std::string PaperVsMeasured(double paper, double measured, int digits) {
  return util::FormatFixed(paper, digits) + " / " +
         util::FormatFixed(measured, digits);
}

double GeoMeanImprovement(const sim::ResultTable& table,
                          const std::vector<std::string>& benchmarks,
                          unsigned dbcs, const core::StrategySpec& strategy,
                          const core::StrategySpec& baseline) {
  const auto normalized =
      table.NormalizedShifts(benchmarks, dbcs, strategy, baseline);
  const double ratio = util::GeoMean(normalized);
  return ratio == 0.0 ? 0.0 : 1.0 / ratio;
}

}  // namespace rtmp::benchtool
