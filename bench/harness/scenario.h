// Scenario registry: every paper table/figure reproduction is a named
// scenario on this harness. A scenario declares what to run and what to
// report (cells, scalars, shape checks) through ScenarioContext; the
// harness owns the shared plumbing — effort/thread/progress setup, the
// side-by-side "paper vs measured" presentation, JSON reports and golden
// comparison. The `rtmbench` CLI runs scenarios by name; each legacy
// bench binary is an alias of `rtmbench run <scenario>`.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "harness/progress.h"
#include "harness/report.h"
#include "obs/obs.h"
#include "offsetstone/suite.h"
#include "sim/experiment.h"
#include "util/table.h"

namespace rtmp::benchtool {

/// Default effort: fast enough for `rtmbench run all` to finish in
/// minutes. Paper-scale: RTMPLACE_EFFORT=1.
inline constexpr double kDefaultEffort = 0.05;

/// What a running scenario talks to: the report being filled and the
/// stdout report stream (suppressed under --quiet; progress stays on
/// stderr and only when it is a tty).
class ScenarioContext {
 public:
  explicit ScenarioContext(double effort, bool quiet,
                           obs::ObsConfig obs = {})
      : effort_(effort), quiet_(quiet), obs_(obs) {}

  [[nodiscard]] double effort() const noexcept { return effort_; }
  [[nodiscard]] BenchReport& report() noexcept { return report_; }

  /// printf to the report stream (stdout), swallowed under --quiet.
  [[gnu::format(printf, 2, 3)]] void Print(const char* format, ...);
  void PrintTable(const util::TextTable& table);
  /// The shared effort banner every search scenario opens with.
  void PrintEffortNote();

  /// Shared matrix setup: effort + thread count (RTMPLACE_THREADS) +
  /// tty-aware progress + the harness' observability sinks (rtmbench
  /// --trace-out). Also records options.seed as the report's
  /// search_seed.
  void Configure(sim::ExperimentOptions& options);

  /// Records a shape check and prints "name: yes|NO<suffix>". Fatal
  /// checks fail the binary's exit code, plain ones only fail golden
  /// comparisons.
  void Check(std::string name, bool pass, std::string_view suffix = "",
             bool fatal = false);

  /// Records a check without printing — for checks whose printed line
  /// embeds measured values (print that line with Print(); keep the
  /// recorded name stable so golden comparisons match it up).
  void RecordCheck(std::string name, bool pass, bool fatal = false);

  /// Records a named scalar result.
  void Scalar(std::string name, double value, std::string unit = "");

  /// Records experiment cells into the report.
  void AddCells(const std::vector<sim::RunResult>& cells);

 private:
  double effort_;
  bool quiet_;
  obs::ObsConfig obs_;
  BenchReport report_;
};

struct Scenario {
  std::string name;
  std::string summary;
  /// Whether RTMPLACE_EFFORT changes the results (GA/RW in the mix).
  /// Golden checks refuse to compare such reports across efforts.
  bool uses_search = true;
  void (*run)(ScenarioContext&) = nullptr;
};

class ScenarioRegistry {
 public:
  /// The registry pre-populated with every built-in scenario.
  static ScenarioRegistry& Global();

  /// Throws std::invalid_argument on a duplicate name.
  void Register(Scenario scenario);
  [[nodiscard]] const Scenario* Find(std::string_view name) const;
  /// Scenario names in registration (paper) order.
  [[nodiscard]] std::vector<std::string> Names() const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Runs one scenario and returns the filled report (metadata included).
/// `obs` (optional) receives the scenario's trace and metrics: every
/// matrix the scenario runs through Configure records into these sinks
/// (see sim::ExperimentOptions::obs for the determinism contract).
[[nodiscard]] BenchReport RunScenario(const Scenario& scenario,
                                      bool quiet = false,
                                      obs::ObsConfig obs = {});

/// main() of a legacy bench-binary alias: runs the scenario with report
/// output only (no JSON, no golden check); nonzero exit only when a
/// fatal check failed — the pre-harness behavior of every bench binary.
int RunLegacyAlias(std::string_view name);

// ---- shared helpers for scenario declarations ------------------------------

/// Names of all suite benchmarks, in Fig. 4 order.
[[nodiscard]] std::vector<std::string> SuiteNames();

/// "paper X / measured Y" cell helper.
[[nodiscard]] std::string PaperVsMeasured(double paper, double measured,
                                          int digits = 2);

/// Factor by which `strategy` reduces shifts relative to `baseline`
/// (geomean over all benchmarks): baseline_shifts / strategy_shifts.
[[nodiscard]] double GeoMeanImprovement(
    const sim::ResultTable& table,
    const std::vector<std::string>& benchmarks, unsigned dbcs,
    const core::StrategySpec& strategy, const core::StrategySpec& baseline);

}  // namespace rtmp::benchtool
