// Ablations for the implementation's own design choices, plus the paper's
// SVI future-work extension:
//   A. multi-set DMA (dma2): one disjoint set per DBC vs the single-set
//      heuristic of Algorithm 1.
//   B. GA seeding: heuristic-seeded initial population (the paper's
//      conclusion) vs a purely random one, at equal budget.
//   C. GA mutation weights: the paper's 10:10:3 skew vs uniform 1:1:1.
//   D. access ports per track: the multi-port cost of the same DMA-SR
//      placement (Chen's multi-DBC heuristic assumed >= 2 ports; DMA is
//      port-count independent).
#include <algorithm>
#include <stdexcept>

#include "core/cost_model.h"
#include "core/genetic.h"
#include "core/inter_afd.h"
#include "core/inter_dma.h"
#include "core/multi_dma.h"
#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "rtm/config.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== Ablations: DMA variants, GA choices, port count ==\n\n");
  const double effort = ctx.effort();
  ctx.PrintEffortNote();

  const auto suite = offsetstone::GenerateSuite();
  const auto find_benchmark =
      [&suite](std::string_view name) -> const offsetstone::Benchmark& {
    for (const auto& b : suite) {
      if (b.name == name) return b;
    }
    throw std::logic_error("unknown benchmark in ablation subset");
  };
  // A representative subset keeps the ablations quick.
  const char* subset[] = {"dct", "fft", "gsm", "bison", "gzip", "jpeg",
                          "mpeg2", "viterbi"};
  const unsigned dbcs = 8;
  const std::uint32_t capacity = rtm::RtmConfig::Paper(dbcs).domains_per_dbc;

  // -- A: single-set vs multi-set DMA ------------------------------------
  ctx.Print("-- A: dma-sr vs dma2-sr (multi disjoint sets, SVI future "
            "work), %u DBCs --\n", dbcs);
  util::TextTable a;
  a.SetHeader({"benchmark", "dma-sr", "dma2-sr", "gain"});
  a.SetAlignments({util::Align::kLeft, util::Align::kRight,
                   util::Align::kRight, util::Align::kRight});
  std::vector<double> gains;
  for (const char* name : subset) {
    const auto& benchmark = find_benchmark(name);
    std::uint64_t single = 0;
    std::uint64_t multi = 0;
    for (const auto& seq : benchmark.sequences) {
      const std::uint32_t cap =
          seq.num_variables() > static_cast<std::size_t>(capacity) * dbcs
              ? static_cast<std::uint32_t>(
                    (seq.num_variables() + dbcs - 1) / dbcs)
              : capacity;
      single += core::ShiftCost(
          seq, core::DistributeDma(seq, dbcs, cap,
                                   {core::IntraHeuristic::kShiftsReduce})
                   .placement);
      core::MultiDmaOptions multi_options;
      multi_options.base.intra = core::IntraHeuristic::kShiftsReduce;
      multi += core::ShiftCost(
          seq, core::DistributeMultiDma(seq, dbcs, cap, multi_options)
                   .placement);
    }
    const double gain =
        multi > 0 ? static_cast<double>(single) / static_cast<double>(multi)
                  : 1.0;
    gains.push_back(gain);
    ctx.Scalar("ablation_dma/a/dma_sr_shifts/" + std::string(name),
               static_cast<double>(single));
    ctx.Scalar("ablation_dma/a/dma2_sr_shifts/" + std::string(name),
               static_cast<double>(multi));
    a.AddRow({name, std::to_string(single), std::to_string(multi),
              util::FormatFixed(gain, 2) + "x"});
  }
  a.AddRule();
  const double gain_geomean = util::GeoMean(gains);
  ctx.Scalar("ablation_dma/a/gain_geomean", gain_geomean, "x");
  a.AddRow({"geomean", "", "", util::FormatFixed(gain_geomean, 2) + "x"});
  ctx.PrintTable(a);

  // -- B & C: GA seeding and mutation weights -----------------------------
  ctx.Print("\n-- B/C: GA ablations (benchmark gsm, largest sequence, %u "
            "DBCs) --\n", dbcs);
  const auto& gsm = find_benchmark("gsm");
  std::size_t longest = 0;
  for (std::size_t i = 0; i < gsm.sequences.size(); ++i) {
    if (gsm.sequences[i].size() > gsm.sequences[longest].size()) longest = i;
  }
  const auto& seq = gsm.sequences[longest];

  core::GaOptions base;
  base.mu = base.lambda = std::max<std::size_t>(
      8, static_cast<std::size_t>(100 * effort * 4));
  base.generations = std::max<std::size_t>(
      10, static_cast<std::size_t>(200 * effort * 4));
  base.seed = 0xAB1A7E;

  util::TextTable bc;
  bc.SetHeader({"GA variant", "best shifts", "vs base"});
  bc.SetAlignments({util::Align::kLeft, util::Align::kRight,
                    util::Align::kRight});
  const auto run = [&](core::GaOptions options) {
    return core::RunGa(seq, dbcs, core::kUnboundedCapacity, options)
        .best_cost;
  };
  const std::uint64_t with_seeding = run(base);
  core::GaOptions unseeded = base;
  unseeded.seed_with_heuristics = false;
  const std::uint64_t without_seeding = run(unseeded);
  core::GaOptions uniform = base;
  uniform.move_weight = uniform.transpose_weight = uniform.permute_weight = 1;
  const std::uint64_t uniform_weights = run(uniform);
  core::GaOptions no_permute = base;
  no_permute.permute_weight = 0;
  const std::uint64_t without_permute = run(no_permute);
  auto rel = [&](std::uint64_t v) {
    return with_seeding == 0
               ? std::string("-")
               : util::FormatFixed(static_cast<double>(v) /
                                       static_cast<double>(with_seeding),
                                   2) + "x";
  };
  ctx.Scalar("ablation_dma/bc/seeded", static_cast<double>(with_seeding));
  ctx.Scalar("ablation_dma/bc/unseeded",
             static_cast<double>(without_seeding));
  ctx.Scalar("ablation_dma/bc/uniform_weights",
             static_cast<double>(uniform_weights));
  ctx.Scalar("ablation_dma/bc/no_permute",
             static_cast<double>(without_permute));
  bc.AddRow({"base (seeded, 10:10:3)", std::to_string(with_seeding), "1.00x"});
  bc.AddRow({"unseeded population", std::to_string(without_seeding),
             rel(without_seeding)});
  bc.AddRow({"uniform mutation weights", std::to_string(uniform_weights),
             rel(uniform_weights)});
  bc.AddRow({"no permute mutation", std::to_string(without_permute),
             rel(without_permute)});
  ctx.PrintTable(bc);
  ctx.Print("(seeding bounds the GA by the best heuristic from generation "
            "0 — the paper's SVI observation)\n");

  // -- D: ports per track --------------------------------------------------
  // Chen's multi-DBC heuristic assumed >= 2 ports per track; DMA is
  // port-count independent (paper SII-B). Extra ports rescue placements
  // with long jumps (AFD) far more than placements that already cluster
  // hot variables (DMA-SR) — which is why the paper's single-port results
  // generalize.
  ctx.Print("\n-- D: multi-port shift cost of fixed placements (gsm) --\n");
  const auto afd_placement = core::DistributeAfd(
      seq, dbcs, core::kUnboundedCapacity, {core::IntraHeuristic::kOfu});
  const auto dma_placement =
      core::DistributeDma(seq, dbcs, core::kUnboundedCapacity,
                          {core::IntraHeuristic::kShiftsReduce})
          .placement;
  std::uint32_t longest_dbc = 1;
  for (const auto* placement : {&afd_placement, &dma_placement}) {
    for (std::uint32_t d = 0; d < placement->num_dbcs(); ++d) {
      longest_dbc = std::max(
          longest_dbc, static_cast<std::uint32_t>(placement->dbc(d).size()));
    }
  }
  util::TextTable ports;
  ports.SetHeader({"ports/track", "afd-ofu shifts", "dma-sr shifts"});
  ports.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight});
  for (const unsigned port_count : {1u, 2u, 4u}) {
    core::CostOptions cost;
    cost.domains_per_dbc = longest_dbc;
    cost.port_offsets.clear();
    for (unsigned p = 0; p < port_count; ++p) {
      cost.port_offsets.push_back(static_cast<std::uint32_t>(
          (2ULL * p + 1) * longest_dbc / (2ULL * port_count)));
    }
    const std::uint64_t afd_shifts = core::ShiftCost(seq, afd_placement, cost);
    const std::uint64_t dma_shifts = core::ShiftCost(seq, dma_placement, cost);
    ctx.Scalar("ablation_dma/d/afd_ofu_shifts/" +
                   std::to_string(port_count) + "port",
               static_cast<double>(afd_shifts));
    ctx.Scalar("ablation_dma/d/dma_sr_shifts/" +
                   std::to_string(port_count) + "port",
               static_cast<double>(dma_shifts));
    ports.AddRow({std::to_string(port_count), std::to_string(afd_shifts),
                  std::to_string(dma_shifts)});
  }
  ctx.PrintTable(ports);
  ctx.Print("(extra ports mainly rescue jump-heavy layouts; they also "
            "cost area and leakage — cf. Table I trend and Fig. 6)\n");
}

}  // namespace

void RegisterAblationDma(ScenarioRegistry& registry) {
  registry.Register({"ablation_dma",
                     "Ablations: DMA variants, GA choices, port count",
                     /*uses_search=*/true, Run});
}

}  // namespace rtmp::benchtool::scenarios
