// The interplay of inter- and intra-DBC placement (paper contribution 3):
// the full cross product of inter policies (AFD, DMA, DMA2) and intra
// policies (OFU, Chen, SR, GE) over the suite, per DBC count. The paper's
// claim to check: the DMA distribution "provides a promising base for the
// Chen and ShiftsReduce heuristics" — i.e. intra optimization helps BOTH
// inter policies, DMA dominates for every intra choice, and the intra gain
// shrinks as DBCs increase (sparser DBCs leave less to reorder).
#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== Interplay: inter policy x intra policy (geomean shifts "
            "normalized to afd-ofu) ==\n\n");
  ctx.PrintEffortNote();

  sim::ExperimentOptions options;
  options.strategies.clear();
  const core::InterPolicy inters[] = {core::InterPolicy::kAfd,
                                      core::InterPolicy::kDma,
                                      core::InterPolicy::kDmaMulti};
  const core::IntraHeuristic intras[] = {
      core::IntraHeuristic::kOfu, core::IntraHeuristic::kChen,
      core::IntraHeuristic::kShiftsReduce, core::IntraHeuristic::kGreedyEdge};
  for (const auto inter : inters) {
    for (const auto intra : intras) {
      options.strategies.push_back({inter, intra});
    }
  }
  ctx.Configure(options);  // effort, threads, progress
  const auto suite = offsetstone::GenerateSuite();
  const auto results = RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);
  const auto names = SuiteNames();
  const core::StrategySpec baseline{core::InterPolicy::kAfd,
                                    core::IntraHeuristic::kOfu};

  double dma_sr_gain[4] = {};
  double afd_sr_gain[4] = {};
  for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
    const unsigned dbcs = options.dbc_counts[i];
    ctx.Print("-- %u DBCs --\n", dbcs);
    util::TextTable out;
    out.SetHeader({"inter \\ intra", "ofu", "chen", "sr", "ge"});
    out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});
    const char* inter_labels[] = {"afd", "dma", "dma2"};
    const char* intra_labels[] = {"ofu", "chen", "sr", "ge"};
    for (std::size_t inter_idx = 0; inter_idx < std::size(inters);
         ++inter_idx) {
      const auto inter = inters[inter_idx];
      std::vector<std::string> row{inter_labels[inter_idx]};
      for (std::size_t intra_idx = 0; intra_idx < std::size(intras);
           ++intra_idx) {
        const auto intra = intras[intra_idx];
        const auto normalized =
            table.NormalizedShifts(names, dbcs, {inter, intra}, baseline);
        const double g = util::GeoMean(normalized);
        row.push_back(util::FormatFixed(g, 2));
        ctx.Scalar("ablation_intra/norm_shifts/" +
                       std::string(inter_labels[inter_idx]) + "-" +
                       intra_labels[intra_idx] + "/" + std::to_string(dbcs) +
                       "dbc",
                   g);
        if (inter == core::InterPolicy::kDma &&
            intra == core::IntraHeuristic::kShiftsReduce) {
          dma_sr_gain[i] = g;
        }
        if (inter == core::InterPolicy::kAfd &&
            intra == core::IntraHeuristic::kShiftsReduce) {
          afd_sr_gain[i] = g;
        }
      }
      out.AddRow(std::move(row));
    }
    ctx.PrintTable(out);
    ctx.Print("\n");
  }

  ctx.Print("-- shape checks --\n");
  bool dma_dominates = true;
  for (std::size_t i = 0; i < 4; ++i) {
    dma_dominates = dma_dominates && dma_sr_gain[i] <= afd_sr_gain[i] + 0.02;
  }
  ctx.Check("DMA base never loses to AFD base under SR", dma_dominates);
  ctx.Print("(smaller is better; every column is normalized to afd-ofu "
            "= 1.00)\n");
}

}  // namespace

void RegisterAblationIntra(ScenarioRegistry& registry) {
  registry.Register({"ablation_intra",
                     "Interplay of inter and intra policies over the suite",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
