// Proactive port alignment (related work [1], [12], [20], [21]): how much
// of the remaining shift latency can a controller hide by pre-shifting a
// DBC while the channel serves other DBCs — and how that interacts with
// placement quality. Placement and proactive alignment are complementary:
// placement removes shifts (energy AND latency), the controller only hides
// latency; and a good placement leaves fewer long shifts to hide.
#include "core/strategy_registry.h"
#include "harness/scenarios/scenarios.h"
#include "rtm/controller.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

rtmp::rtm::ControllerStats Replay(const rtmp::trace::AccessSequence& seq,
                                  const rtmp::core::Placement& placement,
                                  const rtmp::rtm::RtmConfig& config,
                                  const rtmp::rtm::ControllerConfig& cc) {
  std::vector<std::pair<unsigned, std::uint32_t>> locations(
      seq.num_variables(), {0u, 0u});
  for (rtmp::trace::VariableId v = 0; v < seq.num_variables(); ++v) {
    if (!placement.IsPlaced(v)) continue;
    const auto slot = placement.SlotOf(v);
    locations[v] = {slot.dbc, slot.offset};
  }
  return ReplaySequence(seq, locations, config, cc);
}

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== Proactive alignment vs placement quality ==\n\n");
  ctx.PrintEffortNote();

  const auto suite = offsetstone::GenerateSuite();
  const char* subset[] = {"bison", "gsm", "jpeg", "gzip", "fft", "cpp"};

  util::TextTable out;
  out.SetHeader({"placement", "DBCs", "serial [us]", "proactive [us]",
                 "hidden", "speedup"});
  out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});

  for (const char* strategy_name : {"afd-ofu", "dma-sr"}) {
    const auto strategy = core::StrategyRegistry::Global().Find(strategy_name);
    for (const unsigned dbcs : {4u, 16u}) {
      double serial_total = 0.0;
      double proactive_total = 0.0;
      double shift_total = 0.0;
      double hidden_total = 0.0;
      for (const char* name : subset) {
        for (const auto& benchmark : suite) {
          if (benchmark.name != name) continue;
          for (const auto& seq : benchmark.sequences) {
            if (seq.num_variables() == 0) continue;
            rtm::RtmConfig config = rtm::RtmConfig::Paper(dbcs);
            if (seq.num_variables() > config.word_capacity()) {
              config.domains_per_dbc = static_cast<unsigned>(
                  (seq.num_variables() + dbcs - 1) / dbcs);
            }
            const auto placement =
                strategy
                    ->Run({&seq, config.total_dbcs(), config.domains_per_dbc,
                           {}, /*compute_cost=*/false})
                    .placement;
            const auto serial =
                Replay(seq, placement, config, rtm::ControllerConfig{});
            rtm::ControllerConfig pc;
            pc.proactive_alignment = true;
            pc.lookahead = 1;
            const auto proactive = Replay(seq, placement, config, pc);
            serial_total += serial.makespan_ns;
            proactive_total += proactive.makespan_ns;
            shift_total += proactive.shift_busy_ns;
            hidden_total += proactive.hidden_shift_ns;
          }
        }
      }
      const double hidden_pct =
          shift_total > 0.0 ? 100.0 * hidden_total / shift_total : 0.0;
      const double speedup =
          proactive_total > 0.0 ? serial_total / proactive_total : 0.0;
      const std::string tag =
          std::string(strategy_name) + "/" + std::to_string(dbcs) + "dbc";
      ctx.Scalar("ablation_overlap/serial_us/" + tag, serial_total / 1e3,
                 "us");
      ctx.Scalar("ablation_overlap/proactive_us/" + tag,
                 proactive_total / 1e3, "us");
      ctx.Scalar("ablation_overlap/hidden_pct/" + tag, hidden_pct, "%");
      ctx.Scalar("ablation_overlap/speedup/" + tag, speedup, "x");
      out.AddRow({strategy_name, std::to_string(dbcs),
                  util::FormatFixed(serial_total / 1e3, 1),
                  util::FormatFixed(proactive_total / 1e3, 1),
                  util::FormatFixed(hidden_pct, 1) + " %",
                  util::FormatFixed(speedup, 2) + "x"});
    }
    out.AddRule();
  }
  ctx.PrintTable(out);
  ctx.Print(
      "\nProactive alignment hides part of the shift LATENCY but none of "
      "the\nshift ENERGY; placement (DMA-SR) removes both, and the two "
      "compose.\n");
}

}  // namespace

void RegisterAblationOverlap(ScenarioRegistry& registry) {
  registry.Register({"ablation_overlap",
                     "Proactive port alignment vs placement quality",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
