// Reproduces Fig. 3: the paper's worked data-placement example. Every
// number printed here is also locked down by tests/paper_example_test.cpp.
#include <string>

#include "core/cost_model.h"
#include "core/inter_afd.h"
#include "core/inter_dma.h"
#include "core/placement.h"
#include "harness/scenarios/scenarios.h"
#include "trace/access_sequence.h"
#include "trace/variable_stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

rtmp::trace::AccessSequence PaperSequence() {
  rtmp::trace::AccessSequence seq;
  for (char c = 'a'; c <= 'i'; ++c) seq.AddVariable(std::string(1, c));
  for (const char c : std::string_view("ababcacaddaiefefgeghgihi")) {
    seq.Append(*seq.FindVariable(std::string_view(&c, 1)));
  }
  return seq;
}

void PrintPlacement(ScenarioContext& ctx,
                    const rtmp::trace::AccessSequence& seq,
                    const rtmp::core::Placement& placement,
                    const char* label) {
  ctx.Print("%s\n", label);
  const auto per_dbc = rtmp::core::PerDbcShiftCost(seq, placement);
  std::uint64_t total = 0;
  for (std::uint32_t d = 0; d < placement.num_dbcs(); ++d) {
    ctx.Print("  DBC%u:", d);
    for (const auto v : placement.dbc(d)) {
      ctx.Print(" %s", seq.name_of(v).c_str());
    }
    ctx.Print("   -> %llu shifts\n",
              static_cast<unsigned long long>(per_dbc[d]));
    total += per_dbc[d];
  }
  ctx.Print("  total: %llu shifts\n\n",
            static_cast<unsigned long long>(total));
}

void Run(ScenarioContext& ctx) {
  using namespace rtmp;
  ctx.Print("== Fig. 3: worked example (V = a..i, |S| = 24) ==\n\n");
  const trace::AccessSequence seq = PaperSequence();

  ctx.Print("S:");
  for (const auto& access : seq.accesses()) {
    ctx.Print(" %s", seq.name_of(access.variable).c_str());
  }
  ctx.Print("\n\n");

  // Fig. 3(e): per-variable stats (printed 1-based, as in the paper).
  const auto stats = trace::ComputeVariableStats(seq);
  util::TextTable stat_table;
  stat_table.SetHeader({"v", "Av", "Fv", "Lv", "lifespan"});
  stat_table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                            util::Align::kRight, util::Align::kRight,
                            util::Align::kRight});
  for (trace::VariableId v = 0; v < seq.num_variables(); ++v) {
    stat_table.AddRow({seq.name_of(v),
                       std::to_string(stats[v].frequency),
                       std::to_string(stats[v].first + 1),
                       std::to_string(stats[v].last + 1),
                       std::to_string(stats[v].Lifespan())});
  }
  ctx.PrintTable(stat_table);
  ctx.Print("\n");

  // Fig. 3(c): the AFD baseline layout; paper: 24 + 15 = 39 shifts.
  const core::Placement afd = core::DistributeAfd(
      seq, 2, core::kUnboundedCapacity, {core::IntraHeuristic::kNone});
  PrintPlacement(ctx, seq, afd,
                 "AFD placement (paper Fig. 3c; expected 24+15=39):");

  // Fig. 3(d): the paper's hand-drawn sequence-aware layout; 4 + 7 = 11.
  std::vector<std::vector<trace::VariableId>> hand(2);
  for (const char c : std::string_view("bcdeh")) {
    hand[0].push_back(*seq.FindVariable(std::string_view(&c, 1)));
  }
  for (const char c : std::string_view("afgi")) {
    hand[1].push_back(*seq.FindVariable(std::string_view(&c, 1)));
  }
  const auto paper_layout =
      core::Placement::FromLists(hand, seq.num_variables());
  PrintPlacement(ctx, seq, paper_layout,
                 "Sequence-aware placement (paper Fig. 3d; expected 4+7=11):");

  // Algorithm 1's own output on the same trace.
  const auto dma = core::DistributeDma(seq, 2, core::kUnboundedCapacity,
                                       {core::IntraHeuristic::kOfu});
  ctx.Print("Algorithm 1 selects Vdj = {");
  for (std::size_t i = 0; i < dma.disjoint.size(); ++i) {
    ctx.Print("%s%s", i ? ", " : "", seq.name_of(dma.disjoint[i]).c_str());
  }
  std::uint64_t freq_sum = 0;
  for (const auto v : dma.disjoint) freq_sum += stats[v].frequency;
  ctx.Print("} with frequency sum %llu (paper: {b, c, d, e, h}, 11)\n\n",
            static_cast<unsigned long long>(freq_sum));
  PrintPlacement(ctx, seq, dma.placement, "DMA-OFU placement (Algorithm 1):");

  const std::uint64_t afd_shifts = core::ShiftCost(seq, afd);
  const std::uint64_t hand_shifts = core::ShiftCost(seq, paper_layout);
  const std::uint64_t dma_shifts = core::ShiftCost(seq, dma.placement);
  const double improvement = static_cast<double>(afd_shifts) /
                             static_cast<double>(hand_shifts);
  ctx.Scalar("fig3/afd_shifts", static_cast<double>(afd_shifts));
  ctx.Scalar("fig3/paper_layout_shifts", static_cast<double>(hand_shifts));
  ctx.Scalar("fig3/dma_ofu_shifts", static_cast<double>(dma_shifts));
  ctx.Scalar("fig3/disjoint_frequency_sum", static_cast<double>(freq_sum));
  ctx.Scalar("fig3/paper_layout_improvement", improvement, "x");
  ctx.Print("improvement of the paper layout over AFD: %.2fx "
            "(paper: 3.54x)\n",
            improvement);
}

}  // namespace

void RegisterFig3Example(ScenarioRegistry& registry) {
  registry.Register({"fig3_example", "Fig. 3: the paper's worked example",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
