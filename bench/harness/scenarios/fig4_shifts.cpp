// Reproduces Fig. 4: shift cost of every placement solution on the
// OffsetStone-lite suite, normalized to the genetic algorithm, for
// 2/4/8/16-DBC RTMs — plus the in-text geometric-mean improvements:
//   DMA-OFU over AFD-OFU:   2.4x / 2.9x / 2.8x / 1.7x   (2/4/8/16 DBCs)
//   DMA-Chen over DMA-OFU:  1.8x / 1.6x / 1.3x / 1.4x
//   DMA-SR  over DMA-OFU:   2.0x / 1.8x / 1.5x / 1.6x
// Absolute factors depend on the (synthesized) traces; the shape to check
// is: every DMA variant beats AFD-OFU, DMA-SR <= DMA-Chen <= DMA-OFU, the
// advantage shrinks as DBCs increase, and GA lower-bounds everything.
#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== Fig. 4: shifts normalized to GA, OffsetStone-lite suite "
            "==\n\n");
  ctx.PrintEffortNote();

  sim::ExperimentOptions options;
  ctx.Configure(options);  // effort, threads, progress
  const auto suite = offsetstone::GenerateSuite();
  const auto results = RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);
  const auto names = SuiteNames();

  const core::StrategySpec kAfdOfu{core::InterPolicy::kAfd,
                                   core::IntraHeuristic::kOfu};
  const core::StrategySpec kDmaOfu{core::InterPolicy::kDma,
                                   core::IntraHeuristic::kOfu};
  const core::StrategySpec kDmaChen{core::InterPolicy::kDma,
                                    core::IntraHeuristic::kChen};
  const core::StrategySpec kDmaSr{core::InterPolicy::kDma,
                                  core::IntraHeuristic::kShiftsReduce};
  const core::StrategySpec kGa{core::InterPolicy::kGa,
                               core::IntraHeuristic::kNone};
  const core::StrategySpec kRw{core::InterPolicy::kRandomWalk,
                               core::IntraHeuristic::kNone};

  const struct {
    const char* label;
    core::StrategySpec spec;
  } columns[] = {{"afd-ofu", kAfdOfu}, {"dma-ofu", kDmaOfu},
                 {"dma-chen", kDmaChen}, {"dma-sr", kDmaSr}, {"rw", kRw}};

  for (const unsigned dbcs : options.dbc_counts) {
    ctx.Print("-- %u DBCs (cost normalized to GA; GA = 1.00) --\n", dbcs);
    util::TextTable bench_table;
    bench_table.SetHeader({"benchmark", "afd-ofu", "dma-ofu", "dma-chen",
                           "dma-sr", "rw"});
    bench_table.SetAlignments(
        {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
         util::Align::kRight, util::Align::kRight, util::Align::kRight});
    for (const auto& name : names) {
      std::vector<std::string> row{name};
      for (const auto& column : columns) {
        const auto normalized =
            table.NormalizedShifts({name}, dbcs, column.spec, kGa);
        row.push_back(util::FormatFixed(normalized.front(), 2));
      }
      bench_table.AddRow(std::move(row));
    }
    bench_table.AddRule();
    std::vector<std::string> geo{"geomean"};
    for (const auto& column : columns) {
      const auto normalized =
          table.NormalizedShifts(names, dbcs, column.spec, kGa);
      const double geomean = util::GeoMean(normalized);
      geo.push_back(util::FormatFixed(geomean, 2));
      ctx.Scalar("fig4/geomean_vs_ga/" + std::string(column.label) + "/" +
                     std::to_string(dbcs) + "dbc",
                 geomean);
    }
    bench_table.AddRow(std::move(geo));
    ctx.PrintTable(bench_table);
    ctx.Print("\n");
  }

  // The in-text geomean improvements, paper vs measured.
  ctx.Print("-- geometric-mean shift improvements (paper / measured) --\n");
  const double paper_dma_over_afd[] = {2.4, 2.9, 2.8, 1.7};
  const double paper_chen_over_dma[] = {1.8, 1.6, 1.3, 1.4};
  const double paper_sr_over_dma[] = {2.0, 1.8, 1.5, 1.6};
  util::TextTable summary;
  summary.SetHeader({"improvement", "2 DBCs", "4 DBCs", "8 DBCs", "16 DBCs"});
  summary.SetAlignments({util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  std::vector<std::string> row1{"DMA-OFU over AFD-OFU"};
  std::vector<std::string> row2{"DMA-Chen over DMA-OFU"};
  std::vector<std::string> row3{"DMA-SR over DMA-OFU"};
  for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
    const unsigned dbcs = options.dbc_counts[i];
    const std::string dbc_tag = std::to_string(dbcs) + "dbc";
    const double dma_over_afd =
        GeoMeanImprovement(table, names, dbcs, kDmaOfu, kAfdOfu);
    const double chen_over_dma =
        GeoMeanImprovement(table, names, dbcs, kDmaChen, kDmaOfu);
    const double sr_over_dma =
        GeoMeanImprovement(table, names, dbcs, kDmaSr, kDmaOfu);
    ctx.Scalar("fig4/dma_ofu_over_afd_ofu/" + dbc_tag, dma_over_afd, "x");
    ctx.Scalar("fig4/dma_chen_over_dma_ofu/" + dbc_tag, chen_over_dma, "x");
    ctx.Scalar("fig4/dma_sr_over_dma_ofu/" + dbc_tag, sr_over_dma, "x");
    row1.push_back(PaperVsMeasured(paper_dma_over_afd[i], dma_over_afd));
    row2.push_back(PaperVsMeasured(paper_chen_over_dma[i], chen_over_dma));
    row3.push_back(PaperVsMeasured(paper_sr_over_dma[i], sr_over_dma));
  }
  summary.AddRow(std::move(row1));
  summary.AddRow(std::move(row2));
  summary.AddRow(std::move(row3));
  ctx.PrintTable(summary);

  // Shape checks the figure's discussion calls out.
  ctx.Print("\n-- shape checks --\n");
  bool dma_beats_afd = true;
  for (const unsigned dbcs : options.dbc_counts) {
    dma_beats_afd = dma_beats_afd &&
                    GeoMeanImprovement(table, names, dbcs, kDmaOfu,
                                       kAfdOfu) >= 1.0;
  }
  const double gain_2 =
      GeoMeanImprovement(table, names, 2, kDmaOfu, kAfdOfu);
  const double gain_16 =
      GeoMeanImprovement(table, names, 16, kDmaOfu, kAfdOfu);
  ctx.Check("DMA-OFU >= AFD-OFU on geomean for every DBC count",
            dma_beats_afd);
  ctx.Print("improvement shrinks with more DBCs (2-DBC %.2fx vs 16-DBC "
            "%.2fx): %s (paper: 2.4x -> 1.7x)\n",
            gain_2, gain_16, gain_2 > gain_16 ? "yes" : "NO");
  ctx.RecordCheck("improvement shrinks with more DBCs", gain_2 > gain_16);
}

}  // namespace

void RegisterFig4Shifts(ScenarioRegistry& registry) {
  registry.Register({"fig4_shifts",
                     "Fig. 4: shifts of every solution, normalized to GA",
                     /*uses_search=*/true, Run});
}

}  // namespace rtmp::benchtool::scenarios
