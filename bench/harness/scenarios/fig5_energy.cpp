// Reproduces Fig. 5: total energy (leakage + read/write + shift) of
// AFD-OFU, DMA-OFU and DMA-SR, normalized to AFD-OFU, per DBC count; with
// the in-text total reductions:
//   DMA-OFU: 61 / 62 / 44 / 13 %  (2/4/8/16 DBCs)
//   DMA-SR:  77 / 70 / 50 / 21 %
// Shapes to check: the shift-energy share shrinks and the leakage share
// grows with DBC count; the leakage term also drops for DMA because the
// runtime drops (paper's observation (3)).
#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== Fig. 5: energy breakdown normalized to AFD-OFU ==\n\n");
  ctx.PrintEffortNote();

  sim::ExperimentOptions options;
  options.strategies = {
      {core::InterPolicy::kAfd, core::IntraHeuristic::kOfu},
      {core::InterPolicy::kDma, core::IntraHeuristic::kOfu},
      {core::InterPolicy::kDma, core::IntraHeuristic::kShiftsReduce},
  };
  ctx.Configure(options);  // effort, threads, progress
  const auto suite = offsetstone::GenerateSuite();
  const auto results = RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);
  const auto names = SuiteNames();

  const char* labels[] = {"AFD-OFU", "DMA-OFU", "DMA-SR"};
  const double paper_reduction[3][4] = {
      {0, 0, 0, 0}, {61, 62, 44, 13}, {77, 70, 50, 21}};

  // Suite-wide energy components per (dbc, strategy).
  util::TextTable out;
  out.SetHeader({"DBCs", "strategy", "leakage", "read/write", "shift",
                 "total (norm.)", "paper reduction"});
  out.SetAlignments({util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  double measured_reduction[3][4] = {};
  double leakage_share[3][4] = {};
  double shift_share[3][4] = {};
  for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
    const unsigned dbcs = options.dbc_counts[i];
    double base_total = 0.0;
    for (std::size_t s = 0; s < options.strategies.size(); ++s) {
      double leak = 0.0;
      double rw = 0.0;
      double shift = 0.0;
      for (const auto& name : names) {
        const auto& m = table.At(name, dbcs, options.strategies[s]);
        leak += m.leakage_pj;
        rw += m.read_write_pj;
        shift += m.shift_pj;
      }
      const double total = leak + rw + shift;
      if (s == 0) base_total = total;
      const double norm = base_total > 0.0 ? total / base_total : 0.0;
      measured_reduction[s][i] = 100.0 * (1.0 - norm);
      leakage_share[s][i] = total > 0.0 ? leak / total : 0.0;
      shift_share[s][i] = total > 0.0 ? shift / total : 0.0;
      if (s != 0) {
        ctx.Scalar("fig5/reduction_pct/" + std::string(labels[s]) + "/" +
                       std::to_string(dbcs) + "dbc",
                   measured_reduction[s][i], "%");
      }
      out.AddRow({std::to_string(dbcs), labels[s],
                  util::FormatFixed(leak / base_total, 3),
                  util::FormatFixed(rw / base_total, 3),
                  util::FormatFixed(shift / base_total, 3),
                  util::FormatFixed(norm, 3),
                  s == 0 ? "-"
                         : PaperVsMeasured(paper_reduction[s][i],
                                           measured_reduction[s][i], 0) +
                               " %"});
    }
    out.AddRule();
  }
  ctx.PrintTable(out);

  ctx.Print("\n-- shape checks --\n");
  const bool leakage_grows =
      leakage_share[0][3] > leakage_share[0][0];  // AFD: 16 vs 2 DBCs
  const bool shift_shrinks = shift_share[0][3] < shift_share[0][0];
  bool dma_saves = true;
  for (std::size_t i = 0; i < 4; ++i) {
    dma_saves = dma_saves && measured_reduction[2][i] >= 0.0;
  }
  ctx.Check("leakage share grows with DBC count (AFD-OFU)", leakage_grows);
  ctx.Check("shift-energy share shrinks with DBC count (AFD-OFU)",
            shift_shrinks);
  ctx.Check("DMA-SR reduces total energy for every DBC count", dma_saves);
}

}  // namespace

void RegisterFig5Energy(ScenarioRegistry& registry) {
  registry.Register({"fig5_energy",
                     "Fig. 5: energy breakdown normalized to AFD-OFU",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
