// Reproduces Fig. 6: the shifts/latency/energy/area trade-off of the best
// configuration (DMA-SR) as the DBC count grows from 2 to 16. The paper
// plots normalized improvements; we print absolute suite totals plus the
// 2-DBC-normalized improvement factors. Shapes to check (paper SIV-C):
//   * area rises steadily with DBC count (ports dominate footprint);
//   * shift and latency improvements saturate at higher DBC counts;
//   * 2-DBC loses on energy (shift energy dominates) and 16-DBC consumes
//     more than the 4/8-DBC sweet spot (leakage dominates).
#include "core/strategy.h"
#include "destiny/device_model.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== Fig. 6: DMA-SR across 2/4/8/16 DBCs ==\n\n");
  ctx.PrintEffortNote();

  sim::ExperimentOptions options;
  options.strategies = {
      {core::InterPolicy::kDma, core::IntraHeuristic::kShiftsReduce}};
  ctx.Configure(options);  // effort, threads, progress
  const auto suite = offsetstone::GenerateSuite();
  const auto results = RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);
  const auto names = SuiteNames();
  const auto spec = options.strategies[0];

  double shifts[4] = {};
  double runtime[4] = {};
  double energy[4] = {};
  double area[4] = {};
  for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
    const unsigned dbcs = options.dbc_counts[i];
    for (const auto& name : names) {
      const auto& m = table.At(name, dbcs, spec);
      shifts[i] += static_cast<double>(m.shifts);
      runtime[i] += m.runtime_ns;
      energy[i] += m.total_energy_pj();
    }
    area[i] = destiny::PaperTableOne(dbcs).area_mm2;
  }

  util::TextTable out;
  out.SetHeader({"metric", "2 DBCs", "4 DBCs", "8 DBCs", "16 DBCs"});
  out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  auto add_metric = [&out](const char* label, const double* values,
                           int digits) {
    std::vector<std::string> cells{label};
    for (int i = 0; i < 4; ++i) {
      cells.push_back(util::FormatFixed(values[i], digits));
    }
    out.AddRow(std::move(cells));
  };
  const double shifts_k[] = {shifts[0] / 1e3, shifts[1] / 1e3,
                             shifts[2] / 1e3, shifts[3] / 1e3};
  const double runtime_us[] = {runtime[0] / 1e3, runtime[1] / 1e3,
                               runtime[2] / 1e3, runtime[3] / 1e3};
  const double energy_nj[] = {energy[0] / 1e3, energy[1] / 1e3,
                              energy[2] / 1e3, energy[3] / 1e3};
  add_metric("total shifts (k)", shifts_k, 1);
  add_metric("runtime (us)", runtime_us, 1);
  add_metric("energy (nJ)", energy_nj, 1);
  add_metric("area (mm^2)", area, 4);
  out.AddRule();
  // Fig. 6 style: improvement relative to the 2-DBC configuration
  // (x-axis of the figure; >1 means better than 2 DBCs, area is a cost).
  const double shift_norm[] = {1.0, shifts[0] / shifts[1],
                               shifts[0] / shifts[2], shifts[0] / shifts[3]};
  const double lat_norm[] = {1.0, runtime[0] / runtime[1],
                             runtime[0] / runtime[2], runtime[0] / runtime[3]};
  const double energy_norm[] = {1.0, energy[0] / energy[1],
                                energy[0] / energy[2], energy[0] / energy[3]};
  const double area_norm[] = {1.0, area[1] / area[0], area[2] / area[0],
                              area[3] / area[0]};
  add_metric("shift improvement (vs 2 DBCs)", shift_norm, 2);
  add_metric("latency improvement (vs 2 DBCs)", lat_norm, 2);
  add_metric("energy improvement (vs 2 DBCs)", energy_norm, 2);
  add_metric("area overhead (vs 2 DBCs)", area_norm, 2);
  ctx.PrintTable(out);

  for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
    const std::string dbc_tag = std::to_string(options.dbc_counts[i]) + "dbc";
    ctx.Scalar("fig6/total_shifts/" + dbc_tag, shifts[i]);
    ctx.Scalar("fig6/shift_improvement_vs_2dbc/" + dbc_tag, shift_norm[i],
               "x");
    ctx.Scalar("fig6/latency_improvement_vs_2dbc/" + dbc_tag, lat_norm[i],
               "x");
    ctx.Scalar("fig6/energy_improvement_vs_2dbc/" + dbc_tag, energy_norm[i],
               "x");
    ctx.Scalar("fig6/area_overhead_vs_2dbc/" + dbc_tag, area_norm[i], "x");
  }

  ctx.Print("\n-- shape checks --\n");
  const bool area_rises = area[0] < area[1] && area[1] < area[2] &&
                          area[2] < area[3];
  // Saturation in the paper's sense: each doubling of the DBC count buys a
  // smaller RELATIVE shift improvement than the previous one.
  const bool improvement_saturates =
      shift_norm[1] / shift_norm[0] > shift_norm[3] / shift_norm[2];
  const bool two_dbc_not_competitive =
      energy[0] > energy[1] && energy[0] > energy[2];
  const bool sixteen_worse_than_mid =
      energy[3] > energy[1] || energy[3] > energy[2];
  ctx.Check("area rises with DBC count", area_rises);
  ctx.Check("shift improvement saturates", improvement_saturates);
  ctx.Check("2-DBC RTM is not competitive on energy", two_dbc_not_competitive);
  ctx.Check("16-DBC consumes more energy than a 4- or 8-DBC RTM",
            sixteen_worse_than_mid);
}

}  // namespace

void RegisterFig6DbcTradeoff(ScenarioRegistry& registry) {
  registry.Register({"fig6_dbc_tradeoff",
                     "Fig. 6: DMA-SR trade-offs across 2/4/8/16 DBCs",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
