// fig_cache: hybrid-memory mode — the device as a managed cache tier
// (src/cache/) swept over working-set scale x capacity ratio x eviction
// policy.
//
// Two cache-hostile workloads (pointer-chase's permutation walks,
// kv-churn's sliding zipfian working set) run at two working-set scales
// through the online baseline and the built-in cache policies at 25%,
// 50% and 100% capacity. Cache cells charge eviction/fill sweeps as
// real device traffic and the backing store's latency on top, so
// "total shifts" and runtime already include the cost of missing.
//
// Two properties are checked:
//  * Oracle — every capacity-100% cell is bit-identical to the uncached
//    online-fixed-dma-sr cell (same engine recipe, same device): the
//    cache tier costs nothing when it does nothing.
//  * Placement-aware eviction pays — cache-shift-aware (victims ranked
//    by placement-peeked sweep cost) beats cache-lru on total shifts,
//    fill traffic included, on at least one capacity-constrained cell.
//
// Only constructive strategies are involved, so the scenario is
// effort-independent and fully golden-checked.
#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_cell.h"
#include "cache/cache_policy.h"
#include "cache/engine.h"
#include "harness/scenarios/scenarios.h"
#include "sim/experiment.h"
#include "util/stats.h"
#include "workloads/workload.h"

namespace rtmp::benchtool::scenarios {

namespace {

const std::vector<std::string> kWorkloads = {"pointer-chase", "kv-churn"};

/// The uncached twin of the built-in cache policies' engine recipe.
const std::string kOracle = "online-fixed-dma-sr";

const std::vector<std::string> kEvictions = {"cache-lru", "cache-lfu",
                                             "cache-sample",
                                             "cache-shift-aware"};

/// The capacity-constrained contenders of the headline comparison.
const std::vector<std::string> kConstrained = {
    "cache-lru-c25",         "cache-lru-c50",
    "cache-shift-aware-c25", "cache-shift-aware-c50",
    "cache-lfu-c50",         "cache-sample-c50",
};

/// Runs the matrix at one working-set scale; cells of the scaled run
/// are suffixed "@x2" so both scales coexist in one golden report.
std::vector<sim::RunResult> RunAtScale(ScenarioContext& ctx,
                                       sim::ExperimentOptions options,
                                       double scale,
                                       const std::string& suffix) {
  options.workload_scale = scale;
  std::vector<sim::RunResult> results = sim::RunMatrix(kWorkloads, options);
  for (sim::RunResult& result : results) result.benchmark += suffix;
  ctx.AddCells(results);
  return results;
}

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print(
      "== fig_cache: the device as a managed cache tier (working-set "
      "scale x capacity x eviction) ==\n\n");

  sim::ExperimentOptions options;
  options.dbc_counts = {4, 8};
  options.strategies.clear();
  options.extra_strategies.push_back(kOracle);
  for (const std::string& eviction : kEvictions) {
    options.extra_strategies.push_back(eviction + "-c100");
  }
  for (const std::string& name : kConstrained) {
    options.extra_strategies.push_back(name);
  }
  ctx.Configure(options);  // threads, progress (effort unused: no search)

  std::vector<sim::RunResult> results = RunAtScale(ctx, options, 1.0, "");
  {
    const std::vector<sim::RunResult> scaled =
        RunAtScale(ctx, options, 2.0, "@x2");
    results.insert(results.end(), scaled.begin(), scaled.end());
  }
  const sim::ResultTable table(results);

  const std::vector<std::string> variants = {"pointer-chase", "kv-churn",
                                             "pointer-chase@x2",
                                             "kv-churn@x2"};

  // Oracle: every c100 cell == the uncached online cell, exactly.
  bool oracle_holds = true;
  for (const std::string& workload : variants) {
    for (const unsigned dbcs : options.dbc_counts) {
      const sim::RunMetrics& online = table.At(workload, dbcs, kOracle);
      for (const std::string& eviction : kEvictions) {
        const sim::RunMetrics& cached =
            table.At(workload, dbcs, eviction + "-c100");
        oracle_holds &= cached.shifts == online.shifts &&
                        cached.accesses == online.accesses &&
                        cached.runtime_ns == online.runtime_ns &&
                        cached.total_energy_pj() == online.total_energy_pj();
      }
    }
  }

  // Headline: placement-aware eviction vs. LRU at the same capacity,
  // total shifts with fill traffic included.
  util::TextTable out;
  out.SetHeader({"workload", "dbcs", "capacity", "lru", "shift-aware",
                 "aware/lru"});
  out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  bool aware_beats_lru = false;
  for (const std::string& workload : variants) {
    for (const unsigned dbcs : options.dbc_counts) {
      for (const std::string& capacity : {std::string("c25"),
                                          std::string("c50")}) {
        const std::uint64_t lru =
            table.At(workload, dbcs, "cache-lru-" + capacity).shifts;
        const std::uint64_t aware =
            table.At(workload, dbcs, "cache-shift-aware-" + capacity).shifts;
        aware_beats_lru |= aware < lru;
        const double ratio = lru == 0 ? 1.0
                                      : static_cast<double>(aware) /
                                            static_cast<double>(lru);
        const std::string tag =
            workload + "/" + std::to_string(dbcs) + "dbc/" + capacity;
        ctx.Scalar("fig_cache/aware_over_lru/" + tag, ratio, "x");
        out.AddRow({workload, std::to_string(dbcs), capacity,
                    std::to_string(lru), std::to_string(aware),
                    util::FormatFixed(ratio, 3)});
      }
    }
  }
  ctx.PrintTable(out);
  ctx.Print("(total shifts; cache cells INCLUDE eviction/fill traffic)\n\n");

  // Miss anatomy of one constrained cell, straight from the engine.
  {
    const std::string workload_name = "kv-churn";
    const unsigned dbcs = 4;
    const auto workload = workloads::ResolveWorkload(workload_name);
    const auto benchmark = workload->Generate(
        {options.workload_seed, options.workload_scale});
    for (const std::string& eviction :
         {std::string("cache-lru"), std::string("cache-shift-aware")}) {
      const auto policy =
          cache::CachePolicyRegistry::Global().Find(eviction + "-c50");
      cache::CacheStats totals;
      for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
        const auto& seq = benchmark.sequences[s];
        if (seq.num_variables() == 0) continue;
        cache::CacheConfig config = policy->MakeConfig();
        const std::size_t capacity =
            cache::ResolveCapacity(config, seq.num_variables());
        const rtm::RtmConfig device =
            cache::DeviceForCapacity(dbcs, capacity);
        config = cache::CellCacheConfig(*policy, device, options,
                                        benchmark.name, s, dbcs);
        config.capacity_slots = capacity;
        const cache::CacheResult result =
            cache::RunCache(seq, config, device);
        totals.accesses += result.cache.accesses;
        totals.hits += result.cache.hits;
        totals.misses += result.cache.misses;
        totals.writebacks += result.cache.writebacks;
        totals.fill_shifts += result.cache.fill_shifts;
      }
      const double hit_rate =
          totals.accesses == 0
              ? 0.0
              : static_cast<double>(totals.hits) /
                    static_cast<double>(totals.accesses);
      ctx.Print(
          "%s-c50 on %s, 4 DBCs: %llu accesses, %.1f%% hits, %llu misses "
          "(%llu writebacks), %llu fill shifts\n",
          eviction.c_str(), workload_name.c_str(),
          static_cast<unsigned long long>(totals.accesses), 100.0 * hit_rate,
          static_cast<unsigned long long>(totals.misses),
          static_cast<unsigned long long>(totals.writebacks),
          static_cast<unsigned long long>(totals.fill_shifts));
      ctx.Scalar("fig_cache/hit_rate/" + eviction + "-c50/kv-churn/4dbc",
                 hit_rate, "");
      ctx.Scalar("fig_cache/fill_shifts/" + eviction + "-c50/kv-churn/4dbc",
                 static_cast<double>(totals.fill_shifts), "shifts");
    }
    ctx.Print("\n");
  }

  ctx.Check(
      "every capacity-100% cache cell equals the uncached "
      "online-fixed-dma-sr cell exactly (oracle)",
      oracle_holds);
  ctx.Check(
      "cache-shift-aware beats cache-lru on total shifts (incl. fill "
      "traffic) on >= 1 capacity-constrained cell",
      aware_beats_lru);
}

}  // namespace

void RegisterFigCache(ScenarioRegistry& registry) {
  registry.Register({"fig_cache",
                     "hybrid-memory cache tier: working-set scale x "
                     "capacity x eviction policy (fills charged)",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
