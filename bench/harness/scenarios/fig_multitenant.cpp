// fig_multitenant: the multi-tenant placement service (src/serve/) on
// one shared device — tenants x shards x migration budget.
//
// Tenant populations mt1/mt4/mt16 are built from registry workloads
// (each tenant one generated sequence, workloads cycling through a
// 4-entry mix, per-tenant generation seeds). Two views:
//
//  * matrix cells: the mt benchmarks through serve policies next to the
//    online oracle, so serve cells land in the same report/golden format
//    as every other cell. The serve-1s-static oracle must equal the
//    online-static cell exactly — a single tenant on a single shard is
//    the bare engine.
//  * service grid: {1,4,16} tenants x {1,2,4} shards x {tight,loose}
//    budgets at 8 DBCs, run through PlacementService directly for the
//    serve-only metrics — Jain fairness over per-tenant window
//    latencies, makespan, budget denials — plus the conservation check
//    that per-tenant shift attribution sums to the device totals.
//
// Only constructive strategies are involved (dma-sr re-seeds), so the
// scenario is effort-independent and fully golden-checked.
#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenarios/scenarios.h"
#include "obs/metrics.h"
#include "serve/serve_cell.h"
#include "serve/serve_policy.h"
#include "serve/service.h"
#include "util/stats.h"
#include "workloads/workload.h"

namespace rtmp::benchtool::scenarios {

namespace {

/// Workload mix the tenant population cycles through.
const std::vector<std::string> kTenantWorkloads = {
    "gemm-tiled",
    "kv-churn",
    "phased(stencil,stream-scan)",
    "phased(gemm-tiled,bfs-frontier)",
};

/// One sequence per tenant, generated with a per-tenant seed so equal
/// workloads still produce distinct streams.
offsetstone::Benchmark MakeTenantBenchmark(
    std::size_t tenants, const sim::ExperimentOptions& options) {
  offsetstone::Benchmark benchmark;
  benchmark.name = "mt" + std::to_string(tenants);
  for (std::size_t i = 0; i < tenants; ++i) {
    const auto workload = workloads::ResolveWorkload(
        kTenantWorkloads[i % kTenantWorkloads.size()]);
    offsetstone::Benchmark generated =
        workload->Generate({options.workload_seed + i, 0.5});
    benchmark.sequences.push_back(std::move(generated.sequences.at(0)));
  }
  return benchmark;
}

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print(
      "== fig_multitenant: sharded multi-tenant serving on one device "
      "==\n\n");

  sim::ExperimentOptions options;
  options.dbc_counts = {4, 8};
  options.strategies.clear();
  options.extra_strategies = {
      "online-static-dma-sr",    "serve-1s-static-dma-sr",
      "serve-1s-ewma-dma-sr",    "serve-2s-ewma-dma-sr",
      "serve-4s-ewma-dma-sr",
  };
  ctx.Configure(options);  // threads, progress (effort unused: no search)

  std::vector<offsetstone::Benchmark> suite;
  for (const std::size_t tenants : {1u, 4u, 16u}) {
    suite.push_back(MakeTenantBenchmark(tenants, options));
  }

  const auto results = sim::RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);

  util::TextTable cells_out;
  cells_out.SetHeader({"benchmark", "dbcs", "policy", "total shifts"});
  cells_out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                           util::Align::kLeft, util::Align::kRight});
  for (const offsetstone::Benchmark& benchmark : suite) {
    for (const unsigned dbcs : options.dbc_counts) {
      for (const std::string& name : options.extra_strategies) {
        cells_out.AddRow(
            {benchmark.name, std::to_string(dbcs), name,
             std::to_string(table.At(benchmark.name, dbcs, name).shifts)});
      }
    }
  }
  ctx.PrintTable(cells_out);
  ctx.Print("(total shifts; serve cells INCLUDE migration traffic and "
            "shared-channel waits)\n\n");

  // A single tenant on a single shard IS the bare online engine.
  ctx.Check(
      "serve-1s-static-dma-sr equals online-static-dma-sr on mt1 (oracle)",
      table.At("mt1", 8, "serve-1s-static-dma-sr").shifts ==
              table.At("mt1", 8, "online-static-dma-sr").shifts &&
          table.At("mt1", 4, "serve-1s-static-dma-sr").shifts ==
              table.At("mt1", 4, "online-static-dma-sr").shifts);

  // The serve-only grid: tenants x shards x budget at 8 DBCs.
  constexpr unsigned kGridDbcs = 8;
  util::TextTable grid_out;
  grid_out.SetHeader({"tenants", "shards", "budget", "total shifts",
                      "makespan (us)", "fairness", "denials", "p50 (ns)",
                      "p99 (ns)"});
  grid_out.SetAlignments({util::Align::kRight, util::Align::kRight,
                          util::Align::kLeft, util::Align::kRight,
                          util::Align::kRight, util::Align::kRight,
                          util::Align::kRight, util::Align::kRight,
                          util::Align::kRight});
  bool fairness_in_range = true;
  bool budget_respected = true;
  bool attribution_exact = true;
  bool latency_hists_exact = true;
  for (const std::size_t tenants : {1u, 4u, 16u}) {
    const offsetstone::Benchmark benchmark =
        MakeTenantBenchmark(tenants, options);
    std::size_t total_vars = 0;
    for (const auto& seq : benchmark.sequences) {
      total_vars += seq.num_variables();
    }
    for (const unsigned shards : {1u, 2u, 4u}) {
      for (const std::string budget : {"tight", "loose"}) {
        const std::string policy_name = "serve-" + std::to_string(shards) +
                                        "s-" + budget + "-ewma-dma-sr";
        const auto policy =
            serve::ServePolicyRegistry::Global().Find(policy_name);
        const rtm::RtmConfig config =
            sim::CellConfig(kGridDbcs, total_vars);
        serve::PlacementService service(
            serve::CellServeConfig(*policy, config, options, benchmark.name,
                                   kGridDbcs),
            config);
        for (std::size_t i = 0; i < benchmark.sequences.size(); ++i) {
          (void)service.OpenSession("t" + std::to_string(i),
                                    benchmark.sequences[i]);
        }
        const serve::ServeResult result = service.Run();

        fairness_in_range &=
            result.fairness > 0.0 && result.fairness <= 1.0 + 1e-12;
        budget_respected &= result.budget_spent <= result.budget_granted;
        std::uint64_t tenant_shifts = 0;
        obs::Histogram tenant_sum;
        for (const serve::TenantStats& tenant : result.tenants) {
          tenant_shifts += tenant.service_shifts + tenant.migration_shifts;
          tenant_sum.Merge(tenant.latency_hist);
        }
        attribution_exact &= tenant_shifts == result.total_shifts;
        // Each turn's exposed latency is recorded once under its tenant
        // and once at device level — the merge must be bucket-exact.
        latency_hists_exact &= tenant_sum == result.latency_hist;

        const std::string tag = benchmark.name + "/" +
                                std::to_string(shards) + "s/" + budget;
        ctx.Scalar("fig_multitenant/total_shifts/" + tag,
                   static_cast<double>(result.total_shifts), "shifts");
        ctx.Scalar("fig_multitenant/makespan_ns/" + tag, result.makespan_ns,
                   "ns");
        ctx.Scalar("fig_multitenant/fairness/" + tag, result.fairness, "");
        ctx.Scalar("fig_multitenant/budget_denials/" + tag,
                   static_cast<double>(result.budget_denials), "");
        const obs::Histogram& device_hist = result.latency_hist;
        ctx.Scalar("fig_multitenant/latency_p50_ns/" + tag,
                   static_cast<double>(device_hist.Quantile(0.5)), "ns");
        ctx.Scalar("fig_multitenant/latency_p95_ns/" + tag,
                   static_cast<double>(device_hist.Quantile(0.95)), "ns");
        ctx.Scalar("fig_multitenant/latency_p99_ns/" + tag,
                   static_cast<double>(device_hist.Quantile(0.99)), "ns");
        ctx.Scalar("fig_multitenant/latency_p999_ns/" + tag,
                   static_cast<double>(device_hist.Quantile(0.999)), "ns");
        for (const serve::TenantStats& tenant : result.tenants) {
          ctx.Scalar("fig_multitenant/tenant_p99_ns/" + tag + "/" +
                         tenant.name,
                     static_cast<double>(tenant.latency_hist.Quantile(0.99)),
                     "ns");
        }
        grid_out.AddRow({std::to_string(tenants), std::to_string(shards),
                         budget, std::to_string(result.total_shifts),
                         util::FormatFixed(result.makespan_ns / 1000.0, 2),
                         util::FormatFixed(result.fairness, 4),
                         std::to_string(result.budget_denials),
                         std::to_string(device_hist.Quantile(0.5)),
                         std::to_string(device_hist.Quantile(0.99))});
      }
    }
  }
  ctx.PrintTable(grid_out);
  ctx.Print("(fairness = Jain index over per-tenant mean window latency; "
            "p50/p99 from the\ndevice's exposed-latency histogram, "
            "log2-bucket upper bounds)\n\n");

  ctx.Check("fairness indices within (0, 1]", fairness_in_range);
  ctx.Check("migration budget spending never exceeds the grant",
            budget_respected);
  ctx.Check("per-tenant shift attribution sums to the device totals",
            attribution_exact);
  ctx.Check("per-tenant latency histograms merge to the device histogram",
            latency_hists_exact);
}

}  // namespace

void RegisterFigMultitenant(ScenarioRegistry& registry) {
  registry.Register({"fig_multitenant",
                     "multi-tenant serving: tenants x shards x migration "
                     "budget on one shared device",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
