// fig_online: static-best vs. online adaptive placement on phased
// workloads — the dynamic-workload scenario family the online engine
// (src/online/) opens.
//
// Three phase-spliced workloads (the phased(a,b,...) combinator of
// workloads/phased.h: same positional variable space, different affinity
// structure per phase) run through the best static constructive
// strategies AND the online policies. Online cells charge migration as
// real device traffic, so "total shifts" already includes the cost of
// adapting; the headline check is that an online policy still beats the
// best single static placement on at least one phased workload. The
// online-static oracle rides along: its cells must equal the wrapped
// static strategy's exactly, keeping the engine honest in CI.
//
// Only constructive strategies are involved, so the scenario is
// effort-independent and fully golden-checked.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "online/engine.h"
#include "online/online_cell.h"
#include "online/policy.h"
#include "util/stats.h"
#include "workloads/workload.h"

namespace rtmp::benchtool::scenarios {

namespace {

const std::vector<std::string> kPhasedWorkloads = {
    "phased(gemm-tiled,bfs-frontier,stream-scan)",
    "phased(stencil,fft-butterfly)",
    "phased(kv-churn,stream-scan,gemm-tiled)",
};

const std::vector<std::string> kStaticStrategies = {"afd-ofu", "dma-ofu",
                                                    "dma-sr"};
const std::vector<std::string> kOnlinePolicies = {
    "online-static-dma-sr", "online-fixed-dma-sr", "online-ewma-dma-sr"};

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print(
      "== fig_online: static-best vs. online adaptive placement on phased "
      "workloads ==\n\n");

  sim::ExperimentOptions options;
  options.dbc_counts = {4, 8};
  options.strategies.clear();
  for (const std::string& name : kStaticStrategies) {
    options.extra_strategies.push_back(name);
  }
  for (const std::string& name : kOnlinePolicies) {
    options.extra_strategies.push_back(name);
  }
  ctx.Configure(options);  // threads, progress (effort unused: no search)

  const auto suite = sim::LoadWorkloads(kPhasedWorkloads, options);
  const auto results = sim::RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);

  // Per (workload, dbcs): best static vs. best adaptive online policy,
  // total shifts including migration traffic.
  util::TextTable out;
  out.SetHeader({"workload", "dbcs", "best static", "best online",
                 "online/static"});
  out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  bool online_beats_static = false;
  bool oracle_holds = true;
  for (const std::string& workload : kPhasedWorkloads) {
    for (const unsigned dbcs : options.dbc_counts) {
      std::uint64_t best_static = std::numeric_limits<std::uint64_t>::max();
      for (const std::string& name : kStaticStrategies) {
        best_static =
            std::min(best_static, table.At(workload, dbcs, name).shifts);
      }
      // online-static is the oracle, not an adaptive policy: exclude it
      // from "best online" (it ties the static baseline by construction).
      std::uint64_t best_online = std::numeric_limits<std::uint64_t>::max();
      for (const std::string& name : kOnlinePolicies) {
        if (name == "online-static-dma-sr") continue;
        best_online =
            std::min(best_online, table.At(workload, dbcs, name).shifts);
      }
      oracle_holds &= table.At(workload, dbcs, "online-static-dma-sr")
                          .shifts == table.At(workload, dbcs, "dma-sr").shifts;
      online_beats_static |= best_online < best_static;

      const double ratio = best_static == 0
                               ? 1.0
                               : static_cast<double>(best_online) /
                                     static_cast<double>(best_static);
      const std::string tag = workload + "/" + std::to_string(dbcs) + "dbc";
      ctx.Scalar("fig_online/best_static_shifts/" + tag,
                 static_cast<double>(best_static), "shifts");
      ctx.Scalar("fig_online/best_online_shifts/" + tag,
                 static_cast<double>(best_online), "shifts");
      ctx.Scalar("fig_online/online_over_static/" + tag, ratio, "x");
      out.AddRow({workload, std::to_string(dbcs),
                  std::to_string(best_static), std::to_string(best_online),
                  util::FormatFixed(ratio, 3)});
    }
  }
  ctx.PrintTable(out);
  ctx.Print("(total shifts; online cells INCLUDE migration traffic)\n\n");

  // Migration anatomy of the headline workload, straight from the
  // engine: how much re-placement the winning policy actually did.
  {
    const std::string& workload_name = kPhasedWorkloads[0];
    const auto policy =
        online::OnlinePolicyRegistry::Global().Find("online-ewma-dma-sr");
    const auto workload = workloads::ResolveWorkload(workload_name);
    const auto benchmark = workload->Generate(
        {options.workload_seed, options.workload_scale});
    std::uint64_t migrations = 0;
    std::uint64_t migrated_vars = 0;
    std::uint64_t migration_shifts = 0;
    std::uint64_t service_shifts = 0;
    std::uint64_t windows = 0;
    for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
      const auto& seq = benchmark.sequences[s];
      if (seq.num_variables() == 0) continue;
      const rtm::RtmConfig config =
          sim::CellConfig(4, seq.num_variables());
      const online::OnlineConfig online_config = online::CellOnlineConfig(
          *policy, config, options, benchmark.name, s, 4);
      const online::OnlineResult result =
          online::RunOnline(seq, online_config, config);
      migrations += result.migrations;
      migrated_vars += result.migrated_vars;
      migration_shifts += result.migration_shifts;
      service_shifts += result.service_shifts;
      windows += result.windows.size();
    }
    ctx.Print(
        "online-ewma-dma-sr on %s, 4 DBCs:\n"
        "  %llu windows, %llu re-placements moving %llu variables\n"
        "  %llu service + %llu migration shifts (%.1f%% overhead)\n\n",
        workload_name.c_str(), static_cast<unsigned long long>(windows),
        static_cast<unsigned long long>(migrations),
        static_cast<unsigned long long>(migrated_vars),
        static_cast<unsigned long long>(service_shifts),
        static_cast<unsigned long long>(migration_shifts),
        service_shifts == 0
            ? 0.0
            : 100.0 * static_cast<double>(migration_shifts) /
                  static_cast<double>(service_shifts));
    ctx.Scalar("fig_online/ewma_migrations/4dbc",
               static_cast<double>(migrations), "");
    ctx.Scalar("fig_online/ewma_migrated_vars/4dbc",
               static_cast<double>(migrated_vars), "vars");
    ctx.Scalar("fig_online/ewma_migration_shifts/4dbc",
               static_cast<double>(migration_shifts), "shifts");
    ctx.Check("the adaptive policy actually migrated", migrations > 0);
  }

  ctx.Check(
      "online-static-dma-sr cells equal dma-sr cells exactly (oracle)",
      oracle_holds);
  ctx.Check(
      "an online policy beats the best static placement on total shifts "
      "(incl. migration) on >= 1 phased workload",
      online_beats_static);
}

}  // namespace

void RegisterFigOnline(ScenarioRegistry& registry) {
  registry.Register({"fig_online",
                     "static-best vs. online adaptive placement on phased "
                     "workloads (migration charged)",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
