// Reproduces the SIV-B long-GA experiment: running the GA "significantly
// longer" (the paper: 2000 generations) on the benchmark with the largest
// access sequence, the best heuristic lands about 38% above the GA's best —
// evidence the heuristics sit within a reasonable range of the optimum.
//
// The generation budget scales with RTMPLACE_EFFORT (default runs a
// shortened schedule; RTMPLACE_EFFORT=1 reproduces 2000 generations).
#include <string>

#include "core/cost_model.h"
#include "core/genetic.h"
#include "core/random_walk.h"
#include "core/strategy.h"
#include "core/strategy_registry.h"
#include "harness/scenarios/scenarios.h"
#include "rtm/config.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== SIV-B: long-GA gap on the largest benchmark ==\n\n");
  const double effort = ctx.effort();
  ctx.PrintEffortNote();

  const auto suite = offsetstone::GenerateSuite();
  const auto& benchmark = suite[offsetstone::LargestBenchmarkIndex(suite)];
  // Largest sequence of the largest benchmark.
  std::size_t best_seq = 0;
  for (std::size_t i = 0; i < benchmark.sequences.size(); ++i) {
    if (benchmark.sequences[i].size() >
        benchmark.sequences[best_seq].size()) {
      best_seq = i;
    }
  }
  const auto& seq = benchmark.sequences[best_seq];
  ctx.Print("benchmark %s, sequence %zu: %zu accesses over %zu variables\n",
            benchmark.name.c_str(), best_seq, seq.size(),
            seq.num_variables());

  const unsigned dbcs = 4;
  const rtm::RtmConfig config = rtm::RtmConfig::Paper(dbcs);
  const std::uint32_t capacity =
      seq.num_variables() > config.word_capacity()
          ? static_cast<std::uint32_t>((seq.num_variables() + dbcs - 1) / dbcs)
          : config.domains_per_dbc;

  // Heuristic costs, via the registry (PlacementResult carries the cost).
  core::StrategyOptions heuristic_options;
  std::uint64_t best_heuristic = ~0ULL;
  std::string best_name;
  util::TextTable table;
  table.SetHeader({"solution", "shifts"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight});
  auto& registry = core::StrategyRegistry::Global();
  for (const char* name : {"afd-ofu", "dma-ofu", "dma-chen", "dma-sr"}) {
    const core::PlacementResult result =
        registry.Find(name)->Run({&seq, dbcs, capacity, heuristic_options});
    ctx.Scalar("ga_convergence/heuristic_shifts/" + std::string(name),
               static_cast<double>(result.cost));
    table.AddRow({name, std::to_string(result.cost)});
    if (result.cost < best_heuristic) {
      best_heuristic = result.cost;
      best_name = name;
    }
  }

  // Long GA: 2000 generations at paper scale. The heuristics must NOT seed
  // it (the experiment measures how close they get to an independent
  // near-optimum), mirroring the paper's use of GA as a baseline.
  core::GaOptions ga;
  ga.generations = static_cast<std::size_t>(2000 * effort) + 10;
  ga.mu = static_cast<std::size_t>(100 * effort) + 8;
  ga.lambda = ga.mu;
  ga.seed_with_heuristics = false;
  ga.seed = 0xC0FFEE;
  const auto result = core::RunGa(seq, dbcs, capacity, ga);
  table.AddRow({"GA (" + std::to_string(ga.generations) + " gens)",
                std::to_string(result.best_cost)});
  ctx.PrintTable(table);

  const double gap =
      result.best_cost == 0
          ? 0.0
          : 100.0 * (static_cast<double>(best_heuristic) /
                         static_cast<double>(result.best_cost) -
                     1.0);
  ctx.Scalar("ga_convergence/ga_best_shifts",
             static_cast<double>(result.best_cost));
  ctx.Scalar("ga_convergence/best_heuristic_shifts",
             static_cast<double>(best_heuristic));
  ctx.Scalar("ga_convergence/heuristic_gap_pct", gap, "%");
  ctx.Print("\nbest heuristic (%s) vs GA best: %+.1f%% "
            "(paper: ~38%% after 2000 generations)\n",
            best_name.c_str(), gap);

  // Convergence curve (a few samples of the monotone history).
  ctx.Print("\nGA convergence (best cost after generation g):\n");
  const auto& history = result.history;
  for (std::size_t i = 0; i < history.size();
       i += std::max<std::size_t>(history.size() / 8, 1)) {
    ctx.Print("  g=%-5zu %llu\n", i,
              static_cast<unsigned long long>(history[i]));
  }
  ctx.Print("  g=%-5zu %llu (final)\n", history.size() - 1,
            static_cast<unsigned long long>(history.back()));

  // RW reference with the matched evaluation budget (paper: 60 000).
  core::RwOptions rw;
  rw.iterations = result.evaluations;
  rw.seed = 0xC0FFEE;
  const auto rw_result = core::RunRandomWalk(seq, dbcs, capacity, rw);
  ctx.Scalar("ga_convergence/rw_best_shifts",
             static_cast<double>(rw_result.best_cost));
  ctx.Print("\nrandom walk with the same budget (%zu evaluations): %llu "
            "shifts (GA: %llu)\n",
            rw.iterations,
            static_cast<unsigned long long>(rw_result.best_cost),
            static_cast<unsigned long long>(result.best_cost));
}

}  // namespace

void RegisterGaConvergence(ScenarioRegistry& registry) {
  registry.Register({"ga_convergence",
                     "SIV-B: long-GA gap on the largest benchmark",
                     /*uses_search=*/true, Run});
}

}  // namespace rtmp::benchtool::scenarios
