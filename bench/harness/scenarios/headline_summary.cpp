// Reproduces the headline numbers (abstract / SVI): averaged over all
// benchmarks and all DBC configurations, the generalized placement improves
//   * shifts  by 4.3x,
//   * latency by 46 %,
//   * energy  by 55 %
// over the state of the art (AFD-OFU). "Our approach" here is the best
// performing configuration, DMA-SR, matching the paper's summary.
#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== Headline: average improvement over the state of the art "
            "==\n\n");
  ctx.PrintEffortNote();

  sim::ExperimentOptions options;
  options.strategies = {
      {core::InterPolicy::kAfd, core::IntraHeuristic::kOfu},
      {core::InterPolicy::kDma, core::IntraHeuristic::kShiftsReduce},
  };
  ctx.Configure(options);  // effort, threads, progress
  const auto suite = offsetstone::GenerateSuite();
  const auto results = RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);
  const auto names = SuiteNames();
  const auto& baseline = options.strategies[0];
  const auto& ours = options.strategies[1];

  // Shift improvement: geomean over benchmarks, then averaged over DBC
  // configurations (matching the paper's "average ... across all
  // benchmarks and all configurations").
  std::vector<double> shift_factors;
  std::vector<double> latency_reductions;
  std::vector<double> energy_reductions;
  for (const unsigned dbcs : options.dbc_counts) {
    shift_factors.push_back(
        GeoMeanImprovement(table, names, dbcs, ours, baseline));
    std::vector<double> lat;
    std::vector<double> en;
    for (const auto& name : names) {
      const auto& base = table.At(name, dbcs, baseline);
      const auto& dma = table.At(name, dbcs, ours);
      if (base.runtime_ns > 0.0) {
        lat.push_back(100.0 * (1.0 - dma.runtime_ns / base.runtime_ns));
      }
      if (base.total_energy_pj() > 0.0) {
        en.push_back(100.0 *
                     (1.0 - dma.total_energy_pj() / base.total_energy_pj()));
      }
    }
    latency_reductions.push_back(util::Mean(lat));
    energy_reductions.push_back(util::Mean(en));
  }

  const double shift_x = util::Mean(shift_factors);
  const double latency_pct = util::Mean(latency_reductions);
  const double energy_pct = util::Mean(energy_reductions);
  ctx.Scalar("headline/shift_improvement", shift_x, "x");
  ctx.Scalar("headline/latency_reduction", latency_pct, "%");
  ctx.Scalar("headline/energy_reduction", energy_pct, "%");
  for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
    const std::string dbc_tag = std::to_string(options.dbc_counts[i]) + "dbc";
    ctx.Scalar("headline/shift_improvement/" + dbc_tag, shift_factors[i],
               "x");
    ctx.Scalar("headline/latency_reduction/" + dbc_tag,
               latency_reductions[i], "%");
    ctx.Scalar("headline/energy_reduction/" + dbc_tag, energy_reductions[i],
               "%");
  }

  util::TextTable out;
  out.SetHeader({"metric", "paper", "measured", "per-DBC detail (2/4/8/16)"});
  out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kLeft});
  auto detail = [](const std::vector<double>& values, int digits,
                   const char* suffix) {
    std::string s;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) s += " / ";
      s += util::FormatFixed(values[i], digits);
    }
    return s + suffix;
  };
  out.AddRow({"shifts", "4.3x", util::FormatFixed(shift_x, 2) + "x",
              detail(shift_factors, 2, "x")});
  out.AddRow({"latency", "46 %", util::FormatFixed(latency_pct, 1) + " %",
              detail(latency_reductions, 1, " %")});
  out.AddRow({"energy", "55 %", util::FormatFixed(energy_pct, 1) + " %",
              detail(energy_reductions, 1, " %")});
  ctx.PrintTable(out);

  ctx.Print("\nNote: absolute factors depend on the synthesized traces "
            "(offsetstone/suite.h);\nthe reproduction target is the shape — "
            "multi-x shift reduction, double-digit\npercentage latency and "
            "energy gains, largest at low DBC counts.\n");
}

}  // namespace

void RegisterHeadlineSummary(ScenarioRegistry& registry) {
  registry.Register({"headline_summary",
                     "Headline: average improvement over the state of the art",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
