#include "harness/scenarios/scenarios.h"

namespace rtmp::benchtool::internal {

void RegisterBuiltinScenarios(ScenarioRegistry& registry) {
  // `smoke` first: it is the CI entry point and the first thing `list`
  // should show. The rest follow the paper's presentation order.
  scenarios::RegisterSmoke(registry);
  scenarios::RegisterWorkloadsSmoke(registry);
  scenarios::RegisterFigOnline(registry);
  scenarios::RegisterFigCache(registry);
  scenarios::RegisterFigMultitenant(registry);
  scenarios::RegisterThroughput(registry);
  scenarios::RegisterTable1DeviceParams(registry);
  scenarios::RegisterFig3Example(registry);
  scenarios::RegisterFig4Shifts(registry);
  scenarios::RegisterFig5Energy(registry);
  scenarios::RegisterFig6DbcTradeoff(registry);
  scenarios::RegisterSec4cLatency(registry);
  scenarios::RegisterGaConvergence(registry);
  scenarios::RegisterHeadlineSummary(registry);
  scenarios::RegisterAblationDma(registry);
  scenarios::RegisterAblationIntra(registry);
  scenarios::RegisterAblationOverlap(registry);
}

}  // namespace rtmp::benchtool::internal
