// Registration hooks of the built-in scenarios, one per translation
// unit under bench/harness/scenarios/. Called (in paper order) from
// register.cpp; explicit registration keeps a static library workable —
// no reliance on self-registering global initializers the linker might
// drop.
#pragma once

#include "harness/scenario.h"

namespace rtmp::benchtool::scenarios {

void RegisterSmoke(ScenarioRegistry& registry);
void RegisterWorkloadsSmoke(ScenarioRegistry& registry);
void RegisterFigOnline(ScenarioRegistry& registry);
void RegisterFigCache(ScenarioRegistry& registry);
void RegisterFigMultitenant(ScenarioRegistry& registry);
void RegisterThroughput(ScenarioRegistry& registry);
void RegisterFig3Example(ScenarioRegistry& registry);
void RegisterFig4Shifts(ScenarioRegistry& registry);
void RegisterFig5Energy(ScenarioRegistry& registry);
void RegisterFig6DbcTradeoff(ScenarioRegistry& registry);
void RegisterSec4cLatency(ScenarioRegistry& registry);
void RegisterHeadlineSummary(ScenarioRegistry& registry);
void RegisterGaConvergence(ScenarioRegistry& registry);
void RegisterTable1DeviceParams(ScenarioRegistry& registry);
void RegisterAblationDma(ScenarioRegistry& registry);
void RegisterAblationIntra(ScenarioRegistry& registry);
void RegisterAblationOverlap(ScenarioRegistry& registry);

}  // namespace rtmp::benchtool::scenarios
