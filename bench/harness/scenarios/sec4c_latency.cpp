// Reproduces the Section IV-C in-text latency results: RTM access latency
// improvement over AFD-OFU (runtime reduction, %), averaged over the suite:
//   DMA-OFU:  50.3 / 50.5 / 33.1 / 10.4 %   for 2/4/8/16 DBCs
//   DMA-Chen: 68.1 / 60.1 / 36.5 / 13.4 %
//   DMA-SR:   70.1 / 62.0 / 37.7 / 14.6 %
// The gain stems from the shift reduction; the shape to check is that the
// ordering (SR >= Chen >= OFU) holds and the gain shrinks with DBC count.
#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== SIV-C: access latency improvement over AFD-OFU ==\n\n");
  ctx.PrintEffortNote();

  sim::ExperimentOptions options;
  // Latency only needs the heuristics; skip GA/RW for speed.
  options.strategies = {
      {core::InterPolicy::kAfd, core::IntraHeuristic::kOfu},
      {core::InterPolicy::kDma, core::IntraHeuristic::kOfu},
      {core::InterPolicy::kDma, core::IntraHeuristic::kChen},
      {core::InterPolicy::kDma, core::IntraHeuristic::kShiftsReduce},
  };
  ctx.Configure(options);  // effort, threads, progress
  const auto suite = offsetstone::GenerateSuite();
  const auto results = RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);
  const auto names = SuiteNames();

  const core::StrategySpec baseline = options.strategies[0];
  const struct {
    const char* label;
    core::StrategySpec spec;
    double paper[4];
  } rows[] = {
      {"DMA-OFU", options.strategies[1], {50.3, 50.5, 33.1, 10.4}},
      {"DMA-Chen", options.strategies[2], {68.1, 60.1, 36.5, 13.4}},
      {"DMA-SR", options.strategies[3], {70.1, 62.0, 37.7, 14.6}},
  };

  util::TextTable out;
  out.SetHeader({"latency gain [%] (paper / measured)", "2 DBCs", "4 DBCs",
                 "8 DBCs", "16 DBCs"});
  out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  double measured[3][4] = {};
  for (std::size_t r = 0; r < std::size(rows); ++r) {
    std::vector<std::string> cells{rows[r].label};
    for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
      const unsigned dbcs = options.dbc_counts[i];
      // Mean over benchmarks of the per-benchmark runtime reduction.
      std::vector<double> reductions;
      for (const auto& name : names) {
        const double base = table.At(name, dbcs, baseline).runtime_ns;
        const double ours = table.At(name, dbcs, rows[r].spec).runtime_ns;
        if (base > 0.0) reductions.push_back(100.0 * (1.0 - ours / base));
      }
      measured[r][i] = util::Mean(reductions);
      ctx.Scalar("sec4c/latency_gain_pct/" + std::string(rows[r].label) +
                     "/" + std::to_string(dbcs) + "dbc",
                 measured[r][i], "%");
      cells.push_back(PaperVsMeasured(rows[r].paper[i], measured[r][i], 1));
    }
    out.AddRow(std::move(cells));
  }
  ctx.PrintTable(out);

  ctx.Print("\n-- shape checks --\n");
  bool ordering = true;
  bool shrinking = true;
  for (std::size_t i = 0; i < 4; ++i) {
    ordering = ordering && measured[2][i] >= measured[1][i] - 1.0 &&
               measured[1][i] >= measured[0][i] - 1.0;
  }
  shrinking = measured[0][0] > measured[0][3] &&
              measured[2][0] > measured[2][3];
  ctx.Check("DMA-SR >= DMA-Chen >= DMA-OFU (within 1%)", ordering);
  ctx.Check("gain shrinks from 2 to 16 DBCs", shrinking);
}

}  // namespace

void RegisterSec4cLatency(ScenarioRegistry& registry) {
  registry.Register({"sec4c_latency",
                     "SIV-C: access latency improvement over AFD-OFU",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
