// The CI regression scenario: a fast, fully deterministic subset of the
// evaluation matrix — six representative benchmarks, the four heuristic
// placement solutions (no GA/RW, so RTMPLACE_EFFORT cannot skew it), two
// DBC counts. Every cell's shift count, placement cost and simulated
// latency/energy is pinned by the golden under bench/golden/; a placement
// or cost-model regression anywhere in the stack fails
// `rtmbench run smoke --check` byte-for-byte.
#include <stdexcept>

#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print("== smoke: deterministic heuristic subset (golden-checked in CI) "
            "==\n\n");

  // Three DSP/media and three control-dominated benchmarks: both trace
  // shapes the suite distinguishes are represented.
  const char* subset[] = {"dct", "fft", "gsm", "bison", "gzip", "jpeg"};

  sim::ExperimentOptions options;
  options.dbc_counts = {4, 16};
  options.strategies = {
      {core::InterPolicy::kAfd, core::IntraHeuristic::kOfu},
      {core::InterPolicy::kDma, core::IntraHeuristic::kOfu},
      {core::InterPolicy::kDma, core::IntraHeuristic::kChen},
      {core::InterPolicy::kDma, core::IntraHeuristic::kShiftsReduce},
  };
  ctx.Configure(options);  // threads, progress (effort unused: no search)

  std::vector<offsetstone::Benchmark> suite;
  for (const char* name : subset) {
    const auto profile = offsetstone::FindProfile(name);
    if (!profile) throw std::logic_error("unknown smoke benchmark");
    suite.push_back(offsetstone::Generate(*profile));
  }
  const auto results = RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);

  std::vector<std::string> names;
  for (const char* name : subset) names.emplace_back(name);

  const core::StrategySpec baseline = options.strategies[0];
  util::TextTable out;
  out.SetHeader({"strategy", "4 DBCs", "16 DBCs"});
  out.SetAlignments(
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight});
  const char* labels[] = {"afd-ofu", "dma-ofu", "dma-chen", "dma-sr"};
  double sr_gain[2] = {};
  for (std::size_t s = 0; s < options.strategies.size(); ++s) {
    std::vector<std::string> row{labels[s]};
    for (std::size_t i = 0; i < options.dbc_counts.size(); ++i) {
      const unsigned dbcs = options.dbc_counts[i];
      const double gain = GeoMeanImprovement(
          table, names, dbcs, options.strategies[s], baseline);
      if (s == 3) sr_gain[i] = gain;
      ctx.Scalar("smoke/improvement_over_afd_ofu/" + std::string(labels[s]) +
                     "/" + std::to_string(dbcs) + "dbc",
                 gain, "x");
      row.push_back(util::FormatFixed(gain, 2) + "x");
    }
    out.AddRow(std::move(row));
  }
  ctx.PrintTable(out);
  ctx.Print("(geomean shift improvement over afd-ofu, %zu benchmarks)\n\n",
            names.size());

  ctx.Check("every cell simulated some accesses", [&results] {
    for (const auto& cell : results) {
      if (cell.metrics.accesses == 0) return false;
    }
    return true;
  }());
  ctx.Check("placement cost agrees with simulated shifts", [&results] {
    for (const auto& cell : results) {
      if (cell.placement_cost != cell.metrics.shifts) return false;
    }
    return true;
  }());
  ctx.Check("dma-sr beats afd-ofu at both DBC counts",
            sr_gain[0] > 1.0 && sr_gain[1] > 1.0);
}

}  // namespace

void RegisterSmoke(ScenarioRegistry& registry) {
  registry.Register({"smoke",
                     "fast deterministic subset for CI golden checks",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
