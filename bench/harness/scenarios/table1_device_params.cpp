// Reproduces Table I: memory system parameters of the 4 KiB RTM (32 nm,
// 32 tracks/DBC) for 2/4/8/16 DBCs. The paper obtained these from the
// DESTINY circuit simulator; DESTINY-lite is calibrated to return the same
// values at these anchors and to interpolate elsewhere — both shown here.
#include <string>

#include "destiny/device_model.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;
  ctx.Print("== Table I: memory system parameters (4 KiB RTM, 32 nm, "
            "32 tracks/DBC) ==\n\n");

  util::TextTable table;
  table.SetHeader({"parameter", "2 DBCs", "4 DBCs", "8 DBCs", "16 DBCs",
                   "6 DBCs*"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});

  struct Row {
    const char* label;
    const char* tag;
    double destiny::DeviceParams::* field;
    int digits;
  };
  const Row rows[] = {
      {"Number of domains in a DBC", "domains", nullptr, 0},
      {"Leakage power [mW]", "leakage_mw",
       &destiny::DeviceParams::leakage_mw, 2},
      {"Write energy [pJ]", "write_energy_pj",
       &destiny::DeviceParams::write_energy_pj, 2},
      {"Read energy [pJ]", "read_energy_pj",
       &destiny::DeviceParams::read_energy_pj, 2},
      {"Shift energy [pJ]", "shift_energy_pj",
       &destiny::DeviceParams::shift_energy_pj, 2},
      {"Read latency [ns]", "read_latency_ns",
       &destiny::DeviceParams::read_latency_ns, 2},
      {"Write latency [ns]", "write_latency_ns",
       &destiny::DeviceParams::write_latency_ns, 2},
      {"Shift latency [ns]", "shift_latency_ns",
       &destiny::DeviceParams::shift_latency_ns, 2},
      {"Area [mm^2]", "area_mm2", &destiny::DeviceParams::area_mm2, 4},
  };

  destiny::DeviceQuery interp;
  interp.dbcs = 6;
  const destiny::DeviceParams six = destiny::EvaluateDevice(interp);

  for (const Row& row : rows) {
    std::vector<std::string> cells{row.label};
    for (const unsigned dbcs : destiny::kTableOneDbcCounts) {
      if (row.field == nullptr) {
        cells.push_back(std::to_string(destiny::PaperDomainsPerDbc(dbcs)));
      } else {
        destiny::DeviceQuery query;
        query.dbcs = dbcs;
        const auto params = destiny::EvaluateDevice(query);
        ctx.Scalar("table1/" + std::string(row.tag) + "/" +
                       std::to_string(dbcs) + "dbc",
                   params.*(row.field));
        cells.push_back(util::FormatFixed(params.*(row.field), row.digits));
      }
    }
    if (row.field == nullptr) {
      cells.push_back(std::to_string(1024 / 6));
    } else {
      ctx.Scalar("table1/" + std::string(row.tag) + "/6dbc_interp",
                 six.*(row.field));
      cells.push_back(util::FormatFixed(six.*(row.field), row.digits));
    }
    table.AddRow(std::move(cells));
  }
  ctx.PrintTable(table);
  ctx.Print("\n(*) non-anchor configuration, DESTINY-lite interpolation "
            "(not part of Table I).\n");

  // Self-check against the published anchors.
  bool exact = true;
  for (const unsigned dbcs : destiny::kTableOneDbcCounts) {
    destiny::DeviceQuery query;
    query.dbcs = dbcs;
    const auto model = destiny::EvaluateDevice(query);
    const auto& paper = destiny::PaperTableOne(dbcs);
    exact = exact && model.leakage_mw == paper.leakage_mw &&
            model.write_energy_pj == paper.write_energy_pj &&
            model.read_energy_pj == paper.read_energy_pj &&
            model.shift_energy_pj == paper.shift_energy_pj &&
            model.read_latency_ns == paper.read_latency_ns &&
            model.write_latency_ns == paper.write_latency_ns &&
            model.shift_latency_ns == paper.shift_latency_ns &&
            model.area_mm2 == paper.area_mm2;
  }
  ctx.Print("\nanchor check: DESTINY-lite %s Table I at 2/4/8/16 DBCs\n",
            exact ? "exactly reproduces" : "DIVERGES from");
  ctx.RecordCheck("DESTINY-lite reproduces Table I anchors", exact,
                  /*fatal=*/true);
}

}  // namespace

void RegisterTable1DeviceParams(ScenarioRegistry& registry) {
  registry.Register({"table1_device_params",
                     "Table I: memory system parameters from DESTINY-lite",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
