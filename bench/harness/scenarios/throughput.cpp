// throughput: the CI-tracked hot-path throughput trajectory.
//
// Two effort-independent measurements, both pinned by golden checks so a
// throughput regression (or a bit-identity break) fails CI:
//
//  * Mutation scoring (absorbs the old evaluator_speedup binary):
//    reproduces the GA's inner question — "what would this mutation
//    cost?" — on every OffsetStone-lite benchmark. Full-replay ShiftCost
//    vs CostEvaluator Peek* over the SAME re-seeded mutation stream,
//    every score cross-checked for exact equality. Acceptance: geomean
//    speedup >= 5x.
//
//  * End-to-end window service: the online engine's batched
//    Feed(span) -> fused window pricing -> ExecuteBatch pipeline vs a
//    faithful replica of the pre-batching hot path (per-access feed, a
//    separate full ShiftCost replay per window, a freshly allocated
//    request vector per window, a timings-materializing Execute). Both
//    sides serve identical request streams — shift totals and window
//    costs are checked bit-identical. Acceptance: geomean wall ratio
//    >= 3x.
//
// Wall-clock scalars carry "wall" in their names, so golden comparison
// applies the ratio bound instead of the exact/1e-6 policies; the shift
// and cost pins stay tight.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/cost_evaluator.h"
#include "core/cost_model.h"
#include "core/inter_dma.h"
#include "core/intra_heuristics.h"
#include "core/placement.h"
#include "harness/scenarios/scenarios.h"
#include "offsetstone/suite.h"
#include "online/engine.h"
#include "online/phase_detector.h"
#include "rtm/config.h"
#include "rtm/controller.h"
#include "trace/access_sequence.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rtmp::benchtool::scenarios {

namespace {

// ---- shared timing ---------------------------------------------------------

// This scenario measures throughput; its wall-clock reads are the
// measurement, not a determinism leak (results enter the report only
// under wall-named scalars).
// NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
double SecondsSince(std::chrono::steady_clock::time_point start) {
  // NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---- part A: GA mutation scoring (ex evaluator_speedup) --------------------

constexpr std::uint32_t kDbcs = 8;
constexpr int kFullTrials = 400;
constexpr int kIncrementalTrials = 4000;

struct Mutation {
  enum class Kind { kMove, kTranspose, kPermute } kind;
  trace::VariableId v = 0;
  std::uint32_t dbc = 0;
  std::size_t i = 0, j = 0;
  std::vector<trace::VariableId> order;
};

/// Draws one GA-style mutation (weights 10:10:3) against `base`.
Mutation DrawMutation(const core::Placement& base, util::Rng& rng) {
  const double weights[] = {10.0, 10.0, 3.0};
  Mutation m;
  switch (rng.NextWeighted(weights)) {
    case 0: {
      m.kind = Mutation::Kind::kMove;
      m.v = static_cast<trace::VariableId>(
          rng.NextBelow(base.num_variables()));
      m.dbc = static_cast<std::uint32_t>(rng.NextBelow(base.num_dbcs()));
      return m;
    }
    case 1: {
      m.kind = Mutation::Kind::kTranspose;
      std::vector<std::uint32_t> candidates;
      for (std::uint32_t d = 0; d < base.num_dbcs(); ++d) {
        if (base.dbc(d).size() >= 2) candidates.push_back(d);
      }
      if (candidates.empty()) {
        m.kind = Mutation::Kind::kMove;
        m.v = 0;
        m.dbc = 0;
        return m;
      }
      m.dbc = rng.Pick(candidates);
      const std::size_t size = base.dbc(m.dbc).size();
      m.i = static_cast<std::size_t>(rng.NextBelow(size));
      m.j = static_cast<std::size_t>(rng.NextBelow(size));
      return m;
    }
    default: {
      m.kind = Mutation::Kind::kPermute;
      m.dbc = static_cast<std::uint32_t>(rng.NextBelow(base.num_dbcs()));
      m.order = base.dbc(m.dbc);
      rng.Shuffle(m.order);
      return m;
    }
  }
}

std::uint64_t ScoreFull(const trace::AccessSequence& seq,
                        const core::Placement& base, const Mutation& m,
                        const core::CostOptions& cost) {
  core::Placement candidate = base;
  switch (m.kind) {
    case Mutation::Kind::kMove:
      candidate.MoveToEnd(m.v, m.dbc);
      break;
    case Mutation::Kind::kTranspose:
      candidate.Transpose(m.dbc, m.i, m.j);
      break;
    case Mutation::Kind::kPermute:
      candidate.Reorder(m.dbc, m.order);
      break;
  }
  return core::ShiftCost(seq, candidate, cost);
}

std::uint64_t ScoreIncremental(core::CostEvaluator& evaluator,
                               const Mutation& m) {
  switch (m.kind) {
    case Mutation::Kind::kMove:
      return evaluator.PeekMove(m.v, m.dbc);
    case Mutation::Kind::kTranspose:
      return evaluator.PeekTranspose(m.dbc, m.i, m.j);
    case Mutation::Kind::kPermute:
      return evaluator.PeekReorder(m.dbc, m.order);
  }
  return 0;
}

double RunMutationScoring(ScenarioContext& ctx) {
  ctx.Print("-- mutation scoring: full replay vs incremental evaluator "
            "(single port, %u DBCs) --\n\n",
            kDbcs);
  ctx.Print("%-12s %8s %6s %14s %14s %9s\n", "benchmark", "|S|", "vars",
            "full evals/s", "incr evals/s", "speedup");

  std::vector<double> speedups;
  bool all_match = true;
  std::uint64_t sink = 0;
  for (const auto& profile : offsetstone::SuiteProfiles()) {
    const auto benchmark = offsetstone::Generate(profile, 0);
    // Largest sequence of the benchmark: the GA's worst case.
    const trace::AccessSequence* seq = &benchmark.sequences.front();
    for (const auto& candidate : benchmark.sequences) {
      if (candidate.size() > seq->size()) seq = &candidate;
    }
    if (seq->num_variables() < 2 || seq->empty()) continue;

    const core::CostOptions cost;
    const core::Placement base =
        core::DistributeDma(*seq, kDbcs, core::kUnboundedCapacity,
                            {core::IntraHeuristic::kShiftsReduce})
            .placement;

    // -- full replay path --------------------------------------------------
    util::Rng full_rng(0xBEEF);
    // NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
    const auto full_start = std::chrono::steady_clock::now();
    for (int t = 0; t < kFullTrials; ++t) {
      sink += ScoreFull(*seq, base, DrawMutation(base, full_rng), cost);
    }
    const double full_rate = kFullTrials / SecondsSince(full_start);

    // -- incremental path --------------------------------------------------
    core::CostEvaluator evaluator(*seq, cost);
    evaluator.Bind(base);
    util::Rng incr_rng(0xBEEF);
    // NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
    const auto incr_start = std::chrono::steady_clock::now();
    for (int t = 0; t < kIncrementalTrials; ++t) {
      sink += ScoreIncremental(evaluator, DrawMutation(base, incr_rng));
    }
    const double incr_rate = kIncrementalTrials / SecondsSince(incr_start);

    // -- cross-check: every score of a common stream must agree exactly ---
    util::Rng check_rng(0x5EED);
    bool match = true;
    for (int t = 0; t < kFullTrials && match; ++t) {
      const Mutation m = DrawMutation(base, check_rng);
      match = ScoreFull(*seq, base, m, cost) == ScoreIncremental(evaluator, m);
    }
    all_match = all_match && match;

    const double speedup = incr_rate / full_rate;
    speedups.push_back(speedup);
    ctx.Print("%-12s %8zu %6zu %14.0f %14.0f %8.1fx%s\n",
              benchmark.name.c_str(), seq->size(), seq->num_variables(),
              full_rate, incr_rate, speedup,
              match ? "" : "  COST MISMATCH");
    ctx.Scalar("throughput/mutation/" + benchmark.name + "/incr_wall_evals_per_s",
               incr_rate, "evals/s");
  }

  const double geomean = util::GeoMean(speedups);
  ctx.Print("\nmutation scoring geomean speedup: %.1fx (acceptance: >= 5x); "
            "costs %s (sink %llx)\n\n",
            geomean, all_match ? "bit-identical" : "MISMATCHED",
            static_cast<unsigned long long>(sink));
  ctx.Scalar("throughput/mutation_wall_speedup_geomean", geomean, "x");
  // Exact determinism pin: the summed scores of the fixed mutation
  // streams (both paths feed the same sink).
  ctx.Scalar("throughput/mutation_score_sink", static_cast<double>(sink));
  ctx.RecordCheck("mutation scores bit-identical (full == incremental)",
                  all_match, /*fatal=*/true);
  ctx.RecordCheck("mutation scoring geomean >= 5x", geomean >= 5.0);
  return geomean;
}

// ---- part B: end-to-end window service -------------------------------------

constexpr std::size_t kWindowAccesses = 256;
/// Repeats are sized so each timed side serves about this many accesses.
constexpr std::size_t kTargetAccesses = 1'000'000;

const char* const kServeBenchmarks[] = {"fft", "gzip", "jpeg"};

rtm::RtmConfig ServeDevice() {
  rtm::RtmConfig device;
  device.banks = 1;
  device.subarrays_per_bank = 2;
  device.dbcs_per_subarray = 4;  // 8 DBCs total
  return device;
}

struct ServeTotals {
  std::uint64_t placement_cost = 0;
  std::uint64_t shifts = 0;
  std::uint64_t requests = 0;
};

/// Faithful replica of the pre-batching engine hot path, kept as the
/// measured baseline. Per access: one Feed-style append into the rolling
/// window buffer. Per window: the transition summary fed to the (never-
/// firing) detector, a separate full ShiftCost replay to price the
/// window, a freshly allocated request vector, read/write counting, and
/// a timings-materializing Execute() — exactly the work the engine used
/// to do per window on a static configuration.
class BaselineSession {
 public:
  BaselineSession(const trace::AccessSequence& seq,
                  core::Placement placement, const rtm::RtmConfig& device)
      : placement_(std::move(placement)),
        controller_(device, rtm::ControllerConfig{}),
        detector_(online::PhaseDetectorConfig{}) {
    for (trace::VariableId v = 0; v < seq.num_variables(); ++v) {
      (void)win_.AddVariable(std::string(seq.name_of(v)));
    }
  }

  void ServePass(const trace::AccessSequence& seq) {
    for (const trace::Access& access : seq.accesses()) {
      win_.Append(access.variable, access.type);
      if (win_.size() >= kWindowAccesses) FlushWindow();
    }
  }

  void FlushWindow() {
    if (win_.empty()) return;
    (void)detector_.Observe(online::SummarizeTransitions(win_.accesses()));
    totals_.placement_cost += core::ShiftCost(win_, placement_, cost_);
    std::vector<rtm::TimedRequest> requests;
    requests.reserve(win_.size());
    for (const trace::Access& access : win_.accesses()) {
      const core::Slot slot = placement_.SlotOf(access.variable);
      requests.push_back(
          rtm::TimedRequest{0.0, slot.dbc, slot.offset, access.type});
      if (access.type == trace::AccessType::kWrite) {
        ++writes_;
      } else {
        ++reads_;
      }
    }
    (void)controller_.Execute(requests);
    win_.ClearAccesses();
  }

  [[nodiscard]] ServeTotals Totals() {
    FlushWindow();
    totals_.shifts = controller_.stats().shifts;
    totals_.requests = controller_.stats().requests;
    return totals_;
  }

 private:
  core::Placement placement_;
  rtm::RtmController controller_;
  online::PhaseDetector detector_;
  trace::AccessSequence win_;
  core::CostOptions cost_;  // engine default: single port 0
  ServeTotals totals_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// A static-configuration online session (no detector, no refinement):
/// the placement freezes after window 0, so every pass serves the same
/// request stream the baseline replica serves.
class BatchedSession {
 public:
  BatchedSession(const trace::AccessSequence& seq,
                 const rtm::RtmConfig& device)
      : engine_(MakeConfig(), device) {
    for (trace::VariableId v = 0; v < seq.num_variables(); ++v) {
      (void)engine_.RegisterVariable(seq.name_of(v));
    }
  }

  void ServePass(const trace::AccessSequence& seq) {
    engine_.Feed(std::span<const trace::Access>(seq.accesses()));
  }

  [[nodiscard]] online::OnlineResult Finish() { return engine_.Finish(); }

 private:
  static online::OnlineConfig MakeConfig() {
    online::OnlineConfig config;
    config.reseed_strategy = "dma-sr";
    config.window_accesses = kWindowAccesses;
    return config;
  }

  online::OnlineEngine engine_;
};

double RunWindowService(ScenarioContext& ctx) {
  ctx.Print("-- window service: batched Feed(span) vs pre-batching replica "
            "(8 DBCs, %zu-access windows, steady state) --\n\n",
            kWindowAccesses);
  ctx.Print("%-12s %8s %7s %16s %16s %7s\n", "benchmark", "|S|", "windows",
            "baseline acc/s", "batched acc/s", "ratio");

  const rtm::RtmConfig device = ServeDevice();
  std::vector<double> ratios;
  bool identical = true;
  for (const char* name : kServeBenchmarks) {
    const auto profile = offsetstone::FindProfile(name);
    if (!profile) continue;
    const auto benchmark = offsetstone::Generate(*profile, 0);
    const trace::AccessSequence* seq = &benchmark.sequences.front();
    for (const auto& candidate : benchmark.sequences) {
      if (candidate.size() > seq->size()) seq = &candidate;
    }
    if (seq->empty()) continue;

    // Bit-identity (untimed): one full session each way. The engine's
    // placement is static after window 0 (detector off, full variable
    // space registered up front), so the baseline replica serves under
    // the engine's own final placement.
    BatchedSession reference_session(*seq, device);
    reference_session.ServePass(*seq);
    const online::OnlineResult reference = reference_session.Finish();
    BaselineSession baseline_session(*seq, reference.final_placement,
                                     device);
    baseline_session.ServePass(*seq);
    const ServeTotals baseline_ref = baseline_session.Totals();
    const bool match = reference.migration_shifts == 0 &&
                       baseline_ref.placement_cost ==
                           reference.placement_cost &&
                       baseline_ref.shifts == reference.stats.shifts &&
                       baseline_ref.requests == reference.stats.requests;
    identical = identical && match;

    const std::size_t repeats =
        std::max<std::size_t>(1, kTargetAccesses / seq->size());

    // Steady-state throughput: warm sessions (window 0's one-time re-seed
    // already behind them), R passes of the same stream each.
    BaselineSession baseline(*seq, reference.final_placement, device);
    baseline.ServePass(*seq);
    // NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
    const auto base_start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < repeats; ++r) baseline.ServePass(*seq);
    const double base_rate =
        static_cast<double>(repeats * seq->size()) / SecondsSince(base_start);

    BatchedSession batched(*seq, device);
    batched.ServePass(*seq);
    // NOLINTNEXTLINE(rtmlint:determinism-rng): throughput bench timing.
    const auto batch_start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < repeats; ++r) batched.ServePass(*seq);
    const double batch_rate =
        static_cast<double>(repeats * seq->size()) / SecondsSince(batch_start);

    const double ratio = batch_rate / base_rate;
    ratios.push_back(ratio);
    const std::size_t windows =
        (seq->size() + kWindowAccesses - 1) / kWindowAccesses;
    ctx.Print("%-12s %8zu %7zu %16.0f %16.0f %6.1fx%s\n", name, seq->size(),
              windows, base_rate, batch_rate, ratio,
              match ? "" : "  STREAM MISMATCH");
    const std::string prefix = "throughput/serve/" + std::string(name);
    ctx.Scalar(prefix + "/batched_wall_accesses_per_s", batch_rate, "acc/s");
    ctx.Scalar(prefix + "/wall_ratio", ratio, "x");
    // Exact determinism pins for the served stream.
    ctx.Scalar(prefix + "/service_shifts",
               static_cast<double>(reference.stats.shifts));
    ctx.Scalar(prefix + "/window_cost_total",
               static_cast<double>(reference.placement_cost));
  }

  const double geomean = util::GeoMean(ratios);
  ctx.Print("\nwindow service geomean ratio: %.1fx (acceptance: >= 3x); "
            "streams %s\n\n",
            geomean, identical ? "bit-identical" : "MISMATCHED");
  ctx.Scalar("throughput/serve_wall_ratio_geomean", geomean, "x");
  ctx.RecordCheck(
      "window service bit-identical (batched == per-access replica)",
      identical, /*fatal=*/true);
  ctx.RecordCheck("window service geomean >= 3x", geomean >= 3.0);
  return geomean;
}

void Run(ScenarioContext& ctx) {
  ctx.Print("== throughput: hot-path throughput trajectory "
            "(golden-checked in CI) ==\n\n");
  const double mutation = RunMutationScoring(ctx);
  const double serve = RunWindowService(ctx);
  ctx.Print("summary: mutation scoring %.1fx, window service %.1fx\n",
            mutation, serve);
}

}  // namespace

void RegisterThroughput(ScenarioRegistry& registry) {
  registry.Register({"throughput",
                     "hot-path throughput: mutation scoring + window service",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
