// The workload-registry regression scenario: every registered workload —
// suite profiles, generator families, and the synthetic application
// kernels — runs through two constructive strategies at two DBC counts,
// at a reduced workload scale so the full registry stays CI-fast. No
// search strategy is involved, so RTMPLACE_EFFORT cannot skew it; every
// cell is pinned by the golden under bench/golden/, which means a new or
// changed workload (or a placement regression it exposes) fails
// `rtmbench run workloads_smoke --check` immediately.
#include <cmath>
#include <map>

#include "core/strategy.h"
#include "harness/scenarios/scenarios.h"
#include "util/stats.h"
#include "workloads/workload.h"

namespace rtmp::benchtool::scenarios {

namespace {

void Run(ScenarioContext& ctx) {
  using namespace rtmp;

  ctx.Print(
      "== workloads_smoke: every registered workload x {afd-ofu, dma-sr} "
      "(golden-checked in CI) ==\n\n");

  sim::ExperimentOptions options;
  options.dbc_counts = {4, 16};
  options.strategies = {
      {core::InterPolicy::kAfd, core::IntraHeuristic::kOfu},
      {core::InterPolicy::kDma, core::IntraHeuristic::kShiftsReduce},
  };
  // Half-scale workloads: the suite benchmarks contribute a
  // deterministic prefix of their sequences, the synthetic families
  // shrink their lengths — enough to pin every workload's behaviour
  // without re-running the full suite (scenario `smoke` covers that).
  options.workload_scale = 0.5;
  ctx.Configure(options);  // threads, progress (effort unused: no search)

  auto& registry = workloads::WorkloadRegistry::Global();
  const std::vector<std::string> specs = registry.Names();
  const auto suite = sim::LoadWorkloads(specs, options);
  const auto results = sim::RunMatrix(suite, options);
  ctx.AddCells(results);
  const sim::ResultTable table(results);

  // Per-family geomean improvement of dma-sr over afd-ofu: the headline
  // view of where liveliness-aware placement pays off across the
  // workload space.
  std::map<std::string, std::vector<std::string>> by_family;
  for (const std::string& name : specs) {
    by_family[registry.Describe(name)->family].push_back(name);
  }
  util::TextTable out;
  out.SetHeader({"family", "workloads", "4 DBCs", "16 DBCs"});
  out.SetAlignments({util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  for (const auto& [family, names] : by_family) {
    std::vector<std::string> row{family, std::to_string(names.size())};
    for (const unsigned dbcs : options.dbc_counts) {
      const double gain =
          GeoMeanImprovement(table, names, dbcs, options.strategies[1],
                             options.strategies[0]);
      ctx.Scalar("workloads_smoke/dma_sr_over_afd_ofu/" + family + "/" +
                     std::to_string(dbcs) + "dbc",
                 gain, "x");
      row.push_back(util::FormatFixed(gain, 2) + "x");
    }
    out.AddRow(std::move(row));
  }
  ctx.PrintTable(out);
  ctx.Print("(geomean shift improvement of dma-sr over afd-ofu, %zu "
            "workloads total)\n\n",
            specs.size());

  ctx.Check("registry holds the full built-in set (>= 45 workloads)",
            specs.size() >= 45);
  ctx.Check("every workload produced a non-empty benchmark", [&suite] {
    for (const auto& benchmark : suite) {
      if (benchmark.sequences.empty()) return false;
      bool any = false;
      for (const auto& seq : benchmark.sequences) any |= !seq.empty();
      if (!any) return false;
    }
    return true;
  }());
  ctx.Check("every cell simulated some accesses", [&results] {
    for (const auto& cell : results) {
      if (cell.metrics.accesses == 0) return false;
    }
    return true;
  }());
  ctx.Check("placement cost agrees with simulated shifts", [&results] {
    for (const auto& cell : results) {
      if (cell.placement_cost != cell.metrics.shifts) return false;
    }
    return true;
  }());
}

}  // namespace

void RegisterWorkloadsSmoke(ScenarioRegistry& registry) {
  registry.Register({"workloads_smoke",
                     "every registered workload, golden-checked in CI",
                     /*uses_search=*/false, Run});
}

}  // namespace rtmp::benchtool::scenarios
