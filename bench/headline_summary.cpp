// headline_summary — legacy alias of `rtmbench run headline_summary`.
// The scenario body lives in bench/harness/scenarios/headline_summary.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("headline_summary"); }
