// Micro-benchmarks (google-benchmark) backing the paper's SIII-C
// practicality argument: "Practicality in compilers demands fast-executing
// heuristics, like the one we propose." The DMA analysis + distribution
// runs in microseconds even on the suite's largest shapes, the intra
// heuristics in tens of microseconds, while a single GA generation is
// orders of magnitude more expensive — which is why the GA serves as an
// offline baseline only.
#include <benchmark/benchmark.h>

#include "core/cost_model.h"
#include "core/genetic.h"
#include "core/inter_afd.h"
#include "core/inter_dma.h"
#include "core/intra_heuristics.h"
#include "core/random_walk.h"
#include "trace/generators.h"
#include "trace/variable_stats.h"
#include "util/rng.h"

namespace {

using rtmp::core::kUnboundedCapacity;

/// Markov workload of `vars` variables and 8x as many accesses — the
/// control-dominated shape that stresses the heuristics most.
rtmp::trace::AccessSequence Workload(std::int64_t vars) {
  rtmp::util::Rng rng(static_cast<std::uint64_t>(vars) * 977);
  rtmp::trace::MarkovParams params;
  params.num_vars = static_cast<std::size_t>(vars);
  params.length = static_cast<std::size_t>(vars) * 8;
  return GenerateMarkov(params, rng);
}

void BM_VariableStats(benchmark::State& state) {
  const auto seq = Workload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtmp::trace::ComputeVariableStats(seq));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(seq.size()));
}
BENCHMARK(BM_VariableStats)->Arg(64)->Arg(256)->Arg(1024);

void BM_DisjointSelection(benchmark::State& state) {
  const auto seq = Workload(state.range(0));
  const auto stats = rtmp::trace::ComputeVariableStats(seq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtmp::core::SelectDisjointVariables(stats));
  }
}
BENCHMARK(BM_DisjointSelection)->Arg(64)->Arg(256)->Arg(1024);

void BM_AfdOfu(benchmark::State& state) {
  const auto seq = Workload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtmp::core::DistributeAfd(
        seq, 8, kUnboundedCapacity, {rtmp::core::IntraHeuristic::kOfu}));
  }
}
BENCHMARK(BM_AfdOfu)->Arg(64)->Arg(256)->Arg(1024);

void BM_DmaOfu(benchmark::State& state) {
  const auto seq = Workload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtmp::core::DistributeDma(
        seq, 8, kUnboundedCapacity, {rtmp::core::IntraHeuristic::kOfu}));
  }
}
BENCHMARK(BM_DmaOfu)->Arg(64)->Arg(256)->Arg(1024);

void BM_DmaChen(benchmark::State& state) {
  const auto seq = Workload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtmp::core::DistributeDma(
        seq, 8, kUnboundedCapacity, {rtmp::core::IntraHeuristic::kChen}));
  }
}
BENCHMARK(BM_DmaChen)->Arg(64)->Arg(256);

void BM_DmaShiftsReduce(benchmark::State& state) {
  const auto seq = Workload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtmp::core::DistributeDma(
        seq, 8, kUnboundedCapacity,
        {rtmp::core::IntraHeuristic::kShiftsReduce}));
  }
}
BENCHMARK(BM_DmaShiftsReduce)->Arg(64)->Arg(256);

void BM_ShiftCostEvaluation(benchmark::State& state) {
  const auto seq = Workload(state.range(0));
  const auto placement =
      rtmp::core::DistributeAfd(seq, 8, kUnboundedCapacity, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtmp::core::ShiftCost(seq, placement));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(seq.size()));
}
BENCHMARK(BM_ShiftCostEvaluation)->Arg(64)->Arg(256)->Arg(1024);

void BM_GaGeneration(benchmark::State& state) {
  // Cost of ONE mu+lambda generation (mu = lambda = 100, the paper's
  // parameters) including fitness evaluation of the offspring.
  const auto seq = Workload(state.range(0));
  for (auto _ : state) {
    rtmp::core::GaOptions options;
    options.generations = 1;
    options.seed_with_heuristics = false;
    benchmark::DoNotOptimize(
        rtmp::core::RunGa(seq, 8, kUnboundedCapacity, options));
  }
}
BENCHMARK(BM_GaGeneration)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_RandomWalk1k(benchmark::State& state) {
  const auto seq = Workload(state.range(0));
  for (auto _ : state) {
    rtmp::core::RwOptions options;
    options.iterations = 1000;
    benchmark::DoNotOptimize(
        rtmp::core::RunRandomWalk(seq, 8, kUnboundedCapacity, options));
  }
}
BENCHMARK(BM_RandomWalk1k)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
