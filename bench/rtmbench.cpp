// rtmbench — the unified reproduction/benchmark harness CLI.
//
//   rtmbench list                         show every scenario
//   rtmbench run <scenario>... [flags]    run scenarios, write BENCH_*.json
//   rtmbench check <scenario>...          run + compare against goldens
//   rtmbench diff <a.json> <b.json>       diff two result files
//
// `run` flags:
//   --check           compare each report against bench/golden/ and fail
//                     on out-of-tolerance drift
//   --update-golden   write each report to the golden directory
//   --out-dir DIR     where BENCH_<scenario>.json goes (default: .)
//   --golden-dir DIR  golden location (default: <source>/bench/golden,
//                     overridable via RTMBENCH_GOLDEN_DIR)
//   --no-json         skip writing BENCH_<scenario>.json
//   --quiet           suppress the scenario's stdout report
//   --trace-out FILE  write a Chrome trace-event JSON (simulated time)
//                     covering every matrix the scenarios run; open in
//                     Perfetto / chrome://tracing
//
// `run all` expands to every registered scenario. Exit codes: 0 ok,
// 1 failed check/comparison, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/compare.h"
#include "harness/report.h"
#include "harness/scenario.h"
#include "obs/obs.h"
#include "obs/trace_recorder.h"

namespace {

using namespace rtmp;
using namespace rtmp::benchtool;

int Usage() {
  std::fputs(
      "usage:\n"
      "  rtmbench list\n"
      "  rtmbench run <scenario|all>... [--check] [--update-golden]\n"
      "           [--out-dir DIR] [--golden-dir DIR] [--no-json] [--quiet]\n"
      "           [--trace-out FILE]\n"
      "  rtmbench check <scenario|all>... [--golden-dir DIR]\n"
      "  rtmbench diff <golden.json> <current.json>\n"
      "\nscenarios:\n",
      stderr);
  for (const auto& name : ScenarioRegistry::Global().Names()) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    std::fprintf(stderr, "  %-22s %s\n", name.c_str(),
                 scenario->summary.c_str());
  }
  return 2;
}

std::string DefaultGoldenDir() {
  if (const char* dir = std::getenv("RTMBENCH_GOLDEN_DIR");
      dir != nullptr && *dir != '\0') {
    return dir;
  }
#ifdef RTMBENCH_SOURCE_DIR
  return std::string(RTMBENCH_SOURCE_DIR) + "/bench/golden";
#else
  return "bench/golden";
#endif
}

int CmdList() {
  util::TextTable table;
  table.SetHeader({"scenario", "effort-sensitive", "description"});
  table.SetAlignments(
      {util::Align::kLeft, util::Align::kLeft, util::Align::kLeft});
  for (const auto& name : ScenarioRegistry::Global().Names()) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    table.AddRow(
        {name, scenario->uses_search ? "yes" : "no", scenario->summary});
  }
  std::fputs(table.Render().c_str(), stdout);
  return 0;
}

struct RunFlags {
  bool check = false;
  bool update_golden = false;
  bool write_json = true;
  bool quiet = false;
  std::string out_dir = ".";
  std::string golden_dir = DefaultGoldenDir();
  /// Chrome trace-event JSON destination ("" = tracing off). One file
  /// covers the whole invocation; when several scenarios run, their
  /// cell rows share the pid space in run order.
  std::string trace_out;
};

int RunScenarios(const std::vector<std::string>& names,
                 const RunFlags& flags) {
  // Validate every name up front: a typo must abort before any scenario
  // runs (and before --update-golden overwrites anything).
  for (const std::string& name : names) {
    if (ScenarioRegistry::Global().Find(name) == nullptr) {
      std::fprintf(stderr, "rtmbench: unknown scenario '%s'\n", name.c_str());
      return 2;
    }
  }
  int failures = 0;
  obs::TraceRecorder trace;
  obs::ObsConfig obs;
  if (!flags.trace_out.empty()) obs.trace = &trace;
  for (const std::string& name : names) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(name);
    if (!flags.quiet && names.size() > 1) {
      std::printf("### %s\n\n", name.c_str());
    }
    const BenchReport report = RunScenario(*scenario, flags.quiet, obs);
    for (const CheckResult& check : report.checks) {
      if (check.fatal && !check.pass) {
        std::fprintf(stderr, "rtmbench: %s: fatal check failed: %s\n",
                     name.c_str(), check.name.c_str());
        ++failures;
      }
    }

    const std::string json_name = "BENCH_" + name + ".json";
    if (flags.write_json) {
      std::filesystem::create_directories(flags.out_dir);
      const std::string path = flags.out_dir + "/" + json_name;
      report.Save(path);
      std::fprintf(stderr, "rtmbench: wrote %s\n", path.c_str());
    }
    // Check BEFORE updating: with both flags, the comparison runs
    // against the pre-existing golden (updating first would compare the
    // report against itself and silently bless any regression).
    if (flags.check) {
      const std::string path = flags.golden_dir + "/" + json_name;
      bool have_golden = false;
      BenchReport golden;
      try {
        golden = BenchReport::Load(path);
        have_golden = true;
      } catch (const std::exception& error) {
        if (flags.update_golden) {
          std::fprintf(stderr, "rtmbench: %s: no golden yet, creating one\n",
                       name.c_str());
        } else {
          std::fprintf(stderr,
                       "rtmbench: %s: no usable golden (%s); run with "
                       "--update-golden to create one\n",
                       name.c_str(), error.what());
          ++failures;
        }
      }
      if (have_golden) {
        const Comparison comparison = CompareReports(golden, report);
        PrintComparison(stderr, comparison, /*verbose=*/false);
        if (comparison.pass) {
          std::fprintf(stderr,
                       "rtmbench: %s: golden check PASSED (%zu cells, "
                       "%zu scalars, %zu checks)\n",
                       name.c_str(), golden.cells.size(),
                       golden.scalars.size(), golden.checks.size());
        } else {
          std::fprintf(stderr, "rtmbench: %s: golden check FAILED\n",
                       name.c_str());
          ++failures;
        }
      }
    }
    if (flags.update_golden) {
      std::filesystem::create_directories(flags.golden_dir);
      const std::string path = flags.golden_dir + "/" + json_name;
      report.Save(path);
      std::fprintf(stderr, "rtmbench: updated golden %s\n", path.c_str());
    }
    if (!flags.quiet && names.size() > 1) std::printf("\n");
  }
  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out);
    if (!out) {
      std::fprintf(stderr, "rtmbench: cannot write trace to %s\n",
                   flags.trace_out.c_str());
      return 1;
    }
    out << trace.ToJson(/*indent=*/0) << '\n';
    std::fprintf(stderr, "rtmbench: wrote trace %s (%zu events)\n",
                 flags.trace_out.c_str(), trace.size());
  }
  return failures == 0 ? 0 : 1;
}

int CmdDiff(const std::string& golden_path, const std::string& current_path) {
  const BenchReport golden = BenchReport::Load(golden_path);
  const BenchReport current = BenchReport::Load(current_path);
  const Comparison comparison = CompareReports(golden, current);
  if (comparison.structural.empty() && comparison.diffs.empty()) {
    std::printf("identical: %s == %s\n", golden_path.c_str(),
                current_path.c_str());
    return 0;
  }
  PrintComparison(stdout, comparison, /*verbose=*/true);
  return comparison.pass ? 0 : 1;
}

std::vector<std::string> ExpandScenarioNames(
    const std::vector<std::string>& args) {
  std::vector<std::string> names;
  for (const std::string& arg : args) {
    if (arg == "all") {
      for (const auto& name : ScenarioRegistry::Global().Names()) {
        names.push_back(name);
      }
    } else {
      names.push_back(arg);
    }
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return Usage();
    const std::string command = argv[1];

    if (command == "list") return CmdList();

    if (command == "diff") {
      if (argc != 4) return Usage();
      return CmdDiff(argv[2], argv[3]);
    }

    if (command == "run" || command == "check") {
      RunFlags flags;
      if (command == "check") {
        flags.check = true;
        flags.write_json = false;
        flags.quiet = true;
      }
      std::vector<std::string> scenario_args;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check") {
          flags.check = true;
        } else if (arg == "--update-golden") {
          flags.update_golden = true;
        } else if (arg == "--no-json") {
          flags.write_json = false;
        } else if (arg == "--quiet") {
          flags.quiet = true;
        } else if (arg == "--out-dir" || arg == "--golden-dir" ||
                   arg == "--trace-out") {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "rtmbench: %s requires a value\n",
                         arg.c_str());
            return Usage();
          }
          (arg == "--out-dir"
               ? flags.out_dir
               : (arg == "--golden-dir" ? flags.golden_dir
                                        : flags.trace_out)) = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
          std::fprintf(stderr, "rtmbench: unknown flag '%s'\n", arg.c_str());
          return Usage();
        } else {
          scenario_args.push_back(arg);
        }
      }
      if (scenario_args.empty()) return Usage();
      return RunScenarios(ExpandScenarioNames(scenario_args), flags);
    }

    return Usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "rtmbench: error: %s\n", error.what());
    return 1;
  }
}
