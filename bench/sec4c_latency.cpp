// sec4c_latency — legacy alias of `rtmbench run sec4c_latency`.
// The scenario body lives in bench/harness/scenarios/sec4c_latency.cpp; this
// binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("sec4c_latency"); }
