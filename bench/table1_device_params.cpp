// table1_device_params — legacy alias of `rtmbench run table1_device_params`.
// The scenario body lives in bench/harness/scenarios/table1_device_params.cpp;
// this binary keeps the historical name and output working.
#include "harness/scenario.h"

int main() { return rtmp::benchtool::RunLegacyAlias("table1_device_params"); }
