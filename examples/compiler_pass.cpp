// Compiler-integration scenario: a placement pass over trace files.
//
//   $ ./compiler_pass [trace-file]
//
// Mimics how the paper's heuristic would sit inside a compiler backend
// (the practicality argument of SIII-C): consume a memory trace produced
// by profiling/static analysis, pick the layout with the fast DMA
// heuristic, and emit (a) the chosen (DBC, offset) assignment for the
// linker script and (b) a CSV cost report across all strategies. Without
// an argument it materializes a demo trace file first, exercising the
// trace text format end to end.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/cost_model.h"
#include "core/inter_dma.h"
#include "core/strategy_registry.h"
#include "util/stats.h"
#include "rtm/config.h"
#include "sim/simulator.h"
#include "trace/trace_io.h"
#include "util/csv.h"

namespace {

constexpr const char* kDemoTrace =
    "# three-phase kernel with two persistent globals\n"
    "benchmark demo_kernel\n"
    "sequence init\n"
    "gp0! x0! x1! x2! x0 x1 x2 gp1!\n"
    "sequence phase1\n"
    "a0 a1 a0 a1 gp0 a2! a0 a1 a2 a0 gp0 a1 a2\n"
    "sequence phase2\n"
    "b0 b1 b0 b1 gp1 b2! b0 b1 b2 b0 gp1 b1 b2\n"
    "sequence drain\n"
    "gp0 gp1 y0! y1! y0 y1 gp0 gp1\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace rtmp;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "demo_kernel.trace";
    std::ofstream out(path);
    out << kDemoTrace;
    std::printf("No trace given; wrote demo trace to %s\n", path.c_str());
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  const trace::TraceFile file = trace::ReadTrace(in);
  std::printf("Benchmark '%s': %zu sequences\n\n", file.benchmark.c_str(),
              file.sequences.size());

  const rtm::RtmConfig config = rtm::RtmConfig::Paper(4);
  core::StrategyOptions options;
  core::ScaleSearchEffort(options, 0.1);

  // Per-sequence placement with the compiler-speed heuristic.
  for (std::size_t s = 0; s < file.sequences.size(); ++s) {
    const auto& seq = file.sequences[s];
    if (seq.num_variables() == 0) continue;
    const auto dma =
        core::DistributeDma(seq, config.total_dbcs(), config.domains_per_dbc,
                            {core::IntraHeuristic::kShiftsReduce});
    const char* name = s < file.sequence_names.size() &&
                               !file.sequence_names[s].empty()
                           ? file.sequence_names[s].c_str()
                           : "(unnamed)";
    std::printf("sequence %s: %zu vars, %zu accesses, %llu shifts\n", name,
                seq.num_variables(), seq.size(),
                static_cast<unsigned long long>(
                    core::ShiftCost(seq, dma.placement)));
    for (std::uint32_t d = 0; d < dma.placement.num_dbcs(); ++d) {
      if (dma.placement.dbc(d).empty()) continue;
      std::printf("  DBC%u @", d);
      for (std::size_t offset = 0; offset < dma.placement.dbc(d).size();
           ++offset) {
        std::printf(" %zu:%s", offset,
                    seq.name_of(dma.placement.dbc(d)[offset]).c_str());
      }
      std::printf("\n");
    }
  }

  // CSV cost report over all strategies (stdout, ready for plotting).
  std::printf("\nCSV report (shift cost per sequence and strategy):\n");
  util::CsvWriter csv(std::cout);
  csv.WriteHeader({"sequence", "strategy", "shifts", "runtime_ns",
                   "energy_pj"});
  for (std::size_t s = 0; s < file.sequences.size(); ++s) {
    const auto& seq = file.sequences[s];
    if (seq.num_variables() == 0) continue;
    for (const char* name : {"afd-ofu", "dma-ofu", "dma-chen", "dma-sr"}) {
      const core::Placement placement =
          core::StrategyRegistry::Global()
              .Find(name)
              ->Run({&seq, config.total_dbcs(), config.domains_per_dbc,
                     options, /*compute_cost=*/false})
              .placement;
      const sim::SimulationResult r = sim::Simulate(seq, placement, config);
      csv.WriteRow({s < file.sequence_names.size() &&
                            !file.sequence_names[s].empty()
                        ? file.sequence_names[s]
                        : "seq" + std::to_string(s),
                    name, std::to_string(r.stats.shifts),
                    util::FormatFixed(r.stats.runtime_ns, 3),
                    util::FormatFixed(r.energy.total_pj(), 3)});
    }
  }
  return 0;
}
