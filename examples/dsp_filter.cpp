// DSP scenario: FIR filtering from an RTM scratchpad — and when
// liveliness-aware placement does (and does not) pay off.
//
//   $ ./dsp_filter
//
// Part 1 replays a steady-state FIR loop: coefficients, delay line and
// accumulator stay live for the whole run, so there are NO disjoint
// lifespans for the paper's DMA heuristic to exploit — frequency-based
// AFD and the GA are the right tools there.
//
// Part 2 restructures the same filter as a block pipeline (load block ->
// filter -> emit block), the way streaming DSP firmware is actually
// written: per-block buffers are fresh variables with disjoint lifespans
// across blocks while the coefficients persist. That phase structure is
// exactly what DMA's liveliness analysis extracts, and the ranking flips.
#include <cstdio>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/strategy_registry.h"
#include "rtm/config.h"
#include "sim/simulator.h"
#include "trace/access_sequence.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using rtmp::trace::AccessSequence;
using rtmp::trace::AccessType;
using rtmp::trace::VariableId;

/// Steady-state FIR: one delay line, processed sample by sample.
AccessSequence SteadyFirTrace(std::size_t taps, std::size_t samples) {
  AccessSequence seq;
  std::vector<VariableId> coeff(taps);
  std::vector<VariableId> delay(taps);
  for (std::size_t k = 0; k < taps; ++k) {
    coeff[k] = seq.AddVariable(rtmp::util::Concat({"c", std::to_string(k)}));
  }
  for (std::size_t k = 0; k < taps; ++k) {
    delay[k] = seq.AddVariable(rtmp::util::Concat({"z", std::to_string(k)}));
  }
  const auto acc = seq.AddVariable("acc");
  const auto io = seq.AddVariable("io");
  for (std::size_t n = 0; n < samples; ++n) {
    seq.Append(io);
    seq.Append(delay[0], AccessType::kWrite);
    seq.Append(acc, AccessType::kWrite);
    for (std::size_t k = 0; k < taps; ++k) {
      seq.Append(coeff[k]);
      seq.Append(delay[k]);
      seq.Append(acc, AccessType::kWrite);
    }
    for (std::size_t k = taps - 1; k > 0; --k) {
      seq.Append(delay[k - 1]);
      seq.Append(delay[k], AccessType::kWrite);
    }
    seq.Append(acc);
    seq.Append(io, AccessType::kWrite);
  }
  return seq;
}

/// Block pipeline: each block gets fresh input/output buffers (disjoint
/// lifespans across blocks); the coefficient table persists.
AccessSequence BlockFirTrace(std::size_t taps, std::size_t blocks,
                             std::size_t block_len) {
  AccessSequence seq;
  std::vector<VariableId> coeff(taps);
  for (std::size_t k = 0; k < taps; ++k) {
    coeff[k] = seq.AddVariable(rtmp::util::Concat({"c", std::to_string(k)}));
  }
  const auto acc = seq.AddVariable("acc");
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::string tag = rtmp::util::Concat({"b", std::to_string(b), "_"});
    std::vector<VariableId> in(block_len);
    std::vector<VariableId> out(block_len);
    for (std::size_t i = 0; i < block_len; ++i) {
      in[i] =
          seq.AddVariable(rtmp::util::Concat({tag, "in", std::to_string(i)}));
      out[i] = seq.AddVariable(
          rtmp::util::Concat({tag, "out", std::to_string(i)}));
    }
    // Load phase: DMA-in the block.
    for (std::size_t i = 0; i < block_len; ++i) {
      seq.Append(in[i], AccessType::kWrite);
    }
    // Filter phase: out[i] = sum_k c[k] * in[i-k] (clamped window).
    for (std::size_t i = 0; i < block_len; ++i) {
      seq.Append(acc, AccessType::kWrite);
      for (std::size_t k = 0; k < taps && k <= i; ++k) {
        seq.Append(coeff[k]);
        seq.Append(in[i - k]);
      }
      seq.Append(acc);
      seq.Append(out[i], AccessType::kWrite);
    }
    // Emit phase: stream the block out.
    for (std::size_t i = 0; i < block_len; ++i) seq.Append(out[i]);
  }
  return seq;
}

void Compare(const char* title, const AccessSequence& seq) {
  using namespace rtmp;
  std::printf("%s: %zu accesses over %zu variables\n", title, seq.size(),
              seq.num_variables());
  core::StrategyOptions options;
  core::ScaleSearchEffort(options, 0.2);
  util::TextTable table;
  table.SetHeader({"DBCs", "strategy", "shifts", "runtime [us]",
                   "energy [nJ]", "vs afd-ofu"});
  table.SetAlignments({util::Align::kRight, util::Align::kLeft,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  for (const unsigned dbcs : {4u, 8u}) {
    const rtm::RtmConfig config = rtm::RtmConfig::Paper(dbcs);
    double baseline_shifts = 0.0;
    for (const char* name : {"afd-ofu", "dma-ofu", "dma-sr", "ga"}) {
      const core::Placement placement =
          core::StrategyRegistry::Global()
              .Find(name)
              ->Run({&seq, config.total_dbcs(), config.domains_per_dbc,
                     options, /*compute_cost=*/false})
              .placement;
      const sim::SimulationResult r = sim::Simulate(seq, placement, config);
      const auto shifts = static_cast<double>(r.stats.shifts);
      if (std::string_view(name) == "afd-ofu") baseline_shifts = shifts;
      const std::string factor =
          shifts == 0.0 ? "-"
                        : util::FormatFixed(baseline_shifts / shifts, 2) + "x";
      table.AddRow({std::to_string(dbcs), name,
                    std::to_string(r.stats.shifts),
                    util::FormatFixed(r.stats.runtime_ns / 1000.0, 2),
                    util::FormatFixed(r.energy.total_pj() / 1000.0, 2),
                    factor});
    }
    table.AddRule();
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Part 1: steady-state FIR (every variable lives forever) "
              "==\n\n");
  Compare("steady FIR (16 taps, 48 samples)", SteadyFirTrace(16, 48));
  std::printf(
      "No disjoint lifespans exist, so DMA cannot separate anything and the\n"
      "frequency-driven baselines (and the GA) lead — the regime the paper\n"
      "calls out where liveliness information adds nothing.\n\n");

  std::printf("== Part 2: block-pipeline FIR (fresh buffers per block) "
              "==\n\n");
  Compare("block FIR (12 taps, 8 blocks of 24)", BlockFirTrace(12, 8, 24));
  std::printf(
      "Per-block buffers die at block boundaries: DMA steers them into\n"
      "dedicated DBCs in access order and keeps the persistent coefficient\n"
      "table separate — the phase structure behind the paper's gains. Note\n"
      "that the convolution's backward window (in[i-k]) still needs the SR\n"
      "intra heuristic in the leftover DBCs; plain DMA-OFU is not enough.\n");
  return 0;
}
