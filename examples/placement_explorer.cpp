// placement_explorer — a small command-line driver over the whole library.
//
//   $ ./placement_explorer                          # demo + help
//   $ ./placement_explorer suite gsm                # inspect a workload
//   $ ./placement_explorer export gsm gsm.trace     # write it as a trace
//   $ ./placement_explorer export gsm gsm.rtb      # ... or binary format
//   $ ./placement_explorer place kv-churn dma-sr 4
//   $ ./placement_explorer place file.trace dma-sr 4
//   $ ./placement_explorer compare stencil 8 --json out.json
//   $ ./placement_explorer strategies --json strategies.json
//   $ ./placement_explorer workloads
//   $ ./placement_explorer online "phased(gemm-tiled,stream-scan)"
//       online-ewma-dma-sr 4       (one command line)
//   $ ./placement_explorer serve gsm serve-2s-ewma-dma-sr 8
//   $ ./placement_explorer cache kv-churn cache-shift-aware-c50 4
//
// This is what a user integrating rtmplace into their own flow would
// script against: pick a workload (any registered name, a
// phased(a,b,...) splice, or an external trace file, text or binary),
// pick a strategy — or an online policy, served through the adaptive
// engine with migration charged; or a serve policy, every sequence a
// tenant of one multi-tenant device; or a cache policy, the device a
// bounded resident set with misses filled from a backing store — and
// inspect the resulting layout and costs.
#include <cstdio>
#include <fstream>
#include <string>

#include "cache/cache_cell.h"
#include "cache/cache_policy.h"
#include "cache/engine.h"
#include "core/cost_model.h"
#include "core/inter_dma.h"
#include "core/strategy_registry.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace_recorder.h"
#include "offsetstone/suite.h"
#include "online/online_cell.h"
#include "online/policy.h"
#include "rtm/config.h"
#include "serve/serve_cell.h"
#include "serve/serve_policy.h"
#include "serve/service.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/liveliness.h"
#include "trace/trace_io.h"
#include "trace/trace_stream.h"
#include "trace/variable_stats.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/phased.h"
#include "workloads/workload.h"

namespace {

using namespace rtmp;

int Usage() {
  std::printf(
      "usage:\n"
      "  placement_explorer suite <workload>             inspect a "
      "workload's sequences\n"
      "  placement_explorer export <workload> <file>     write it in trace "
      "format (.rtb = binary)\n"
      "  placement_explorer place <workload> <strategy> <dbcs>\n"
      "  placement_explorer compare <workload> <dbcs> [--json <file>]\n"
      "  placement_explorer strategies [--json <file>]\n"
      "  placement_explorer workloads [--json <file>]\n"
      "  placement_explorer online <workload> <policy> <dbcs> [--json "
      "<file>] [--trace-out <file>]\n"
      "  placement_explorer serve <workload> <serve-policy> <dbcs> [--json "
      "<file>] [--trace-out <file>]\n"
      "                                                  each sequence a "
      "tenant\n"
      "  placement_explorer cache <workload> <cache-policy> <dbcs> [--json "
      "<file>] [--trace-out <file>]\n"
      "                                                  the device as a "
      "cache tier\n"
      "\nonline/serve/cache: --json writes a metrics snapshot (counters + "
      "latency\nhistograms), --trace-out a Chrome trace-event JSON in "
      "simulated time\n(open in Perfetto / chrome://tracing).\n"
      "\n<workload> is a registered workload name, a phased(a,b,...) "
      "splice of\nregistered workloads, or a trace-file path (text or "
      "binary).\n"
      "\nstrategies (from the registry):");
  for (const auto& name : core::RegisteredStrategyNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nworkloads (from the registry):");
  for (const auto& name : workloads::WorkloadRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nonline policies (from the registry):");
  for (const auto& name : online::OnlinePolicyRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nserve policies (from the registry):");
  for (const auto& name : serve::ServePolicyRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\ncache policies (from the registry):");
  for (const auto& name : cache::CachePolicyRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 2;
}

/// One row of a registry listing: name, one registry-specific attribute,
/// and the one-line summary.
struct RegistryRow {
  std::string name;
  std::string attribute;
  std::string summary;
};

/// Shared body of the `strategies` and `workloads` subcommands: renders
/// the rows as a table on stdout and, when `json_path` is non-empty,
/// writes the same listing as JSON (schema shared with `compare --json`).
int ListRegistry(const char* registry, const char* attribute_label,
                 const char* attribute_key,
                 const std::vector<RegistryRow>& rows,
                 const std::string& json_path) {
  util::TextTable table;
  table.SetHeader({"name", attribute_label, "description"});
  table.SetAlignments(
      {util::Align::kLeft, util::Align::kLeft, util::Align::kLeft});
  for (const RegistryRow& row : rows) {
    table.AddRow({row.name, row.attribute, row.summary});
  }
  std::fputs(table.Render().c_str(), stdout);
  if (json_path.empty()) return 0;

  std::string json;
  util::JsonWriter writer(&json);
  writer.BeginObject();
  writer.Member("schema_version", 1);
  writer.Member("tool", "placement_explorer");
  writer.Member("registry", registry);
  writer.Key("entries");
  writer.BeginArray();
  for (const RegistryRow& row : rows) {
    writer.BeginObject();
    writer.Member("name", row.name);
    writer.Member(attribute_key, row.attribute);
    writer.Member("summary", row.summary);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

int CmdStrategies(const std::string& json_path) {
  auto& registry = core::StrategyRegistry::Global();
  std::vector<RegistryRow> rows;
  for (const auto& name : registry.Names()) {
    const auto info = registry.Describe(name);
    rows.push_back({name, info->search_based ? "yes" : "no", info->summary});
  }
  return ListRegistry("strategies", "search-based", "search_based", rows,
                      json_path);
}

int CmdWorkloads(const std::string& json_path) {
  auto& registry = workloads::WorkloadRegistry::Global();
  std::vector<RegistryRow> rows;
  for (const auto& name : registry.Names()) {
    const auto info = registry.Describe(name);
    rows.push_back({name, info->family, info->summary});
  }
  // The splice combinator is spec syntax, not a registry entry — list it
  // alongside so it is discoverable where workloads are discovered.
  rows.push_back({"phased(a,b,...)", "combinator",
                  "splice any workloads above into one phase-change "
                  "workload (shared positional variable space)"});
  return ListRegistry("workloads", "family", "family", rows, json_path);
}

/// Resolves a workload spec (registry name or trace-file path) and
/// materializes it at default seed/scale.
offsetstone::Benchmark LoadBenchmark(const std::string& spec) {
  const auto workload = workloads::ResolveWorkload(spec);
  if (!workload) {
    throw std::runtime_error(
        "'" + spec +
        "' is neither a registered workload (try `placement_explorer "
        "workloads`) nor a trace file");
  }
  return workload->Generate({});
}

void DescribeSequence(const trace::AccessSequence& seq, const char* name) {
  const auto stats = trace::ComputeVariableStats(seq);
  const auto disjoint = core::SelectDisjointVariables(stats);
  std::uint64_t disjoint_traffic = 0;
  for (const auto v : disjoint) disjoint_traffic += stats[v].frequency;
  std::printf(
      "  %-12s %5zu vars %6zu accesses %5zu writes  disjoint: %zu vars "
      "(%4.1f%% traffic), %llu disjoint pairs\n",
      name, seq.num_variables(), seq.size(), seq.CountWrites(),
      disjoint.size(),
      seq.empty() ? 0.0
                  : 100.0 * static_cast<double>(disjoint_traffic) /
                        static_cast<double>(seq.size()),
      static_cast<unsigned long long>(trace::CountDisjointPairs(stats)));
}

int CmdSuite(const std::string& spec) {
  const auto benchmark = LoadBenchmark(spec);
  std::printf("benchmark %s (%zu sequences):\n", benchmark.name.c_str(),
              benchmark.sequences.size());
  for (std::size_t i = 0; i < benchmark.sequences.size(); ++i) {
    DescribeSequence(benchmark.sequences[i],
                     ("seq" + std::to_string(i)).c_str());
  }
  return 0;
}

int CmdExport(const std::string& spec, const std::string& path) {
  trace::TraceFile file;
  const bool generated = workloads::WorkloadRegistry::Global().Contains(spec) ||
                         workloads::ParsePhasedSpec(spec).has_value();
  if (!generated) {
    // Trace-file spec: read the file directly so format conversion
    // (text <-> binary) preserves the original sequence names, which
    // the Benchmark type does not carry.
    file = trace::LoadTraceFile(spec);
  } else {
    const auto benchmark = LoadBenchmark(spec);
    file.benchmark = benchmark.name;
    for (std::size_t i = 0; i < benchmark.sequences.size(); ++i) {
      file.sequence_names.push_back("seq" + std::to_string(i));
      file.sequences.push_back(benchmark.sequences[i]);
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  if (path.ends_with(".rtb")) {
    WriteBinaryTrace(out, file);
  } else {
    WriteTrace(out, file);
  }
  std::printf("wrote %zu sequences to %s\n", file.sequences.size(),
              path.c_str());
  return 0;
}

int CmdPlace(const std::string& spec, const std::string& strategy_name,
             unsigned dbcs) {
  const auto strategy = core::StrategyRegistry::Global().Find(strategy_name);
  if (!strategy) {
    std::fprintf(stderr,
                 "unknown strategy '%s' (try `placement_explorer "
                 "strategies`)\n",
                 strategy_name.c_str());
    return 1;
  }
  const auto benchmark = LoadBenchmark(spec);
  rtm::RtmConfig config = rtm::RtmConfig::Paper(dbcs);
  core::StrategyOptions options;
  core::ScaleSearchEffort(options, 0.1);
  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    const auto& seq = benchmark.sequences[s];
    if (seq.num_variables() == 0) continue;
    rtm::RtmConfig cfg = config;
    if (seq.num_variables() > cfg.word_capacity()) {
      cfg.domains_per_dbc =
          static_cast<unsigned>((seq.num_variables() + dbcs - 1) / dbcs);
    }
    const auto placed = core::RunTimed(
        *strategy, {&seq, cfg.total_dbcs(), cfg.domains_per_dbc, options,
                    /*compute_cost=*/false});
    const auto result = sim::Simulate(seq, placed.placement, cfg);
    std::printf("sequence %zu: %llu shifts, %.1f ns, %.1f pJ (placed in "
                "%.2f ms)\n",
                s, static_cast<unsigned long long>(result.stats.shifts),
                result.stats.runtime_ns, result.energy.total_pj(),
                placed.wall_ms);
    for (std::uint32_t d = 0; d < placed.placement.num_dbcs(); ++d) {
      if (placed.placement.dbc(d).empty()) continue;
      std::printf("  DBC%u:", d);
      for (const auto v : placed.placement.dbc(d)) {
        std::printf(" %s", seq.name_of(v).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

int CmdCompare(const std::string& spec, unsigned dbcs,
               const std::string& json_path) {
  const auto benchmark = LoadBenchmark(spec);
  core::StrategyOptions options;
  core::ScaleSearchEffort(options, 0.1);
  util::TextTable table;
  table.SetHeader({"strategy", "shifts", "runtime [us]", "energy [nJ]"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  std::string json;
  util::JsonWriter writer(&json);
  writer.BeginObject();
  writer.Member("schema_version", 1);
  writer.Member("tool", "placement_explorer");
  writer.Member("workload", spec);
  writer.Member("benchmark", benchmark.name);
  writer.Member("dbcs", dbcs);
  writer.Key("strategies");
  writer.BeginArray();
  for (const char* name : {"afd-ofu", "afd-sr", "dma-ofu", "dma-chen",
                           "dma-sr", "dma-ge", "dma2-sr", "ga", "rw"}) {
    const auto strategy = core::StrategyRegistry::Global().Find(name);
    std::uint64_t shifts = 0;
    double runtime = 0.0;
    double energy = 0.0;
    for (const auto& seq : benchmark.sequences) {
      if (seq.num_variables() == 0) continue;
      rtm::RtmConfig cfg = rtm::RtmConfig::Paper(dbcs);
      if (seq.num_variables() > cfg.word_capacity()) {
        cfg.domains_per_dbc =
            static_cast<unsigned>((seq.num_variables() + dbcs - 1) / dbcs);
      }
      const auto placed =
          strategy->Run({&seq, cfg.total_dbcs(), cfg.domains_per_dbc, options,
                         /*compute_cost=*/false});
      const auto result = sim::Simulate(seq, placed.placement, cfg);
      shifts += result.stats.shifts;
      runtime += result.stats.runtime_ns;
      energy += result.energy.total_pj();
    }
    writer.BeginObject();
    writer.Member("strategy", name);
    writer.Member("shifts", shifts);
    writer.Member("runtime_ns", runtime);
    writer.Member("energy_pj", energy);
    writer.EndObject();
    table.AddRow({name, std::to_string(shifts),
                  util::FormatFixed(runtime / 1e3, 2),
                  util::FormatFixed(energy / 1e3, 2)});
  }
  writer.EndArray();
  writer.EndObject();
  std::fputs(table.Render().c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

/// Observability sinks for the online/serve/cache commands: live only
/// when the matching flag was given, so instrumentation stays disabled
/// (null sinks) on a plain run.
struct ExplorerObs {
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  std::string json_path;
  std::string trace_path;

  [[nodiscard]] obs::ObsConfig Config() {
    obs::ObsConfig config;
    if (!json_path.empty()) config.metrics = &metrics;
    if (!trace_path.empty()) config.trace = &trace;
    return config;
  }

  /// Writes whichever outputs were requested; returns 0, or 1 on an
  /// unwritable path.
  [[nodiscard]] int Write() const {
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      out << metrics.ToJson() << "\n";
      std::printf("wrote metrics %s\n", json_path.c_str());
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
      out << trace.ToJson(/*indent=*/0) << "\n";
      std::printf("wrote trace %s (%zu events)\n", trace_path.c_str(),
                  trace.size());
    }
    return 0;
  }
};

int CmdOnline(const std::string& spec, const std::string& policy_name,
              unsigned dbcs, ExplorerObs& obs) {
  const auto policy = online::OnlinePolicyRegistry::Global().Find(policy_name);
  if (!policy) {
    std::fprintf(stderr,
                 "unknown online policy '%s' (the usage footer lists the "
                 "registered ones)\n",
                 policy_name.c_str());
    return 1;
  }
  const auto benchmark = LoadBenchmark(spec);
  const auto& info = policy->Describe();
  std::printf("online %s on %s, %u DBCs (re-seed %s, detector %s)\n\n",
              info.name.c_str(), benchmark.name.c_str(), dbcs,
              info.reseed_strategy.c_str(), info.detector.c_str());

  sim::ExperimentOptions options;
  options.search_effort = sim::SearchEffortFromEnv(0.1);
  options.obs = obs.Config();
  std::uint64_t total_shifts = 0;
  std::uint64_t total_migration_shifts = 0;
  std::size_t total_migrations = 0;
  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    const auto& seq = benchmark.sequences[s];
    if (seq.num_variables() == 0) continue;
    const rtm::RtmConfig config = sim::CellConfig(dbcs, seq.num_variables());
    const online::OnlineConfig online_config = online::CellOnlineConfig(
        *policy, config, options, benchmark.name, s, dbcs);
    const online::OnlineResult result =
        online::RunOnline(seq, online_config, config);

    std::printf("sequence %zu: %zu windows, %zu migrations (%zu vars), "
                "%llu shifts = %llu service + %llu migration, %.1f ns\n",
                s, result.windows.size(), result.migrations,
                result.migrated_vars,
                static_cast<unsigned long long>(result.amortized_shifts),
                static_cast<unsigned long long>(result.service_shifts),
                static_cast<unsigned long long>(result.migration_shifts),
                result.stats.makespan_ns);
    util::TextTable table;
    table.SetHeader({"window", "accesses", "drift", "phase", "migrated",
                     "mig shifts", "service shifts"});
    table.SetAlignments({util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kLeft,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
      const online::WindowRecord& record = result.windows[w];
      table.AddRow({std::to_string(w), std::to_string(record.accesses),
                    util::FormatFixed(record.drift, 3),
                    record.phase_change ? "yes" : "",
                    std::to_string(record.migrated_vars),
                    std::to_string(record.migration_shifts),
                    std::to_string(record.service_shifts)});
    }
    std::fputs(table.Render().c_str(), stdout);
    total_shifts += result.amortized_shifts;
    total_migration_shifts += result.migration_shifts;
    total_migrations += result.migrations;
  }
  std::printf("\ntotal: %llu shifts (%llu from %zu migrations)\n",
              static_cast<unsigned long long>(total_shifts),
              static_cast<unsigned long long>(total_migration_shifts),
              total_migrations);
  return obs.Write();
}

int CmdServe(const std::string& spec, const std::string& policy_name,
             unsigned dbcs, ExplorerObs& obs) {
  const auto policy = serve::ServePolicyRegistry::Global().Find(policy_name);
  if (!policy) {
    std::fprintf(stderr,
                 "unknown serve policy '%s' (the usage footer lists the "
                 "registered ones)\n",
                 policy_name.c_str());
    return 1;
  }
  const auto benchmark = LoadBenchmark(spec);
  const auto& info = policy->Describe();
  std::printf(
      "serve %s on %s, %u DBCs (%u shard(s), engine %s, budget %s)\n\n",
      info.name.c_str(), benchmark.name.c_str(), dbcs, info.shards,
      info.online_policy.c_str(), info.budget.c_str());

  sim::ExperimentOptions options;
  options.search_effort = sim::SearchEffortFromEnv(0.1);
  options.obs = obs.Config();
  std::size_t total_vars = 0;
  for (const auto& seq : benchmark.sequences) {
    total_vars += seq.num_variables();
  }
  if (total_vars == 0) {
    std::fprintf(stderr, "workload has no variables to serve\n");
    return 1;
  }
  const rtm::RtmConfig config = sim::CellConfig(dbcs, total_vars);
  serve::PlacementService service(
      serve::CellServeConfig(*policy, config, options, benchmark.name, dbcs),
      config);
  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    if (benchmark.sequences[s].num_variables() == 0) continue;
    (void)service.OpenSession("t" + std::to_string(s),
                              benchmark.sequences[s]);
  }
  const serve::ServeResult result = service.Run();

  util::TextTable tenants;
  tenants.SetHeader({"tenant", "shard", "accesses", "windows", "shifts",
                     "migrations", "denials", "mean win lat [ns]",
                     "p50 [ns]", "p99 [ns]"});
  tenants.SetAlignments({util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
  for (const serve::TenantStats& tenant : result.tenants) {
    tenants.AddRow(
        {tenant.name, std::to_string(tenant.shard),
         std::to_string(tenant.accesses), std::to_string(tenant.windows),
         std::to_string(tenant.service_shifts + tenant.migration_shifts),
         std::to_string(tenant.migrations),
         std::to_string(tenant.budget_denials),
         util::FormatFixed(tenant.mean_window_latency_ns(), 1),
         std::to_string(tenant.latency_hist.Quantile(0.5)),
         std::to_string(tenant.latency_hist.Quantile(0.99))});
  }
  std::fputs(tenants.Render().c_str(), stdout);

  util::TextTable shards;
  shards.SetHeader(
      {"shard", "DBCs", "tenants", "shifts", "migrations", "makespan [ns]"});
  shards.SetAlignments({util::Align::kRight, util::Align::kLeft,
                        util::Align::kRight, util::Align::kRight,
                        util::Align::kRight, util::Align::kRight});
  for (const serve::ShardStats& shard : result.shards) {
    shards.AddRow(
        {std::to_string(shard.index),
         std::to_string(shard.first_dbc) + ".." +
             std::to_string(shard.first_dbc + shard.num_dbcs - 1),
         std::to_string(shard.tenants.size()),
         std::to_string(shard.result.amortized_shifts),
         std::to_string(shard.result.migrations),
         util::FormatFixed(shard.result.stats.makespan_ns, 1)});
  }
  std::printf("\n");
  std::fputs(shards.Render().c_str(), stdout);

  std::printf(
      "\ntotal: %llu shifts (%llu service + %llu migration), makespan "
      "%.1f ns\nfairness %.4f, budget %llu/%llu spent, %zu denials\n",
      static_cast<unsigned long long>(result.total_shifts),
      static_cast<unsigned long long>(result.service_shifts),
      static_cast<unsigned long long>(result.migration_shifts),
      result.makespan_ns, result.fairness,
      static_cast<unsigned long long>(result.budget_spent),
      static_cast<unsigned long long>(result.budget_granted),
      result.budget_denials);
  std::printf(
      "exposed window latency (device): p50 %llu ns, p99 %llu ns over "
      "%llu turns\n",
      static_cast<unsigned long long>(result.latency_hist.Quantile(0.5)),
      static_cast<unsigned long long>(result.latency_hist.Quantile(0.99)),
      static_cast<unsigned long long>(result.latency_hist.total()));
  return obs.Write();
}

int CmdCache(const std::string& spec, const std::string& policy_name,
             unsigned dbcs, ExplorerObs& obs) {
  const auto policy = cache::CachePolicyRegistry::Global().Find(policy_name);
  if (!policy) {
    std::fprintf(stderr,
                 "unknown cache policy '%s' (the usage footer lists the "
                 "registered ones)\n",
                 policy_name.c_str());
    return 1;
  }
  const auto benchmark = LoadBenchmark(spec);
  const auto& info = policy->Describe();
  std::printf(
      "cache %s on %s, %u DBCs (eviction %s, capacity %.0f%% of the "
      "working set)\n\n",
      info.name.c_str(), benchmark.name.c_str(), dbcs, info.eviction.c_str(),
      100.0 * info.capacity_ratio);

  sim::ExperimentOptions options;
  options.search_effort = sim::SearchEffortFromEnv(0.1);
  options.obs = obs.Config();
  cache::CacheStats totals;
  std::uint64_t total_shifts = 0;
  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    const auto& seq = benchmark.sequences[s];
    if (seq.num_variables() == 0) continue;
    const std::size_t capacity =
        cache::ResolveCapacity(policy->MakeConfig(), seq.num_variables());
    const rtm::RtmConfig device = cache::DeviceForCapacity(dbcs, capacity);
    cache::CacheConfig config = cache::CellCacheConfig(
        *policy, device, options, benchmark.name, s, dbcs);
    config.capacity_slots = capacity;
    const cache::CacheResult result = cache::RunCache(seq, config, device);

    const cache::CacheStats& c = result.cache;
    const double hit_rate =
        c.accesses == 0 ? 0.0
                        : static_cast<double>(c.hits) /
                              static_cast<double>(c.accesses);
    std::printf(
        "sequence %zu: %zu vars in %zu frames, %llu accesses, %.1f%% hits\n"
        "  %llu misses -> %llu fills + %llu writebacks (%llu fill shifts, "
        "%.1f ns backing)\n"
        "  device: %llu shifts = %llu service + %llu migration + %llu fill, "
        "%.1f ns\n",
        s, seq.num_variables(), capacity,
        static_cast<unsigned long long>(c.accesses), 100.0 * hit_rate,
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.fills),
        static_cast<unsigned long long>(c.writebacks),
        static_cast<unsigned long long>(c.fill_shifts), c.backing_ns,
        static_cast<unsigned long long>(result.online.stats.shifts),
        static_cast<unsigned long long>(result.online.service_shifts),
        static_cast<unsigned long long>(result.online.migration_shifts),
        static_cast<unsigned long long>(c.fill_shifts),
        result.online.stats.makespan_ns + c.backing_ns);
    totals.accesses += c.accesses;
    totals.hits += c.hits;
    totals.misses += c.misses;
    totals.fills += c.fills;
    totals.writebacks += c.writebacks;
    totals.fill_shifts += c.fill_shifts;
    totals.backing_ns += c.backing_ns;
    total_shifts += result.online.stats.shifts;
  }
  std::printf(
      "\ntotal: %llu shifts, %llu/%llu hits, %llu fills, %llu writebacks, "
      "%.1f ns backing-store time\n",
      static_cast<unsigned long long>(total_shifts),
      static_cast<unsigned long long>(totals.hits),
      static_cast<unsigned long long>(totals.accesses),
      static_cast<unsigned long long>(totals.fills),
      static_cast<unsigned long long>(totals.writebacks), totals.backing_ns);
  return obs.Write();
}

/// Parses trailing `[--json <file>]` (and, when `trace_path` is
/// non-null, `[--trace-out <file>]`); returns false (after printing the
/// offender) on anything else.
bool ParseOutputFlags(int argc, char** argv, int first, std::string* json_path,
                      std::string* trace_path = nullptr) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      *json_path = argv[++i];
    } else if (trace_path != nullptr && arg == "--trace-out" &&
               i + 1 < argc) {
      *trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::string(argv[1]) == "suite") {
      return CmdSuite(argv[2]);
    }
    if (argc >= 4 && std::string(argv[1]) == "export") {
      return CmdExport(argv[2], argv[3]);
    }
    if (argc >= 5 && std::string(argv[1]) == "place") {
      return CmdPlace(argv[2], argv[3],
                      static_cast<unsigned>(std::stoul(argv[4])));
    }
    if (argc >= 4 && std::string(argv[1]) == "compare") {
      std::string json_path;
      if (!ParseOutputFlags(argc, argv, 4, &json_path)) return Usage();
      return CmdCompare(argv[2], static_cast<unsigned>(std::stoul(argv[3])),
                        json_path);
    }
    if (argc >= 5 && std::string(argv[1]) == "online") {
      ExplorerObs obs;
      if (!ParseOutputFlags(argc, argv, 5, &obs.json_path, &obs.trace_path)) {
        return Usage();
      }
      return CmdOnline(argv[2], argv[3],
                       static_cast<unsigned>(std::stoul(argv[4])), obs);
    }
    if (argc >= 5 && std::string(argv[1]) == "serve") {
      ExplorerObs obs;
      if (!ParseOutputFlags(argc, argv, 5, &obs.json_path, &obs.trace_path)) {
        return Usage();
      }
      return CmdServe(argv[2], argv[3],
                      static_cast<unsigned>(std::stoul(argv[4])), obs);
    }
    if (argc >= 5 && std::string(argv[1]) == "cache") {
      ExplorerObs obs;
      if (!ParseOutputFlags(argc, argv, 5, &obs.json_path, &obs.trace_path)) {
        return Usage();
      }
      return CmdCache(argv[2], argv[3],
                      static_cast<unsigned>(std::stoul(argv[4])), obs);
    }
    if (argc >= 2 && std::string(argv[1]) == "strategies") {
      std::string json_path;
      if (!ParseOutputFlags(argc, argv, 2, &json_path)) return Usage();
      return CmdStrategies(json_path);
    }
    if (argc >= 2 && std::string(argv[1]) == "workloads") {
      std::string json_path;
      if (!ParseOutputFlags(argc, argv, 2, &json_path)) return Usage();
      return CmdWorkloads(json_path);
    }
    if (argc == 1) {
      // Demo: inspect one benchmark so running without arguments shows
      // something useful, then print usage.
      std::printf("demo: suite dct\n");
      (void)CmdSuite("dct");
      std::printf("\n");
      (void)Usage();
      return 0;  // demo mode is a success
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return Usage();
}
