// placement_explorer — a small command-line driver over the whole library.
//
//   $ ./placement_explorer                          # demo + help
//   $ ./placement_explorer suite gsm                # inspect a suite entry
//   $ ./placement_explorer export gsm gsm.trace     # write it as a trace
//   $ ./placement_explorer place file.trace dma-sr 4
//   $ ./placement_explorer compare file.trace 8
//
// This is what a user integrating rtmplace into their own flow would
// script against: generate or load traces, pick a strategy, inspect the
// resulting layout and costs.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/cost_model.h"
#include "core/inter_dma.h"
#include "core/strategy_registry.h"
#include "offsetstone/suite.h"
#include "rtm/config.h"
#include "sim/simulator.h"
#include "trace/liveliness.h"
#include "trace/trace_io.h"
#include "trace/variable_stats.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace rtmp;

int Usage() {
  std::printf(
      "usage:\n"
      "  placement_explorer suite <benchmark>            inspect a "
      "generated suite benchmark\n"
      "  placement_explorer export <benchmark> <file>    write it in trace "
      "format\n"
      "  placement_explorer place <trace> <strategy> <dbcs>\n"
      "  placement_explorer compare <trace> <dbcs> [--json <file>]\n"
      "  placement_explorer strategies\n"
      "\nstrategies (from the registry):");
  for (const auto& name : core::RegisteredStrategyNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nsuite benchmarks:");
  for (const auto& profile : offsetstone::SuiteProfiles()) {
    std::printf(" %s", profile.name.c_str());
  }
  std::printf("\n");
  return 2;
}

/// `strategies` subcommand: one line per registered strategy, straight
/// from the registry metadata.
int CmdStrategies() {
  auto& registry = core::StrategyRegistry::Global();
  util::TextTable table;
  table.SetHeader({"name", "search-based", "description"});
  table.SetAlignments(
      {util::Align::kLeft, util::Align::kLeft, util::Align::kLeft});
  for (const auto& name : registry.Names()) {
    const auto info = registry.Describe(name);
    table.AddRow({name, info->search_based ? "yes" : "no", info->summary});
  }
  std::fputs(table.Render().c_str(), stdout);
  return 0;
}

trace::TraceFile LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return trace::ReadTrace(in);
}

void DescribeSequence(const trace::AccessSequence& seq, const char* name) {
  const auto stats = trace::ComputeVariableStats(seq);
  const auto disjoint = core::SelectDisjointVariables(stats);
  std::uint64_t disjoint_traffic = 0;
  for (const auto v : disjoint) disjoint_traffic += stats[v].frequency;
  std::printf(
      "  %-12s %5zu vars %6zu accesses %5zu writes  disjoint: %zu vars "
      "(%4.1f%% traffic), %llu disjoint pairs\n",
      name, seq.num_variables(), seq.size(), seq.CountWrites(),
      disjoint.size(),
      seq.empty() ? 0.0
                  : 100.0 * static_cast<double>(disjoint_traffic) /
                        static_cast<double>(seq.size()),
      static_cast<unsigned long long>(trace::CountDisjointPairs(stats)));
}

int CmdSuite(const std::string& name) {
  const auto profile = offsetstone::FindProfile(name);
  if (!profile) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
  }
  const auto benchmark = offsetstone::Generate(*profile);
  std::printf("benchmark %s (%zu sequences):\n", benchmark.name.c_str(),
              benchmark.sequences.size());
  for (std::size_t i = 0; i < benchmark.sequences.size(); ++i) {
    DescribeSequence(benchmark.sequences[i],
                     ("seq" + std::to_string(i)).c_str());
  }
  return 0;
}

int CmdExport(const std::string& name, const std::string& path) {
  const auto profile = offsetstone::FindProfile(name);
  if (!profile) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
  }
  const auto benchmark = offsetstone::Generate(*profile);
  trace::TraceFile file;
  file.benchmark = benchmark.name;
  for (std::size_t i = 0; i < benchmark.sequences.size(); ++i) {
    file.sequence_names.push_back("seq" + std::to_string(i));
    file.sequences.push_back(benchmark.sequences[i]);
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  WriteTrace(out, file);
  std::printf("wrote %zu sequences to %s\n", file.sequences.size(),
              path.c_str());
  return 0;
}

int CmdPlace(const std::string& path, const std::string& strategy_name,
             unsigned dbcs) {
  const auto strategy = core::StrategyRegistry::Global().Find(strategy_name);
  if (!strategy) {
    std::fprintf(stderr,
                 "unknown strategy '%s' (try `placement_explorer "
                 "strategies`)\n",
                 strategy_name.c_str());
    return 1;
  }
  const auto file = LoadTrace(path);
  rtm::RtmConfig config = rtm::RtmConfig::Paper(dbcs);
  core::StrategyOptions options;
  core::ScaleSearchEffort(options, 0.1);
  for (std::size_t s = 0; s < file.sequences.size(); ++s) {
    const auto& seq = file.sequences[s];
    if (seq.num_variables() == 0) continue;
    rtm::RtmConfig cfg = config;
    if (seq.num_variables() > cfg.word_capacity()) {
      cfg.domains_per_dbc =
          static_cast<unsigned>((seq.num_variables() + dbcs - 1) / dbcs);
    }
    const auto placed = core::RunTimed(
        *strategy, {&seq, cfg.total_dbcs(), cfg.domains_per_dbc, options,
                    /*compute_cost=*/false});
    const auto result = sim::Simulate(seq, placed.placement, cfg);
    std::printf("sequence %zu: %llu shifts, %.1f ns, %.1f pJ (placed in "
                "%.2f ms)\n",
                s, static_cast<unsigned long long>(result.stats.shifts),
                result.stats.runtime_ns, result.energy.total_pj(),
                placed.wall_ms);
    for (std::uint32_t d = 0; d < placed.placement.num_dbcs(); ++d) {
      if (placed.placement.dbc(d).empty()) continue;
      std::printf("  DBC%u:", d);
      for (const auto v : placed.placement.dbc(d)) {
        std::printf(" %s", seq.name_of(v).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

int CmdCompare(const std::string& path, unsigned dbcs,
               const std::string& json_path) {
  const auto file = LoadTrace(path);
  core::StrategyOptions options;
  core::ScaleSearchEffort(options, 0.1);
  util::TextTable table;
  table.SetHeader({"strategy", "shifts", "runtime [us]", "energy [nJ]"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  std::string json;
  util::JsonWriter writer(&json);
  writer.BeginObject();
  writer.Member("schema_version", 1);
  writer.Member("tool", "placement_explorer");
  writer.Member("trace", path);
  writer.Member("benchmark", file.benchmark);
  writer.Member("dbcs", dbcs);
  writer.Key("strategies");
  writer.BeginArray();
  for (const char* name : {"afd-ofu", "afd-sr", "dma-ofu", "dma-chen",
                           "dma-sr", "dma-ge", "dma2-sr", "ga", "rw"}) {
    const auto strategy = core::StrategyRegistry::Global().Find(name);
    std::uint64_t shifts = 0;
    double runtime = 0.0;
    double energy = 0.0;
    for (const auto& seq : file.sequences) {
      if (seq.num_variables() == 0) continue;
      rtm::RtmConfig cfg = rtm::RtmConfig::Paper(dbcs);
      if (seq.num_variables() > cfg.word_capacity()) {
        cfg.domains_per_dbc =
            static_cast<unsigned>((seq.num_variables() + dbcs - 1) / dbcs);
      }
      const auto placed =
          strategy->Run({&seq, cfg.total_dbcs(), cfg.domains_per_dbc, options,
                         /*compute_cost=*/false});
      const auto result = sim::Simulate(seq, placed.placement, cfg);
      shifts += result.stats.shifts;
      runtime += result.stats.runtime_ns;
      energy += result.energy.total_pj();
    }
    writer.BeginObject();
    writer.Member("strategy", name);
    writer.Member("shifts", shifts);
    writer.Member("runtime_ns", runtime);
    writer.Member("energy_pj", energy);
    writer.EndObject();
    table.AddRow({name, std::to_string(shifts),
                  util::FormatFixed(runtime / 1e3, 2),
                  util::FormatFixed(energy / 1e3, 2)});
  }
  writer.EndArray();
  writer.EndObject();
  std::fputs(table.Render().c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::string(argv[1]) == "suite") {
      return CmdSuite(argv[2]);
    }
    if (argc >= 4 && std::string(argv[1]) == "export") {
      return CmdExport(argv[2], argv[3]);
    }
    if (argc >= 5 && std::string(argv[1]) == "place") {
      return CmdPlace(argv[2], argv[3],
                      static_cast<unsigned>(std::stoul(argv[4])));
    }
    if (argc >= 4 && std::string(argv[1]) == "compare") {
      std::string json_path;
      for (int i = 4; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
          json_path = argv[++i];
        } else {
          std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
          return Usage();
        }
      }
      return CmdCompare(argv[2], static_cast<unsigned>(std::stoul(argv[3])),
                        json_path);
    }
    if (argc >= 2 && std::string(argv[1]) == "strategies") {
      return CmdStrategies();
    }
    if (argc == 1) {
      // Demo: inspect one benchmark so running without arguments shows
      // something useful, then print usage.
      std::printf("demo: suite dct\n");
      (void)CmdSuite("dct");
      std::printf("\n");
      (void)Usage();
      return 0;  // demo mode is a success
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return Usage();
}
