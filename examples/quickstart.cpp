// Quickstart: place a small program trace into a racetrack memory and
// compare the paper's strategies.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~80 lines: build an access
// sequence, run AFD/DMA/GA placements, evaluate shift costs analytically,
// then replay the best placement on the simulated 4 KiB RTM device and
// read latency + energy.
#include <cstdio>

#include "core/cost_model.h"
#include "core/inter_dma.h"
#include "core/strategy_registry.h"
#include "rtm/config.h"
#include "sim/simulator.h"
#include "trace/access_sequence.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace rtmp;

  // 1. A memory trace: the paper's Fig. 3 example sequence. Variables are
  //    registered up front; accesses reference them in program order.
  trace::AccessSequence seq;
  for (char c = 'a'; c <= 'i'; ++c) seq.AddVariable(std::string(1, c));
  for (const char c : std::string_view("ababcacaddaiefefgeghgihi")) {
    seq.Append(*seq.FindVariable(std::string_view(&c, 1)));
  }
  std::printf("Trace: %zu accesses over %zu variables\n\n", seq.size(),
              seq.num_variables());

  // 2. An RTM: the paper's 4 KiB part with 2 DBCs (512 domains each).
  const rtm::RtmConfig config = rtm::RtmConfig::Paper(2);

  // 3. Run every strategy of the paper's evaluation (plus extensions),
  //    resolved by name from the strategy registry. Each Run() returns the
  //    placement together with its analytic shift cost and wall time.
  auto& registry = core::StrategyRegistry::Global();
  core::StrategyOptions options;  // paper-scale GA/RW effort is fine here
  util::TextTable table;
  table.SetHeader({"strategy", "shifts", "runtime [ns]", "energy [pJ]"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  for (const char* name :
       {"afd-ofu", "dma-ofu", "dma-chen", "dma-sr", "dma2-sr", "ga", "rw"}) {
    const core::PlacementResult placed = registry.Find(name)->Run(
        {&seq, config.total_dbcs(), config.domains_per_dbc, options});

    // 4. The analytic cost (placed.cost) and the full device simulation
    //    agree on shifts; the simulation adds latency and the energy
    //    breakdown.
    const sim::SimulationResult result =
        sim::Simulate(seq, placed.placement, config);
    table.AddRow({name, std::to_string(result.stats.shifts),
                  util::FormatFixed(result.stats.runtime_ns, 2),
                  util::FormatFixed(result.energy.total_pj(), 2)});
  }
  std::fputs(table.Render().c_str(), stdout);

  // 5. Inspect one placement in detail.
  const auto dma = core::DistributeDma(seq, config.total_dbcs(),
                                       config.domains_per_dbc,
                                       {core::IntraHeuristic::kShiftsReduce});
  std::printf("\nDMA-SR layout (disjoint variables get DBC 0..%u):\n",
              dma.disjoint_dbc_count - 1);
  for (std::uint32_t d = 0; d < dma.placement.num_dbcs(); ++d) {
    std::printf("  DBC%u:", d);
    for (const auto v : dma.placement.dbc(d)) {
      std::printf(" %s", seq.name_of(v).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference for this trace: AFD layout = 39 shifts,\n"
              "sequence-aware layout = 11 shifts (3.54x, Fig. 3).\n");
  return 0;
}
