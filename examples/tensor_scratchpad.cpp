// Tensor-contraction scenario: a tiled matrix multiply streaming its
// operands through an RTM scratchpad.
//
//   $ ./tensor_scratchpad
//
// The paper's related work (Khan et al., LCTES'19) reports large wins from
// shift-aware data placement for tensor contractions on RTM scratchpads.
// This example rebuilds that workload shape: C[i][j] += A[i][k] * B[k][j]
// over tiles small enough to live in the scratchpad, with each scalar tile
// element a placement-managed variable. Phases (tiles) have disjoint
// lifespans — exactly what DMA separates from persistent accumulators.
#include <cstdio>
#include <string>

#include "core/cost_model.h"
#include "core/inter_dma.h"
#include "core/strategy_registry.h"
#include "util/stats.h"
#include "util/strings.h"
#include "rtm/config.h"
#include "sim/simulator.h"
#include "trace/access_sequence.h"
#include "util/table.h"

namespace {

/// Trace of a tiled matmul: for each of `tiles` (k-)tiles, stream a fresh
/// A-tile and B-tile (disjoint lifespans across tiles) against persistent
/// C accumulators.
rtmp::trace::AccessSequence MatmulTrace(std::size_t n, std::size_t tiles) {
  using rtmp::trace::AccessType;
  rtmp::trace::AccessSequence seq;
  // Persistent accumulators C[i][j].
  std::vector<rtmp::trace::VariableId> c(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      c[i * n + j] = seq.AddVariable(rtmp::util::Concat(
          {"C", std::to_string(i), "_", std::to_string(j)}));
    }
  }
  for (std::size_t t = 0; t < tiles; ++t) {
    // Per-tile operands: new variables each tile -> disjoint lifespans.
    std::vector<rtmp::trace::VariableId> a(n * n);
    std::vector<rtmp::trace::VariableId> b(n * n);
    const std::string tag = rtmp::util::Concat({"t", std::to_string(t), "_"});
    for (std::size_t i = 0; i < n * n; ++i) {
      a[i] = seq.AddVariable(rtmp::util::Concat({"A", tag, std::to_string(i)}));
      b[i] = seq.AddVariable(rtmp::util::Concat({"B", tag, std::to_string(i)}));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          seq.Append(a[i * n + k]);
          seq.Append(b[k * n + j]);
          seq.Append(c[i * n + j], AccessType::kWrite);
        }
      }
    }
  }
  return seq;
}

}  // namespace

int main() {
  using namespace rtmp;

  constexpr std::size_t kTile = 4;   // 4x4 tiles
  constexpr std::size_t kTiles = 6;  // six k-tiles
  const trace::AccessSequence seq = MatmulTrace(kTile, kTiles);
  std::printf("Tiled matmul: %zux%zu tiles x %zu -> %zu accesses over %zu"
              " variables\n\n",
              kTile, kTile, kTiles, seq.size(), seq.num_variables());

  const rtm::RtmConfig config = rtm::RtmConfig::Paper(4);

  // What does the liveliness analysis see? Per-tile operands are disjoint
  // across tiles; the C accumulators span everything.
  const auto dma =
      core::DistributeDma(seq, config.total_dbcs(), config.domains_per_dbc,
                          {core::IntraHeuristic::kShiftsReduce});
  std::printf("DMA found %zu disjoint-lifespan variables -> %u dedicated"
              " DBC(s)\n\n",
              dma.disjoint.size(), dma.disjoint_dbc_count);

  core::StrategyOptions options;
  core::ScaleSearchEffort(options, 0.1);
  util::TextTable table;
  table.SetHeader({"strategy", "shifts", "shifts/access", "runtime [us]",
                   "energy [nJ]"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});
  for (const char* name :
       {"afd-ofu", "dma-ofu", "dma-chen", "dma-sr", "dma2-sr", "rw"}) {
    const core::Placement placement =
        core::StrategyRegistry::Global()
            .Find(name)
            ->Run({&seq, config.total_dbcs(), config.domains_per_dbc, options,
                   /*compute_cost=*/false})
            .placement;
    const sim::SimulationResult r = sim::Simulate(seq, placement, config);
    table.AddRow(
        {name, std::to_string(r.stats.shifts),
         util::FormatFixed(static_cast<double>(r.stats.shifts) /
                               static_cast<double>(r.stats.accesses()),
                           3),
         util::FormatFixed(r.stats.runtime_ns / 1000.0, 2),
         util::FormatFixed(r.energy.total_pj() / 1000.0, 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nWithin a tile the A/B operands interleave heavily, so the greedy\n"
      "disjoint-set selection only captures a slice of each tile; the win\n"
      "comes from SR's clustering on top of the disjoint separation.\n"
      "dma2-sr (multi-set extension, paper SVI future work) only pays off\n"
      "when each extracted set carries real traffic — compare the bench\n"
      "ablation_dma for workloads where it does.\n");
  return 0;
}
