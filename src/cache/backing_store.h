// The modeled memory tier behind the RTM cache (hybrid-memory mode).
//
// In the capacity-constrained mode (cache/engine.h) the racetrack device
// holds only a bounded resident set; a miss pulls the word up from this
// slower backing store (a fill) and a dirty eviction pushes the stale
// copy back down (a writeback). The device side of that traffic — the
// read sweep that drains victims and the write sweep that lands incoming
// words — is real controller work and is charged there; THIS model
// accounts for the far side of the transfer: the latency the backing
// tier adds to the end-to-end runtime and the energy it burns per moved
// word.
//
// The model is deliberately flat (fixed per-word charges, no banking or
// queueing): the reproduction's subject is the racetrack tier, and the
// backing store only needs to be expensive enough that eviction-policy
// quality shows up in the totals. The defaults approximate a DRAM-class
// tier a few times slower than the device's word access.
#pragma once

#include <cstdint>

namespace rtmp::cache {

/// Per-word charges of the backing tier.
struct BackingStoreConfig {
  double fill_ns = 50.0;       ///< backing read latency per filled word
  double writeback_ns = 50.0;  ///< backing write latency per written-back word
  double fill_pj = 15.0;       ///< backing read energy per filled word
  double writeback_pj = 15.0;  ///< backing write energy per written-back word
};

/// Accumulates the backing-store side of the cache traffic. Time and
/// energy are derived from the counts on demand, so the accumulator
/// stays two integers.
class BackingStoreModel {
 public:
  explicit BackingStoreModel(BackingStoreConfig config) noexcept
      : config_(config) {}

  void RecordFill() noexcept { ++fills_; }
  void RecordWriteback() noexcept { ++writebacks_; }

  [[nodiscard]] std::uint64_t fills() const noexcept { return fills_; }
  [[nodiscard]] std::uint64_t writebacks() const noexcept {
    return writebacks_;
  }

  /// Total transfer time spent in the backing tier. Reported separately
  /// from the device makespan (the device timeline stays pure); cache
  /// cells fold it into their runtime as a serial penalty.
  [[nodiscard]] double busy_ns() const noexcept {
    return static_cast<double>(fills_) * config_.fill_ns +
           static_cast<double>(writebacks_) * config_.writeback_ns;
  }

  /// Total energy burned in the backing tier.
  [[nodiscard]] double energy_pj() const noexcept {
    return static_cast<double>(fills_) * config_.fill_pj +
           static_cast<double>(writebacks_) * config_.writeback_pj;
  }

 private:
  BackingStoreConfig config_{};
  std::uint64_t fills_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace rtmp::cache
