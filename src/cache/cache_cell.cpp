#include "cache/cache_cell.h"

#include <stdexcept>
#include <string>

#include "core/strategy.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rtmp::cache {

rtm::RtmConfig DeviceForCapacity(unsigned dbcs, std::size_t capacity) {
  return sim::CellConfig(dbcs, capacity);
}

sim::SimulationResult ToSimulationResult(const CacheResult& result,
                                         const rtm::RtmConfig& config) {
  sim::SimulationResult sim_result;
  // Each writeback reads the device once, each fill writes it once (the
  // sweeps executed in the pre-serve hook); the wrapped engine's tallies
  // do not include them, the controller's shift total does.
  sim_result.stats.reads = result.online.reads + result.cache.writebacks;
  sim_result.stats.writes = result.online.writes + result.cache.fills;
  sim_result.stats.shifts = result.online.stats.shifts;
  sim_result.stats.runtime_ns =
      result.online.stats.makespan_ns + result.cache.backing_ns;
  sim_result.energy = result.online.energy;
  // Backing transfers land in the read/write term; leakage stays the
  // controller's makespan-derived figure (the backing tier's standby
  // power is out of scope — documented simplification).
  sim_result.energy.read_write_pj += result.cache.backing_pj;
  sim_result.area_mm2 = config.params.area_mm2;
  return sim_result;
}

CacheConfig CellCacheConfig(const CachePolicy& policy,
                            const rtm::RtmConfig& config,
                            const sim::ExperimentOptions& options,
                            std::string_view benchmark_name,
                            std::size_t sequence_index, unsigned dbcs) {
  CacheConfig cache = policy.MakeConfig();
  cache.engine.strategy_options.cost.initial_alignment =
      config.initial_alignment;
  core::ScaleSearchEffort(cache.engine.strategy_options,
                          options.search_effort);
  // Same derivation as sim::RunCell and online::CellOnlineConfig: a
  // c100 cell's window-0 re-seed draws the exact seed its uncached
  // online twin draws.
  const std::uint64_t seed =
      util::HashString(benchmark_name) ^
      (options.seed + sequence_index * 0x9E3779B9ULL + dbcs);
  cache.engine.strategy_options.ga.seed = seed;
  cache.engine.strategy_options.rw.seed = seed;
  cache.eviction_seed = seed;
  // Observability rides along on the wrapped engine config; within a
  // cell, tid tells sequences apart.
  cache.engine.obs = options.obs;
  cache.engine.obs.tid = static_cast<std::uint32_t>(sequence_index);
  return cache;
}

void AccumulateCacheSequence(const trace::AccessSequence& seq,
                             std::size_t sequence_index, unsigned dbcs,
                             const CachePolicy& policy,
                             const sim::ExperimentOptions& options,
                             std::string_view benchmark_name,
                             sim::RunResult& run) {
  if (seq.num_variables() == 0) return;
  const std::size_t capacity =
      ResolveCapacity(policy.MakeConfig(), seq.num_variables());
  const rtm::RtmConfig config = DeviceForCapacity(dbcs, capacity);
  CacheConfig cache = CellCacheConfig(policy, config, options, benchmark_name,
                                      sequence_index, dbcs);
  cache.capacity_slots = capacity;
  const CacheResult result = RunCache(seq, cache, config);
  run.placement_cost += result.online.placement_cost;
  run.placement_wall_ms += result.online.placement_wall_ms;
  run.search_evaluations += result.online.evaluations;
  run.metrics.Accumulate(ToSimulationResult(result, config));
}

sim::RunResult RunCacheCell(const offsetstone::Benchmark& benchmark,
                            unsigned dbcs, std::string_view policy_name,
                            const sim::ExperimentOptions& options) {
  const auto policy = CachePolicyRegistry::Global().Find(policy_name);
  if (!policy) {
    throw std::invalid_argument("RunCacheCell: unregistered cache policy '" +
                                std::string(policy_name) + "'");
  }

  sim::RunResult run;
  run.benchmark = benchmark.name;
  run.dbcs = dbcs;
  run.strategy_name = util::ToLower(policy_name);

  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    AccumulateCacheSequence(benchmark.sequences[s], s, dbcs, *policy, options,
                            benchmark.name, run);
  }
  return run;
}

}  // namespace rtmp::cache
