// Cache cells of the evaluation matrix.
//
// RunCacheCell is the hybrid-memory counterpart of sim::RunCell and
// online::RunOnlineCell: one (benchmark, dbc count, cache policy) cell,
// every sequence served by its own CacheEngine session. The returned
// sim::RunResult carries the controller's view — shifts, accesses,
// runtime and energy INCLUDE migration AND eviction/fill traffic plus
// the backing store's latency/energy — so cache cells compare
// apples-to-apples with static and online cells in the same report,
// golden and ResultTable.
//
// Device sizing is the one place cache cells deliberately differ: the
// device is sized for the CAPACITY (the resident frame pool), not the
// variable count — that is the whole point of the hybrid mode. A
// capacity-ratio-1.0 cell therefore gets the exact device its uncached
// online twin gets, which is what makes the c100 oracle equality exact.
//
// sim::RunCell dispatches here for any strategy name that resolves in
// the cache-policy registry.
#pragma once

#include <string_view>

#include "cache/cache_policy.h"
#include "cache/engine.h"
#include "offsetstone/suite.h"
#include "sim/experiment.h"

namespace rtmp::cache {

/// Runs one cache cell. Throws std::invalid_argument when `policy_name`
/// is not in CachePolicyRegistry::Global(). Seeding and effort follow
/// sim::RunCell exactly (per-sequence seeds derived from benchmark name,
/// sequence index and DBC count), so cache cells are deterministic and
/// thread-placement independent — and a "cache-<e>-c100" cell is
/// bit-identical to the "online-fixed-dma-sr" cell on every exact
/// counter.
[[nodiscard]] sim::RunResult RunCacheCell(
    const offsetstone::Benchmark& benchmark, unsigned dbcs,
    std::string_view policy_name, const sim::ExperimentOptions& options);

/// Accumulates one sequence into `run` (the per-sequence body of
/// RunCacheCell); exposed for the streaming trace-cell path, which
/// delivers sequences one at a time instead of through a materialized
/// benchmark. `sequence_index` must count DELIVERED sequences including
/// empty ones — RunCacheCell's seed derivation does.
void AccumulateCacheSequence(const trace::AccessSequence& seq,
                             std::size_t sequence_index, unsigned dbcs,
                             const CachePolicy& policy,
                             const sim::ExperimentOptions& options,
                             std::string_view benchmark_name,
                             sim::RunResult& run);

/// The cell's device: sized for `capacity` resident frames (not the
/// variable count) via sim::CellConfig — the hybrid mode's device-sizing
/// policy, shared by materialized and streamed cells.
[[nodiscard]] rtm::RtmConfig DeviceForCapacity(unsigned dbcs,
                                               std::size_t capacity);

/// Aggregate of one CacheResult in sim terms (the piece RunCacheCell
/// accumulates per sequence); exposed for scenarios that run the engine
/// directly and want matching metrics. Writebacks count as device reads
/// and fills as device writes (each transfer touches the device once on
/// its way down/up); the backing store's busy time is a serial penalty
/// on the runtime and its transfer energy lands in the read/write term.
[[nodiscard]] sim::SimulationResult ToSimulationResult(
    const CacheResult& result, const rtm::RtmConfig& config);

/// The CacheConfig an experiment cell hands the engine: the policy's
/// recipe with the experiment's cost options, search effort and seed
/// stamped in (seed derivation identical to sim::RunCell's; the same
/// seed feeds randomized eviction). capacity_slots is left for the
/// caller to resolve against the sequence's variable count.
[[nodiscard]] CacheConfig CellCacheConfig(
    const CachePolicy& policy, const rtm::RtmConfig& config,
    const sim::ExperimentOptions& options, std::string_view benchmark_name,
    std::size_t sequence_index, unsigned dbcs);

}  // namespace rtmp::cache
