#include "cache/cache_policy.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

#include "core/registry_namespace.h"
#include "core/strategy_registry.h"
#include "util/strings.h"

namespace rtmp::cache {

namespace {

class FixedCachePolicy final : public CachePolicy {
 public:
  FixedCachePolicy(CachePolicyInfo info, CacheConfig config)
      : info_(std::move(info)), config_(std::move(config)) {}

  [[nodiscard]] const CachePolicyInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] CacheConfig MakeConfig() const override { return config_; }

 private:
  CachePolicyInfo info_;
  CacheConfig config_;
};

/// The engine recipe every built-in wraps: online-fixed-dma-sr (256-
/// access windows, re-seed weighed at every boundary via dma-sr). Kept
/// in lock-step with RegisterBuiltinOnlinePolicies so the c100 cells
/// stay bit-identical to that online cell.
online::OnlineConfig BuiltinEngineRecipe() {
  online::OnlineConfig config;
  config.reseed_strategy = "dma-sr";
  config.window_accesses = 256;
  config.detector.kind = online::DetectorKind::kFixedWindow;
  config.detector.period = 1;
  return config;
}

void RegisterCapacityFamily(CachePolicyRegistry& registry,
                            const std::string& eviction, int percent) {
  CacheConfig config;
  config.eviction = eviction;
  config.capacity_ratio = static_cast<double>(percent) / 100.0;
  config.engine = BuiltinEngineRecipe();
  const std::string name = eviction + "-c" + std::to_string(percent);
  registry.Register(
      name, [info = CachePolicyInfo{
                 name,
                 eviction + " eviction over a resident set of " +
                     std::to_string(percent) +
                     "% of the working set, hits served by the "
                     "online-fixed-dma-sr engine recipe",
                 eviction, config.capacity_ratio},
             config] { return MakeFixedCachePolicy(info, config); });
}

}  // namespace

std::shared_ptr<const CachePolicy> MakeFixedCachePolicy(CachePolicyInfo info,
                                                        CacheConfig config) {
  return std::make_shared<const FixedCachePolicy>(std::move(info),
                                                  std::move(config));
}

CachePolicyRegistry& CachePolicyRegistry::Global() {
  static CachePolicyRegistry* registry = [] {
    // Leaked: outlives CachePolicyRegistrar uses in static destructors.
    // NOLINTNEXTLINE(rtmlint:naked-new): leaked Global() singleton.
    auto* r = new CachePolicyRegistry();
    r->ClaimCellNamespace("cache policy");
    RegisterBuiltinCachePolicies(*r);
    return r;
  }();
  return *registry;
}

void CachePolicyRegistry::Register(std::string name, Factory factory) {
  if (!factory) {
    throw std::invalid_argument("CachePolicyRegistry: null factory for '" +
                                name + "'");
  }
  std::string key = util::ToLower(name);
  // Cache-policy names share the experiment engine's strategy-name space
  // (cells, CLI arguments, report keys): same charset, and no collision
  // with a registered strategy.
  const auto valid_char = [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '-' || c == '_' || c == '.';
  };
  if (key.empty() || !std::all_of(key.begin(), key.end(), valid_char)) {
    throw std::invalid_argument("CachePolicyRegistry: invalid name '" + name +
                                "'");
  }
  if (core::StrategyRegistry::Global().Contains(key)) {
    throw std::invalid_argument(
        "CachePolicyRegistry: '" + key +
        "' is already a registered placement strategy");
  }
  if (namespace_kind_ != nullptr) {
    core::RegistryNamespace::Global().Claim(key, namespace_kind_);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    throw std::invalid_argument("CachePolicyRegistry: duplicate policy '" +
                                key + "'");
  }
  entries_.insert(it, {std::move(key), Entry{std::move(factory), nullptr}});
}

const CachePolicyRegistry::Entry* CachePolicyRegistry::FindEntry(
    const std::string& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) return nullptr;
  return &it->second;
}

std::shared_ptr<const CachePolicy> CachePolicyRegistry::Find(
    std::string_view name) const {
  const std::string key = util::ToLower(name);
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* entry = FindEntry(key);
    if (entry == nullptr) return nullptr;
    if (entry->instance) return entry->instance;
    factory = entry->factory;
  }
  // Run the factory unlocked: factories may consult the registries.
  auto instance = factory();
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindEntry(key);
  if (entry == nullptr) return instance;
  if (!entry->instance) entry->instance = std::move(instance);
  return entry->instance;
}

std::optional<CachePolicyInfo> CachePolicyRegistry::Describe(
    std::string_view name) const {
  const auto policy = Find(name);
  if (!policy) return std::nullopt;
  return policy->Describe();
}

bool CachePolicyRegistry::Contains(std::string_view name) const {
  const std::string key = util::ToLower(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  return FindEntry(key) != nullptr;
}

std::vector<std::string> CachePolicyRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(key);
  return names;
}

std::size_t CachePolicyRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void RegisterBuiltinCachePolicies(CachePolicyRegistry& registry) {
  for (const char* eviction :
       {"cache-lru", "cache-lfu", "cache-sample", "cache-shift-aware"}) {
    for (const int percent : {25, 50, 100}) {
      RegisterCapacityFamily(registry, eviction, percent);
    }
  }
}

CachePolicyRegistrar::CachePolicyRegistrar(std::string name,
                                           CachePolicyRegistry::Factory factory) {
  CachePolicyRegistry::Global().Register(std::move(name), std::move(factory));
}

}  // namespace rtmp::cache
