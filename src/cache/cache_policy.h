// Cache-policy registry: the name-keyed dispatch layer for hybrid-memory
// cache configurations, mirroring the strategy / online-policy / serve-
// policy registries.
//
// A cache policy is a named CacheConfig recipe: which eviction policy
// runs the resident set, what fraction of the working set fits on the
// device, and which wrapped online engine serves the hits. Policies
// enter the evaluation matrix by name exactly like strategies and
// online policies do — sim::RunCell resolves a name it finds in neither
// of those registries here, so `ExperimentOptions::extra_strategies`,
// `rtmbench` scenarios and `placement_explorer cache` all accept cache
// policy names interchangeably.
//
// The built-ins wrap the SAME engine recipe as the online policy
// "online-fixed-dma-sr"; a capacity-100% cache cell is therefore
// bit-identical to that online cell (the hybrid mode's oracle anchor in
// bench/harness/scenarios/fig_cache.cpp).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/engine.h"

namespace rtmp::cache {

/// Self-description of a registered cache policy.
struct CachePolicyInfo {
  /// Registry key: lowercase, unique ("cache-lru-c50", ...).
  std::string name;
  /// One-line human-readable description for listings and docs.
  std::string summary;
  /// Eviction-policy registry name the policy runs (cache/eviction.h).
  std::string eviction;
  /// Resident-set fraction of the working set (CacheConfig ratio).
  double capacity_ratio = 1.0;
};

/// Abstract cache policy. Implementations must be stateless or
/// internally synchronized: the experiment engine may call MakeConfig()
/// from many threads concurrently on one instance.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  [[nodiscard]] virtual const CachePolicyInfo& Describe() const noexcept = 0;

  /// The cache configuration this policy stands for. Callers stamp the
  /// run-specific fields afterwards (capacity_slots via ResolveCapacity,
  /// strategy effort/seeds from the experiment).
  [[nodiscard]] virtual CacheConfig MakeConfig() const = 0;
};

/// Name -> factory registry; same shape and thread-safety discipline as
/// online::OnlinePolicyRegistry (lowercase keys, sorted flat vector,
/// lazy cached instances, process-wide name arbitration).
class CachePolicyRegistry {
 public:
  using Factory = std::function<std::shared_ptr<const CachePolicy>()>;

  CachePolicyRegistry() = default;
  CachePolicyRegistry(const CachePolicyRegistry&) = delete;
  CachePolicyRegistry& operator=(const CachePolicyRegistry&) = delete;

  /// The process-wide registry, pre-populated with the built-in
  /// policies (see RegisterBuiltinCachePolicies).
  [[nodiscard]] static CachePolicyRegistry& Global();

  /// Registers `factory` under `name` (normalized to lowercase). Throws
  /// std::invalid_argument if the name is empty, contains characters
  /// outside [a-z0-9._-], collides with a registered cache policy OR
  /// with a registered placement strategy (the registries share the
  /// experiment engine's name space; see core/registry_namespace.h for
  /// the process-wide arbitration covering online and serve policies).
  void Register(std::string name, Factory factory);

  /// Marks this instance as an owner in the process-wide cell-name space
  /// (core/registry_namespace.h); Global() enables it ("cache policy"),
  /// fresh test instances leave it off.
  void ClaimCellNamespace(const char* kind) noexcept {
    namespace_kind_ = kind;
  }

  /// The policy registered under `name`; nullptr if unknown.
  [[nodiscard]] std::shared_ptr<const CachePolicy> Find(
      std::string_view name) const;

  /// Metadata of the policy registered under `name`; nullopt if unknown.
  [[nodiscard]] std::optional<CachePolicyInfo> Describe(
      std::string_view name) const;

  [[nodiscard]] bool Contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> Names() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    Factory factory;
    /// Constructed on first lookup, under mutex_.
    mutable std::shared_ptr<const CachePolicy> instance;
  };

  /// Requires mutex_ to be held by the caller.
  [[nodiscard]] const Entry* FindEntry(const std::string& key) const;

  mutable std::mutex mutex_;
  // Sorted by key; small enough (a dozen policies) that a flat vector
  // beats a map.
  std::vector<std::pair<std::string, Entry>> entries_;
  /// Non-null only for Global() (see ClaimCellNamespace).
  const char* namespace_kind_ = nullptr;
};

/// Registers the built-in policies into `registry`:
///
///   cache-<e>-c<r>   eviction policy cache-<e> over a resident set of
///                    r% of the working set, hits served by the
///                    online-fixed-dma-sr engine recipe (256-access
///                    windows, re-seed weighed every boundary),
///
/// for e in {lru, lfu, sample, shift-aware} and r in {25, 50, 100}.
/// The c100 members are the oracle anchors: no miss can occur, so they
/// are bit-identical to online-fixed-dma-sr. Global() calls this once;
/// tests use it to build fresh registries.
void RegisterBuiltinCachePolicies(CachePolicyRegistry& registry);

/// Convenience used by the built-ins and available to external code: a
/// policy that returns a fixed CacheConfig under a fixed description.
[[nodiscard]] std::shared_ptr<const CachePolicy> MakeFixedCachePolicy(
    CachePolicyInfo info, CacheConfig config);

/// RAII self-registration into the Global() registry, for policies
/// defined outside this library. Same linker caveat as
/// core::StrategyRegistrar: keep registrars in a translation unit that
/// is otherwise linked in.
struct CachePolicyRegistrar {
  CachePolicyRegistrar(std::string name, CachePolicyRegistry::Factory factory);
};

}  // namespace rtmp::cache
