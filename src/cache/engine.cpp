#include "cache/engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "online/migration.h"

namespace rtmp::cache {

namespace {

/// (dbc, offset) sweep order for AppendSweepRequests.
bool SlotSweepOrder(const core::Slot& a, const core::Slot& b) noexcept {
  if (a.dbc != b.dbc) return a.dbc < b.dbc;
  return a.offset < b.offset;
}

}  // namespace

std::size_t ResolveCapacity(const CacheConfig& config,
                            std::size_t num_variables) {
  if (config.capacity_slots != 0) return config.capacity_slots;
  if (!std::isfinite(config.capacity_ratio) || config.capacity_ratio <= 0.0) {
    throw std::invalid_argument(
        "ResolveCapacity: capacity_ratio must be finite and > 0");
  }
  const double scaled =
      std::ceil(config.capacity_ratio * static_cast<double>(num_variables));
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
}

CacheEngine::CacheEngine(CacheConfig config, rtm::RtmConfig device)
    : config_(std::move(config)),
      engine_(config_.engine, device),
      backing_(config_.backing) {
  if (config_.capacity_slots == 0) {
    throw std::invalid_argument(
        "CacheEngine: capacity_slots must be resolved (> 0); "
        "see ResolveCapacity");
  }
  policy_ = EvictionPolicyRegistry::Global().Create(config_.eviction,
                                                    config_.eviction_seed);
  if (policy_ == nullptr) {
    throw std::invalid_argument("CacheEngine: unknown eviction policy '" +
                                config_.eviction + "'");
  }
  frames_.resize(config_.capacity_slots);
  frame_pending_.assign(frames_.size(), 0);
  last_offsets_.assign(device.total_dbcs(), -1);
  engine_.SetPreServeHook(
      [this](const core::Placement& placement, rtm::RtmController& controller) {
        ExecutePendingFills(placement, controller);
      });
  SetUpObs();
}

void CacheEngine::SetUpObs() {
  obs_ = config_.engine.obs;
  if (obs_.trace != nullptr) {
    trace_miss_ = obs_.trace->Intern("cache-miss");
    trace_fill_sweep_ = obs_.trace->Intern("fill-sweep");
    key_variable_ = obs_.trace->Intern("variable");
    key_evicted_ = obs_.trace->Intern("evicted");
    key_wrote_back_ = obs_.trace->Intern("wrote_back");
    key_requests_ = obs_.trace->Intern("requests");
    key_shifts_ = obs_.trace->Intern("shifts");
  }
  if (obs_.metrics != nullptr) {
    m_hits_ = &obs_.metrics->Counter("cache/hits");
    m_misses_ = &obs_.metrics->Counter("cache/misses");
    m_fills_ = &obs_.metrics->Counter("cache/fills");
    m_writebacks_ = &obs_.metrics->Counter("cache/writebacks");
    m_fill_shifts_ = &obs_.metrics->Counter("cache/fill_shifts");
  }
}

std::uint32_t CacheEngine::RegisterVariable(std::string_view name,
                                            std::uint32_t owner) {
  const auto [it, inserted] =
      ids_.emplace(std::string(name), static_cast<std::uint32_t>(names_.size()));
  if (!inserted) return it->second;
  const std::uint32_t id = it->second;
  names_.emplace_back(name);
  frame_of_.push_back(kNoFrame);
  owner_of_.push_back(owner);
  if (owner >= owner_resident_.size()) {
    owner_resident_.resize(owner + 1, 0);
    owner_quota_.resize(owner + 1, 0);
  }
  if (id < frames_.size()) {
    // Free admission: the initial resident set (see RegisterVariable doc).
    frame_of_[id] = id;
    frames_[id].occupant = id;
    frames_[id].owner = owner;
    ++owner_resident_[owner];
  }
  return id;
}

void CacheEngine::SetOwnerQuota(std::uint32_t owner, std::size_t quota) {
  if (owner >= owner_resident_.size()) {
    owner_resident_.resize(owner + 1, 0);
    owner_quota_.resize(owner + 1, 0);
  }
  owner_quota_[owner] = quota;
}

void CacheEngine::Feed(std::string_view name, trace::AccessType type) {
  Feed(RegisterVariable(name), type);
}

void CacheEngine::Feed(std::uint32_t variable, trace::AccessType type) {
  if (finished_) {
    throw std::logic_error("CacheEngine: Feed after Finish");
  }
  if (variable >= names_.size()) {
    throw std::out_of_range("CacheEngine: unregistered variable id");
  }
  window_.push_back({variable, type});
  if (window_.size() >= config_.engine.window_accesses) ResolveWindow();
}

void CacheEngine::Feed(std::span<const trace::Access> accesses,
                       std::uint32_t id_offset) {
  for (const trace::Access& access : accesses) {
    Feed(access.variable + id_offset, access.type);
  }
}

void CacheEngine::FlushWindow() {
  if (finished_) {
    throw std::logic_error("CacheEngine: FlushWindow after Finish");
  }
  ResolveWindow();
}

void CacheEngine::RegisterFramePool() {
  if (frames_registered_) return;
  frames_registered_ = true;
  // The wrapped engine's variable space IS the frame pool, registered in
  // id order so frame f maps to wrapped-engine variable f. Each frame
  // takes its CURRENT occupant's logical name: the reseed strategies
  // break access-frequency ties by variable name (see
  // core::SortByFrequencyDescending), so with capacity >= the working
  // set the wrapped engine must see the exact names a bare engine would
  // — that is what keeps the full-capacity oracle bit-identical.
  // Unoccupied frames get a synthetic name, disambiguated if a logical
  // variable happens to share it (AddVariable dedupes by name, and a
  // dedupe hit here would silently fuse two frames).
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    const std::uint32_t occupant = frames_[f].occupant;
    std::string name = occupant != kNoFrame ? names_[occupant]
                                            : "f" + std::to_string(f);
    std::uint32_t id = engine_.RegisterVariable(name);
    while (id != f) {
      name += "'";
      id = engine_.RegisterVariable(name);
    }
  }
}

void CacheEngine::ResolveWindow() {
  if (window_.empty()) return;
  RegisterFramePool();

  remaining_uses_.assign(names_.size(), 0);
  for (const trace::Access& access : window_) {
    ++remaining_uses_[access.variable];
  }
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    frame_pending_[f] = frames_[f].occupant == kNoFrame
                            ? 0
                            : remaining_uses_[frames_[f].occupant];
  }
  std::fill(last_offsets_.begin(), last_offsets_.end(), -1);
  // Victim ranking peeks the placement that served the PREVIOUS window —
  // this window's final placement is only decided after its misses are
  // resolved (the wrapped engine may still re-seed or refine). That is
  // the honest information order of a real controller: eviction happens
  // before re-placement.
  const core::Placement* placement =
      engine_.placed() ? &engine_.placement() : nullptr;

  frame_block_.clear();
  for (const trace::Access& access : window_) {
    ++tick_;
    ++running_.accesses;
    const std::uint32_t variable = access.variable;
    std::uint32_t frame = frame_of_[variable];
    if (frame != kNoFrame) {
      ++running_.hits;
      if (m_hits_ != nullptr) ++*m_hits_;
      FrameInfo& info = frames_[frame];
      info.last_use = tick_;
      ++info.uses;
      if (access.type == trace::AccessType::kWrite) info.dirty = true;
      if (config_.record_events) {
        events_.push_back({tick_, variable, frame, CacheEvent::Kind::kHit,
                           kNoFrame, false});
      }
    } else {
      frame = ResolveMiss(variable, access.type);
    }
    --remaining_uses_[variable];
    frame_pending_[frame] = remaining_uses_[variable];
    frame_block_.push_back({frame, access.type});
    if (placement != nullptr && placement->IsPlaced(frame)) {
      const core::Slot slot = placement->SlotOf(frame);
      last_offsets_[slot.dbc] = static_cast<std::int64_t>(slot.offset);
    }
  }
  window_.clear();

  engine_.Feed(std::span<const trace::Access>(frame_block_));
  // A full frame_block_ was already decided and served inside Feed; a
  // partial one is forced out here so the wrapped window boundaries
  // stay 1:1 with logical windows (and the pre-serve hook runs).
  engine_.FlushWindow();
}

std::uint32_t CacheEngine::ResolveMiss(std::uint32_t variable,
                                       trace::AccessType type) {
  ++running_.misses;
  const std::uint32_t owner = owner_of_[variable];
  const bool scoped = owner < owner_quota_.size() &&
                      owner_quota_[owner] != 0 &&
                      owner_resident_[owner] >= owner_quota_[owner];
  candidates_scratch_.clear();
  for (std::uint32_t f = 0; f < frames_.size(); ++f) {
    if (frames_[f].occupant == kNoFrame) continue;
    if (scoped && frames_[f].owner != owner) continue;
    candidates_scratch_.push_back(f);
  }
  if (candidates_scratch_.empty()) {
    throw std::logic_error("CacheEngine: miss with no eviction candidates");
  }

  EvictionContext ctx;
  ctx.candidates = candidates_scratch_;
  ctx.frames = frames_;
  ctx.placement = engine_.placed() ? &engine_.placement() : nullptr;
  ctx.last_offsets = last_offsets_;
  ctx.pending_uses = frame_pending_;
  ctx.tick = tick_;
  const std::uint32_t victim = policy_->PickVictim(ctx);
  if (victim >= frames_.size() ||
      std::find(candidates_scratch_.begin(), candidates_scratch_.end(),
                victim) == candidates_scratch_.end()) {
    throw std::logic_error(
        "CacheEngine: eviction policy picked a non-candidate frame");
  }

  FrameInfo& info = frames_[victim];
  const std::uint32_t evicted = info.occupant;
  const bool wrote_back = info.dirty;
  if (wrote_back) {
    ++running_.writebacks;
    backing_.RecordWriteback();
    pending_writeback_frames_.push_back(victim);
  }
  ++running_.fills;
  backing_.RecordFill();
  pending_fill_frames_.push_back(victim);

  frame_of_[evicted] = kNoFrame;
  frame_of_[variable] = victim;
  --owner_resident_[info.owner];
  ++owner_resident_[owner];
  info.occupant = variable;
  info.owner = owner;
  info.dirty = type == trace::AccessType::kWrite;
  info.last_use = tick_;
  info.uses = 1;
  info.admitted = tick_;
  if (config_.record_events) {
    events_.push_back(
        {tick_, variable, victim, CacheEvent::Kind::kMiss, evicted,
         wrote_back});
  }
  if (obs_.trace != nullptr) {
    const std::array<obs::TraceRecorder::Arg, 3> args{
        obs::TraceRecorder::Arg{key_variable_, false, variable},
        obs::TraceRecorder::Arg{key_evicted_, false, evicted},
        obs::TraceRecorder::Arg{key_wrote_back_, false,
                                wrote_back ? std::uint64_t{1}
                                           : std::uint64_t{0}}};
    obs_.trace->Instant(trace_miss_, obs_.pid, obs_.tid,
                        engine_.DeviceStats().makespan_ns, args);
  }
  if (obs_.metrics != nullptr) {
    ++*m_misses_;
    ++*m_fills_;
    if (wrote_back) ++*m_writebacks_;
  }
  return victim;
}

void CacheEngine::ExecutePendingFills(const core::Placement& placement,
                                      rtm::RtmController& controller) {
  if (pending_writeback_frames_.empty() && pending_fill_frames_.empty()) {
    return;
  }
  fill_requests_.clear();
  const auto sweep = [this, &placement](
                         const std::vector<std::uint32_t>& frames,
                         trace::AccessType type) {
    if (frames.empty()) return;
    slot_scratch_.clear();
    for (const std::uint32_t frame : frames) {
      // Frames are pre-registered, so every frame is placed from window
      // 0 on; the guard only shields a hook fired before any placement.
      if (!placement.IsPlaced(frame)) continue;
      slot_scratch_.push_back(placement.SlotOf(frame));
    }
    std::sort(slot_scratch_.begin(), slot_scratch_.end(), SlotSweepOrder);
    (void)online::AppendSweepRequests(slot_scratch_, type, fill_requests_);
  };
  // Victims drain first (reads), then the incoming words land (writes) —
  // the order a migration buffer would use; each phase is one ascending-
  // offset sweep per DBC.
  sweep(pending_writeback_frames_, trace::AccessType::kRead);
  sweep(pending_fill_frames_, trace::AccessType::kWrite);
  pending_writeback_frames_.clear();
  pending_fill_frames_.clear();
  if (fill_requests_.empty()) return;

  const std::uint64_t before = controller.stats().shifts;
  const double makespan_before = controller.stats().makespan_ns;
  controller.ExecuteBatch(fill_requests_);
  const std::uint64_t sweep_shifts = controller.stats().shifts - before;
  running_.fill_shifts += sweep_shifts;
  running_.fill_accesses += fill_requests_.size();
  if (obs_.trace != nullptr) {
    const std::array<obs::TraceRecorder::Arg, 2> args{
        obs::TraceRecorder::Arg{key_requests_, false, fill_requests_.size()},
        obs::TraceRecorder::Arg{key_shifts_, false, sweep_shifts}};
    obs_.trace->Complete(trace_fill_sweep_, obs_.pid, obs_.tid,
                         makespan_before,
                         controller.stats().makespan_ns - makespan_before,
                         args);
  }
  if (m_fill_shifts_ != nullptr) *m_fill_shifts_ += sweep_shifts;
}

CacheResult CacheEngine::Finish() {
  if (finished_) {
    throw std::logic_error("CacheEngine: Finish called twice");
  }
  ResolveWindow();
  // A never-fed session still registers the pool so the wrapped engine
  // places it, mirroring the static path on empty sequences.
  RegisterFramePool();
  CacheResult result;
  result.online = engine_.Finish();
  result.cache = stats();
  result.events = std::move(events_);
  finished_ = true;
  return result;
}

CacheStats CacheEngine::stats() const {
  CacheStats out = running_;
  out.backing_ns = backing_.busy_ns();
  out.backing_pj = backing_.energy_pj();
  return out;
}

std::size_t CacheEngine::resident() const noexcept {
  std::size_t count = 0;
  for (const FrameInfo& frame : frames_) {
    if (frame.occupant != kNoFrame) ++count;
  }
  return count;
}

CacheResult RunCache(const trace::AccessSequence& seq,
                     const CacheConfig& config, const rtm::RtmConfig& device) {
  CacheConfig resolved = config;
  resolved.capacity_slots = ResolveCapacity(config, seq.num_variables());
  CacheEngine engine(std::move(resolved), device);
  for (trace::VariableId v = 0;
       v < static_cast<trace::VariableId>(seq.num_variables()); ++v) {
    (void)engine.RegisterVariable(seq.name_of(v));
  }
  engine.Feed(seq.accesses());
  return engine.Finish();
}

}  // namespace rtmp::cache
