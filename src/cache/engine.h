// Hybrid-memory mode: the racetrack device as a managed cache tier.
//
// Everywhere else in this repository the device is large enough for the
// whole variable space. This engine drops that assumption: the device
// holds a bounded RESIDENT SET of `capacity_slots` frames, and the rest
// of the working set lives in a modeled backing store (backing_store.h).
// Logical variables map onto frames through a cache directory:
//
//  * A hit is an access to a resident variable — it flows into the
//    wrapped online::OnlineEngine unchanged (as an access to the
//    variable's frame) and costs exactly what it always cost.
//  * A miss picks a victim frame via a pluggable EvictionPolicy
//    (eviction.h), writes the victim back if dirty, fills the newcomer
//    from the backing store, and then serves the access from the frame.
//
// The device side of evictions and fills is planned as the same
// ascending-offset per-DBC sweeps a migration buffer would issue
// (online::AppendSweepRequests) and executed on the wrapped engine's
// live controller through its pre-serve hook — after the window's
// placement is final, before its service traffic. Everything therefore
// lands on ONE controller timeline and the totals decompose exactly:
//
//    online.stats.shifts == online.service_shifts
//                         + online.migration_shifts
//                         + cache.fill_shifts
//
// (pinned by tests/cache_property_test.cpp). The backing store's own
// latency and energy are accounted in CacheStats, not on the device
// timeline.
//
// Oracle property (pinned by tests/cache_engine_test.cpp): with
// capacity >= the variable count, every variable is admitted at
// registration, the directory is the identity map, no miss ever occurs,
// and the run is bit-identical to the bare OnlineEngine on every
// counter — the cache tier costs nothing when it does nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/backing_store.h"
#include "cache/eviction.h"
#include "online/engine.h"
#include "rtm/config.h"

namespace rtmp::cache {

struct CacheConfig {
  /// Eviction policy registry name (see cache/eviction.h).
  std::string eviction = "cache-lru";
  /// Resident-set size as a fraction of the variable count; used by
  /// ResolveCapacity when capacity_slots is 0. 1.0 = whole working set
  /// resident (the oracle configuration).
  double capacity_ratio = 1.0;
  /// Explicit resident-set size in frames; 0 = derive from
  /// capacity_ratio. The engine constructor requires the RESOLVED value
  /// (> 0) — callers with a known variable count use ResolveCapacity.
  std::size_t capacity_slots = 0;
  BackingStoreConfig backing{};
  /// The wrapped adaptive engine (window size, detector, re-seed
  /// strategy, controller mode, ...). The cache engine batches its
  /// misses per wrapped-engine window, so `engine.window_accesses` is
  /// also the miss-resolution granularity.
  online::OnlineConfig engine{};
  /// Seed for randomized eviction policies (cache-sample).
  std::uint64_t eviction_seed = 0;
  /// Record a CacheEvent per access (tests and the explorer CLI; off in
  /// experiment runs — the stream is O(accesses)).
  bool record_events = false;
};

/// config.capacity_slots if explicit, else ceil(capacity_ratio *
/// num_variables), at least 1. Throws std::invalid_argument when the
/// ratio is non-finite or <= 0 while it is being relied on.
[[nodiscard]] std::size_t ResolveCapacity(const CacheConfig& config,
                                          std::size_t num_variables);

/// Cache-tier counters. Device-side fill traffic (fill_shifts,
/// fill_accesses) is measured on the wrapped controller; backing_ns /
/// backing_pj are the far side of the same transfers (see
/// backing_store.h).
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t writebacks = 0;
  /// Device shifts spent on eviction/fill sweeps (excluded from the
  /// wrapped engine's service_shifts and migration_shifts).
  std::uint64_t fill_shifts = 0;
  /// Device requests issued by those sweeps (one read per writeback,
  /// one write per fill).
  std::uint64_t fill_accesses = 0;
  /// Backing-store transfer time; serial penalty on top of the device
  /// makespan.
  double backing_ns = 0.0;
  /// Backing-store transfer energy.
  double backing_pj = 0.0;
};

/// One classified access, for event-stream differential tests and the
/// explorer CLI.
struct CacheEvent {
  enum class Kind : std::uint8_t { kHit, kMiss };
  /// 1-based engine tick of the access.
  std::uint64_t tick = 0;
  /// Logical variable accessed.
  std::uint32_t variable = 0;
  /// Frame that served the access (the victim's frame on a miss).
  std::uint32_t frame = 0;
  Kind kind = Kind::kHit;
  /// Logical variable evicted to make room; kNoFrame on a hit.
  std::uint32_t evicted = kNoFrame;
  /// The eviction wrote the victim back (it was dirty).
  bool wrote_back = false;

  friend bool operator==(const CacheEvent&, const CacheEvent&) = default;
};

struct CacheResult {
  CacheStats cache{};
  online::OnlineResult online{};
  /// Populated only under CacheConfig::record_events.
  std::vector<CacheEvent> events;
};

/// One streaming cache session: register variables, feed accesses,
/// Finish(). Mirrors online::OnlineEngine's session shape; holds the
/// directory, one logical window, and the wrapped engine — never the
/// whole trace.
class CacheEngine {
 public:
  /// Requires a RESOLVED capacity (config.capacity_slots > 0; see
  /// ResolveCapacity) and a registered eviction policy; throws
  /// std::invalid_argument otherwise. The wrapped engine's variable
  /// space is the frame pool, registered at the first window in id
  /// order — each frame under its then-occupant's logical name (see
  /// RegisterFramePool) — so frame ids and wrapped-engine variable ids
  /// coincide.
  CacheEngine(CacheConfig config, rtm::RtmConfig device);

  CacheEngine(const CacheEngine&) = delete;
  CacheEngine& operator=(const CacheEngine&) = delete;

  /// Registers a logical variable (idempotent per name; returns its id).
  /// The first `capacity()` registered variables are admitted to frames
  /// immediately and for free — the initial resident set, mirroring the
  /// uncached mode's "everything starts on-device" assumption. `owner`
  /// tags the variable's tenant for quota-scoped eviction (serve layer);
  /// single-tenant callers leave it 0. Re-registering an existing name
  /// returns the existing id and ignores `owner`.
  std::uint32_t RegisterVariable(std::string_view name,
                                 std::uint32_t owner = 0);

  /// Caps `owner`'s resident frames at `quota` (0 = unlimited). While an
  /// owner is at or over its quota, its misses evict among its OWN
  /// frames only; under quota they evict device-wide. Quotas only
  /// constrain misses — the free admissions at registration are exempt
  /// (the serve layer sizes shards so initial admissions respect them).
  void SetOwnerQuota(std::uint32_t owner, std::size_t quota);

  /// Appends one access, registering `name` on first appearance.
  void Feed(std::string_view name, trace::AccessType type);

  /// Appends one access to a previously registered variable
  /// (std::out_of_range otherwise). A full logical window is resolved
  /// (classified, evicted/filled, handed to the wrapped engine) before
  /// the call returns.
  void Feed(std::uint32_t variable, trace::AccessType type);

  /// Batched feed over pre-registered ids; resolves every window
  /// boundary the block crosses. Bit-identical to the per-access loop.
  /// `id_offset` is added to every access's variable id — how the serve
  /// layer remaps tenant-local ids into the shard's space (mirrors
  /// online::OnlineEngine::Feed's offset parameter).
  void Feed(std::span<const trace::Access> accesses,
            std::uint32_t id_offset = 0);

  /// Forces a window boundary now: the buffered partial window is
  /// resolved and handed to the wrapped engine, which also flushes. The
  /// serve layer closes every arbitration turn with this. No-op on an
  /// empty buffer. Throws std::logic_error after Finish().
  void FlushWindow();

  /// Flushes the trailing partial window and returns the combined
  /// result. The engine cannot be fed afterwards.
  [[nodiscard]] CacheResult Finish();

  /// Cache counters so far (backing-store terms folded in live).
  [[nodiscard]] CacheStats stats() const;

  /// Resident-set size in frames.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return frames_.size();
  }

  /// Frames currently holding a variable — always <= capacity(), and
  /// equal to min(variables_seen(), capacity()) once any access flowed.
  [[nodiscard]] std::size_t resident() const noexcept;

  /// Logical variables registered so far.
  [[nodiscard]] std::size_t variables_seen() const noexcept {
    return names_.size();
  }

  /// Wrapped-engine window records (one per resolved window).
  [[nodiscard]] const std::vector<online::WindowRecord>& Windows()
      const noexcept {
    return engine_.Windows();
  }

  /// Live controller view (service + migration + fill traffic).
  [[nodiscard]] const rtm::ControllerStats& DeviceStats() const noexcept {
    return engine_.DeviceStats();
  }

  [[nodiscard]] rtm::EnergyBreakdown DeviceEnergy() const {
    return engine_.DeviceEnergy();
  }

 private:
  /// One-shot registration of the frame pool in the wrapped engine,
  /// deferred to the first window so every frame can carry its
  /// occupant's logical name — the reseed strategies tie-break on
  /// names, and matching them is what keeps the full-capacity oracle
  /// bit-identical to a bare engine.
  void RegisterFramePool();
  /// Classifies the buffered window's accesses, resolves its misses
  /// (victim selection, directory update, pending sweep bookkeeping) and
  /// hands the frame-mapped block to the wrapped engine.
  void ResolveWindow();
  /// Handles one miss of `variable` (owned by its registered owner);
  /// returns the frame it was filled into.
  std::uint32_t ResolveMiss(std::uint32_t variable, trace::AccessType type);
  /// Pre-serve hook body: executes the pending eviction/fill sweeps on
  /// the wrapped controller under the window's final placement.
  void ExecutePendingFills(const core::Placement& placement,
                           rtm::RtmController& controller);
  /// Interns trace names and resolves metric references (constructor).
  /// The cache tier rides on the wrapped engine's sinks
  /// (CacheConfig::engine.obs) — no separate wiring.
  void SetUpObs();

  CacheConfig config_;
  online::OnlineEngine engine_;
  std::unique_ptr<EvictionPolicy> policy_;
  BackingStoreModel backing_;

  // Logical variable table. `ids_` is lookup-only (find/emplace, never
  // iterated): hash order must not leak into anything observable;
  // `names_` is the deterministic registration-ordered view.
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  /// variable -> resident frame, kNoFrame while evicted/never admitted.
  std::vector<std::uint32_t> frame_of_;
  /// variable -> owning tenant.
  std::vector<std::uint32_t> owner_of_;

  // Frame pool and per-owner residency.
  std::vector<FrameInfo> frames_;
  std::vector<std::size_t> owner_resident_;
  std::vector<std::size_t> owner_quota_;

  // Current logical window.
  std::vector<trace::Access> window_;
  /// Frame-mapped image of `window_`, fed to the wrapped engine.
  std::vector<trace::Access> frame_block_;
  /// variable -> accesses of it left in the window being resolved.
  std::vector<std::uint64_t> remaining_uses_;
  /// frame -> remaining window uses of its occupant (EvictionContext).
  std::vector<std::uint64_t> frame_pending_;
  /// Per-DBC offset of the window's latest routed access (-1 untouched).
  std::vector<std::int64_t> last_offsets_;
  /// Frames awaiting a writeback / fill sweep in the next hook run. A
  /// frame may legitimately appear several times (churn within one
  /// window): each occurrence is one transfer.
  std::vector<std::uint32_t> pending_writeback_frames_;
  std::vector<std::uint32_t> pending_fill_frames_;
  /// Victim-candidate and sweep scratch, reused across misses/windows.
  std::vector<std::uint32_t> candidates_scratch_;
  std::vector<core::Slot> slot_scratch_;
  std::vector<rtm::TimedRequest> fill_requests_;

  std::vector<CacheEvent> events_;
  std::uint64_t tick_ = 0;
  CacheStats running_{};
  bool frames_registered_ = false;
  bool finished_ = false;

  /// Observability wiring resolved by SetUpObs() (see SetUpObs doc).
  obs::ObsConfig obs_{};
  std::uint32_t trace_miss_ = 0;
  std::uint32_t trace_fill_sweep_ = 0;
  std::uint32_t key_variable_ = 0;
  std::uint32_t key_evicted_ = 0;
  std::uint32_t key_wrote_back_ = 0;
  std::uint32_t key_requests_ = 0;
  std::uint32_t key_shifts_ = 0;
  std::uint64_t* m_hits_ = nullptr;
  std::uint64_t* m_misses_ = nullptr;
  std::uint64_t* m_fills_ = nullptr;
  std::uint64_t* m_writebacks_ = nullptr;
  std::uint64_t* m_fill_shifts_ = nullptr;
};

/// Convenience: pre-registers the sequence's whole variable space in id
/// order (capacity resolved against it via ResolveCapacity), feeds every
/// access, and finishes — the cache-tier mirror of online::RunOnline.
[[nodiscard]] CacheResult RunCache(const trace::AccessSequence& seq,
                                   const CacheConfig& config,
                                   const rtm::RtmConfig& device);

}  // namespace rtmp::cache
