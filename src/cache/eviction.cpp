#include "cache/eviction.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/registry_namespace.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rtmp::cache {

namespace {

/// Least-recently-used frame among `candidates`; frame id breaks ties
/// (candidates arrive in ascending frame order, so "first strict
/// improvement wins" is the id tie-break).
std::uint32_t LeastRecentlyUsed(std::span<const std::uint32_t> candidates,
                                std::span<const FrameInfo> frames) {
  std::uint32_t best = candidates.front();
  for (const std::uint32_t frame : candidates.subspan(1)) {
    if (frames[frame].last_use < frames[best].last_use) best = frame;
  }
  return best;
}

class LruPolicy final : public EvictionPolicy {
 public:
  explicit LruPolicy(EvictionPolicyInfo info) : info_(std::move(info)) {}

  [[nodiscard]] const EvictionPolicyInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] std::uint32_t PickVictim(const EvictionContext& ctx) override {
    return LeastRecentlyUsed(ctx.candidates, ctx.frames);
  }

 private:
  EvictionPolicyInfo info_;
};

class LfuPolicy final : public EvictionPolicy {
 public:
  explicit LfuPolicy(EvictionPolicyInfo info) : info_(std::move(info)) {}

  [[nodiscard]] const EvictionPolicyInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] std::uint32_t PickVictim(const EvictionContext& ctx) override {
    std::uint32_t best = ctx.candidates.front();
    for (const std::uint32_t frame : ctx.candidates.subspan(1)) {
      const FrameInfo& f = ctx.frames[frame];
      const FrameInfo& b = ctx.frames[best];
      if (f.uses != b.uses) {
        if (f.uses < b.uses) best = frame;
      } else if (f.last_use < b.last_use) {
        best = frame;
      }
    }
    return best;
  }

 private:
  EvictionPolicyInfo info_;
};

/// zsim-style sampled LRU: O(K) per miss. Sampling is with replacement
/// (duplicates just waste a draw) and uses the policy's own xoshiro
/// stream so two engines with the same seed replay identically.
class SampledLruPolicy final : public EvictionPolicy {
 public:
  static constexpr std::size_t kSample = 5;

  SampledLruPolicy(EvictionPolicyInfo info, std::uint64_t seed)
      : info_(std::move(info)), rng_(seed) {}

  [[nodiscard]] const EvictionPolicyInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] std::uint32_t PickVictim(const EvictionContext& ctx) override {
    if (ctx.candidates.size() <= kSample) {
      return LeastRecentlyUsed(ctx.candidates, ctx.frames);
    }
    std::uint32_t best = kNoFrame;
    for (std::size_t draw = 0; draw < kSample; ++draw) {
      const std::uint32_t frame =
          ctx.candidates[rng_.NextBelow(ctx.candidates.size())];
      if (best == kNoFrame ||
          ctx.frames[frame].last_use < ctx.frames[best].last_use ||
          (ctx.frames[frame].last_use == ctx.frames[best].last_use &&
           frame < best)) {
        best = frame;
      }
    }
    return best;
  }

 private:
  EvictionPolicyInfo info_;
  util::Rng rng_;
};

/// Placement-aware eviction: shortlist the 8 least recently used
/// candidates, then pick the one that (a) will not be re-missed this
/// window (no pending uses), (b) sits closest to where its DBC's port
/// alignment already is — so the eviction read sweep adds the fewest
/// shifts under the first-access-free convention — and (c) is coldest,
/// in that lexicographic order.
class ShiftAwarePolicy final : public EvictionPolicy {
 public:
  static constexpr std::size_t kShortlist = 8;

  explicit ShiftAwarePolicy(EvictionPolicyInfo info)
      : info_(std::move(info)) {}

  [[nodiscard]] const EvictionPolicyInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] std::uint32_t PickVictim(const EvictionContext& ctx) override {
    shortlist_.assign(ctx.candidates.begin(), ctx.candidates.end());
    const auto lru_order = [&ctx](std::uint32_t a, std::uint32_t b) {
      if (ctx.frames[a].last_use != ctx.frames[b].last_use) {
        return ctx.frames[a].last_use < ctx.frames[b].last_use;
      }
      return a < b;
    };
    if (shortlist_.size() > kShortlist) {
      std::partial_sort(shortlist_.begin(),
                        shortlist_.begin() + kShortlist, shortlist_.end(),
                        lru_order);
      shortlist_.resize(kShortlist);
    } else {
      std::sort(shortlist_.begin(), shortlist_.end(), lru_order);
    }

    std::uint32_t best = shortlist_.front();
    auto best_key = ScoreOf(best, ctx);
    for (std::size_t i = 1; i < shortlist_.size(); ++i) {
      const std::uint32_t frame = shortlist_[i];
      const auto key = ScoreOf(frame, ctx);
      if (key < best_key) {
        best = frame;
        best_key = key;
      }
    }
    return best;
  }

 private:
  struct Score {
    std::uint64_t pending = 0;   ///< re-miss guard: churny frames lose
    std::uint64_t distance = 0;  ///< sweep shifts to reach the slot
    std::uint64_t last_use = 0;
    std::uint32_t frame = 0;

    [[nodiscard]] bool operator<(const Score& other) const noexcept {
      if (pending != other.pending) return pending < other.pending;
      if (distance != other.distance) return distance < other.distance;
      if (last_use != other.last_use) return last_use < other.last_use;
      return frame < other.frame;
    }
  };

  [[nodiscard]] Score ScoreOf(std::uint32_t frame,
                              const EvictionContext& ctx) const {
    Score score;
    score.pending = ctx.pending_uses[frame];
    score.last_use = ctx.frames[frame].last_use;
    score.frame = frame;
    if (ctx.placement != nullptr && ctx.placement->IsPlaced(frame)) {
      const core::Slot slot = ctx.placement->SlotOf(frame);
      if (slot.dbc < ctx.last_offsets.size() &&
          ctx.last_offsets[slot.dbc] >= 0) {
        score.distance = static_cast<std::uint64_t>(
            std::llabs(static_cast<std::int64_t>(slot.offset) -
                       ctx.last_offsets[slot.dbc]));
      } else {
        // Untouched DBC: the sweep pays the alignment distance from the
        // port, approximated by the slot's offset itself.
        score.distance = slot.offset;
      }
    }
    return score;
  }

  EvictionPolicyInfo info_;
  std::vector<std::uint32_t> shortlist_;
};

}  // namespace

EvictionPolicyRegistry& EvictionPolicyRegistry::Global() {
  static EvictionPolicyRegistry* registry = [] {
    // Leaked: outlives EvictionPolicyRegistrar uses in static
    // destructors.
    // NOLINTNEXTLINE(rtmlint:naked-new): leaked Global() singleton.
    auto* r = new EvictionPolicyRegistry();
    r->ClaimCellNamespace("cache eviction policy");
    RegisterBuiltinEvictionPolicies(*r);
    return r;
  }();
  return *registry;
}

void EvictionPolicyRegistry::Register(EvictionPolicyInfo info,
                                      Factory factory) {
  if (!factory) {
    throw std::invalid_argument("EvictionPolicyRegistry: null factory for '" +
                                info.name + "'");
  }
  std::string key = util::ToLower(info.name);
  const auto valid_char = [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '-' || c == '_' || c == '.';
  };
  if (key.empty() || !std::all_of(key.begin(), key.end(), valid_char)) {
    throw std::invalid_argument("EvictionPolicyRegistry: invalid name '" +
                                info.name + "'");
  }
  if (namespace_kind_ != nullptr) {
    core::RegistryNamespace::Global().Claim(key, namespace_kind_);
  }
  info.name = key;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    throw std::invalid_argument("EvictionPolicyRegistry: duplicate policy '" +
                                key + "'");
  }
  entries_.insert(
      it, {std::move(key), Entry{std::move(info), std::move(factory)}});
}

const EvictionPolicyRegistry::Entry* EvictionPolicyRegistry::FindEntry(
    const std::string& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) return nullptr;
  return &it->second;
}

std::unique_ptr<EvictionPolicy> EvictionPolicyRegistry::Create(
    std::string_view name, std::uint64_t seed) const {
  const std::string key = util::ToLower(name);
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* entry = FindEntry(key);
    if (entry == nullptr) return nullptr;
    factory = entry->factory;
  }
  // Run the factory unlocked: factories may consult the registries.
  return factory(seed);
}

std::optional<EvictionPolicyInfo> EvictionPolicyRegistry::Describe(
    std::string_view name) const {
  const std::string key = util::ToLower(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindEntry(key);
  if (entry == nullptr) return std::nullopt;
  return entry->info;
}

bool EvictionPolicyRegistry::Contains(std::string_view name) const {
  const std::string key = util::ToLower(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  return FindEntry(key) != nullptr;
}

std::vector<std::string> EvictionPolicyRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(key);
  return names;
}

std::size_t EvictionPolicyRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void RegisterBuiltinEvictionPolicies(EvictionPolicyRegistry& registry) {
  registry.Register(
      {"cache-lru", "evict the least recently used resident frame"},
      [](std::uint64_t) {
        return std::make_unique<LruPolicy>(EvictionPolicyInfo{
            "cache-lru", "evict the least recently used resident frame"});
      });
  registry.Register(
      {"cache-lfu",
       "evict the least frequently used resident frame (recency breaks "
       "ties)"},
      [](std::uint64_t) {
        return std::make_unique<LfuPolicy>(EvictionPolicyInfo{
            "cache-lfu",
            "evict the least frequently used resident frame (recency breaks "
            "ties)"});
      });
  registry.Register(
      {"cache-sample",
       "zsim-style sampled LRU: evict the least recently used of 5 "
       "randomly drawn frames"},
      [](std::uint64_t seed) {
        return std::make_unique<SampledLruPolicy>(
            EvictionPolicyInfo{
                "cache-sample",
                "zsim-style sampled LRU: evict the least recently used of 5 "
                "randomly drawn frames"},
            seed);
      });
  registry.Register(
      {"cache-shift-aware",
       "evict the cold frame whose slot is cheapest to sweep from the "
       "current port alignment, avoiding frames still needed this window"},
      [](std::uint64_t) {
        return std::make_unique<ShiftAwarePolicy>(EvictionPolicyInfo{
            "cache-shift-aware",
            "evict the cold frame whose slot is cheapest to sweep from the "
            "current port alignment, avoiding frames still needed this "
            "window"});
      });
}

EvictionPolicyRegistrar::EvictionPolicyRegistrar(
    EvictionPolicyInfo info, EvictionPolicyRegistry::Factory factory) {
  EvictionPolicyRegistry::Global().Register(std::move(info),
                                            std::move(factory));
}

}  // namespace rtmp::cache
