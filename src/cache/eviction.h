// Eviction policies for the hybrid-memory cache tier: which resident
// frame to give up when a miss needs room.
//
// The cache engine (cache/engine.h) maps logical variables onto a fixed
// pool of device frames. When an access touches a variable with no
// frame, the engine asks a policy to pick a victim among the candidate
// frames, writes the victim back if dirty, and fills the newcomer into
// the freed frame. Policies are pure victim-selectors: they see frame
// bookkeeping (recency, frequency, dirtiness, owner), the wrapped
// engine's current placement, and a summary of the rest of the window
// (pending uses per frame), and return one frame index. All residency
// and traffic bookkeeping stays in the engine.
//
// Policies may be stateful (cache-sample keeps an RNG) but are used from
// a single thread per engine; the registry hands out a fresh instance
// per Create() call rather than caching, precisely so engines never
// share policy state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/placement.h"

namespace rtmp::cache {

/// Frame index sentinel: "no frame" / "no occupant" marker shared by the
/// engine and the policies.
inline constexpr std::uint32_t kNoFrame = static_cast<std::uint32_t>(-1);

/// Per-frame bookkeeping the engine maintains and policies read.
struct FrameInfo {
  /// Logical variable currently resident in this frame; kNoFrame while
  /// the frame has never been admitted to (cannot happen once misses
  /// start: admission fills frames before eviction begins).
  std::uint32_t occupant = kNoFrame;
  /// The resident word differs from the backing copy (a write landed
  /// since the fill); evicting it costs a writeback.
  bool dirty = false;
  /// Engine tick of the occupant's most recent access.
  std::uint64_t last_use = 0;
  /// Total accesses the occupant has received while resident.
  std::uint64_t uses = 0;
  /// Tick at which the current occupant was admitted.
  std::uint64_t admitted = 0;
  /// Owning tenant index (serve composition); 0 in single-tenant use.
  std::uint32_t owner = 0;
};

/// Everything a policy may consult when picking a victim. Spans point
/// into engine-owned storage and are valid only for the duration of the
/// PickVictim call.
struct EvictionContext {
  /// Frame indices the victim must come from (never empty). Usually all
  /// frames; under per-tenant quotas, the over-quota tenant's frames.
  std::span<const std::uint32_t> candidates;
  /// Bookkeeping for ALL frames, indexed by frame id.
  std::span<const FrameInfo> frames;
  /// The wrapped engine's live placement of frames onto the device, or
  /// nullptr before the first window has been placed. Frame f's slot is
  /// placement->SlotOf(f) when placement->IsPlaced(f).
  const core::Placement* placement = nullptr;
  /// Per-DBC offset of the most recent access the engine routed there
  /// this window, -1 for DBCs untouched so far — a proxy for where each
  /// DBC's port alignment sits, so shift-aware policies can price the
  /// eviction sweep. Indexed by DBC id; empty before the first window.
  std::span<const std::int64_t> last_offsets;
  /// Remaining accesses to each frame's occupant in the current window
  /// (indexed by frame id). A frame with pending uses will miss again
  /// this very window if evicted now.
  std::span<const std::uint64_t> pending_uses;
  /// Engine tick of the access that triggered the miss.
  std::uint64_t tick = 0;
};

/// Self-description of a registered eviction policy.
struct EvictionPolicyInfo {
  /// Registry key: lowercase, unique ("cache-lru", ...).
  std::string name;
  /// One-line human-readable description for listings and docs.
  std::string summary;
};

/// Abstract victim selector. One instance serves one engine; PickVictim
/// is non-const so policies may keep state (sampling RNGs, decayed
/// counters). Must return one of ctx.candidates.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  [[nodiscard]] virtual const EvictionPolicyInfo& Describe()
      const noexcept = 0;

  /// Picks the frame to evict. `ctx.candidates` is never empty; the
  /// engine validates the returned frame is among them and throws
  /// std::logic_error otherwise (a policy bug, not an input error).
  [[nodiscard]] virtual std::uint32_t PickVictim(
      const EvictionContext& ctx) = 0;
};

/// Name -> factory registry for eviction policies. Same shape and
/// discipline as online::OnlinePolicyRegistry (lowercase keys, sorted
/// flat vector, process-wide name arbitration via
/// core::RegistryNamespace), with one deliberate difference: Create()
/// builds a FRESH instance every call instead of caching — eviction
/// policies are stateful per engine.
class EvictionPolicyRegistry {
 public:
  /// `seed` feeds randomized policies (cache-sample); deterministic
  /// policies ignore it.
  using Factory =
      std::function<std::unique_ptr<EvictionPolicy>(std::uint64_t seed)>;

  EvictionPolicyRegistry() = default;
  EvictionPolicyRegistry(const EvictionPolicyRegistry&) = delete;
  EvictionPolicyRegistry& operator=(const EvictionPolicyRegistry&) = delete;

  /// The process-wide registry, pre-populated with the built-in policies
  /// (see RegisterBuiltinEvictionPolicies).
  [[nodiscard]] static EvictionPolicyRegistry& Global();

  /// Registers `factory` under `info.name` (normalized to lowercase).
  /// Throws std::invalid_argument on an empty or ill-charset name
  /// (outside [a-z0-9._-]), a duplicate, or a null factory.
  void Register(EvictionPolicyInfo info, Factory factory);

  /// Marks this instance as an owner in the process-wide registry-name
  /// space (core/registry_namespace.h); Global() enables it ("cache
  /// eviction policy"), fresh test instances leave it off.
  void ClaimCellNamespace(const char* kind) noexcept {
    namespace_kind_ = kind;
  }

  /// A fresh instance of the policy registered under `name`; nullptr if
  /// unknown.
  [[nodiscard]] std::unique_ptr<EvictionPolicy> Create(
      std::string_view name, std::uint64_t seed) const;

  /// Metadata of the policy registered under `name`; nullopt if unknown.
  [[nodiscard]] std::optional<EvictionPolicyInfo> Describe(
      std::string_view name) const;

  [[nodiscard]] bool Contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> Names() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    EvictionPolicyInfo info;
    Factory factory;
  };

  /// Requires mutex_ to be held by the caller.
  [[nodiscard]] const Entry* FindEntry(const std::string& key) const;

  mutable std::mutex mutex_;
  // Sorted by key; small enough (a handful of policies) that a flat
  // vector beats a map.
  std::vector<std::pair<std::string, Entry>> entries_;
  /// Non-null only for Global() (see ClaimCellNamespace).
  const char* namespace_kind_ = nullptr;
};

/// Registers the built-in policies into `registry`:
///
///   cache-lru          evict the least recently used frame;
///   cache-lfu          evict the least frequently used frame (recency,
///                      then id, break ties);
///   cache-sample       zsim-style sampled LRU: draw K=5 candidate
///                      frames with the policy's own RNG, evict the
///                      least recently used of the sample — O(K) per
///                      miss regardless of capacity;
///   cache-shift-aware  rank an LRU-ordered shortlist by a placement-
///                      aware score: prefer victims with no pending uses
///                      this window, then the victim whose slot is
///                      closest to its DBC's last serviced offset (the
///                      cheapest eviction sweep under the cost model's
///                      first-access-free convention), then recency.
///
/// Global() calls this once; tests use it to build fresh registries.
void RegisterBuiltinEvictionPolicies(EvictionPolicyRegistry& registry);

/// RAII self-registration into the Global() registry, for policies
/// defined outside this library. Same linker caveat as
/// core::StrategyRegistrar: keep registrars in a translation unit that
/// is otherwise linked in.
struct EvictionPolicyRegistrar {
  EvictionPolicyRegistrar(EvictionPolicyInfo info,
                          EvictionPolicyRegistry::Factory factory);
};

}  // namespace rtmp::cache
