// rtmlint: hot-path — mutation scoring runs millions of Price* calls per
// second; allocations here are advisory findings (see hot-path-alloc).
#include "core/cost_evaluator.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <span>
#include <stdexcept>

namespace rtmp::core {

namespace {

std::uint64_t PackPair(VariableId u, VariableId v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

std::uint64_t OffsetDistance(std::uint32_t a, std::uint32_t b) noexcept {
  return a > b ? a - b : b - a;
}

std::uint64_t PortDistance(std::uint32_t offset, std::int64_t port) noexcept {
  return static_cast<std::uint64_t>(
      std::llabs(static_cast<std::int64_t>(offset) - port));
}

std::uint64_t MixKey(std::uint64_t key) noexcept {
  // splitmix64 finalizer: cheap and well distributed for packed pairs.
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ULL;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBULL;
  return key ^ (key >> 31);
}

}  // namespace

// ---- EdgeIndex -------------------------------------------------------------

std::uint32_t CostEvaluator::EdgeIndex::FindOrInsert(std::uint64_t key,
                                                     std::uint32_t fresh) {
  if (keys_.empty() || (size_ + 1) * 4 > keys_.size() * 3) Grow();
  const std::size_t mask = keys_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(MixKey(key)) & mask;
  while (keys_[slot] != kEmptyKey) {
    if (keys_[slot] == key) return slots_[slot];
    slot = (slot + 1) & mask;
  }
  keys_[slot] = key;
  slots_[slot] = fresh;
  ++size_;
  return fresh;
}

void CostEvaluator::EdgeIndex::Clear() noexcept {
  std::fill(keys_.begin(), keys_.end(), kEmptyKey);
  size_ = 0;
}

void CostEvaluator::EdgeIndex::Grow() {
  const std::size_t capacity = keys_.empty() ? 16 : keys_.size() * 2;
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint32_t> old_slots = std::move(slots_);
  keys_.assign(capacity, kEmptyKey);
  slots_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptyKey) continue;
    std::size_t slot = static_cast<std::size_t>(MixKey(old_keys[i])) & mask;
    while (keys_[slot] != kEmptyKey) slot = (slot + 1) & mask;
    keys_[slot] = old_keys[i];
    slots_[slot] = old_slots[i];
  }
}

// ---- construction ----------------------------------------------------------

CostEvaluator::CostEvaluator(const trace::AccessSequence& seq,
                             CostOptions options)
    : seq_(&seq), options_(std::move(options)) {
  if (options_.port_offsets.empty()) {
    throw std::invalid_argument("CostOptions: need at least one port");
  }
  if (options_.domains_per_dbc != 0) {
    for (const std::uint32_t port : options_.port_offsets) {
      if (port >= options_.domains_per_dbc) {
        throw std::invalid_argument("CostEvaluator: port offset out of range");
      }
    }
  }
  single_port_ = options_.port_offsets.size() == 1;
  first_pays_ = options_.initial_alignment == rtm::InitialAlignment::kZero;
  port_ = static_cast<std::int64_t>(options_.port_offsets.front());
  var_of_.reserve(seq.size());
  for (std::uint32_t t = 0; t < seq.size(); ++t) {
    var_of_.push_back(seq[t].variable);
  }
  // CSR position table via counting sort: one contiguous arena, grouped
  // by variable, ascending within each group (Append order).
  pos_begin_.assign(seq.num_variables() + 1, 0);
  for (const VariableId v : var_of_) ++pos_begin_[v + 1];
  for (std::size_t v = 1; v < pos_begin_.size(); ++v) {
    pos_begin_[v] += pos_begin_[v - 1];
  }
  pos_data_.resize(seq.size());
  {
    std::vector<std::uint32_t> cursor(pos_begin_.begin(),
                                      pos_begin_.end() - 1);
    for (std::uint32_t t = 0; t < seq.size(); ++t) {
      pos_data_[cursor[var_of_[t]]++] = t;
    }
  }
  prev_.assign(seq.size(), kNoPosition);
  next_.assign(seq.size(), kNoPosition);
  offset_scratch_.assign(seq.num_variables(), 0);
}

void CostEvaluator::RequireBound() const {
  if (!bound_) {
    throw std::logic_error("CostEvaluator: no placement bound");
  }
}

std::uint64_t CostEvaluator::TotalFromDbcs() const {
  std::uint64_t total = 0;
  for (const DbcData& data : dbcs_) total += data.cost;
  return total;
}

void CostEvaluator::AssertMatchesShiftCost() const {
#ifndef NDEBUG
  assert(total_ == ShiftCost(*seq_, mirror_, options_));
#endif
}

// ---- transition weights ----------------------------------------------------

std::uint32_t CostEvaluator::EdgeFor(DbcData& data, std::uint64_t key) {
  const std::uint32_t slot = data.edge_index.FindOrInsert(
      key, static_cast<std::uint32_t>(data.edges.size()));
  if (slot == data.edges.size()) {
    if (data.edges.Append(key, 0)) ++arena_growths_;
    ++data.dead;  // born a tombstone until a weight write revives it
  }
  return slot;
}

void CostEvaluator::SetEdgeWeight(DbcData& data, std::uint32_t slot,
                                  std::uint64_t weight) {
  const bool was_dead = data.edges.weights[slot] == 0;
  data.edges.weights[slot] = weight;
  const bool is_dead = weight == 0;
  if (was_dead && !is_dead) {
    --data.dead;
  } else if (!was_dead && is_dead) {
    ++data.dead;
  }
}

void CostEvaluator::AddWeight(std::uint32_t dbc, VariableId u, VariableId v,
                              std::int64_t delta) {
  DbcData& data = dbcs_[dbc];
  const std::uint64_t key = PackPair(u, v);
  const std::uint32_t slot = EdgeFor(data, key);
  const std::uint64_t old_weight = data.edges.weights[slot];
  if (log_weights_) weight_log_.push_back({dbc, key, old_weight});
  SetEdgeWeight(data, slot,
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(old_weight) + delta));
}

void CostEvaluator::SpliceOutAll(std::uint32_t dbc, VariableId v,
                                 bool save_links, bool update_weights) {
  DbcData& data = dbcs_[dbc];
  for (const std::uint32_t t : PositionsOf(v)) {
    const std::uint32_t p = prev_[t];
    const std::uint32_t n = next_[t];
    if (save_links) links_arena_.emplace_back(p, n);
    if (update_weights) {
      if (p != kNoPosition) AddWeight(dbc, var_of_[p], v, -1);
      if (n != kNoPosition) AddWeight(dbc, v, var_of_[n], -1);
      if (p != kNoPosition && n != kNoPosition) {
        AddWeight(dbc, var_of_[p], var_of_[n], +1);
      }
    }
    if (p != kNoPosition) next_[p] = n; else data.head = n;
    if (n != kNoPosition) prev_[n] = p; else data.tail = p;
  }
  data.count -= FreqOf(v);
}

void CostEvaluator::SpliceInAll(std::uint32_t dbc, VariableId v,
                                bool update_weights) {
  DbcData& data = dbcs_[dbc];
  // Merge v's (ascending) occurrences into the DBC's ascending chain; the
  // cursor never backs up, so the whole batch costs one chain walk.
  std::uint32_t after = kNoPosition;   // last chain node with position < t
  std::uint32_t before = data.head;    // first chain node with position > t
  for (const std::uint32_t t : PositionsOf(v)) {
    while (before != kNoPosition && before < t) {
      after = before;
      before = next_[before];
    }
    if (update_weights) {
      if (after != kNoPosition && before != kNoPosition) {
        AddWeight(dbc, var_of_[after], var_of_[before], -1);
      }
      if (after != kNoPosition) AddWeight(dbc, var_of_[after], v, +1);
      if (before != kNoPosition) AddWeight(dbc, v, var_of_[before], +1);
    }
    prev_[t] = after;
    next_[t] = before;
    if (after != kNoPosition) next_[after] = t; else data.head = t;
    if (before != kNoPosition) prev_[before] = t; else data.tail = t;
    after = t;
  }
  data.count += FreqOf(v);
}

void CostEvaluator::RebuildDbcWeights(std::uint32_t dbc) {
  DbcData& data = dbcs_[dbc];
  data.edges.clear();
  data.edge_index.Clear();
  data.dead = 0;
  const auto& members = mirror_.dbc(dbc);
  const std::size_t n = members.size();
  // Dense path: offsets are ready-made local ids, so pair counting is two
  // array reads and one increment per chain node, and the harvest touches
  // n^2 cells. Worth it whenever that beats hashing every chain node.
  if (n >= 2 && n * n <= 2 * data.count) {
    matrix_scratch_.assign(n * n, 0);
    for (std::uint32_t offset = 0; offset < n; ++offset) {
      offset_scratch_[members[offset]] = offset;
    }
    std::uint32_t t = data.head;
    while (t != kNoPosition && next_[t] != kNoPosition) {
      ++matrix_scratch_[offset_scratch_[var_of_[t]] * n +
                        offset_scratch_[var_of_[next_[t]]]];
      t = next_[t];
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        std::uint64_t weight = matrix_scratch_[i * n + j];
        if (j != i) weight += matrix_scratch_[j * n + i];
        if (weight == 0) continue;
        const std::uint64_t key = PackPair(members[i], members[j]);
        (void)data.edge_index.FindOrInsert(
            key, static_cast<std::uint32_t>(data.edges.size()));
        if (data.edges.Append(key, weight)) ++arena_growths_;
      }
    }
    return;
  }
  const bool was_logging = log_weights_;
  log_weights_ = false;  // a wholesale rebuild is undone from its snapshot
  for (std::uint32_t t = data.head; t != kNoPosition; t = next_[t]) {
    if (next_[t] != kNoPosition) {
      AddWeight(dbc, var_of_[t], var_of_[next_[t]], +1);
    }
  }
  log_weights_ = was_logging;
}

void CostEvaluator::UnlinkAll(DbcData& data, VariableId v) {
  for (const std::uint32_t t : PositionsOf(v)) {
    const std::uint32_t p = prev_[t];
    const std::uint32_t n = next_[t];
    if (p != kNoPosition) next_[p] = n; else data.head = n;
    if (n != kNoPosition) prev_[n] = p; else data.tail = p;
  }
  data.count -= FreqOf(v);
}

void CostEvaluator::RelinkAll(DbcData& data, VariableId v,
                              std::size_t links_begin) {
  // Exact inverse of SpliceOutAll's link surgery: relink in reverse order
  // so each occurrence finds the neighbors its saved pair names in place.
  const std::span<const std::uint32_t> positions = PositionsOf(v);
  for (std::size_t i = positions.size(); i-- > 0;) {
    const std::uint32_t t = positions[i];
    const auto [p, n] = links_arena_[links_begin + i];
    prev_[t] = p;
    next_[t] = n;
    if (p != kNoPosition) next_[p] = t; else data.head = t;
    if (n != kNoPosition) prev_[n] = t; else data.tail = t;
  }
  data.count += FreqOf(v);
}

void CostEvaluator::RepriceDbc(std::uint32_t d) {
  DbcData& data = dbcs_[d];
  // Compact when tombstones outnumber live edges (amortized O(1)). Safe
  // mid-chain: undo state references edges by key, never by slot. The
  // parallel SoA arrays compact in lockstep.
  if (data.dead > 16 && data.dead * 2 > data.edges.size()) {
    std::size_t write = 0;
    for (std::size_t i = 0; i < data.edges.size(); ++i) {
      if (data.edges.weights[i] == 0) continue;
      data.edges.keys[write] = data.edges.keys[i];
      data.edges.us[write] = data.edges.us[i];
      data.edges.vs[write] = data.edges.vs[i];
      data.edges.weights[write] = data.edges.weights[i];
      ++write;
    }
    data.edges.keys.resize(write);
    data.edges.us.resize(write);
    data.edges.vs.resize(write);
    data.edges.weights.resize(write);
    data.dead = 0;
    data.edge_index.Clear();
    for (std::size_t i = 0; i < data.edges.size(); ++i) {
      (void)data.edge_index.FindOrInsert(data.edges.keys[i],
                                         static_cast<std::uint32_t>(i));
    }
  }
  // Dense per-variable offsets: one unchecked read per edge endpoint
  // instead of a checked SlotOf. Only this DBC's entries are refreshed;
  // every live edge endpoint is a member. Tombstone endpoints may read a
  // stale entry, but their weight is zero, so they contribute nothing.
  const auto& members = mirror_.dbc(d);
  for (std::uint32_t offset = 0; offset < members.size(); ++offset) {
    offset_scratch_[members[offset]] = offset;
  }
  std::uint64_t cost = PriceDbcEdgesAll(data);
  if (first_pays_ && data.head != kNoPosition) {
    cost += PortDistance(offset_scratch_[var_of_[data.head]], port_);
  }
  data.cost = cost;
}

void CostEvaluator::RebuildLinks() {
  for (DbcData& data : dbcs_) {
    data.head = kNoPosition;
    data.tail = kNoPosition;
    data.count = 0;
  }
  for (std::uint32_t t = 0; t < var_of_.size(); ++t) {
    DbcData& data = dbcs_[mirror_.SlotOf(var_of_[t]).dbc];
    prev_[t] = data.tail;
    next_[t] = kNoPosition;
    if (data.tail != kNoPosition) next_[data.tail] = t; else data.head = t;
    data.tail = t;
    ++data.count;
  }
  links_valid_ = true;
}

void CostEvaluator::RebuildWeights() {
  if (!links_valid_) RebuildLinks();
  for (std::uint32_t d = 0; d < dbcs_.size(); ++d) {
    RebuildDbcWeights(d);
  }
  weights_valid_ = true;
}

void CostEvaluator::RecomputeMultiPort() {
  const auto per_dbc = PerDbcShiftCost(*seq_, mirror_, options_);
  for (std::uint32_t d = 0; d < per_dbc.size(); ++d) {
    dbcs_[d].cost = per_dbc[d];
  }
}

// ---- binding ---------------------------------------------------------------

void CostEvaluator::RebuildAll(const Placement& placement, bool with_weights) {
  ValidateAgainstDomains(placement, options_);
  bound_ = false;  // basic guarantee: a throwing rebuild leaves us unbound
  // A placement may declare more variables than the sequence accesses
  // (ShiftCost accepts that); grow the per-variable tables so the extra
  // ids index safely. Their CSR position ranges stay empty (trailing
  // pos_begin_ entries all point at the arena end): never accessed.
  if (placement.num_variables() > NumVars()) {
    pos_begin_.resize(placement.num_variables() + 1,
                      static_cast<std::uint32_t>(pos_data_.size()));
    offset_scratch_.resize(placement.num_variables(), 0);
  }
  mirror_ = placement;
  dbcs_.resize(placement.num_dbcs());
  for (DbcData& data : dbcs_) {
    data.head = kNoPosition;
    data.tail = kNoPosition;
    data.count = 0;
    data.edges.clear();
    data.edge_index.Clear();
    data.dead = 0;
    data.cost = 0;
  }
  if (!single_port_) {
    // DbcState replay path: bit-identical by construction.
    RecomputeMultiPort();
  } else {
    constexpr std::int64_t kNoAccess = -1;
    last_off_scratch_.assign(dbcs_.size(), kNoAccess);
    std::vector<std::int64_t>& last_off = last_off_scratch_;
    for (std::uint32_t t = 0; t < var_of_.size(); ++t) {
      const VariableId v = var_of_[t];
      const Slot slot = placement.SlotOf(v);  // throws if unplaced
      DbcData& data = dbcs_[slot.dbc];
      if (with_weights) {
        // Thread the chain links; without weights they stay stale (the
        // random walk's rebuild-per-candidate never reads them) and the
        // first chain consumer runs RebuildLinks.
        prev_[t] = data.tail;
        next_[t] = kNoPosition;
        if (data.tail != kNoPosition) next_[data.tail] = t; else data.head = t;
        data.tail = t;
        ++data.count;
        if (prev_[t] != kNoPosition) {
          AddWeight(slot.dbc, var_of_[prev_[t]], v, +1);
        }
      }
      if (last_off[slot.dbc] == kNoAccess) {
        if (first_pays_) data.cost += PortDistance(slot.offset, port_);
      } else {
        data.cost += static_cast<std::uint64_t>(std::llabs(
            static_cast<std::int64_t>(slot.offset) - last_off[slot.dbc]));
      }
      last_off[slot.dbc] = static_cast<std::int64_t>(slot.offset);
    }
  }
  links_valid_ = single_port_ && with_weights;
  weights_valid_ = single_port_ && with_weights;
  total_ = TotalFromDbcs();
  bound_ = true;
  undo_.clear();
  links_arena_.clear();
  weight_log_.clear();
  AssertMatchesShiftCost();
}

void CostEvaluator::Bind(const Placement& placement) {
  RebuildAll(placement, /*with_weights=*/true);
  stale_streak_ = 0;
}

std::uint64_t CostEvaluator::Evaluate(const Placement& placement) {
  if (!bound_ || !single_port_ ||
      mirror_.num_dbcs() != placement.num_dbcs() ||
      mirror_.num_variables() != placement.num_variables()) {
    RebuildAll(placement, /*with_weights=*/false);
    stale_streak_ = 1;
    return total_;
  }
  if (!weights_valid_ && stale_streak_ >= 2 && (stale_streak_ & 7) != 0) {
    // A stream of unrelated candidates: skip the diff scan entirely.
    // Every 8th call still falls through to the scan, so a stream that
    // turns incremental (a GA settling down after its random initial
    // population) escapes within a handful of evaluations.
    RebuildAll(placement, /*with_weights=*/false);
    ++stale_streak_;
    return total_;
  }
  ValidateAgainstDomains(placement, options_);

  // Diff against the bound placement: accessed variables that changed DBC
  // (weight splices) and DBCs whose list changed at all (re-pricing).
  std::vector<VariableId> moved;
  std::uint64_t moved_positions = 0;
  for (VariableId v = 0; v < NumVars(); ++v) {
    if (FreqOf(v) == 0) continue;  // unaccessed: never costs
    if (!placement.IsPlaced(v)) {
      throw std::logic_error("Placement: variable is unplaced");
    }
    if (mirror_.SlotOf(v).dbc != placement.SlotOf(v).dbc) {
      moved.push_back(v);
      moved_positions += FreqOf(v);
    }
  }
  std::vector<std::uint32_t> dirty;
  for (std::uint32_t d = 0; d < dbcs_.size(); ++d) {
    if (placement.dbc(d) != mirror_.dbc(d)) dirty.push_back(d);
  }
  if (dirty.empty()) {  // identical lists: nothing to re-price
    mirror_ = placement;
    undo_.clear();
    links_arena_.clear();
    weight_log_.clear();
    return total_;
  }
  // Large diffs (the random walk's unrelated candidates): one flat
  // SinglePortCosts-style pass beats splicing, and skipping the weight
  // rebuild keeps it exactly that pass. Small diffs with stale weights
  // (first diff after such a pass): rebuild once, with weights, and
  // return to the incremental path.
  if (!weights_valid_ || moved_positions * 4 >= var_of_.size()) {
    const bool with_weights = moved_positions * 4 < var_of_.size();
    RebuildAll(placement, with_weights);
    stale_streak_ = with_weights ? 0 : stale_streak_ + 1;
    return total_;
  }
  stale_streak_ = 0;
  for (const VariableId v : moved) {
    SpliceOutAll(mirror_.SlotOf(v).dbc, v, /*save_links=*/false,
                 /*update_weights=*/true);
    SpliceInAll(placement.SlotOf(v).dbc, v, /*update_weights=*/true);
  }
  mirror_ = placement;
  for (const std::uint32_t d : dirty) RepriceDbc(d);
  total_ = TotalFromDbcs();
  undo_.clear();
  links_arena_.clear();
  weight_log_.clear();
  AssertMatchesShiftCost();
  return total_;
}

std::uint64_t CostEvaluator::Cost() const {
  RequireBound();
  return total_;
}

std::vector<std::uint64_t> CostEvaluator::PerDbcCost() const {
  RequireBound();
  std::vector<std::uint64_t> per_dbc;
  per_dbc.reserve(dbcs_.size());
  for (const DbcData& data : dbcs_) per_dbc.push_back(data.cost);
  return per_dbc;
}

const Placement& CostEvaluator::placement() const {
  RequireBound();
  return mirror_;
}

// ---- trial scoring ---------------------------------------------------------

std::uint64_t CostEvaluator::PriceDbcEdgesAll(const DbcData& data) const {
  // The hot scan: no tombstone test (weight 0 prices to zero — a stale
  // offset read stays in bounds, offset_scratch_ covers every variable),
  // no key unpacking, no branches. Plain index arithmetic over four
  // parallel arrays that the compiler auto-vectorizes.
  const std::size_t n = data.edges.size();
  const std::uint32_t* const us = data.edges.us.data();
  const std::uint32_t* const vs = data.edges.vs.data();
  const std::uint64_t* const ws = data.edges.weights.data();
  const std::uint32_t* const offsets = offset_scratch_.data();
  std::uint64_t cost = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t a = offsets[us[i]];
    const std::uint32_t b = offsets[vs[i]];
    cost += ws[i] * (std::max(a, b) - std::min(a, b));
  }
  return cost;
}

std::uint64_t CostEvaluator::PriceDbcEdgesExcluding(
    const DbcData& data, VariableId excluded) const {
  // PeekMove's from-side: same scan, with edges incident to the departing
  // variable masked out arithmetically (keep = 0/1) instead of branched.
  const std::size_t n = data.edges.size();
  const std::uint32_t* const us = data.edges.us.data();
  const std::uint32_t* const vs = data.edges.vs.data();
  const std::uint64_t* const ws = data.edges.weights.data();
  const std::uint32_t* const offsets = offset_scratch_.data();
  std::uint64_t cost = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t a = offsets[us[i]];
    const std::uint32_t b = offsets[vs[i]];
    const std::uint64_t keep = us[i] != excluded && vs[i] != excluded;
    cost += keep * ws[i] * (std::max(a, b) - std::min(a, b));
  }
  return cost;
}

std::uint64_t CostEvaluator::PeekByReplay(const Placement& candidate) const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : PerDbcShiftCost(*seq_, candidate, options_)) {
    total += c;
  }
  return total;
}

std::uint64_t CostEvaluator::PeekTranspose(std::uint32_t dbc, std::size_t i,
                                           std::size_t j) {
  RequireBound();
  const auto& members = mirror_.dbc(dbc);  // validates dbc
  if (i >= members.size() || j >= members.size()) {
    throw std::out_of_range("Placement: transpose position out of range");
  }
  if (i == j) return total_;
  if (!single_port_) {
    Placement candidate = mirror_;
    candidate.Transpose(dbc, i, j);
    return PeekByReplay(candidate);
  }
  if (!weights_valid_) RebuildWeights();
  for (std::uint32_t offset = 0; offset < members.size(); ++offset) {
    offset_scratch_[members[offset]] = offset;
  }
  std::swap(offset_scratch_[members[i]], offset_scratch_[members[j]]);
  const DbcData& data = dbcs_[dbc];
  std::uint64_t new_cost = PriceDbcEdgesAll(data);
  if (first_pays_ && data.head != kNoPosition) {
    new_cost += PortDistance(offset_scratch_[var_of_[data.head]], port_);
  }
  return total_ - data.cost + new_cost;
}

std::uint64_t CostEvaluator::PeekReorder(
    std::uint32_t dbc, const std::vector<VariableId>& order) {
  RequireBound();
  const auto& members = mirror_.dbc(dbc);  // validates dbc
  if (order.size() != members.size()) {
    throw std::invalid_argument("Placement: reorder size mismatch");
  }
  // Permutation check without sorting: every entry must live in this DBC
  // and appear once (marks staged in offset_scratch_, overwritten below).
  for (const VariableId v : order) {
    if (v >= offset_scratch_.size() || !mirror_.IsPlaced(v) ||
        mirror_.SlotOf(v).dbc != dbc) {
      throw std::invalid_argument("Placement: reorder is not a permutation");
    }
    offset_scratch_[v] = kNoPosition;
  }
  for (const VariableId v : order) {
    if (offset_scratch_[v] != kNoPosition) {
      throw std::invalid_argument("Placement: reorder is not a permutation");
    }
    offset_scratch_[v] = 0;
  }
  if (!single_port_) {
    Placement candidate = mirror_;
    candidate.Reorder(dbc, order);
    return PeekByReplay(candidate);
  }
  if (!weights_valid_) RebuildWeights();
  for (std::uint32_t offset = 0; offset < order.size(); ++offset) {
    offset_scratch_[order[offset]] = offset;
  }
  const DbcData& data = dbcs_[dbc];
  std::uint64_t new_cost = PriceDbcEdgesAll(data);
  if (first_pays_ && data.head != kNoPosition) {
    new_cost += PortDistance(offset_scratch_[var_of_[data.head]], port_);
  }
  return total_ - data.cost + new_cost;
}

std::uint64_t CostEvaluator::PeekMove(VariableId v, std::uint32_t dbc) {
  RequireBound();
  const Slot old = mirror_.SlotOf(v);  // throws if unplaced
  if (dbc >= mirror_.num_dbcs()) {
    throw std::invalid_argument("Placement: DBC index out of range");
  }
  if (dbc != old.dbc && mirror_.capacity() != kUnboundedCapacity &&
      mirror_.dbc(dbc).size() >= mirror_.capacity()) {
    throw std::invalid_argument("Placement: DBC is full");
  }
  if (options_.domains_per_dbc != 0 && dbc != old.dbc &&
      mirror_.dbc(dbc).size() >= options_.domains_per_dbc) {
    throw std::invalid_argument("CostEvaluator: move deeper than DBC");
  }
  if (!single_port_) {
    Placement candidate = mirror_;
    candidate.MoveToEnd(v, dbc);
    return PeekByReplay(candidate);
  }
  if (!weights_valid_) RebuildWeights();

  if (dbc == old.dbc) {
    // v rotates to its own DBC's end; everything after it shifts down one.
    const auto& members = mirror_.dbc(dbc);
    const auto size = static_cast<std::uint32_t>(members.size());
    for (std::uint32_t offset = 0; offset < size; ++offset) {
      offset_scratch_[members[offset]] =
          offset > old.offset ? offset - 1 : offset;
    }
    offset_scratch_[v] = size - 1;
    const DbcData& data = dbcs_[dbc];
    std::uint64_t new_cost = PriceDbcEdgesAll(data);
    if (first_pays_ && data.head != kNoPosition) {
      new_cost += PortDistance(offset_scratch_[var_of_[data.head]], port_);
    }
    return total_ - data.cost + new_cost;
  }

  const DbcData& from = dbcs_[old.dbc];
  const DbcData& to = dbcs_[dbc];
  const auto& from_members = mirror_.dbc(old.dbc);
  const std::span<const std::uint32_t> occurrences = PositionsOf(v);

  // FROM side: gap-closed offsets, edges incident to v vanish, and each
  // maximal run of v's occurrences welds its outer neighbors together.
  for (const VariableId x : from_members) {
    const std::uint32_t offset = mirror_.SlotOf(x).offset;
    offset_scratch_[x] = offset > old.offset ? offset - 1 : offset;
  }
  std::uint64_t new_from = PriceDbcEdgesExcluding(from, v);
  for (const std::uint32_t t : occurrences) {
    const std::uint32_t p = prev_[t];
    const bool run_start = p == kNoPosition || var_of_[p] != v;
    if (run_start && p != kNoPosition) {
      // Find the run's right boundary only from its start (each run is
      // scanned once; total work stays O(freq(v))).
      std::uint32_t e = t;
      while (next_[e] != kNoPosition && var_of_[next_[e]] == v) {
        e = next_[e];
      }
      if (next_[e] != kNoPosition) {
        new_from += OffsetDistance(offset_scratch_[var_of_[p]],
                                   offset_scratch_[var_of_[next_[e]]]);
      }
    }
  }
  if (first_pays_) {
    std::uint32_t head = from.head;
    while (head != kNoPosition && var_of_[head] == v) head = next_[head];
    if (head != kNoPosition) {
      new_from += PortDistance(offset_scratch_[var_of_[head]], port_);
    }
  }

  // TO side: v lands at the end, nobody else shifts; walk the insertion
  // merge accumulating the new/broken transition prices.
  const auto v_offset = static_cast<std::uint32_t>(mirror_.dbc(dbc).size());
  std::int64_t to_delta = 0;
  std::uint32_t after = kNoPosition;
  bool after_is_v = false;
  std::uint32_t before = to.head;
  bool v_becomes_head = false;
  for (const std::uint32_t t : occurrences) {
    while (before != kNoPosition && before < t) {
      after = before;
      after_is_v = false;
      before = next_[before];
    }
    const std::uint32_t after_off =
        after == kNoPosition
            ? 0
            : (after_is_v ? v_offset
                          : mirror_.SlotOf(var_of_[after]).offset);
    if (after == kNoPosition && (to.head == kNoPosition || t < to.head)) {
      v_becomes_head = true;
    }
    if (before != kNoPosition) {
      const std::uint32_t before_off = mirror_.SlotOf(var_of_[before]).offset;
      if (after != kNoPosition) {
        to_delta -= static_cast<std::int64_t>(
            OffsetDistance(after_off, before_off));
      }
      to_delta += static_cast<std::int64_t>(
          OffsetDistance(v_offset, before_off));
    }
    if (after != kNoPosition) {
      to_delta += static_cast<std::int64_t>(
          OffsetDistance(after_off, v_offset));
    }
    after = t;
    after_is_v = true;
  }
  if (first_pays_ && v_becomes_head) {
    to_delta += static_cast<std::int64_t>(PortDistance(v_offset, port_));
    if (to.head != kNoPosition) {
      to_delta -= static_cast<std::int64_t>(
          PortDistance(mirror_.SlotOf(var_of_[to.head]).offset, port_));
    }
  }

  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(total_ - from.cost + new_from) + to_delta);
}

// ---- incremental edits -----------------------------------------------------

std::uint64_t CostEvaluator::ApplyMove(VariableId v, std::uint32_t dbc) {
  RequireBound();
  const Slot old = mirror_.SlotOf(v);  // throws if unplaced
  if (options_.domains_per_dbc != 0 && dbc != old.dbc &&
      dbc < mirror_.num_dbcs() &&
      mirror_.dbc(dbc).size() >= options_.domains_per_dbc) {
    throw std::invalid_argument("CostEvaluator: move deeper than DBC");
  }
  if (single_port_ && !weights_valid_) RebuildWeights();
  mirror_.MoveToEnd(v, dbc);  // validates target index and capacity
  UndoRecord rec;  // costs unchanged so far: the mirror edit is cost-free
  rec.kind = UndoRecord::Kind::kMove;
  rec.v = v;
  rec.from_dbc = old.dbc;
  rec.from_offset = old.offset;
  rec.dbc = dbc;
  rec.links_begin = links_arena_.size();
  rec.log_begin = weight_log_.size();
  rec.from_cost = dbcs_[old.dbc].cost;
  rec.to_cost = dbcs_[dbc].cost;
  if (!single_port_) {
    RecomputeMultiPort();
  } else {
    if (old.dbc != dbc) {
      // A splice touches ~3 weights per occurrence; a wholesale rebuild
      // touches one per remaining chain node. For high-frequency
      // variables the rebuild wins — and bounds the cost of any move by
      // the chain length, splice-mode by 3 * freq(v).
      const std::size_t freq = FreqOf(v);
      const std::size_t from_chain = dbcs_[old.dbc].count - freq;
      const std::size_t to_chain = dbcs_[dbc].count + freq;
      rec.from_rebuilt = 3 * freq > from_chain;
      rec.to_rebuilt = 3 * freq > to_chain;
      if (rec.from_rebuilt) {
        rec.from_snap = dbcs_[old.dbc].edges;
        rec.from_index_snap = dbcs_[old.dbc].edge_index;
        rec.from_dead_snap = dbcs_[old.dbc].dead;
      }
      if (rec.to_rebuilt) {
        rec.to_snap = dbcs_[dbc].edges;
        rec.to_index_snap = dbcs_[dbc].edge_index;
        rec.to_dead_snap = dbcs_[dbc].dead;
      }
      log_weights_ = true;
      SpliceOutAll(old.dbc, v, /*save_links=*/true,
                   /*update_weights=*/!rec.from_rebuilt);
      SpliceInAll(dbc, v, /*update_weights=*/!rec.to_rebuilt);
      log_weights_ = false;
      if (rec.from_rebuilt) RebuildDbcWeights(old.dbc);
      if (rec.to_rebuilt) RebuildDbcWeights(dbc);
      RepriceDbc(old.dbc);
    }
    RepriceDbc(dbc);
  }
  undo_.push_back(std::move(rec));
  total_ = TotalFromDbcs();
  AssertMatchesShiftCost();
  return total_;
}

std::uint64_t CostEvaluator::ApplyTranspose(std::uint32_t dbc, std::size_t i,
                                            std::size_t j) {
  RequireBound();
  mirror_.Transpose(dbc, i, j);  // validates dbc, i, j
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kTranspose;
  rec.dbc = dbc;
  rec.i = i;
  rec.j = j;
  rec.from_cost = dbcs_[dbc].cost;
  if (!single_port_) {
    RecomputeMultiPort();
  } else if (i != j) {
    if (!weights_valid_) RebuildWeights();
    RepriceDbc(dbc);
  }
  undo_.push_back(std::move(rec));
  total_ = TotalFromDbcs();
  AssertMatchesShiftCost();
  return total_;
}

std::uint64_t CostEvaluator::ApplyReorder(std::uint32_t dbc,
                                          std::vector<VariableId> order) {
  RequireBound();
  std::vector<VariableId> old_order = mirror_.dbc(dbc);  // validates dbc
  mirror_.Reorder(dbc, std::move(order));  // validates the permutation
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kReorder;
  rec.dbc = dbc;
  rec.old_order = std::move(old_order);
  rec.from_cost = dbcs_[dbc].cost;
  if (!single_port_) {
    RecomputeMultiPort();
  } else {
    if (!weights_valid_) RebuildWeights();
    RepriceDbc(dbc);  // weights depend only on the partition, not the order
  }
  undo_.push_back(std::move(rec));
  total_ = TotalFromDbcs();
  AssertMatchesShiftCost();
  return total_;
}

void CostEvaluator::Undo() {
  RequireBound();
  if (undo_.empty()) {
    throw std::logic_error("CostEvaluator: nothing to undo");
  }
  UndoRecord rec = std::move(undo_.back());
  undo_.pop_back();
  // The records carry the touched DBCs' pre-edit costs, so undo restores
  // them directly: no re-pricing (and no multi-port replay) on this path.
  switch (rec.kind) {
    case UndoRecord::Kind::kTranspose: {
      mirror_.Transpose(rec.dbc, rec.i, rec.j);
      dbcs_[rec.dbc].cost = rec.from_cost;
      break;
    }
    case UndoRecord::Kind::kReorder: {
      mirror_.Reorder(rec.dbc, std::move(rec.old_order));
      dbcs_[rec.dbc].cost = rec.from_cost;
      break;
    }
    case UndoRecord::Kind::kMove: {
      // v sits at the end of rec.dbc; return it to rec.from_dbc at
      // rec.from_offset. LIFO undo guarantees the slot is free again.
      // Bubbling v back avoids Reorder's permutation-check sorts.
      mirror_.MoveToEnd(rec.v, rec.from_dbc);
      for (std::size_t k = mirror_.dbc(rec.from_dbc).size() - 1;
           k > rec.from_offset; --k) {
        mirror_.Transpose(rec.from_dbc, k, k - 1);
      }
      if (single_port_ && rec.dbc != rec.from_dbc) {
        UnlinkAll(dbcs_[rec.dbc], rec.v);
        RelinkAll(dbcs_[rec.from_dbc], rec.v, rec.links_begin);
        links_arena_.resize(rec.links_begin);
        // Splice-mode DBCs: replay their weight-log slice backwards.
        // Key-addressed, so edges the apply appended simply revert to
        // tombstones (logged old weight 0) wherever they now live.
        for (std::size_t i = weight_log_.size(); i-- > rec.log_begin;) {
          const WeightEdit& edit = weight_log_[i];
          DbcData& data = dbcs_[edit.dbc];
          SetEdgeWeight(data, EdgeFor(data, edit.key), edit.old_weight);
        }
        weight_log_.resize(rec.log_begin);
        // Rebuild-mode DBCs: swap the snapshotted pre-edit state back in.
        if (rec.from_rebuilt) {
          dbcs_[rec.from_dbc].edges = std::move(rec.from_snap);
          dbcs_[rec.from_dbc].edge_index = std::move(rec.from_index_snap);
          dbcs_[rec.from_dbc].dead = rec.from_dead_snap;
        }
        if (rec.to_rebuilt) {
          dbcs_[rec.dbc].edges = std::move(rec.to_snap);
          dbcs_[rec.dbc].edge_index = std::move(rec.to_index_snap);
          dbcs_[rec.dbc].dead = rec.to_dead_snap;
        }
      }
      dbcs_[rec.from_dbc].cost = rec.from_cost;
      dbcs_[rec.dbc].cost = rec.to_cost;
      break;
    }
  }
  total_ = TotalFromDbcs();
  AssertMatchesShiftCost();
}

}  // namespace rtmp::core
