// Incremental shift-cost evaluation engine.
//
// ShiftCost (core/cost_model.h) replays the whole access sequence for every
// candidate placement: O(|S|) per call. The search-based strategies (GA,
// random walk) evaluate tens of thousands of candidates that differ from an
// already-scored placement by one mutation, so almost all of that replay
// work is redundant. Following the ShiftsReduce observation that the
// single-port cost decomposes into pairwise transition counts,
//
//   cost(DBC d) = sum over unordered pairs {u, v} placed in d of
//                 w_d(u, v) * |offset(u) - offset(v)|   (+ first-access term)
//
// where w_d(u, v) counts how often u and v are accessed consecutively in
// the subsequence of S restricted to d's variables, this evaluator
// maintains the per-DBC transition weights w_d for a bound placement and
// keeps the cost up to date under placement edits:
//
//  * the weights depend only on the DBC *partition* (which DBC each
//    variable lives in), never on the order inside a DBC — reordering a
//    DBC re-prices the existing weights in O(distinct transitions of that
//    DBC) instead of O(|S|);
//  * moving one variable between DBCs splices its trace positions out of
//    one restricted subsequence and into the other, touching only the
//    weights of its former and new neighbors;
//  * transposing two variables inside a DBC changes exactly two offsets —
//    an O(degree) delta.
//
// Fast-path applicability: the decomposition above holds for the paper's
// single-port cost model (CostOptions::port_offsets has one entry), where
// the cost of a transition is the offset distance regardless of the port's
// own offset. With several ports the cheapest port depends on the running
// alignment, which does not decompose into pairwise terms; the evaluator
// then keeps the exact same interface but scores through the existing
// DbcState replay path (PerDbcShiftCost), so multi-port results stay
// bit-identical to ShiftCost by construction. Debug builds additionally
// assert every Evaluate() against ShiftCost.
//
// Typical use (a GA mutation loop):
//
//   CostEvaluator evaluator(seq, options.cost);
//   evaluator.Bind(placement);                  // O(|S|), once
//   const std::uint64_t before = evaluator.Cost();
//   const std::uint64_t after = evaluator.ApplyTranspose(d, i, j);  // O(deg)
//   if (after >= before) evaluator.Undo();      // reject the mutation
//
// Evaluate(p) scores an arbitrary placement by diffing it against the
// currently bound one and rebinding: cheap when few variables changed
// DBCs, automatically falling back to a full O(|S|) rebuild when the diff
// is large (so it is never asymptotically worse than ShiftCost).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "core/cost_model.h"
#include "core/placement.h"
#include "trace/access_sequence.h"

namespace rtmp::core {

class CostEvaluator {
 public:
  /// Precomputes the per-variable trace positions of `seq`. The sequence
  /// is borrowed and must outlive the evaluator. Throws
  /// std::invalid_argument if `options` has no ports (as ShiftCost does).
  CostEvaluator(const trace::AccessSequence& seq, CostOptions options);

  /// True when the O(transitions) single-port fast path is active; false
  /// when every scoring call goes through the DbcState replay path.
  [[nodiscard]] bool incremental() const noexcept { return single_port_; }

  [[nodiscard]] bool bound() const noexcept { return bound_; }

  [[nodiscard]] const CostOptions& options() const noexcept {
    return options_;
  }

  /// Binds `placement` (copied) and rebuilds the transition structure:
  /// O(|S| + transitions). Validates like ShiftCost: every accessed
  /// variable must be placed (std::logic_error) and the placement must fit
  /// options.domains_per_dbc when set (std::invalid_argument). Clears the
  /// undo stack.
  void Bind(const Placement& placement);

  /// Cost of `placement`, diffed against the bound state: O(#variables +
  /// splice work + re-priced transitions) for small diffs, one O(|S|)
  /// rebuild otherwise (never asymptotically worse than ShiftCost). Binds
  /// `placement` as a side effect and clears the undo stack.
  std::uint64_t Evaluate(const Placement& placement);

  /// Total / per-DBC cost of the bound placement. O(1); throws
  /// std::logic_error when nothing is bound.
  [[nodiscard]] std::uint64_t Cost() const;
  [[nodiscard]] std::vector<std::uint64_t> PerDbcCost() const;

  /// The bound placement (kept in lock-step with the Apply edits).
  [[nodiscard]] const Placement& placement() const;

  // -- trial scoring ---------------------------------------------------------
  // Read-only: the total cost the bound placement WOULD have after the
  // corresponding edit, without performing it. This is the hot primitive
  // of neighborhood search — score many candidate mutations, commit one
  // (via Apply*) or none. Nothing to undo afterwards. Same validation as
  // the Apply counterparts. Single-port costs: PeekTranspose and
  // PeekReorder re-price one DBC's edges under hypothetical offsets,
  // O(transitions + variables of the DBC); PeekMove additionally walks
  // the insertion merge, O(E_from + n_from + freq(v) + |S_to|). The
  // methods are non-const only because they share the evaluator's scratch
  // buffers (and lazily rebuild stale weights); the bound placement and
  // cost are never modified. Multi-port: O(|S|) replay of a scratch copy.

  [[nodiscard]] std::uint64_t PeekMove(VariableId v, std::uint32_t dbc);
  [[nodiscard]] std::uint64_t PeekTranspose(std::uint32_t dbc, std::size_t i,
                                            std::size_t j);
  [[nodiscard]] std::uint64_t PeekReorder(
      std::uint32_t dbc, const std::vector<VariableId>& order);

  // -- incremental edits ----------------------------------------------------
  // Each mirrors the Placement mutation of the same name, updates the cost,
  // pushes an undo record and returns the new total cost. Validation (range
  // checks, capacity) is delegated to Placement and happens before any
  // internal state changes. Single-port costs are re-priced per touched
  // DBC over its dense transition-edge array: ApplyTranspose and
  // ApplyReorder are O(transitions of the DBC); ApplyMove additionally
  // splices v's occurrences out in O(freq(v)) and merges them into the
  // target in O(|S_target| + freq(v)). Every bound is far below the O(|S|)
  // trace replay; Undo restores the stored pre-edit costs and links, so it
  // is O(freq(v)) for moves and O(1) + the mirror edit otherwise.
  // Multi-port: Apply* is O(|S|) (full replay re-price), Undo is cheap.

  std::uint64_t ApplyMove(VariableId v, std::uint32_t dbc);
  std::uint64_t ApplyTranspose(std::uint32_t dbc, std::size_t i,
                               std::size_t j);
  std::uint64_t ApplyReorder(std::uint32_t dbc, std::vector<VariableId> order);

  /// Reverts the most recent not-yet-undone Apply edit (LIFO). Throws
  /// std::logic_error when the undo stack is empty.
  void Undo();

  /// Apply edits that can still be undone. Bind/Evaluate reset this to 0.
  [[nodiscard]] std::size_t undo_depth() const noexcept {
    return undo_.size();
  }

  /// Times any arena-backed storage (edge SoA arrays) had to grow its
  /// backing allocation. Rebinding same-shaped placements reuses the warm
  /// arenas, so the counter goes quiet after the first Bind — the
  /// invariant the arena growth/reuse test pins.
  [[nodiscard]] std::size_t arena_growths() const noexcept {
    return arena_growths_;
  }

 private:
  /// The transition edges of one DBC's restricted subsequence, in
  /// structure-of-arrays layout: parallel arrays over the edge slots.
  /// `keys[i]` packs the unordered variable pair (min << 32 | max) —
  /// the identity used by EdgeIndex lookups and key-addressed undo;
  /// `us[i]` / `vs[i]` are the same pair pre-unpacked so the pricing
  /// scan is pure array arithmetic (no shifts/masks per edge);
  /// `weights[i]` counts how often the pair is accessed consecutively.
  /// Self pairs are stored (splices need their bookkeeping) but always
  /// price to zero. Slots form a dense arena so re-pricing is a flat
  /// scan; zero-weight slots are tombstones, compacted when they
  /// outnumber the live ones. clear() keeps capacity: the arena
  /// survives rebinds without reallocating.
  struct EdgeArray {
    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> us, vs;
    std::vector<std::uint64_t> weights;

    [[nodiscard]] std::size_t size() const noexcept { return keys.size(); }
    void clear() noexcept {
      keys.clear();
      us.clear();
      vs.clear();
      weights.clear();
    }
    /// Appends one edge; returns true when the backing storage grew
    /// (arena telemetry — see CostEvaluator::arena_growths()).
    bool Append(std::uint64_t key, std::uint64_t weight) {
      const bool grew = keys.size() == keys.capacity();
      keys.push_back(key);
      us.push_back(static_cast<std::uint32_t>(key >> 32));
      vs.push_back(static_cast<std::uint32_t>(key & 0xFFFFFFFFULL));
      weights.push_back(weight);
      return grew;
    }
  };

  /// Open-addressing edge lookup (packed pair -> slot in DbcData::edges).
  /// Linear probing, power-of-two capacity, no per-entry allocation and no
  /// erase (stale slots vanish with the rebuild after compaction) — a
  /// splice's handful of lookups stays a handful of cache probes instead
  /// of unordered_map node chases.
  class EdgeIndex {
   public:
    /// Slot for `key`; existing on hit, `fresh` (stored) on miss.
    std::uint32_t FindOrInsert(std::uint64_t key, std::uint32_t fresh);
    void Clear() noexcept;

   private:
    void Grow();
    // (u, v) pairs of real variable ids never reach ~0: the sentinel is
    // safe for any sequence that fits in memory.
    static constexpr std::uint64_t kEmptyKey = ~0ULL;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> slots_;
    std::size_t size_ = 0;
  };

  struct DbcData {
    std::uint32_t head = kNoPosition;  ///< first trace position of the DBC
    std::uint32_t tail = kNoPosition;
    std::size_t count = 0;  ///< chain length (positions in this DBC)
    EdgeArray edges;
    EdgeIndex edge_index;
    std::size_t dead = 0;  ///< zero-weight edges in `edges`
    std::uint64_t cost = 0;
  };

  struct UndoRecord {
    enum class Kind { kMove, kTranspose, kReorder } kind;
    VariableId v = 0;           // kMove
    std::uint32_t from_dbc = 0; // kMove
    std::uint32_t from_offset = 0;  // kMove
    std::uint32_t dbc = 0;      // all
    std::size_t i = 0, j = 0;   // kTranspose
    std::vector<VariableId> old_order;  // kReorder
    /// kMove: start of this record's slice of links_arena_ — v's
    /// (prev, next) links in from_dbc before the splice-out, one pair per
    /// occurrence; undo relinks from these in O(1) each.
    std::size_t links_begin = 0;
    /// kMove: start of this record's slice of weight_log_; undo replays
    /// the slice backwards.
    std::size_t log_begin = 0;
    /// kMove: the corresponding DBC's transition edges were rebuilt
    /// wholesale (high-frequency variable) instead of spliced+logged;
    /// undo swaps the snapshotted pre-edit edge state back in.
    bool from_rebuilt = false;
    bool to_rebuilt = false;
    EdgeArray from_snap, to_snap;
    EdgeIndex from_index_snap, to_index_snap;
    std::size_t from_dead_snap = 0, to_dead_snap = 0;
    /// Pre-edit costs of the touched DBCs (kMove: from_dbc and dbc); undo
    /// restores them instead of re-pricing (LIFO makes the values valid).
    std::uint64_t from_cost = 0;
    std::uint64_t to_cost = 0;
  };

  /// One logged weight mutation: undo writes old_weight back into the
  /// edge keyed `key` of dbcs_[dbc]. Key-addressed (not slot-addressed)
  /// so wholesale edge rebuilds between log and replay stay safe.
  struct WeightEdit {
    std::uint32_t dbc = 0;
    std::uint64_t key = 0;
    std::uint64_t old_weight = 0;
  };

  static constexpr std::uint32_t kNoPosition =
      std::numeric_limits<std::uint32_t>::max();

  void RequireBound() const;
  /// Full rebuild from `placement`. `with_weights` also populates the
  /// transition edges; without, they are marked stale and rebuilt lazily by
  /// the first diff/edit that needs them (Evaluate's full-rebuild path
  /// skips them so a stream of unrelated placements — the random walk —
  /// costs exactly one SinglePortCosts-style pass each).
  void RebuildAll(const Placement& placement, bool with_weights);
  /// Rebuilds the per-DBC position chains from the mirror: O(|S|). The
  /// no-weights rebuild skips link maintenance (the random walk never
  /// touches it), so the first chain consumer afterwards calls this.
  void RebuildLinks();
  /// Rebuilds every DBC's transition edges from its (valid) chains.
  /// Ensures the chains first; weights_valid_ implies links are valid.
  void RebuildWeights();
  /// Re-prices one DBC: flat scan over its edges + the mirror's offsets.
  void RepriceDbc(std::uint32_t d);
  void RecomputeMultiPort();
  /// Slot of the edge keyed `key` in `data`, appended as a tombstone on
  /// first sight. All weight writes go through SetEdgeWeight so the
  /// dead-edge counter (the compaction trigger) has a single owner.
  std::uint32_t EdgeFor(DbcData& data, std::uint64_t key);
  void SetEdgeWeight(DbcData& data, std::uint32_t slot, std::uint64_t weight);
  void AddWeight(std::uint32_t dbc, VariableId u, VariableId v,
                 std::int64_t delta);
  /// Unlinks ALL of v's trace positions from a DBC's restricted
  /// subsequence, O(1) + (when `update_weights`) a few weight updates per
  /// occurrence. When `save_links` is set, each occurrence's old
  /// (prev, next) pair is pushed onto links_arena_ so RelinkAll can
  /// restore it blindly.
  void SpliceOutAll(std::uint32_t dbc, VariableId v, bool save_links,
                    bool update_weights);
  /// Inserts ALL of v's trace positions into a DBC by merging along its
  /// position chain: O(|S_dbc| + freq(v)).
  void SpliceInAll(std::uint32_t dbc, VariableId v, bool update_weights);
  /// Undo helpers: pure link surgery, weights are restored from
  /// weight_log_ separately. UnlinkAll is SpliceOutAll minus weights;
  /// RelinkAll re-wires v from its saved (prev, next) pairs, O(freq(v)).
  void UnlinkAll(DbcData& data, VariableId v);
  void RelinkAll(DbcData& data, VariableId v, std::size_t links_begin);
  /// Rebuilds one DBC's transition edges from its chain (never logged) —
  /// the cheaper path when a moved variable's occurrence count rivals the
  /// chain length. Small-membership DBCs count pairs in a dense
  /// offset-indexed matrix (no hashing at all); larger ones hash.
  void RebuildDbcWeights(std::uint32_t dbc);
  /// Sum of one DBC's edge prices under the offsets currently staged in
  /// offset_scratch_. The all-edges variant is the hot scan: branch-free
  /// over the SoA slots (tombstones carry weight 0 and price to zero, so
  /// no skip test — the loop is pure multiply-accumulate the compiler can
  /// vectorize). The excluding variant masks out edges incident to one
  /// variable (PeekMove's from-side).
  [[nodiscard]] std::uint64_t PriceDbcEdgesAll(const DbcData& data) const;
  [[nodiscard]] std::uint64_t PriceDbcEdgesExcluding(const DbcData& data,
                                                     VariableId excluded) const;
  /// Multi-port trial scoring: replay a mutated scratch copy.
  [[nodiscard]] std::uint64_t PeekByReplay(
      const Placement& candidate) const;
  std::uint64_t TotalFromDbcs() const;
  void AssertMatchesShiftCost() const;

  const trace::AccessSequence* seq_;
  CostOptions options_;
  bool single_port_;
  bool first_pays_;
  std::int64_t port_ = 0;
  std::vector<VariableId> var_of_;  ///< trace position -> variable

  /// Per-variable trace positions in CSR layout: variable v's positions
  /// are pos_data_[pos_begin_[v] .. pos_begin_[v + 1]) — one flat arena
  /// instead of a vector-of-vectors, so splice loops stream contiguous
  /// memory and the frequency of v is a subtraction.
  std::vector<std::uint32_t> pos_data_;
  std::vector<std::uint32_t> pos_begin_;  ///< size NumVars() + 1

  [[nodiscard]] std::span<const std::uint32_t> PositionsOf(
      VariableId v) const noexcept {
    return {pos_data_.data() + pos_begin_[v],
            pos_data_.data() + pos_begin_[v + 1]};
  }
  [[nodiscard]] std::size_t FreqOf(VariableId v) const noexcept {
    return pos_begin_[v + 1] - pos_begin_[v];
  }
  [[nodiscard]] std::size_t NumVars() const noexcept {
    return pos_begin_.size() - 1;
  }

  bool bound_ = false;
  bool links_valid_ = false;
  bool weights_valid_ = false;
  /// Consecutive Evaluate calls that ended in a stale full rebuild. Two in
  /// a row (a random-walk-style stream of unrelated candidates) make
  /// Evaluate skip the O(#variables) diff scan and rebuild outright —
  /// exactly a SinglePortCosts pass, never worse than ShiftCost. Any
  /// weight-building path resets the streak.
  std::uint32_t stale_streak_ = 0;
  Placement mirror_{0, 1};
  std::vector<DbcData> dbcs_;
  /// Doubly-linked chains threading the trace positions of each DBC's
  /// restricted subsequence (kNoPosition-terminated; heads/tails live in
  /// DbcData). Every position belongs to exactly one chain.
  std::vector<std::uint32_t> prev_, next_;
  std::uint64_t total_ = 0;
  std::vector<UndoRecord> undo_;
  /// LIFO arenas backing the undo records (truncated in lock-step with
  /// undo_): saved links and the weight-edit log. log_weights_ arms the
  /// logging inside Apply edits only.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links_arena_;
  std::vector<WeightEdit> weight_log_;
  bool log_weights_ = false;
  /// Scratch offset-by-variable table for RepriceDbc (avoids a checked
  /// SlotOf per edge endpoint); entries are refreshed per call.
  std::vector<std::uint32_t> offset_scratch_;
  /// Scratch pair-count matrix for RebuildDbcWeights' dense path.
  std::vector<std::uint32_t> matrix_scratch_;
  /// Scratch last-offset-per-DBC table for RebuildAll's cost walk.
  std::vector<std::int64_t> last_off_scratch_;
  /// Backing-storage growth events across all edge arenas (telemetry for
  /// arena_growths()).
  std::size_t arena_growths_ = 0;
};

}  // namespace rtmp::core
