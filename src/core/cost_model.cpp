#include "core/cost_model.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "rtm/dbc_state.h"

namespace rtmp::core {

namespace {

/// Fast path: one port. The port's own offset cancels out of every
/// inter-access distance; it only matters for a paid first access, where the
/// cost is the distance from the port (alignment 0) to the variable.
std::vector<std::uint64_t> SinglePortCosts(const trace::AccessSequence& seq,
                                           const Placement& placement,
                                           const CostOptions& options) {
  constexpr std::int64_t kNoAccess = -1;
  std::vector<std::uint64_t> per_dbc(placement.num_dbcs(), 0);
  std::vector<std::int64_t> last(placement.num_dbcs(), kNoAccess);
  const std::int64_t port =
      options.port_offsets.empty() ? 0 : options.port_offsets.front();
  const bool first_pays =
      options.initial_alignment == rtm::InitialAlignment::kZero;
  for (const trace::Access& access : seq.accesses()) {
    const Slot slot = placement.SlotOf(access.variable);
    const auto pos = static_cast<std::int64_t>(slot.offset);
    if (last[slot.dbc] == kNoAccess) {
      if (first_pays) per_dbc[slot.dbc] += std::llabs(pos - port);
    } else {
      per_dbc[slot.dbc] += std::llabs(pos - last[slot.dbc]);
    }
    last[slot.dbc] = pos;
  }
  return per_dbc;
}

/// General path: delegate per-DBC alignment tracking to the device model so
/// the analytic cost and the simulator can never diverge.
std::vector<std::uint64_t> MultiPortCosts(const trace::AccessSequence& seq,
                                          const Placement& placement,
                                          const CostOptions& options) {
  std::uint32_t domains = options.domains_per_dbc;
  if (domains == 0) {
    // Derive a bound: offsets are dense, so the longest list suffices.
    std::uint32_t longest = 1;
    for (std::uint32_t d = 0; d < placement.num_dbcs(); ++d) {
      longest = std::max(
          longest, static_cast<std::uint32_t>(placement.dbc(d).size()));
    }
    if (placement.capacity() != kUnboundedCapacity) {
      longest = std::max(longest, placement.capacity());
    }
    for (const std::uint32_t port : options.port_offsets) {
      longest = std::max(longest, port + 1);
    }
    domains = longest;
  }
  const bool start_at_zero =
      options.initial_alignment == rtm::InitialAlignment::kZero;
  std::vector<rtm::DbcState> states;
  states.reserve(placement.num_dbcs());
  for (std::uint32_t d = 0; d < placement.num_dbcs(); ++d) {
    states.emplace_back(domains, options.port_offsets, start_at_zero);
  }
  std::vector<std::uint64_t> per_dbc(placement.num_dbcs(), 0);
  for (const trace::Access& access : seq.accesses()) {
    const Slot slot = placement.SlotOf(access.variable);
    per_dbc[slot.dbc] += states[slot.dbc].Access(slot.offset);
  }
  return per_dbc;
}

}  // namespace

void ValidateAgainstDomains(const Placement& placement,
                            const CostOptions& options) {
  const std::uint32_t domains = options.domains_per_dbc;
  if (domains == 0) return;
  for (std::uint32_t d = 0; d < placement.num_dbcs(); ++d) {
    if (placement.dbc(d).size() > domains) {
      throw std::invalid_argument("cost model: placement deeper than DBC");
    }
  }
  for (const std::uint32_t port : options.port_offsets) {
    if (port >= domains) {
      throw std::invalid_argument("cost model: port offset out of range");
    }
  }
}

std::vector<std::uint64_t> PerDbcShiftCost(const trace::AccessSequence& seq,
                                           const Placement& placement,
                                           const CostOptions& options) {
  if (options.port_offsets.empty()) {
    throw std::invalid_argument("CostOptions: need at least one port");
  }
  ValidateAgainstDomains(placement, options);
  if (options.port_offsets.size() == 1) {
    return SinglePortCosts(seq, placement, options);
  }
  return MultiPortCosts(seq, placement, options);
}

std::uint64_t ShiftCost(const trace::AccessSequence& seq,
                        const Placement& placement,
                        const CostOptions& options) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : PerDbcShiftCost(seq, placement, options)) {
    total += c;
  }
  return total;
}

std::uint64_t WalkCost(std::span<const trace::Access> accesses,
                       std::span<const VariableId> order,
                       std::size_t num_variables, bool first_access_pays) {
  constexpr std::int64_t kUnknown = -1;
  std::vector<std::int64_t> pos(num_variables, kUnknown);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = static_cast<std::int64_t>(i);
  }
  std::uint64_t cost = 0;
  std::int64_t last = kUnknown;
  for (const trace::Access& access : accesses) {
    const std::int64_t p = pos[access.variable];
    if (p == kUnknown) {
      throw std::logic_error("WalkCost: accessed variable not in order");
    }
    if (last == kUnknown) {
      if (first_access_pays) cost += static_cast<std::uint64_t>(p);
    } else {
      cost += static_cast<std::uint64_t>(std::llabs(p - last));
    }
    last = p;
  }
  return cost;
}

}  // namespace rtmp::core
