// Shift-cost model (§II-B): the number of one-domain shift operations an RTM
// controller executes to serve an access sequence under a given placement.
//
// The cost between two consecutive same-DBC accesses u, v is the distance
// between their offsets (single port), or the cheapest port alignment
// (multi-port). Accesses to other DBCs in between do not disturb a DBC's
// alignment, so the total decomposes into independent per-DBC walks — the
// identity the paper's Fig. 3 example uses (39 = 24 + 15).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/placement.h"
#include "rtm/config.h"
#include "trace/access_sequence.h"

namespace rtmp::core {

struct CostOptions {
  /// Paper convention kFirstAccess: each DBC's first access is free.
  rtm::InitialAlignment initial_alignment =
      rtm::InitialAlignment::kFirstAccess;
  /// Port offsets inside a DBC. One entry = the paper's single-port model
  /// (shift cost |pos(u) - pos(v)| regardless of the port's own offset).
  std::vector<std::uint32_t> port_offsets{0};
  /// Domains per DBC. When set, placements deeper than a DBC and ports
  /// outside it are rejected (std::invalid_argument), mirroring
  /// sim::Simulate; it also bounds port offsets in multi-port mode.
  /// 0 skips validation and derives the multi-port bound from the
  /// placement's capacity or content.
  std::uint32_t domains_per_dbc = 0;
};

/// Validates `placement` against `options`: when options.domains_per_dbc is
/// set, every DBC must hold at most that many variables and every port
/// offset must lie inside the DBC (throws std::invalid_argument otherwise).
/// ShiftCost/PerDbcShiftCost and CostEvaluator apply this so the analytic
/// paths reject exactly the placements sim::Simulate rejects; with
/// domains_per_dbc unset (0) any placement is accepted, as before.
void ValidateAgainstDomains(const Placement& placement,
                            const CostOptions& options);

/// Total shift cost of `seq` under `placement`. Every accessed variable must
/// be placed (throws std::logic_error otherwise).
[[nodiscard]] std::uint64_t ShiftCost(const trace::AccessSequence& seq,
                                      const Placement& placement,
                                      const CostOptions& options = {});

/// Per-DBC decomposition; sums to ShiftCost.
[[nodiscard]] std::vector<std::uint64_t> PerDbcShiftCost(
    const trace::AccessSequence& seq, const Placement& placement,
    const CostOptions& options = {});

/// Walk cost of an access list over an explicit order (offset = index in
/// `order`), single port, first access free unless `first_access_pays`.
/// The intra-DBC heuristics use this to evaluate candidate orders of one
/// DBC without building a full Placement.
[[nodiscard]] std::uint64_t WalkCost(std::span<const trace::Access> accesses,
                                     std::span<const VariableId> order,
                                     std::size_t num_variables,
                                     bool first_access_pays = false);

}  // namespace rtmp::core
