#include "core/genetic.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "core/cost_evaluator.h"
#include "core/inter_afd.h"
#include "core/inter_dma.h"
#include "trace/variable_stats.h"

namespace rtmp::core {

namespace {

struct Individual {
  Placement placement;
  std::uint64_t cost = 0;
};

/// Moves v to `target`'s end; diverts to the freest DBC when `target` is
/// full. v's own DBC always works as a last resort (it regains a slot the
/// moment v is removed), so the move can never fail.
void MoveWithRepair(Placement& placement, VariableId v, std::uint32_t target) {
  const std::uint32_t from = placement.SlotOf(v).dbc;
  if (from != target && placement.FreeIn(target) == 0) {
    std::uint32_t best = from;
    std::uint32_t best_free = 0;
    for (std::uint32_t d = 0; d < placement.num_dbcs(); ++d) {
      if (d == from) continue;
      const std::uint32_t free = placement.FreeIn(d);
      if (free > best_free) {
        best_free = free;
        best = d;
      }
    }
    target = best;
  }
  placement.MoveToEnd(v, target);
}

std::size_t Tournament(const std::vector<Individual>& pool,
                       std::size_t tournament_size, util::Rng& rng) {
  std::size_t best = static_cast<std::size_t>(rng.NextBelow(pool.size()));
  for (std::size_t i = 1; i < tournament_size; ++i) {
    const auto c = static_cast<std::size_t>(rng.NextBelow(pool.size()));
    if (pool[c].cost < pool[best].cost) best = c;
  }
  return best;
}

}  // namespace

std::vector<VariableId> AppearanceOrder(const trace::AccessSequence& seq) {
  const auto stats = trace::ComputeVariableStats(seq);
  std::vector<VariableId> seen;
  seen.reserve(seq.num_variables());
  for (VariableId v = 0; v < stats.size(); ++v) {
    if (stats[v].first != trace::kNever) seen.push_back(v);
  }
  std::sort(seen.begin(), seen.end(), [&stats](VariableId a, VariableId b) {
    return stats[a].first < stats[b].first;
  });
  for (VariableId v = 0; v < stats.size(); ++v) {
    if (stats[v].first == trace::kNever) seen.push_back(v);
  }
  return seen;
}

Placement RandomPlacement(std::size_t num_variables, std::uint32_t num_dbcs,
                          std::uint32_t capacity, util::Rng& rng) {
  if (capacity != kUnboundedCapacity &&
      static_cast<std::uint64_t>(num_dbcs) * capacity < num_variables) {
    throw std::invalid_argument("RandomPlacement: variables exceed capacity");
  }
  std::vector<VariableId> vars(num_variables);
  for (std::size_t i = 0; i < num_variables; ++i) {
    vars[i] = static_cast<VariableId>(i);
  }
  rng.Shuffle(vars);
  Placement placement(num_variables, num_dbcs, capacity);
  for (const VariableId v : vars) {
    // Draw a DBC until a free one comes up; with pathological fill ratios
    // fall back to a scan for determinism of termination.
    std::uint32_t dbc = 0;
    bool found = false;
    for (int attempt = 0; attempt < 8; ++attempt) {
      dbc = static_cast<std::uint32_t>(rng.NextBelow(num_dbcs));
      if (placement.FreeIn(dbc) > 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      for (std::uint32_t d = 0; d < num_dbcs; ++d) {
        if (placement.FreeIn(d) > 0) {
          dbc = d;
          break;
        }
      }
    }
    placement.Append(dbc, v);
  }
  return placement;
}

void CrossoverSwapRange(Placement& left, Placement& right,
                        std::span<const VariableId> appearance_order,
                        std::size_t range_first, std::size_t range_last) {
  if (range_first > range_last || range_last >= appearance_order.size()) {
    throw std::out_of_range("CrossoverSwapRange: bad range");
  }
  for (std::size_t i = range_first; i <= range_last; ++i) {
    const VariableId v = appearance_order[i];
    const std::uint32_t in_left = left.SlotOf(v).dbc;
    const std::uint32_t in_right = right.SlotOf(v).dbc;
    if (in_left == in_right) continue;
    MoveWithRepair(left, v, in_right);
    MoveWithRepair(right, v, in_left);
  }
}

void Mutate(Placement& placement, const GaOptions& options, util::Rng& rng) {
  const double weights[] = {options.move_weight, options.transpose_weight,
                            options.permute_weight};
  const std::size_t choice = rng.NextWeighted(weights);
  const std::uint32_t q = placement.num_dbcs();
  switch (choice) {
    case 0: {  // move a variable to the end of another DBC
      if (placement.num_variables() == 0 || q < 2) return;
      const auto v = static_cast<VariableId>(
          rng.NextBelow(placement.num_variables()));
      const std::uint32_t from = placement.SlotOf(v).dbc;
      // Collect candidate targets with space.
      std::vector<std::uint32_t> targets;
      targets.reserve(q);
      for (std::uint32_t d = 0; d < q; ++d) {
        if (d != from && placement.FreeIn(d) > 0) targets.push_back(d);
      }
      if (targets.empty()) return;
      placement.MoveToEnd(v, rng.Pick(targets));
      return;
    }
    case 1: {  // transpose two variables within one DBC
      std::vector<std::uint32_t> candidates;
      for (std::uint32_t d = 0; d < q; ++d) {
        if (placement.dbc(d).size() >= 2) candidates.push_back(d);
      }
      if (candidates.empty()) return;
      const std::uint32_t d = rng.Pick(candidates);
      const std::size_t size = placement.dbc(d).size();
      const auto i = static_cast<std::size_t>(rng.NextBelow(size));
      auto j = static_cast<std::size_t>(rng.NextBelow(size - 1));
      if (j >= i) ++j;
      placement.Transpose(d, i, j);
      return;
    }
    default: {  // random permutation of each DBC
      for (std::uint32_t d = 0; d < q; ++d) {
        if (placement.dbc(d).size() < 2) continue;
        std::vector<VariableId> order = placement.dbc(d);
        rng.Shuffle(order);
        placement.Reorder(d, std::move(order));
      }
      return;
    }
  }
}

GaResult RunGa(const trace::AccessSequence& seq, std::uint32_t num_dbcs,
               std::uint32_t capacity, const GaOptions& options) {
  if (options.mu == 0 || options.lambda == 0) {
    throw std::invalid_argument("RunGa: mu and lambda must be positive");
  }
  if (options.tournament_size == 0) {
    throw std::invalid_argument("RunGa: tournament size must be positive");
  }
  const std::size_t n = seq.num_variables();
  if (capacity != kUnboundedCapacity &&
      static_cast<std::uint64_t>(num_dbcs) * capacity < n) {
    throw std::invalid_argument("RunGa: variables exceed capacity");
  }

  util::Rng rng(options.seed);
  const std::vector<VariableId> order = AppearanceOrder(seq);
  GaResult result{Placement(n, num_dbcs, capacity), 0, {}, 0};

  // Fitness runs on the incremental evaluator: consecutive candidates
  // mostly share their DBC partition, so scoring one costs a diff plus a
  // re-price of the touched DBCs instead of an O(|S|) trace replay (the
  // evaluator falls back to that replay for large diffs and multi-port
  // configurations, so results are bit-identical to ShiftCost either way).
  CostEvaluator evaluator(seq, options.cost);
  auto evaluate = [&](const Placement& p) {
    ++result.evaluations;
    return evaluator.Evaluate(p);
  };

  // -- initial population ---------------------------------------------------
  std::vector<Individual> population;
  population.reserve(options.mu);
  if (options.seed_with_heuristics) {
    const IntraHeuristic intras[] = {IntraHeuristic::kOfu,
                                     IntraHeuristic::kChen,
                                     IntraHeuristic::kShiftsReduce};
    for (const IntraHeuristic intra : intras) {
      if (population.size() >= options.mu) break;
      Placement afd = DistributeAfd(seq, num_dbcs, capacity, {intra});
      const std::uint64_t cost = evaluate(afd);
      population.push_back({std::move(afd), cost});
      if (population.size() >= options.mu) break;
      Placement dma =
          DistributeDma(seq, num_dbcs, capacity, {intra}).placement;
      const std::uint64_t dma_cost = evaluate(dma);
      population.push_back({std::move(dma), dma_cost});
    }
  }
  while (population.size() < options.mu) {
    Placement p = RandomPlacement(n, num_dbcs, capacity, rng);
    const std::uint64_t cost = evaluate(p);
    population.push_back({std::move(p), cost});
  }

  auto best_of = [](const std::vector<Individual>& pool) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < pool.size(); ++i) {
      if (pool[i].cost < pool[best].cost) best = i;
    }
    return best;
  };
  result.history.push_back(population[best_of(population)].cost);

  // -- generations ----------------------------------------------------------
  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<Individual> offspring;
    offspring.reserve(options.lambda);
    while (offspring.size() < options.lambda) {
      Individual a =
          population[Tournament(population, options.tournament_size, rng)];
      Individual b =
          population[Tournament(population, options.tournament_size, rng)];
      if (n >= 2 && rng.NextBool(options.crossover_rate)) {
        auto f = static_cast<std::size_t>(rng.NextBelow(n));
        auto l = static_cast<std::size_t>(rng.NextBelow(n));
        if (f > l) std::swap(f, l);
        CrossoverSwapRange(a.placement, b.placement, order, f, l);
      }
      if (rng.NextBool(options.mutation_rate)) {
        Mutate(a.placement, options, rng);
      }
      if (rng.NextBool(options.mutation_rate)) {
        Mutate(b.placement, options, rng);
      }
      a.cost = evaluate(a.placement);
      offspring.push_back(std::move(a));
      if (offspring.size() < options.lambda) {
        b.cost = evaluate(b.placement);
        offspring.push_back(std::move(b));
      }
    }

    // mu + lambda pool; elitist tournament selection into the next
    // generation (the elite slot keeps the history monotone). Selection
    // draws indices first and materializes afterwards: a pool member that
    // wins several tournaments is deep-copied once per EXTRA win and moved
    // on its last, instead of copied on every win.
    std::vector<Individual> pool = std::move(population);
    pool.insert(pool.end(), std::make_move_iterator(offspring.begin()),
                std::make_move_iterator(offspring.end()));
    std::vector<std::size_t> chosen;
    chosen.reserve(options.mu);
    chosen.push_back(best_of(pool));
    while (chosen.size() < options.mu) {
      chosen.push_back(Tournament(pool, options.tournament_size, rng));
    }
    std::vector<std::uint32_t> uses(pool.size(), 0);
    for (const std::size_t i : chosen) ++uses[i];
    std::vector<Individual> next;
    next.reserve(options.mu);
    for (const std::size_t i : chosen) {
      if (--uses[i] == 0) {
        next.push_back(std::move(pool[i]));
      } else {
        next.push_back(pool[i]);
      }
    }
    population = std::move(next);
    result.history.push_back(population[0].cost);
  }

  const std::size_t best = best_of(population);
  result.best = std::move(population[best].placement);
  result.best_cost = population[best].cost;
  return result;
}

}  // namespace rtmp::core
