// Genetic algorithm for near-optimal placements (§III-C).
//
// Individuals ARE placements (I = (DBC_1, ..., DBC_q), ordered lists).
// Fitness is the shift cost. The paper's configuration, all defaults here:
// mu + lambda evolution with mu = lambda = 100, tournament-4 selection,
// 200 generations, a 2-fold crossover that swaps the DBC assignments of a
// contiguous range of variables (in order of first appearance in S)
// between two parents, and three mutations — move a variable to another
// DBC's end, transpose two variables inside a DBC, randomly permute every
// DBC — with the destructive third skewed down 10:3 relative to the others.
// Following the paper's conclusions, the initial population is seeded with
// the heuristic placements (AFD/DMA x OFU/Chen/SR) unless disabled.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.h"
#include "core/placement.h"
#include "trace/access_sequence.h"
#include "util/rng.h"

namespace rtmp::core {

struct GaOptions {
  std::size_t mu = 100;          ///< parents kept per generation
  std::size_t lambda = 100;      ///< offspring per generation
  std::size_t generations = 200;
  std::size_t tournament_size = 4;
  double crossover_rate = 0.9;   ///< probability a pair undergoes crossover
  double mutation_rate = 0.5;    ///< probability an offspring mutates
  /// Relative weights of the three mutations (move, transpose, permute);
  /// the paper skews the destructive permutation down "in a ratio of 10:3".
  double move_weight = 10.0;
  double transpose_weight = 10.0;
  double permute_weight = 3.0;
  bool seed_with_heuristics = true;
  std::uint64_t seed = 0x5EEDULL;
  CostOptions cost{};
};

struct GaResult {
  Placement best;
  std::uint64_t best_cost = 0;
  /// Best fitness after each generation (monotone non-increasing thanks to
  /// elitism); entry 0 is the initial population's best.
  std::vector<std::uint64_t> history;
  std::size_t evaluations = 0;  ///< fitness evaluations performed
};

/// Uniformly random complete placement honoring per-DBC capacity.
[[nodiscard]] Placement RandomPlacement(std::size_t num_variables,
                                        std::uint32_t num_dbcs,
                                        std::uint32_t capacity,
                                        util::Rng& rng);

/// The paper's 2-fold crossover: variables are indexed by first appearance
/// in S (`appearance_order`); the DBC assignments of the index range
/// [range_first, range_last] are swapped between `left` and `right`, each
/// reassigned variable landing at its new DBC's end. Both placements stay
/// valid; if a swap would overflow a DBC, the variable is diverted to the
/// DBC with the most free space (deterministic repair).
void CrossoverSwapRange(Placement& left, Placement& right,
                        std::span<const VariableId> appearance_order,
                        std::size_t range_first, std::size_t range_last);

/// Applies one randomly chosen mutation (weights from `options`).
void Mutate(Placement& placement, const GaOptions& options, util::Rng& rng);

/// Runs the GA. Throws std::invalid_argument on zero mu/lambda or
/// insufficient capacity.
[[nodiscard]] GaResult RunGa(const trace::AccessSequence& seq,
                             std::uint32_t num_dbcs, std::uint32_t capacity,
                             const GaOptions& options = {});

/// Variables ordered by first appearance in `seq`, never-accessed variables
/// last in id order — the variable indexing the crossover range uses.
[[nodiscard]] std::vector<VariableId> AppearanceOrder(
    const trace::AccessSequence& seq);

}  // namespace rtmp::core
