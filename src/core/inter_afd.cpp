#include "core/inter_afd.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rtmp::core {

std::vector<VariableId> SortByFrequencyDescending(
    std::span<const trace::VariableStats> stats,
    const trace::AccessSequence& seq) {
  std::vector<VariableId> order(stats.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&stats, &seq](VariableId a, VariableId b) {
                     if (stats[a].frequency != stats[b].frequency) {
                       return stats[a].frequency > stats[b].frequency;
                     }
                     return seq.name_of(a) < seq.name_of(b);
                   });
  return order;
}

Placement DistributeAfd(const trace::AccessSequence& seq,
                        std::uint32_t num_dbcs, std::uint32_t capacity,
                        const AfdOptions& options) {
  const std::size_t n = seq.num_variables();
  if (capacity != kUnboundedCapacity &&
      static_cast<std::uint64_t>(num_dbcs) * capacity < n) {
    throw std::invalid_argument("DistributeAfd: variables exceed capacity");
  }
  const auto stats = trace::ComputeVariableStats(seq);
  const auto order = SortByFrequencyDescending(stats, seq);

  Placement placement(n, num_dbcs, capacity);
  std::uint32_t next_dbc = 0;
  for (const VariableId v : order) {
    // Deal round-robin, skipping full DBCs (capacity permitting is
    // guaranteed by the check above).
    std::uint32_t attempts = 0;
    while (placement.FreeIn(next_dbc) == 0) {
      next_dbc = (next_dbc + 1) % num_dbcs;
      if (++attempts > num_dbcs) {
        throw std::logic_error("DistributeAfd: no free DBC despite capacity");
      }
    }
    placement.Append(next_dbc, v);
    next_dbc = (next_dbc + 1) % num_dbcs;
  }

  for (std::uint32_t d = 0; d < num_dbcs; ++d) {
    ApplyIntra(options.intra, seq, placement, d);
  }
  return placement;
}

}  // namespace rtmp::core
