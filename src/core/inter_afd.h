// AFD — Access Frequency based Distribution (Chen et al. [2], §III-A):
// the state-of-the-art inter-DBC baseline the paper compares against.
// Variables are sorted by descending access frequency and dealt round-robin
// across DBCs, placing hot variables near each other; an intra-DBC
// heuristic then orders each DBC.
#pragma once

#include <span>
#include <vector>

#include "core/intra_heuristics.h"
#include "core/placement.h"
#include "trace/access_sequence.h"
#include "trace/variable_stats.h"

namespace rtmp::core {

struct AfdOptions {
  /// Intra-DBC policy applied per DBC after distribution. kNone keeps the
  /// round-robin insertion order (the layout of the paper's Fig. 3c).
  IntraHeuristic intra = IntraHeuristic::kOfu;
};

/// Variables sorted by descending frequency; ties are broken by ascending
/// variable NAME, as in the paper's Fig. 3 deal (alphabetical: DBC0 =
/// {a,g,b,d,h}). Name order matters: real benchmark identifiers are
/// uncorrelated with access time, unlike generator ids.
[[nodiscard]] std::vector<VariableId> SortByFrequencyDescending(
    std::span<const trace::VariableStats> stats,
    const trace::AccessSequence& seq);

/// Runs AFD. Throws std::invalid_argument if the variables cannot fit
/// (num_dbcs * capacity < |V|).
[[nodiscard]] Placement DistributeAfd(const trace::AccessSequence& seq,
                                      std::uint32_t num_dbcs,
                                      std::uint32_t capacity,
                                      const AfdOptions& options = {});

}  // namespace rtmp::core
