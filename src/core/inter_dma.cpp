#include "core/inter_dma.h"

#include <algorithm>
#include <stdexcept>

#include "core/inter_afd.h"
#include "trace/liveliness.h"

namespace rtmp::core {

std::vector<VariableId> SelectDisjointVariables(
    std::span<const trace::VariableStats> stats) {
  // Candidates in ascending first-occurrence order (line 5). Variables that
  // never occur cannot be "disjoint with maximal self-accesses"; they are
  // left for the non-disjoint distribution.
  std::vector<VariableId> by_first;
  for (VariableId v = 0; v < stats.size(); ++v) {
    if (stats[v].first != trace::kNever) by_first.push_back(v);
  }
  std::sort(by_first.begin(), by_first.end(),
            [&stats](VariableId a, VariableId b) {
              return stats[a].first < stats[b].first;
            });

  std::vector<bool> selected(stats.size(), false);
  std::vector<VariableId> disjoint;
  // tmin is the last occurrence of the most recently selected variable;
  // -1 admits the earliest candidate (the paper's 1-based pseudo-code uses
  // tmin = 0 for the same purpose).
  std::int64_t tmin = -1;
  for (const VariableId v : by_first) {
    const trace::VariableStats& sv = stats[v];
    if (static_cast<std::int64_t>(sv.first) <= tmin) continue;
    // Line 10: accept v only if its own accesses outweigh everything whose
    // lifespan nests strictly inside v's (those variables become expensive
    // neighbors if v monopolizes a disjoint slot). The sum ranges over the
    // current Vndj, i.e. skips already-selected variables.
    std::uint64_t nested = 0;
    for (VariableId u = 0; u < stats.size(); ++u) {
      if (u == v || selected[u]) continue;
      if (trace::LifespanNestedWithin(stats[u], sv)) {
        nested += stats[u].frequency;
      }
    }
    if (sv.frequency > nested) {
      selected[v] = true;
      disjoint.push_back(v);
      tmin = static_cast<std::int64_t>(sv.last);
    }
  }
  return disjoint;
}

DmaResult DistributeDma(const trace::AccessSequence& seq,
                        std::uint32_t num_dbcs, std::uint32_t capacity,
                        const DmaOptions& options) {
  const std::size_t n = seq.num_variables();
  if (capacity != kUnboundedCapacity &&
      static_cast<std::uint64_t>(num_dbcs) * capacity < n) {
    throw std::invalid_argument("DistributeDma: variables exceed capacity");
  }
  const auto stats = trace::ComputeVariableStats(seq);

  std::vector<VariableId> disjoint = SelectDisjointVariables(stats);
  std::vector<bool> is_disjoint(n, false);
  for (const VariableId v : disjoint) is_disjoint[v] = true;

  // Line 13: K DBCs for the disjoint variables.
  std::uint32_t k = 0;
  if (!disjoint.empty()) {
    if (capacity == kUnboundedCapacity) {
      k = 1;
    } else {
      k = static_cast<std::uint32_t>(
          (disjoint.size() + capacity - 1) / capacity);
    }
  }
  const std::size_t leftover_count = n - disjoint.size();

  // Keep at least one DBC for non-disjoint variables; trim Vdj (drop the
  // lowest-frequency members back to Vndj) if it cannot fit.
  const std::uint32_t max_disjoint_dbcs =
      leftover_count > 0 ? (num_dbcs > 1 ? num_dbcs - 1 : 0) : num_dbcs;
  if (k > max_disjoint_dbcs) {
    k = max_disjoint_dbcs;
    const std::uint64_t keep =
        capacity == kUnboundedCapacity
            ? (k > 0 ? disjoint.size() : 0)
            : static_cast<std::uint64_t>(k) * capacity;
    if (disjoint.size() > keep) {
      // Drop lowest-frequency disjoint variables first; preserve the
      // first-occurrence order of the survivors.
      std::vector<VariableId> by_freq = disjoint;
      std::stable_sort(by_freq.begin(), by_freq.end(),
                       [&stats](VariableId a, VariableId b) {
                         return stats[a].frequency < stats[b].frequency;
                       });
      const std::size_t drop = by_freq.size() - static_cast<std::size_t>(keep);
      for (std::size_t i = 0; i < drop; ++i) is_disjoint[by_freq[i]] = false;
      std::erase_if(disjoint,
                    [&is_disjoint](VariableId v) { return !is_disjoint[v]; });
    }
  }

  Placement placement(n, num_dbcs, capacity);

  // Lines 14-17: disjoint variables round-robin over DBCs [0, K) in
  // ascending first-occurrence order (SelectDisjointVariables returns that
  // order). Each DBC receives its members in access order.
  if (k > 0) {
    std::uint32_t next = 0;
    for (const VariableId v : disjoint) {
      placement.Append(next, v);
      next = (next + 1) % k;
    }
  }

  // Lines 18-21: remaining variables round-robin over DBCs [K, q) in
  // descending frequency order (ties by ascending id, as in AFD).
  std::vector<VariableId> leftovers;
  leftovers.reserve(leftover_count);
  for (const VariableId v : SortByFrequencyDescending(stats, seq)) {
    if (!is_disjoint[v]) leftovers.push_back(v);
  }
  if (!leftovers.empty()) {
    if (k >= num_dbcs) {
      // Only possible when every variable was classified disjoint yet some
      // zero-frequency stragglers remain; fall back to the last DBC.
      k = num_dbcs - 1;
    }
    std::uint32_t next = k;
    for (const VariableId v : leftovers) {
      std::uint32_t attempts = 0;
      while (placement.FreeIn(next) == 0) {
        next = next + 1 >= num_dbcs ? k : next + 1;
        if (++attempts > num_dbcs) break;
      }
      if (placement.FreeIn(next) == 0) {
        // The non-disjoint DBCs are full: spill into the free tail slots of
        // the disjoint DBCs (their ordered prefix stays intact). Total
        // capacity >= |V| guarantees a slot exists.
        for (std::uint32_t d = 0; d < num_dbcs; ++d) {
          if (placement.FreeIn(d) > 0) {
            next = d;
            break;
          }
        }
      }
      placement.Append(next, v);
      next = next + 1 >= num_dbcs ? k : next + 1;
    }
  }

  // Lines 22-23: intra-DBC optimization on the non-disjoint DBCs only.
  // With a single DBC the disjoint prefix must keep its order: skip.
  if (num_dbcs > 1 || disjoint.empty()) {
    for (std::uint32_t d = k; d < num_dbcs; ++d) {
      ApplyIntra(options.intra, seq, placement, d);
    }
  }

  DmaResult result{std::move(placement), std::move(disjoint), k};
  return result;
}

}  // namespace rtmp::core
