// DMA — the paper's sequence-aware inter-DBC distribution (§III-B,
// Algorithm 1).
//
// The heuristic performs a liveliness analysis on the trace, greedily
// extracts a set Vdj of variables with pairwise disjoint lifespans that
// maximizes self-accesses (a variable joins Vdj only if its own access
// frequency exceeds the total frequency of the variables whose lifespans
// nest strictly inside its own), stores Vdj in K = ceil(|Vdj|/N) dedicated
// DBCs in access order, and deals the remaining variables across the other
// DBCs by descending access frequency, finally applying an intra-DBC
// heuristic there. DBCs holding only disjoint variables in access order
// incur at most |Vdj| - 1 shifts over the whole trace.
#pragma once

#include <cstdint>
#include <vector>

#include "core/intra_heuristics.h"
#include "core/placement.h"
#include "trace/access_sequence.h"
#include "trace/variable_stats.h"

namespace rtmp::core {

struct DmaOptions {
  /// Intra-DBC policy for the NON-disjoint DBCs (Algorithm 1 lines 22-23).
  /// Disjoint DBCs always keep access order. kOfu gives the paper's
  /// DMA-OFU, kChen DMA-Chen, kShiftsReduce DMA-SR.
  IntraHeuristic intra = IntraHeuristic::kOfu;
};

/// Algorithm 1 lines 5-12: the greedy disjoint-set selection. Returns the
/// selected variables in ascending first-occurrence order. Variables that
/// never appear in the sequence are never selected.
[[nodiscard]] std::vector<VariableId> SelectDisjointVariables(
    std::span<const trace::VariableStats> stats);

struct DmaResult {
  Placement placement;
  /// Vdj in selection (= first-occurrence) order, after any capacity trim.
  std::vector<VariableId> disjoint;
  /// K: how many leading DBCs hold the disjoint variables.
  std::uint32_t disjoint_dbc_count = 0;
};

/// Runs the full Algorithm 1. Throws std::invalid_argument if the variables
/// cannot fit (num_dbcs * capacity < |V|).
///
/// Deviations from the pseudo-code, which leaves these cases open:
///  * if Vdj needs more than num_dbcs - 1 DBCs while non-disjoint variables
///    exist, Vdj is trimmed (lowest-frequency members move back to Vndj) so
///    at least one DBC remains for them;
///  * with a single DBC and non-disjoint variables present, DMA degenerates
///    to a frequency deal into that DBC followed by the intra heuristic
///    (there is no room for a dedicated disjoint DBC); if ALL variables are
///    disjoint they keep pure access order instead;
///  * when the non-disjoint DBCs run out of slots under tight capacities,
///    the remaining variables spill into the free tail slots of the
///    disjoint DBCs (the disjoint prefix keeps its access order; the
///    <= |Vdj|-1 shift bound then no longer applies to those DBCs).
[[nodiscard]] DmaResult DistributeDma(const trace::AccessSequence& seq,
                                      std::uint32_t num_dbcs,
                                      std::uint32_t capacity,
                                      const DmaOptions& options = {});

}  // namespace rtmp::core
