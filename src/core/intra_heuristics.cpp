#include "core/intra_heuristics.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <limits>
#include <stdexcept>

#include "trace/access_graph.h"

namespace rtmp::core {

namespace {

constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();

/// Local view of one DBC's subproblem: dense local ids for the subset,
/// frequencies and an adjacency structure from the restricted accesses.
struct LocalProblem {
  std::vector<VariableId> globals;              // local -> global id
  std::vector<std::uint64_t> frequency;         // by local id
  std::vector<std::vector<trace::AccessGraph::Edge>> adjacency;  // local ids
  std::vector<VariableId> unused;               // subset vars never accessed

  [[nodiscard]] std::size_t size() const noexcept { return globals.size(); }
};

LocalProblem BuildLocal(std::span<const trace::Access> accesses,
                        std::span<const VariableId> vars,
                        std::size_t num_variables) {
  std::vector<std::size_t> to_local(num_variables, kNoIndex);
  std::vector<bool> in_subset(num_variables, false);
  for (const VariableId v : vars) in_subset.at(v) = true;

  LocalProblem local;
  // Assign local ids by order of first access for determinism.
  std::vector<trace::Access> restricted;
  restricted.reserve(accesses.size());
  for (const trace::Access& a : accesses) {
    if (!in_subset[a.variable]) continue;
    restricted.push_back(a);
    if (to_local[a.variable] == kNoIndex) {
      to_local[a.variable] = local.globals.size();
      local.globals.push_back(a.variable);
    }
  }
  // Subset variables never accessed, ascending id.
  std::vector<VariableId> unused(vars.begin(), vars.end());
  std::sort(unused.begin(), unused.end());
  for (const VariableId v : unused) {
    if (to_local[v] == kNoIndex) local.unused.push_back(v);
  }

  const std::size_t n = local.globals.size();
  local.frequency.assign(n, 0);
  local.adjacency.assign(n, {});
  // Packed (lo, hi) transition pairs, sorted then run-length counted:
  // edge weights accumulate in key order, so adjacency construction is
  // deterministic with no hash-ordered container in the path (the
  // adjacency lists feed heuristic tie-breaks and, through them, the
  // golden-checked reports).
  std::vector<std::uint64_t> transitions;
  transitions.reserve(restricted.size());
  std::size_t prev = kNoIndex;
  for (const trace::Access& a : restricted) {
    const std::size_t cur = to_local[a.variable];
    ++local.frequency[cur];
    if (prev != kNoIndex && prev != cur) {
      const std::uint64_t lo = std::min(prev, cur);
      const std::uint64_t hi = std::max(prev, cur);
      transitions.push_back((lo << 32) | hi);
    }
    prev = cur;
  }
  std::sort(transitions.begin(), transitions.end());
  for (std::size_t i = 0; i < transitions.size();) {
    const std::uint64_t key = transitions[i];
    std::size_t j = i;
    while (j < transitions.size() && transitions[j] == key) ++j;
    const std::uint64_t weight = j - i;
    const auto u = static_cast<std::size_t>(key >> 32);
    const auto v = static_cast<std::size_t>(key & 0xFFFFFFFFULL);
    local.adjacency[u].push_back({static_cast<VariableId>(v), weight});
    local.adjacency[v].push_back({static_cast<VariableId>(u), weight});
    i = j;
  }
  for (auto& edges : local.adjacency) {
    std::sort(edges.begin(), edges.end(),
              [](const auto& a, const auto& b) {
                return a.neighbor < b.neighbor;
              });
  }
  return local;
}

std::vector<VariableId> FinishOrder(const LocalProblem& local,
                                    const std::vector<std::size_t>& sequence) {
  std::vector<VariableId> order;
  order.reserve(sequence.size() + local.unused.size());
  for (const std::size_t l : sequence) order.push_back(local.globals[l]);
  order.insert(order.end(), local.unused.begin(), local.unused.end());
  return order;
}

std::vector<VariableId> OfuOrder(const LocalProblem& local) {
  // Local ids were assigned in first-access order already.
  std::vector<std::size_t> sequence(local.size());
  for (std::size_t i = 0; i < sequence.size(); ++i) sequence[i] = i;
  return FinishOrder(local, sequence);
}

/// Seed vertex for the greedy heuristics: highest frequency, tie broken by
/// lower global id.
std::size_t SeedVertex(const LocalProblem& local) {
  std::size_t best = 0;
  for (std::size_t v = 1; v < local.size(); ++v) {
    const bool better =
        local.frequency[v] > local.frequency[best] ||
        (local.frequency[v] == local.frequency[best] &&
         local.globals[v] < local.globals[best]);
    if (better) best = v;
  }
  return best;
}

/// Shared greedy skeleton for kChen/kShiftsReduce: repeatedly take the
/// unplaced vertex with the largest total weight to the placed set and let
/// `choose_front` decide which end it is appended to.
///
/// Contract: `choose_front(v, order)` is called EXACTLY ONCE per remaining
/// vertex, and v is placed at the chosen end immediately afterwards.
/// Callbacks may carry state keyed on that contract — ShiftsReduceChain's
/// does (it tracks each placed vertex's virtual chain coordinate).
template <typename ChooseFront>
std::vector<std::size_t> GrowChain(const LocalProblem& local,
                                   ChooseFront&& choose_front) {
  const std::size_t n = local.size();
  std::vector<std::size_t> chain;
  if (n == 0) return chain;
  std::vector<bool> placed(n, false);
  std::vector<std::uint64_t> gain(n, 0);

  std::deque<std::size_t> order;
  auto place = [&](std::size_t v) {
    placed[v] = true;
    for (const auto& e : local.adjacency[v]) {
      if (!placed[e.neighbor]) gain[e.neighbor] += e.weight;
    }
  };

  const std::size_t seed = SeedVertex(local);
  order.push_back(seed);
  place(seed);

  for (std::size_t step = 1; step < n; ++step) {
    std::size_t best = kNoIndex;
    for (std::size_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (best == kNoIndex) {
        best = v;
        continue;
      }
      const bool better =
          gain[v] > gain[best] ||
          (gain[v] == gain[best] &&
           (local.frequency[v] > local.frequency[best] ||
            (local.frequency[v] == local.frequency[best] &&
             local.globals[v] < local.globals[best])));
      if (better) best = v;
    }
    if (choose_front(best, order)) order.push_front(best);
    else order.push_back(best);
    place(best);
  }
  chain.assign(order.begin(), order.end());
  return chain;
}

std::uint64_t EdgeWeightBetween(const LocalProblem& local, std::size_t u,
                                std::size_t v) {
  // Adjacency lists are sorted by neighbor id (BuildLocal).
  const auto& edges = local.adjacency[u];
  const auto it = std::lower_bound(
      edges.begin(), edges.end(), v,
      [](const trace::AccessGraph::Edge& e, std::size_t id) {
        return e.neighbor < id;
      });
  return it != edges.end() && it->neighbor == v ? it->weight : 0;
}

std::vector<std::size_t> ChenChain(const LocalProblem& local) {
  return GrowChain(local, [&local](std::size_t v,
                                   const std::deque<std::size_t>& order) {
    // Attach to the end the candidate is more strongly connected to.
    const std::uint64_t to_front = EdgeWeightBetween(local, v, order.front());
    const std::uint64_t to_back = EdgeWeightBetween(local, v, order.back());
    return to_front > to_back;
  });
}

/// Greedy maximum-weight path cover: accept edges by descending weight when
/// both endpoints still have a free slot (degree < 2) and the edge closes
/// no cycle; stitch the resulting paths together, heaviest first.
std::vector<std::size_t> GreedyEdgeChain(const LocalProblem& local) {
  const std::size_t n = local.size();
  std::vector<std::size_t> chain;
  if (n == 0) return chain;

  struct WeightedEdge {
    std::size_t u = 0;
    std::size_t v = 0;
    std::uint64_t weight = 0;
  };
  std::vector<WeightedEdge> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& e : local.adjacency[u]) {
      if (u < e.neighbor) edges.push_back({u, e.neighbor, e.weight});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });

  // Union-find over path fragments; degree caps keep fragments simple paths.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::vector<int> degree(n, 0);
  std::vector<std::vector<std::size_t>> accepted(n);
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const WeightedEdge& e : edges) {
    if (degree[e.u] >= 2 || degree[e.v] >= 2) continue;
    const std::size_t ru = find(e.u);
    const std::size_t rv = find(e.v);
    if (ru == rv) continue;  // would close a cycle
    parent[ru] = rv;
    ++degree[e.u];
    ++degree[e.v];
    accepted[e.u].push_back(e.v);
    accepted[e.v].push_back(e.u);
  }

  // Walk each path fragment from one of its endpoints; singletons follow.
  // Fragments are emitted in order of their heaviest member's frequency so
  // hot paths sit together near the front.
  std::vector<bool> visited(n, false);
  std::vector<std::vector<std::size_t>> fragments;
  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start] || accepted[start].size() == 2) continue;
    // start is an endpoint (degree 0 or 1) of an unvisited fragment.
    std::vector<std::size_t> fragment;
    std::size_t prev = n;  // sentinel
    std::size_t cur = start;
    for (;;) {
      visited[cur] = true;
      fragment.push_back(cur);
      std::size_t next = n;
      for (const std::size_t cand : accepted[cur]) {
        if (cand != prev) {
          next = cand;
          break;
        }
      }
      if (next == n) break;
      prev = cur;
      cur = next;
    }
    fragments.push_back(std::move(fragment));
  }
  std::sort(fragments.begin(), fragments.end(),
            [&local](const auto& a, const auto& b) {
              std::uint64_t fa = 0;
              std::uint64_t fb = 0;
              for (const auto v : a) fa = std::max(fa, local.frequency[v]);
              for (const auto v : b) fb = std::max(fb, local.frequency[v]);
              if (fa != fb) return fa > fb;
              return local.globals[a.front()] < local.globals[b.front()];
            });
  for (const auto& fragment : fragments) {
    chain.insert(chain.end(), fragment.begin(), fragment.end());
  }
  return chain;
}

std::vector<std::size_t> ShiftsReduceChain(const LocalProblem& local) {
  // Distance-discounted attachment: an edge to a variable i positions from
  // an end would cost (i+1) shifts per traversal if we append at that end.
  //
  // Scored over the candidate's placed NEIGHBORS (the transition weights),
  // not by scanning the whole chain per candidate: O(deg log deg) instead
  // of O(|chain|) per decision — the same pairwise-transition idea the
  // CostEvaluator (core/cost_evaluator.h) builds on. Virtual coordinates
  // track each placed vertex's position: the seed sits at 0, a front push
  // decrements the front coordinate, a back push increments the back one.
  // Contributions are summed in ascending distance order — exactly the
  // order the former whole-chain scan added them — so the floating-point
  // scores, and therefore the chains, are bit-identical.
  std::vector<std::int64_t> coord(local.size(), 0);
  std::vector<char> in_chain(local.size(), 0);
  std::int64_t front_coord = 0;
  std::int64_t back_coord = 0;
  struct Term {
    std::int64_t distance;
    std::uint64_t weight;
  };
  std::vector<Term> front_terms;
  std::vector<Term> back_terms;
  const auto discounted_sum = [](std::vector<Term>& terms) {
    std::sort(terms.begin(), terms.end(),
              [](const Term& a, const Term& b) {
                return a.distance < b.distance;  // distances are distinct
              });
    double score = 0.0;
    for (const Term& t : terms) {
      score += static_cast<double>(t.weight) /
               static_cast<double>(t.distance + 1);
    }
    return score;
  };
  auto chain = GrowChain(local, [&](std::size_t v,
                                    const std::deque<std::size_t>& order) {
    in_chain[order.front()] = 1;  // adopts the seed on the first call
    front_terms.clear();
    back_terms.clear();
    for (const auto& e : local.adjacency[v]) {
      if (!in_chain[e.neighbor]) continue;
      front_terms.push_back({coord[e.neighbor] - front_coord, e.weight});
      back_terms.push_back({back_coord - coord[e.neighbor], e.weight});
    }
    const bool to_front =
        discounted_sum(front_terms) > discounted_sum(back_terms);
    coord[v] = to_front ? --front_coord : ++back_coord;
    in_chain[v] = 1;
    return to_front;
  });

  // Local refinement: adjacent transpositions on the exact edge-sum
  // objective until a fixed point (bounded pass count for safety).
  const std::size_t n = chain.size();
  if (n < 2) return chain;
  std::vector<std::int64_t> pos(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    pos[chain[i]] = static_cast<std::int64_t>(i);
  }

  auto swap_delta = [&](std::size_t p) {
    // Swapping chain[p] (u) and chain[p+1] (w).
    const std::size_t u = chain[p];
    const std::size_t w = chain[p + 1];
    std::int64_t delta = 0;
    for (const auto& e : local.adjacency[u]) {
      if (e.neighbor == w) continue;
      const std::int64_t x = pos[e.neighbor];
      const auto wt = static_cast<std::int64_t>(e.weight);
      delta += wt * (std::llabs(static_cast<std::int64_t>(p + 1) - x) -
                     std::llabs(static_cast<std::int64_t>(p) - x));
    }
    for (const auto& e : local.adjacency[w]) {
      if (e.neighbor == u) continue;
      const std::int64_t x = pos[e.neighbor];
      const auto wt = static_cast<std::int64_t>(e.weight);
      delta += wt * (std::llabs(static_cast<std::int64_t>(p) - x) -
                     std::llabs(static_cast<std::int64_t>(p + 1) - x));
    }
    return delta;
  };

  constexpr std::size_t kMaxPasses = 64;
  for (std::size_t pass = 0; pass < kMaxPasses; ++pass) {
    bool improved = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      if (swap_delta(p) < 0) {
        std::swap(chain[p], chain[p + 1]);
        pos[chain[p]] = static_cast<std::int64_t>(p);
        pos[chain[p + 1]] = static_cast<std::int64_t>(p + 1);
        improved = true;
      }
    }
    if (!improved) break;
  }
  return chain;
}

}  // namespace

std::string_view ToString(IntraHeuristic heuristic) noexcept {
  switch (heuristic) {
    case IntraHeuristic::kNone: return "none";
    case IntraHeuristic::kOfu: return "ofu";
    case IntraHeuristic::kChen: return "chen";
    case IntraHeuristic::kShiftsReduce: return "sr";
    case IntraHeuristic::kGreedyEdge: return "ge";
  }
  return "unknown";
}

std::vector<VariableId> OrderVariables(IntraHeuristic heuristic,
                                       std::span<const trace::Access> accesses,
                                       std::span<const VariableId> vars,
                                       std::size_t num_variables) {
  if (heuristic == IntraHeuristic::kNone) {
    return {vars.begin(), vars.end()};
  }
  const LocalProblem local = BuildLocal(accesses, vars, num_variables);
  switch (heuristic) {
    case IntraHeuristic::kOfu:
      return OfuOrder(local);
    case IntraHeuristic::kChen:
      return FinishOrder(local, ChenChain(local));
    case IntraHeuristic::kShiftsReduce:
      return FinishOrder(local, ShiftsReduceChain(local));
    case IntraHeuristic::kGreedyEdge:
      return FinishOrder(local, GreedyEdgeChain(local));
    case IntraHeuristic::kNone:
      break;
  }
  throw std::invalid_argument("OrderVariables: unknown heuristic");
}

void ApplyIntra(IntraHeuristic heuristic, const trace::AccessSequence& seq,
                Placement& placement, std::uint32_t dbc) {
  if (heuristic == IntraHeuristic::kNone) return;
  const auto& vars = placement.dbc(dbc);
  if (vars.size() < 2) return;
  const std::vector<trace::Access> restricted = seq.Restrict(vars);
  placement.Reorder(dbc, OrderVariables(heuristic, restricted, vars,
                                        seq.num_variables()));
}

}  // namespace rtmp::core
