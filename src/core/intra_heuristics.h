// Intra-DBC placement heuristics (§II-B): given the accesses that fall into
// one DBC, pick the variable order (= offsets) that minimizes the walk cost.
// This is the classic single-offset-assignment-style problem; the total cost
// of an order equals sum over access-graph edges of weight x |offset diff|.
//
// Implemented policies:
//  * kNone — keep the order in which the inter-DBC policy inserted the
//    variables (used by the paper's Fig. 3 illustration and by DMA's
//    disjoint DBCs, whose access order must be preserved).
//  * kOfu — order of first use, the paper's baseline intra policy.
//  * kChen — greedy chain growth after Chen et al. (TVLSI'16): seed with
//    the most frequently accessed variable, then repeatedly take the
//    unplaced variable most strongly connected to the placed set and append
//    it to the end it is more attached to.
//  * kShiftsReduce — bidirectional grouping after Khan et al.
//    (ShiftsReduce): like kChen but with distance-discounted attachment
//    scores for the end choice, followed by an adjacent-transposition
//    hill-climb on the exact edge-sum objective. The cited paper's exact
//    pseudo-code is not reproduced in the DATE paper; this implementation
//    keeps its two documented ingredients (two-ended growth, local
//    refinement) and consistently dominates kChen, as in the paper.
//  * kGreedyEdge — the classic maximum-weight-path construction from the
//    offset-assignment literature the paper builds on (Junger & Mallach
//    [4] model SOA as a TSP): accept edges in descending weight order
//    whenever they keep the accepted set a union of simple paths, then
//    concatenate the paths. A fourth policy for the "interplay of inter-
//    and intra-DBC placements" analysis (paper contribution 3).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/placement.h"
#include "trace/access_sequence.h"

namespace rtmp::core {

enum class IntraHeuristic { kNone, kOfu, kChen, kShiftsReduce, kGreedyEdge };

[[nodiscard]] std::string_view ToString(IntraHeuristic heuristic) noexcept;

/// Orders `vars` for one DBC given the DBC's restricted access list.
/// `num_variables` is the size of the global variable space (ids in
/// `accesses`/`vars` are global). Variables in `vars` that never appear in
/// `accesses` are appended at the end in ascending id order.
[[nodiscard]] std::vector<VariableId> OrderVariables(
    IntraHeuristic heuristic, std::span<const trace::Access> accesses,
    std::span<const VariableId> vars, std::size_t num_variables);

/// Reorders DBC `dbc` of `placement` in place using `heuristic`, driven by
/// the accesses of `seq` that fall into that DBC.
void ApplyIntra(IntraHeuristic heuristic, const trace::AccessSequence& seq,
                Placement& placement, std::uint32_t dbc);

}  // namespace rtmp::core
