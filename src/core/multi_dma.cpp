#include "core/multi_dma.h"

#include <algorithm>
#include <stdexcept>

#include "core/inter_afd.h"
#include "trace/variable_stats.h"

namespace rtmp::core {

MultiDmaResult DistributeMultiDma(const trace::AccessSequence& seq,
                                  std::uint32_t num_dbcs,
                                  std::uint32_t capacity,
                                  const MultiDmaOptions& options) {
  const std::size_t n = seq.num_variables();
  if (capacity != kUnboundedCapacity &&
      static_cast<std::uint64_t>(num_dbcs) * capacity < n) {
    throw std::invalid_argument(
        "DistributeMultiDma: variables exceed capacity");
  }
  const auto stats = trace::ComputeVariableStats(seq);

  // Iteratively extract disjoint sets from the not-yet-claimed variables.
  // Masked variables are hidden from the selection by zeroing their stats
  // (an absent variable is never selected).
  std::vector<trace::VariableStats> masked(stats.begin(), stats.end());
  std::vector<bool> claimed(n, false);
  std::vector<std::vector<VariableId>> sets;
  const std::uint32_t hard_cap = num_dbcs > 1 ? num_dbcs - 1 : 0;
  const std::uint32_t set_budget =
      options.max_sets > 0
          ? std::min<std::uint32_t>(options.max_sets, hard_cap)
          : std::min<std::uint32_t>(std::max<std::uint32_t>(num_dbcs / 2, 1),
                                    hard_cap);
  std::size_t claimed_count = 0;
  while (sets.size() < set_budget && claimed_count < n) {
    std::vector<VariableId> set = SelectDisjointVariables(masked);
    if (set.empty()) break;
    // Capacity: one DBC per set; trim overflow (lowest frequency first).
    if (capacity != kUnboundedCapacity && set.size() > capacity) {
      std::vector<VariableId> by_freq = set;
      std::stable_sort(by_freq.begin(), by_freq.end(),
                       [&stats](VariableId a, VariableId b) {
                         return stats[a].frequency < stats[b].frequency;
                       });
      std::vector<bool> drop(n, false);
      for (std::size_t i = 0; i + capacity < by_freq.size(); ++i) {
        drop[by_freq[i]] = true;
      }
      std::erase_if(set, [&drop](VariableId v) { return drop[v]; });
    }
    std::uint64_t set_frequency = 0;
    for (const VariableId v : set) set_frequency += stats[v].frequency;
    // Always mask the set's variables so the extraction makes progress;
    // only sets pulling real traffic earn a DBC.
    for (const VariableId v : set) {
      masked[v] = trace::VariableStats{};  // freq 0, never accessed
    }
    const double share = seq.empty() ? 0.0
                                     : static_cast<double>(set_frequency) /
                                           static_cast<double>(seq.size());
    if (share < options.min_traffic_share) break;  // later sets only shrink
    for (const VariableId v : set) {
      claimed[v] = true;
      ++claimed_count;
    }
    sets.push_back(std::move(set));
  }

  Placement placement(n, num_dbcs, capacity);
  for (std::uint32_t s = 0; s < sets.size(); ++s) {
    for (const VariableId v : sets[s]) placement.Append(s, v);
  }

  // Remaining variables: frequency deal over the remaining DBCs (AFD rule).
  const auto k = static_cast<std::uint32_t>(sets.size());
  std::vector<VariableId> leftovers;
  for (const VariableId v : SortByFrequencyDescending(stats, seq)) {
    if (!claimed[v]) leftovers.push_back(v);
  }
  if (!leftovers.empty()) {
    const std::uint32_t first = k < num_dbcs ? k : num_dbcs - 1;
    std::uint32_t next = first;
    for (const VariableId v : leftovers) {
      std::uint32_t attempts = 0;
      while (placement.FreeIn(next) == 0) {
        next = next + 1 >= num_dbcs ? first : next + 1;
        if (++attempts > num_dbcs) break;
      }
      if (placement.FreeIn(next) == 0) {
        // Spill into free tail slots of the set DBCs (prefix order kept).
        for (std::uint32_t d = 0; d < num_dbcs; ++d) {
          if (placement.FreeIn(d) > 0) {
            next = d;
            break;
          }
        }
      }
      placement.Append(next, v);
      next = next + 1 >= num_dbcs ? first : next + 1;
    }
    for (std::uint32_t d = first; d < num_dbcs; ++d) {
      ApplyIntra(options.base.intra, seq, placement, d);
    }
  }

  MultiDmaResult result{std::move(placement), std::move(sets), k};
  return result;
}

}  // namespace rtmp::core
