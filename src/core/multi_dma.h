// Multi-set DMA — the paper's §VI future-work direction, implemented as an
// extension: instead of extracting ONE set of disjoint-lifespan variables,
// keep re-running the Algorithm 1 selection on the remaining variables,
// giving each extracted set its own DBC (in access order) while DBCs are
// available, then distribute the rest as usual. The ablation bench
// (bench/ablation_dma) compares this against single-set DMA.
#pragma once

#include <cstdint>
#include <vector>

#include "core/inter_dma.h"
#include "core/placement.h"
#include "trace/access_sequence.h"

namespace rtmp::core {

struct MultiDmaOptions {
  DmaOptions base{};
  /// Upper bound on extracted disjoint sets; 0 derives half the DBC count
  /// (dedicating more starves the non-disjoint remainder of DBCs, which
  /// costs far more than a marginal extra set saves).
  std::uint32_t max_sets = 0;
  /// A set must capture at least this fraction of the trace's accesses to
  /// be worth a dedicated DBC; weaker sets go back to the frequency pool.
  double min_traffic_share = 0.05;
};

struct MultiDmaResult {
  Placement placement;
  /// Extracted sets in extraction order; each is in access order.
  std::vector<std::vector<VariableId>> sets;
  /// Leading DBC count used by the sets (one DBC per set here).
  std::uint32_t disjoint_dbc_count = 0;
};

[[nodiscard]] MultiDmaResult DistributeMultiDma(
    const trace::AccessSequence& seq, std::uint32_t num_dbcs,
    std::uint32_t capacity, const MultiDmaOptions& options = {});

}  // namespace rtmp::core
