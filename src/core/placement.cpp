#include "core/placement.h"

#include <algorithm>
#include <stdexcept>

namespace rtmp::core {

Placement::Placement(std::size_t num_variables, std::uint32_t num_dbcs,
                     std::uint32_t capacity)
    : lists_(num_dbcs),
      slots_(num_variables, Slot{kUnplacedDbc, 0}),
      capacity_(capacity) {
  if (num_dbcs == 0) {
    throw std::invalid_argument("Placement: need at least one DBC");
  }
  if (capacity == 0) {
    throw std::invalid_argument("Placement: capacity must be positive");
  }
}

Placement Placement::FromLists(std::vector<std::vector<VariableId>> lists,
                               std::size_t num_variables,
                               std::uint32_t capacity) {
  Placement p(num_variables, static_cast<std::uint32_t>(lists.size()),
              capacity);
  for (std::uint32_t d = 0; d < lists.size(); ++d) {
    for (const VariableId v : lists[d]) {
      p.Append(d, v);  // Append performs all validity checks
    }
  }
  return p;
}

Slot Placement::SlotOf(VariableId v) const {
  const Slot slot = slots_.at(v);
  if (slot.dbc == kUnplacedDbc) {
    throw std::logic_error("Placement: variable is unplaced");
  }
  return slot;
}

std::uint32_t Placement::FreeIn(std::uint32_t i) const {
  const auto used = static_cast<std::uint32_t>(lists_.at(i).size());
  if (capacity_ == kUnboundedCapacity) return kUnboundedCapacity;
  return capacity_ - used;
}

void Placement::CheckInvariants() const {
  std::size_t placed = 0;
  std::vector<bool> seen(slots_.size(), false);
  for (std::uint32_t d = 0; d < lists_.size(); ++d) {
    if (capacity_ != kUnboundedCapacity && lists_[d].size() > capacity_) {
      throw std::logic_error("Placement invariant: DBC over capacity");
    }
    for (std::size_t offset = 0; offset < lists_[d].size(); ++offset) {
      const VariableId v = lists_[d][offset];
      if (v >= slots_.size()) {
        throw std::logic_error("Placement invariant: variable id out of range");
      }
      if (seen[v]) {
        throw std::logic_error("Placement invariant: variable placed twice");
      }
      seen[v] = true;
      if (slots_[v].dbc != d || slots_[v].offset != offset) {
        throw std::logic_error("Placement invariant: index out of sync");
      }
      ++placed;
    }
  }
  if (placed != placed_count_) {
    throw std::logic_error("Placement invariant: placed count out of sync");
  }
  for (std::size_t v = 0; v < slots_.size(); ++v) {
    if (slots_[v].dbc != kUnplacedDbc && !seen[v]) {
      throw std::logic_error("Placement invariant: stale slot entry");
    }
  }
}

void Placement::Append(std::uint32_t dbc, VariableId v) {
  if (v >= slots_.size()) {
    throw std::invalid_argument("Placement: variable id out of range");
  }
  if (slots_[v].dbc != kUnplacedDbc) {
    throw std::invalid_argument("Placement: variable already placed");
  }
  auto& list = lists_.at(dbc);
  if (capacity_ != kUnboundedCapacity && list.size() >= capacity_) {
    throw std::invalid_argument("Placement: DBC is full");
  }
  slots_[v] = Slot{dbc, static_cast<std::uint32_t>(list.size())};
  list.push_back(v);
  ++placed_count_;
}

void Placement::Remove(VariableId v) {
  const Slot slot = SlotOf(v);
  auto& list = lists_[slot.dbc];
  list.erase(list.begin() + slot.offset);
  slots_[v] = Slot{kUnplacedDbc, 0};
  --placed_count_;
  ReindexFrom(slot.dbc, slot.offset);
}

void Placement::MoveToEnd(VariableId v, std::uint32_t dbc) {
  if (dbc >= lists_.size()) {
    throw std::invalid_argument("Placement: DBC index out of range");
  }
  const Slot slot = SlotOf(v);  // throws if unplaced
  // Strong exception safety: verify the target has room BEFORE removing v
  // (moving within the same DBC always fits — v frees its own slot).
  if (slot.dbc != dbc && capacity_ != kUnboundedCapacity &&
      lists_[dbc].size() >= capacity_) {
    throw std::invalid_argument("Placement: DBC is full");
  }
  Remove(v);
  Append(dbc, v);
}

void Placement::Transpose(std::uint32_t dbc, std::size_t i, std::size_t j) {
  auto& list = lists_.at(dbc);
  if (i >= list.size() || j >= list.size()) {
    throw std::out_of_range("Placement: transpose position out of range");
  }
  std::swap(list[i], list[j]);
  slots_[list[i]].offset = static_cast<std::uint32_t>(i);
  slots_[list[j]].offset = static_cast<std::uint32_t>(j);
}

void Placement::Reorder(std::uint32_t dbc, std::vector<VariableId> order) {
  auto& list = lists_.at(dbc);
  if (order.size() != list.size()) {
    throw std::invalid_argument("Placement: reorder size mismatch");
  }
  auto sorted_old = list;
  auto sorted_new = order;
  std::sort(sorted_old.begin(), sorted_old.end());
  std::sort(sorted_new.begin(), sorted_new.end());
  if (sorted_old != sorted_new) {
    throw std::invalid_argument("Placement: reorder is not a permutation");
  }
  list = std::move(order);
  ReindexFrom(dbc, 0);
}

void Placement::ReindexFrom(std::uint32_t dbc, std::size_t start_offset) {
  const auto& list = lists_[dbc];
  for (std::size_t offset = start_offset; offset < list.size(); ++offset) {
    slots_[list[offset]] = Slot{dbc, static_cast<std::uint32_t>(offset)};
  }
}

}  // namespace rtmp::core
