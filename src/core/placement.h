// Placement: the decision variable of every strategy in the paper.
//
// A placement assigns each program variable a DBC and an offset inside it.
// Offsets are implied by order: DBC i holds an ordered list of variables,
// the j-th list entry sitting at offset j. This matches the paper's GA
// individual representation I = (DBC_1, ..., DBC_q), each DBC_i an ordered
// variable list, and makes the GA operators (move/transpose/permute/swap)
// structure-preserving by construction.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "trace/access_sequence.h"

namespace rtmp::core {

using trace::VariableId;

/// A variable's location.
struct Slot {
  std::uint32_t dbc = 0;
  std::uint32_t offset = 0;

  friend bool operator==(const Slot&, const Slot&) = default;
};

/// Capacity value meaning "no per-DBC limit".
inline constexpr std::uint32_t kUnboundedCapacity =
    std::numeric_limits<std::uint32_t>::max();

class Placement {
 public:
  /// An empty placement of `num_variables` variables over `num_dbcs` DBCs,
  /// each holding at most `capacity` variables.
  Placement(std::size_t num_variables, std::uint32_t num_dbcs,
            std::uint32_t capacity = kUnboundedCapacity);

  /// Adopts explicit per-DBC lists. Throws std::invalid_argument if any
  /// variable appears twice, an id is out of range, or a list exceeds
  /// `capacity`. Variables absent from every list remain unplaced.
  [[nodiscard]] static Placement FromLists(
      std::vector<std::vector<VariableId>> lists, std::size_t num_variables,
      std::uint32_t capacity = kUnboundedCapacity);

  // -- queries ------------------------------------------------------------

  [[nodiscard]] std::size_t num_variables() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::uint32_t num_dbcs() const noexcept {
    return static_cast<std::uint32_t>(lists_.size());
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] const std::vector<VariableId>& dbc(std::uint32_t i) const {
    return lists_.at(i);
  }

  [[nodiscard]] bool IsPlaced(VariableId v) const {
    return slots_.at(v).dbc != kUnplacedDbc;
  }

  /// Location of a placed variable; throws std::logic_error if unplaced.
  [[nodiscard]] Slot SlotOf(VariableId v) const;

  /// True when every variable is placed.
  [[nodiscard]] bool IsComplete() const noexcept {
    return placed_count_ == slots_.size();
  }

  [[nodiscard]] std::size_t placed_count() const noexcept {
    return placed_count_;
  }

  /// Number of free slots in DBC i (kUnboundedCapacity when unlimited).
  [[nodiscard]] std::uint32_t FreeIn(std::uint32_t i) const;

  /// Cross-checks internal index against the lists; throws std::logic_error
  /// on any inconsistency. Intended for tests and debug assertions.
  void CheckInvariants() const;

  // -- mutation (used by heuristics and GA operators) ----------------------

  /// Appends an unplaced variable to DBC `dbc`. Throws if already placed or
  /// the DBC is full.
  void Append(std::uint32_t dbc, VariableId v);

  /// Removes a placed variable (closing its gap). Throws if unplaced.
  void Remove(VariableId v);

  /// Remove + Append in one step (the GA "move" mutation and the crossover
  /// reassignment primitive).
  void MoveToEnd(VariableId v, std::uint32_t dbc);

  /// Swaps the variables at positions i and j of DBC `dbc` (the GA
  /// "transpose" mutation).
  void Transpose(std::uint32_t dbc, std::size_t i, std::size_t j);

  /// Replaces DBC `dbc`'s order; `order` must be a permutation of the
  /// current content (the GA "permute" mutation applies this with a random
  /// permutation).
  void Reorder(std::uint32_t dbc, std::vector<VariableId> order);

  friend bool operator==(const Placement& a, const Placement& b) {
    return a.capacity_ == b.capacity_ && a.lists_ == b.lists_;
  }

 private:
  static constexpr std::uint32_t kUnplacedDbc =
      std::numeric_limits<std::uint32_t>::max();

  void ReindexFrom(std::uint32_t dbc, std::size_t start_offset);

  std::vector<std::vector<VariableId>> lists_;
  std::vector<Slot> slots_;  // slots_[v].dbc == kUnplacedDbc if unplaced
  std::uint32_t capacity_;
  std::size_t placed_count_ = 0;
};

}  // namespace rtmp::core
