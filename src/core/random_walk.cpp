#include "core/random_walk.h"

#include <algorithm>
#include <stdexcept>

#include "core/cost_evaluator.h"
#include "core/genetic.h"
#include "util/rng.h"

namespace rtmp::core {

RwResult RunRandomWalk(const trace::AccessSequence& seq,
                       std::uint32_t num_dbcs, std::uint32_t capacity,
                       const RwOptions& options) {
  if (options.iterations == 0) {
    throw std::invalid_argument("RunRandomWalk: need at least one iteration");
  }
  const std::size_t n = seq.num_variables();
  if (capacity != kUnboundedCapacity &&
      static_cast<std::uint64_t>(num_dbcs) * capacity < n) {
    throw std::invalid_argument("RunRandomWalk: variables exceed capacity");
  }
  util::Rng rng(options.seed);

  // Candidates are unrelated uniform draws, so the evaluator's diff path
  // never pays off; it scores each through its full-rebuild pass (the same
  // O(|S|) walk ShiftCost does — bit-identical costs) while keeping the
  // walk on the same scoring interface as the GA.
  CostEvaluator evaluator(seq, options.cost);
  Placement best = RandomPlacement(n, num_dbcs, capacity, rng);
  std::uint64_t best_cost = evaluator.Evaluate(best);

  const std::size_t stride = std::max<std::size_t>(options.iterations / 100, 1);
  RwResult result{std::move(best), best_cost, {}, 1};
  for (std::size_t i = 1; i < options.iterations; ++i) {
    Placement candidate = RandomPlacement(n, num_dbcs, capacity, rng);
    const std::uint64_t cost = evaluator.Evaluate(candidate);
    ++result.evaluations;
    if (cost < result.best_cost) {
      result.best = std::move(candidate);
      result.best_cost = cost;
    }
    if (i % stride == 0) result.history.push_back(result.best_cost);
  }
  result.history.push_back(result.best_cost);
  return result;
}

}  // namespace rtmp::core
