// Random-walk search (§III-C): sample uniformly random complete placements
// (random DBC assignment + random order inside every DBC) and keep the best.
// The paper runs 60 000 iterations — the upper bound on individuals its GA
// evaluates — to put the GA results in perspective.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.h"
#include "core/placement.h"
#include "trace/access_sequence.h"

namespace rtmp::core {

struct RwOptions {
  std::size_t iterations = 60000;
  std::uint64_t seed = 0x5EEDULL;
  CostOptions cost{};
};

struct RwResult {
  Placement best;
  std::uint64_t best_cost = 0;
  /// Best cost after each iteration block of 1/100th of the run (at least
  /// one sample); cheap convergence curve for reports.
  std::vector<std::uint64_t> history;
  /// Candidate placements actually scored (== RwOptions::iterations); the
  /// strategy registry reports this as the search effort used.
  std::size_t evaluations = 0;
};

[[nodiscard]] RwResult RunRandomWalk(const trace::AccessSequence& seq,
                                     std::uint32_t num_dbcs,
                                     std::uint32_t capacity,
                                     const RwOptions& options = {});

}  // namespace rtmp::core
