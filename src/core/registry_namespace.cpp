#include "core/registry_namespace.h"

#include <algorithm>
#include <stdexcept>

namespace rtmp::core {

RegistryNamespace& RegistryNamespace::Global() {
  // Leaked: the registries claim names from static initializers in
  // any TU order, so this must outlive every static destructor.
  // NOLINTNEXTLINE(rtmlint:naked-new): leaked Global() singleton.
  static RegistryNamespace* names = new RegistryNamespace();
  return *names;
}

void RegistryNamespace::Claim(std::string name, std::string_view kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == name) {
    if (it->second != kind) {
      throw std::invalid_argument(
          "RegistryNamespace: '" + name + "' is already registered as a " +
          it->second + "; " + std::string(kind) +
          " names share the experiment cell-name space");
    }
    return;
  }
  entries_.insert(it, {std::move(name), std::string(kind)});
}

std::string RegistryNamespace::OwnerOf(std::string_view name) const {
  const std::string key(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) return "";
  return it->second;
}

}  // namespace rtmp::core
