// Cross-registry name arbitration for the experiment engine's cell-name
// space.
//
// Placement strategies (core/strategy_registry.h), online policies
// (online/policy.h) and serve policies (serve/serve_policy.h) are all
// addressed through ONE flat name space: sim::RunCell resolves a cell
// name through the registries in order, CLI arguments and report keys
// carry bare names, and a name living in two registries would silently
// shadow. Each registry rejects the collisions it can see (the online
// registry consults the strategy registry directly), but the registries
// live in different layers — core cannot ask the serve layer anything —
// so pairwise checks cannot cover every registration order.
//
// RegistryNamespace closes the gap: the process-wide (Global())
// instances of the registries claim every name here at registration
// time, tagged with their kind, and claiming a name held by a DIFFERENT
// kind throws — whichever side registers second fails fast. Fresh
// registry instances built by tests do NOT claim: the shared name space
// belongs to the singletons, and re-registering built-in names into a
// local registry must stay legal.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtmp::core {

class RegistryNamespace {
 public:
  RegistryNamespace() = default;
  RegistryNamespace(const RegistryNamespace&) = delete;
  RegistryNamespace& operator=(const RegistryNamespace&) = delete;

  /// The process-wide name space shared by the Global() registries.
  [[nodiscard]] static RegistryNamespace& Global();

  /// Claims `name` (already normalized to lowercase) for `kind` (e.g.
  /// "strategy", "online policy", "serve policy"). Throws
  /// std::invalid_argument when the name is held by a DIFFERENT kind;
  /// re-claiming under the same kind is a no-op (duplicates within one
  /// kind are the owning registry's problem, and it detects them).
  void Claim(std::string name, std::string_view kind);

  /// The kind holding `name`; "" when unclaimed.
  [[nodiscard]] std::string OwnerOf(std::string_view name) const;

 private:
  mutable std::mutex mutex_;
  // Sorted by name; a few dozen entries at most.
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace rtmp::core
