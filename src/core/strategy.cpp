#include "core/strategy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/inter_afd.h"
#include "core/inter_dma.h"
#include "core/multi_dma.h"
#include "util/strings.h"

namespace rtmp::core {

namespace {

std::string_view InterName(InterPolicy inter) {
  switch (inter) {
    case InterPolicy::kAfd: return "afd";
    case InterPolicy::kDma: return "dma";
    case InterPolicy::kDmaMulti: return "dma2";
    case InterPolicy::kGa: return "ga";
    case InterPolicy::kRandomWalk: return "rw";
  }
  return "unknown";
}

std::optional<IntraHeuristic> ParseIntra(std::string_view name) {
  if (name == "none") return IntraHeuristic::kNone;
  if (name == "ofu") return IntraHeuristic::kOfu;
  if (name == "chen") return IntraHeuristic::kChen;
  if (name == "sr") return IntraHeuristic::kShiftsReduce;
  if (name == "ge") return IntraHeuristic::kGreedyEdge;
  return std::nullopt;
}

}  // namespace

std::string ToString(const StrategySpec& spec) {
  std::string name(InterName(spec.inter));
  if (spec.inter == InterPolicy::kGa || spec.inter == InterPolicy::kRandomWalk) {
    return name;
  }
  name += '-';
  name += ToString(spec.intra);
  return name;
}

std::optional<StrategySpec> ParseStrategy(std::string_view name) {
  const std::string lowered = util::ToLower(name);
  if (lowered == "ga") return StrategySpec{InterPolicy::kGa, IntraHeuristic::kNone};
  if (lowered == "rw") {
    return StrategySpec{InterPolicy::kRandomWalk, IntraHeuristic::kNone};
  }
  const auto dash = lowered.find('-');
  if (dash == std::string::npos) return std::nullopt;
  const std::string_view inter = std::string_view(lowered).substr(0, dash);
  const std::string_view intra = std::string_view(lowered).substr(dash + 1);
  const auto parsed_intra = ParseIntra(intra);
  if (!parsed_intra) return std::nullopt;
  if (inter == "afd") return StrategySpec{InterPolicy::kAfd, *parsed_intra};
  if (inter == "dma") return StrategySpec{InterPolicy::kDma, *parsed_intra};
  if (inter == "dma2") {
    return StrategySpec{InterPolicy::kDmaMulti, *parsed_intra};
  }
  return std::nullopt;
}

void ScaleSearchEffort(StrategyOptions& options, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("ScaleSearchEffort: factor must be positive");
  }
  auto scale = [factor](std::size_t value) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(value) * factor)));
  };
  options.ga.mu = std::max<std::size_t>(4, scale(options.ga.mu));
  options.ga.lambda = std::max<std::size_t>(4, scale(options.ga.lambda));
  options.ga.generations = scale(options.ga.generations);
  options.rw.iterations = scale(options.rw.iterations);
}

Placement RunStrategy(const StrategySpec& spec,
                      const trace::AccessSequence& seq,
                      std::uint32_t num_dbcs, std::uint32_t capacity,
                      const StrategyOptions& options) {
  switch (spec.inter) {
    case InterPolicy::kAfd:
      return DistributeAfd(seq, num_dbcs, capacity, {spec.intra});
    case InterPolicy::kDma:
      return DistributeDma(seq, num_dbcs, capacity, {spec.intra}).placement;
    case InterPolicy::kDmaMulti:
      return DistributeMultiDma(seq, num_dbcs, capacity, {{spec.intra}})
          .placement;
    case InterPolicy::kGa: {
      GaOptions ga = options.ga;
      ga.cost = options.cost;
      return RunGa(seq, num_dbcs, capacity, ga).best;
    }
    case InterPolicy::kRandomWalk: {
      RwOptions rw = options.rw;
      rw.cost = options.cost;
      return RunRandomWalk(seq, num_dbcs, capacity, rw).best;
    }
  }
  throw std::invalid_argument("RunStrategy: unknown inter policy");
}

std::vector<StrategySpec> PaperStrategies() {
  return {
      {InterPolicy::kAfd, IntraHeuristic::kOfu},
      {InterPolicy::kDma, IntraHeuristic::kOfu},
      {InterPolicy::kDma, IntraHeuristic::kChen},
      {InterPolicy::kDma, IntraHeuristic::kShiftsReduce},
      {InterPolicy::kGa, IntraHeuristic::kNone},
      {InterPolicy::kRandomWalk, IntraHeuristic::kNone},
  };
}

}  // namespace rtmp::core
