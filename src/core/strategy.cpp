#include "core/strategy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/strategy_registry.h"

namespace rtmp::core {

namespace {

std::string_view InterName(InterPolicy inter) {
  switch (inter) {
    case InterPolicy::kAfd: return "afd";
    case InterPolicy::kDma: return "dma";
    case InterPolicy::kDmaMulti: return "dma2";
    case InterPolicy::kGa: return "ga";
    case InterPolicy::kRandomWalk: return "rw";
  }
  return "unknown";
}

}  // namespace

std::string ToString(const StrategySpec& spec) {
  std::string name(InterName(spec.inter));
  if (spec.inter == InterPolicy::kGa ||
      spec.inter == InterPolicy::kRandomWalk) {
    return name;
  }
  name += '-';
  name += ToString(spec.intra);
  return name;
}

std::optional<StrategySpec> ParseStrategy(std::string_view name) {
  const auto info = StrategyRegistry::Global().Describe(name);
  if (!info) return std::nullopt;
  return info->spec;
}

std::vector<std::string> RegisteredStrategyNames() {
  return StrategyRegistry::Global().Names();
}

void ScaleSearchEffort(StrategyOptions& options, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("ScaleSearchEffort: factor must be positive");
  }
  auto scale = [factor](std::size_t value) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(value) * factor)));
  };
  options.ga.mu = std::max<std::size_t>(4, scale(options.ga.mu));
  options.ga.lambda = std::max<std::size_t>(4, scale(options.ga.lambda));
  options.ga.generations = scale(options.ga.generations);
  options.rw.iterations = scale(options.rw.iterations);
}

Placement RunStrategy(const StrategySpec& spec,
                      const trace::AccessSequence& seq,
                      std::uint32_t num_dbcs, std::uint32_t capacity,
                      const StrategyOptions& options) {
  const auto strategy = StrategyRegistry::Global().Find(ToString(spec));
  if (!strategy) {
    throw std::invalid_argument("RunStrategy: unregistered strategy '" +
                                ToString(spec) + "'");
  }
  // Placement-only callers skip the analytic cost pass.
  return strategy
      ->Run({&seq, num_dbcs, capacity, options, /*compute_cost=*/false})
      .placement;
}

std::vector<StrategySpec> PaperStrategies() {
  // The six solutions of §IV-A in the paper's listing order, resolved
  // through the registry so a missing registration fails loudly.
  std::vector<StrategySpec> specs;
  for (const char* name :
       {"afd-ofu", "dma-ofu", "dma-chen", "dma-sr", "ga", "rw"}) {
    const auto spec = ParseStrategy(name);
    if (!spec) {
      throw std::logic_error(std::string("PaperStrategies: '") + name +
                             "' is not registered");
    }
    specs.push_back(*spec);
  }
  return specs;
}

}  // namespace rtmp::core
