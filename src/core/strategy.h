// Enum-based strategy identifiers and the legacy entry points over them.
//
// The six placement solutions evaluated in §IV-A (plus extensions) are
// addressable by name ("afd-ofu", "dma-sr", "ga", "rw", ...). Dispatch
// lives in core/strategy_registry.h: ParseStrategy, RunStrategy and
// PaperStrategies below are thin shims over StrategyRegistry::Global(),
// kept so existing call sites migrate incrementally. New code — and any
// code that wants strategies beyond the built-in enum combinations —
// should resolve strategies through the registry directly.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cost_model.h"
#include "core/genetic.h"
#include "core/intra_heuristics.h"
#include "core/placement.h"
#include "core/random_walk.h"
#include "trace/access_sequence.h"

namespace rtmp::core {

enum class InterPolicy { kAfd, kDma, kDmaMulti, kGa, kRandomWalk };

struct StrategySpec {
  InterPolicy inter = InterPolicy::kAfd;
  /// Intra policy (meaningful for kAfd/kDma/kDmaMulti; ignored by kGa/kRw).
  IntraHeuristic intra = IntraHeuristic::kOfu;

  friend bool operator==(const StrategySpec&, const StrategySpec&) = default;
};

/// "afd-ofu", "dma-chen", "dma-sr", "dma2-sr", "ga", "rw", ...
[[nodiscard]] std::string ToString(const StrategySpec& spec);

/// Inverse of ToString; nullopt for names not in StrategyRegistry::Global()
/// (and for registered strategies without an enum-backed spec).
[[nodiscard]] std::optional<StrategySpec> ParseStrategy(std::string_view name);

/// Every name registered in StrategyRegistry::Global(), sorted — the
/// single source of truth for accepted strategy names (usage strings,
/// docs, round-trip tests).
[[nodiscard]] std::vector<std::string> RegisteredStrategyNames();

/// Tuning for the search-based strategies and the cost model.
struct StrategyOptions {
  GaOptions ga{};
  RwOptions rw{};
  CostOptions cost{};
};

/// Uniformly scales the GA/RW search effort (1.0 = the paper's parameters:
/// 200 generations, mu = lambda = 100, 60 000 RW iterations). Benches use
/// a small factor by default so the full suite runs in minutes.
void ScaleSearchEffort(StrategyOptions& options, double factor);

/// Runs one strategy end to end and returns the placement. Shim over
/// StrategyRegistry::Global() — resolve the strategy yourself for the full
/// PlacementResult (cost, wall time, search effort used).
[[nodiscard]] Placement RunStrategy(const StrategySpec& spec,
                                    const trace::AccessSequence& seq,
                                    std::uint32_t num_dbcs,
                                    std::uint32_t capacity,
                                    const StrategyOptions& options = {});

/// The six solutions of §IV-A, in the paper's listing order:
/// AFD-OFU, DMA-OFU, DMA-Chen, DMA-SR, GA, RW.
[[nodiscard]] std::vector<StrategySpec> PaperStrategies();

}  // namespace rtmp::core
