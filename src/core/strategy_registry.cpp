#include "core/strategy_registry.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/cost_model.h"
#include "core/genetic.h"
#include "core/inter_afd.h"
#include "core/inter_dma.h"
#include "core/multi_dma.h"
#include "core/random_walk.h"
#include "core/registry_namespace.h"
#include "util/strings.h"

namespace rtmp::core {

namespace {

void ValidateRequest(const PlacementRequest& request) {
  if (request.sequence == nullptr) {
    throw std::invalid_argument("PlacementRequest: sequence is null");
  }
  if (request.num_dbcs == 0) {
    throw std::invalid_argument("PlacementRequest: num_dbcs must be > 0");
  }
}

/// Adapter running one of the library's built-in solutions. One instance
/// per registered name; stateless, so safe to share across threads.
class BuiltinStrategy final : public PlacementStrategy {
 public:
  explicit BuiltinStrategy(StrategyInfo info) : info_(std::move(info)) {}

  [[nodiscard]] const StrategyInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] PlacementResult Run(
      const PlacementRequest& request) const override {
    ValidateRequest(request);
    PlacementResult result;
    const StrategySpec& spec = *info_.spec;
    const trace::AccessSequence& seq = *request.sequence;
    switch (spec.inter) {
      case InterPolicy::kAfd:
        result.placement =
            DistributeAfd(seq, request.num_dbcs, request.capacity,
                          {spec.intra});
        break;
      case InterPolicy::kDma:
        result.placement =
            DistributeDma(seq, request.num_dbcs, request.capacity,
                          {spec.intra})
                .placement;
        break;
      case InterPolicy::kDmaMulti:
        result.placement =
            DistributeMultiDma(seq, request.num_dbcs, request.capacity,
                               {{spec.intra}})
                .placement;
        break;
      case InterPolicy::kGa: {
        GaOptions ga = request.options.ga;
        ga.cost = request.options.cost;
        GaResult ga_result = RunGa(seq, request.num_dbcs, request.capacity, ga);
        result.placement = std::move(ga_result.best);
        result.cost = ga_result.best_cost;
        result.evaluations = ga_result.evaluations;
        break;
      }
      case InterPolicy::kRandomWalk: {
        RwOptions rw = request.options.rw;
        rw.cost = request.options.cost;
        RwResult rw_result =
            RunRandomWalk(seq, request.num_dbcs, request.capacity, rw);
        result.placement = std::move(rw_result.best);
        result.cost = rw_result.best_cost;
        result.evaluations = rw_result.evaluations;
        break;
      }
    }

    // The search strategies already evaluated their best candidate under
    // request.options.cost; only the constructive heuristics need the
    // explicit cost pass, and only when the caller wants it.
    if (request.compute_cost && spec.inter != InterPolicy::kGa &&
        spec.inter != InterPolicy::kRandomWalk) {
      result.cost = ShiftCost(seq, result.placement, request.options.cost);
    }
    return result;
  }

 private:
  StrategyInfo info_;
};

void RegisterSpec(StrategyRegistry& registry, StrategySpec spec,
                  std::string summary, bool search_based) {
  StrategyInfo info;
  info.name = ToString(spec);
  info.summary = std::move(summary);
  info.search_based = search_based;
  info.spec = spec;
  // Copy the name out before the capture moves `info`: the two arguments
  // are indeterminately sequenced.
  std::string name = info.name;
  registry.Register(std::move(name), [info = std::move(info)] {
    return std::make_shared<const BuiltinStrategy>(info);
  });
}

// The built-in solutions register here. Static-initializer
// self-registration would be dropped by the linker for unreferenced TUs of
// a static library, so Global() triggers this explicitly instead.

void RegisterConstructiveStrategies(StrategyRegistry& registry) {
  constexpr struct {
    InterPolicy inter;
    const char* summary;
  } kInterFamilies[] = {
      {InterPolicy::kAfd, "frequency deal across DBCs (Chen et al.)"},
      {InterPolicy::kDma, "liveliness-aware distribution (Algorithm 1)"},
      {InterPolicy::kDmaMulti, "multi-set DMA (§VI extension)"},
  };
  constexpr IntraHeuristic kIntras[] = {
      IntraHeuristic::kNone, IntraHeuristic::kOfu, IntraHeuristic::kChen,
      IntraHeuristic::kShiftsReduce, IntraHeuristic::kGreedyEdge};
  for (const auto& family : kInterFamilies) {
    for (const IntraHeuristic intra : kIntras) {
      RegisterSpec(registry, {family.inter, intra},
                   std::string(family.summary) + ", intra policy '" +
                       std::string(ToString(intra)) + "'",
                   /*search_based=*/false);
    }
  }
}

void RegisterSearchStrategies(StrategyRegistry& registry) {
  RegisterSpec(registry, {InterPolicy::kGa, IntraHeuristic::kNone},
               "genetic algorithm (§III-C), near-optimal offline baseline",
               /*search_based=*/true);
  RegisterSpec(registry, {InterPolicy::kRandomWalk, IntraHeuristic::kNone},
               "uniform random-walk search, the GA's sanity baseline",
               /*search_based=*/true);
}

}  // namespace

PlacementResult RunTimed(const PlacementStrategy& strategy,
                         const PlacementRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  PlacementResult result = strategy.Run(request);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

StrategyRegistry& StrategyRegistry::Global() {
  static StrategyRegistry* registry = [] {
    // Leaked: outlives StrategyRegistrar uses in static destructors.
    // NOLINTNEXTLINE(rtmlint:naked-new): leaked Global() singleton.
    auto* r = new StrategyRegistry();
    r->ClaimCellNamespace("strategy");
    RegisterBuiltinStrategies(*r);
    return r;
  }();
  return *registry;
}

void StrategyRegistry::Register(std::string name, Factory factory) {
  if (!factory) {
    throw std::invalid_argument("StrategyRegistry: null factory for '" +
                                name + "'");
  }
  std::string key = util::ToLower(name);
  // Names appear in CLI arguments and in '|'-delimited ResultTable keys:
  // restrict to a safe charset rather than blocklisting separators.
  const auto valid_char = [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '-' || c == '_' || c == '.';
  };
  if (key.empty() || !std::all_of(key.begin(), key.end(), valid_char)) {
    throw std::invalid_argument("StrategyRegistry: invalid name '" + name +
                                "'");
  }
  if (namespace_kind_ != nullptr) {
    RegistryNamespace::Global().Claim(key, namespace_kind_);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    throw std::invalid_argument("StrategyRegistry: duplicate strategy '" +
                                key + "'");
  }
  entries_.insert(it, {std::move(key), Entry{std::move(factory), nullptr}});
}

const StrategyRegistry::Entry* StrategyRegistry::FindEntry(
    const std::string& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) return nullptr;
  return &it->second;
}

std::shared_ptr<const PlacementStrategy> StrategyRegistry::Find(
    std::string_view name) const {
  const std::string key = util::ToLower(name);
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* entry = FindEntry(key);
    if (entry == nullptr) return nullptr;
    if (entry->instance) return entry->instance;
    factory = entry->factory;
  }
  // Run the factory unlocked: factories may themselves consult the
  // registry (e.g. delegate to another strategy) without deadlocking.
  auto instance = factory();
  if (!instance) {
    throw std::logic_error("StrategyRegistry: factory for '" + key +
                           "' returned null");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  // Entries are never removed, so the entry is still present; another
  // thread may have cached an instance first, in which case that one wins.
  const Entry* entry = FindEntry(key);
  if (!entry->instance) entry->instance = std::move(instance);
  return entry->instance;
}

std::optional<StrategyInfo> StrategyRegistry::Describe(
    std::string_view name) const {
  const auto strategy = Find(name);
  if (!strategy) return std::nullopt;
  return strategy->Describe();
}

bool StrategyRegistry::Contains(std::string_view name) const {
  const std::string key = util::ToLower(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  return FindEntry(key) != nullptr;
}

std::vector<std::string> StrategyRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // entries_ is kept sorted by key
}

std::size_t StrategyRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void RegisterBuiltinStrategies(StrategyRegistry& registry) {
  RegisterConstructiveStrategies(registry);
  RegisterSearchStrategies(registry);
}

StrategyRegistrar::StrategyRegistrar(std::string name,
                                     StrategyRegistry::Factory factory) {
  StrategyRegistry::Global().Register(std::move(name), std::move(factory));
}

}  // namespace rtmp::core
