// Strategy registry: the open, name-keyed dispatch layer for placement
// strategies.
//
// The paper's §IV-A evaluates six fixed solutions; this API makes the set
// open-ended. A strategy is anything that can turn a PlacementRequest into
// a PlacementResult; it registers itself under a unique name and is looked
// up by that name at run time. The experiment engine (sim/experiment.h),
// the bench binaries and the examples all resolve strategies through the
// registry, so new strategies (ShiftsReduce variants, reconfigurable
// layouts, ...) plug in without touching core dispatch code.
//
// The legacy enum-based entry points (ParseStrategy / RunStrategy /
// PaperStrategies in core/strategy.h) are thin shims over this registry.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/placement.h"
#include "core/strategy.h"
#include "trace/access_sequence.h"

namespace rtmp::core {

/// Everything a strategy needs to produce a placement. The sequence is
/// borrowed: it must outlive the Run() call.
struct PlacementRequest {
  const trace::AccessSequence* sequence = nullptr;
  std::uint32_t num_dbcs = 0;
  std::uint32_t capacity = kUnboundedCapacity;
  StrategyOptions options{};
  /// When false, constructive strategies skip the O(accesses) analytic
  /// cost pass and PlacementResult::cost is 0 — for callers that only
  /// need the placement. Search strategies report their cost either way
  /// (it falls out of the search).
  bool compute_cost = true;
};

/// A placement plus the bookkeeping the experiment engine reports.
struct PlacementResult {
  /// Starts as an empty zero-variable placement; Run() replaces it.
  Placement placement{0, 1};
  /// Shift cost of `placement` under request.options.cost.
  std::uint64_t cost = 0;
  /// Wall time of the run in milliseconds. Stamped by RunTimed(), not by
  /// the strategies themselves — a raw Run() call leaves it 0.
  double wall_ms = 0.0;
  /// Candidate placements evaluated: the search effort actually used.
  /// Search strategies report their true budget (GA fitness evaluations,
  /// RW iterations); the constructive heuristics build one candidate.
  std::size_t evaluations = 1;
};

/// Self-description of a registered strategy.
struct StrategyInfo {
  /// Registry key: lowercase, unique ("dma-sr", "ga", ...).
  std::string name;
  /// One-line human-readable description for --help output and docs.
  std::string summary;
  /// True when the strategy consumes the GA/RW effort knobs and a seed
  /// (ScaleSearchEffort applies; results depend on options.ga/options.rw).
  bool search_based = false;
  /// Set for the built-in enum-backed strategies so the legacy
  /// StrategySpec entry points can round-trip through the registry;
  /// external strategies leave it empty.
  std::optional<StrategySpec> spec;
};

/// Abstract placement strategy. Implementations must be stateless or
/// internally synchronized: the experiment engine calls Run() from many
/// threads concurrently on one instance.
class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  [[nodiscard]] virtual const StrategyInfo& Describe() const noexcept = 0;

  /// Produces a complete placement for the request. Throws
  /// std::invalid_argument on requests the strategy cannot serve (e.g.
  /// insufficient capacity). Implementations need not fill
  /// PlacementResult::wall_ms; use RunTimed() to measure it.
  [[nodiscard]] virtual PlacementResult Run(
      const PlacementRequest& request) const = 0;
};

/// Run() with PlacementResult::wall_ms stamped from a steady clock around
/// the call — one timing implementation for built-in AND external
/// strategies. The experiment engine and the CLI tools go through this.
[[nodiscard]] PlacementResult RunTimed(const PlacementStrategy& strategy,
                                       const PlacementRequest& request);

/// Name -> factory registry. Lookups are case-insensitive (names are
/// normalized to lowercase); construction is lazy and the instance is
/// cached, so repeated Find() calls are cheap. All members are
/// thread-safe.
class StrategyRegistry {
 public:
  using Factory = std::function<std::shared_ptr<const PlacementStrategy>()>;

  StrategyRegistry() = default;
  StrategyRegistry(const StrategyRegistry&) = delete;
  StrategyRegistry& operator=(const StrategyRegistry&) = delete;

  /// The process-wide registry, pre-populated with the built-in
  /// strategies (every InterPolicy x IntraHeuristic combination plus GA
  /// and RW).
  [[nodiscard]] static StrategyRegistry& Global();

  /// Registers `factory` under `name` (normalized to lowercase). Throws
  /// std::invalid_argument if the name is empty, contains whitespace, or
  /// is already taken. Factories should be cheap: Describe() and any
  /// metadata listing instantiate the strategy to read its StrategyInfo,
  /// so defer heavy state to Run().
  void Register(std::string name, Factory factory);

  /// Marks this instance as an owner in the process-wide cell-name space
  /// (core/registry_namespace.h): every later Register() additionally
  /// claims the name under `kind` and throws when another registry kind
  /// holds it. Global() enables this ("strategy") before the built-ins;
  /// fresh test instances leave it off, so re-registering built-in names
  /// locally stays legal.
  void ClaimCellNamespace(const char* kind) noexcept {
    namespace_kind_ = kind;
  }

  /// The strategy registered under `name`; nullptr if unknown.
  [[nodiscard]] std::shared_ptr<const PlacementStrategy> Find(
      std::string_view name) const;

  /// Metadata of the strategy registered under `name`; nullopt if unknown.
  [[nodiscard]] std::optional<StrategyInfo> Describe(
      std::string_view name) const;

  [[nodiscard]] bool Contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> Names() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    Factory factory;
    /// Constructed on first lookup, under mutex_.
    mutable std::shared_ptr<const PlacementStrategy> instance;
  };

  /// Requires mutex_ to be held by the caller.
  [[nodiscard]] const Entry* FindEntry(const std::string& key) const;

  mutable std::mutex mutex_;
  // Sorted by key; small enough (tens of strategies) that a flat vector
  // beats a map.
  std::vector<std::pair<std::string, Entry>> entries_;
  /// Non-null only for Global() (see ClaimCellNamespace).
  const char* namespace_kind_ = nullptr;
};

/// Registers the built-in strategies into `registry`: every
/// {afd, dma, dma2} x {none, ofu, chen, sr, ge} combination plus "ga" and
/// "rw". Global() calls this once; tests use it to build fresh registries.
void RegisterBuiltinStrategies(StrategyRegistry& registry);

/// RAII self-registration into the Global() registry, for strategies
/// defined outside this library:
///
///   static const rtmp::core::StrategyRegistrar kMine{"my-layout", [] {
///     return std::make_shared<const MyLayoutStrategy>();
///   }};
///
/// Caveat: when linking rtmplace statically, a translation unit that is
/// never referenced is dropped by the linker along with its registrars —
/// keep registrars in a TU that is otherwise linked in, or register
/// explicitly at startup.
struct StrategyRegistrar {
  StrategyRegistrar(std::string name, StrategyRegistry::Factory factory);
};

}  // namespace rtmp::core
