#include "destiny/device_model.h"

#include <cmath>
#include <stdexcept>

namespace rtmp::destiny {

namespace {

// Table I of the paper, one entry per DBC count {2, 4, 8, 16}.
constexpr std::array<DeviceParams, 4> kTableOne{{
    // leakage, E_wr, E_rd, E_sh, t_rd, t_wr, t_sh, area
    {3.39, 3.42, 2.26, 2.18, 0.81, 1.08, 0.99, 0.0159},
    {4.33, 3.65, 2.39, 2.03, 0.84, 1.14, 0.92, 0.0186},
    {6.56, 3.79, 2.47, 1.97, 0.86, 1.17, 0.86, 0.0226},
    {8.94, 3.94, 2.54, 1.86, 0.89, 1.20, 0.78, 0.0279},
}};

std::size_t AnchorIndex(unsigned dbcs) {
  for (std::size_t i = 0; i < kTableOneDbcCounts.size(); ++i) {
    if (kTableOneDbcCounts[i] == dbcs) return i;
  }
  throw std::out_of_range("PaperTableOne: DBC count not in {2,4,8,16}");
}

/// Piecewise-linear interpolation of an anchored parameter in log2(dbcs),
/// extrapolating boundary segments.
double InterpolateLog2(double log2_dbcs, const std::array<double, 4>& values) {
  // Anchors sit at log2(dbcs) = 1, 2, 3, 4.
  constexpr double kFirst = 1.0;
  constexpr double kLast = 4.0;
  double x = log2_dbcs;
  std::size_t lo = 0;
  if (x <= kFirst) {
    lo = 0;
  } else if (x >= kLast) {
    lo = 2;
  } else {
    lo = static_cast<std::size_t>(std::floor(x - kFirst));
  }
  const double x0 = kFirst + static_cast<double>(lo);
  const double t = x - x0;
  return values[lo] + (values[lo + 1] - values[lo]) * t;
}

std::array<double, 4> Column(double DeviceParams::* field) {
  return {kTableOne[0].*field, kTableOne[1].*field, kTableOne[2].*field,
          kTableOne[3].*field};
}

}  // namespace

const DeviceParams& PaperTableOne(unsigned dbcs) {
  return kTableOne[AnchorIndex(dbcs)];
}

unsigned PaperDomainsPerDbc(unsigned dbcs) {
  if (dbcs == 0) throw std::invalid_argument("DBC count must be positive");
  constexpr unsigned kTotalWords = 1024;  // 4 KiB of 32-bit words
  return kTotalWords / dbcs;
}

DeviceParams EvaluateDevice(const DeviceQuery& query) {
  if (query.dbcs == 0) {
    throw std::invalid_argument("EvaluateDevice: DBC count must be positive");
  }
  const double log2_dbcs = std::log2(static_cast<double>(query.dbcs));

  DeviceParams p;
  p.leakage_mw = InterpolateLog2(log2_dbcs, Column(&DeviceParams::leakage_mw));
  p.write_energy_pj =
      InterpolateLog2(log2_dbcs, Column(&DeviceParams::write_energy_pj));
  p.read_energy_pj =
      InterpolateLog2(log2_dbcs, Column(&DeviceParams::read_energy_pj));
  p.shift_energy_pj =
      InterpolateLog2(log2_dbcs, Column(&DeviceParams::shift_energy_pj));
  p.read_latency_ns =
      InterpolateLog2(log2_dbcs, Column(&DeviceParams::read_latency_ns));
  p.write_latency_ns =
      InterpolateLog2(log2_dbcs, Column(&DeviceParams::write_latency_ns));
  p.shift_latency_ns =
      InterpolateLog2(log2_dbcs, Column(&DeviceParams::shift_latency_ns));
  p.area_mm2 = InterpolateLog2(log2_dbcs, Column(&DeviceParams::area_mm2));

  // Capacity scaling (anchors are 4 KiB).
  const double cap_ratio = query.capacity_kib / 4.0;
  if (cap_ratio <= 0.0) {
    throw std::invalid_argument("EvaluateDevice: capacity must be positive");
  }
  const double sqrt_cap = std::sqrt(cap_ratio);
  p.leakage_mw *= cap_ratio;
  p.area_mm2 *= cap_ratio;
  p.write_energy_pj *= sqrt_cap;
  p.read_energy_pj *= sqrt_cap;
  p.shift_energy_pj *= sqrt_cap;
  p.read_latency_ns *= sqrt_cap;
  p.write_latency_ns *= sqrt_cap;
  p.shift_latency_ns *= sqrt_cap;

  // Technology scaling (anchors are 32 nm).
  const double tech_ratio = query.tech_nm / 32.0;
  if (tech_ratio <= 0.0) {
    throw std::invalid_argument("EvaluateDevice: tech node must be positive");
  }
  p.area_mm2 *= tech_ratio * tech_ratio;
  p.write_energy_pj *= tech_ratio * tech_ratio;
  p.read_energy_pj *= tech_ratio * tech_ratio;
  p.shift_energy_pj *= tech_ratio * tech_ratio;
  p.leakage_mw *= tech_ratio;
  p.read_latency_ns *= tech_ratio;
  p.write_latency_ns *= tech_ratio;
  p.shift_latency_ns *= tech_ratio;

  // Track-width scaling: wider words move more bits per access.
  const double track_ratio =
      static_cast<double>(query.tracks_per_dbc) / 32.0;
  if (track_ratio <= 0.0) {
    throw std::invalid_argument("EvaluateDevice: tracks must be positive");
  }
  p.write_energy_pj *= track_ratio;
  p.read_energy_pj *= track_ratio;
  p.shift_energy_pj *= track_ratio;
  p.area_mm2 *= track_ratio;
  p.leakage_mw *= track_ratio;

  // Extra access ports: the dominant area term in RTM (paper §IV-C).
  if (query.ports_per_track == 0) {
    throw std::invalid_argument("EvaluateDevice: need at least one port");
  }
  const double extra_ports = static_cast<double>(query.ports_per_track - 1);
  p.area_mm2 *= 1.0 + 0.12 * extra_ports;
  p.leakage_mw *= 1.0 + 0.03 * extra_ports;

  return p;
}

}  // namespace rtmp::destiny
