// DESTINY-lite: circuit-level RTM parameter model.
//
// The paper obtains latency/energy/area numbers for its four iso-capacity
// RTM configurations (4 KiB, 32 nm, 32 tracks per DBC, 2/4/8/16 DBCs) from
// the DESTINY circuit simulator and lists them in Table I. DESTINY is an
// external tool we rebuild here as a calibrated analytic model:
//
//  * the four Table I configurations are reproduced EXACTLY (they are the
//    only device points any experiment in the paper consumes);
//  * other DBC counts interpolate piecewise-linearly in log2(#DBCs) and
//    extrapolate the boundary slopes;
//  * other capacities / technology nodes apply standard first-order scaling
//    laws (documented per parameter below) so the model stays physically
//    plausible for exploratory use.
#pragma once

#include <array>
#include <cstddef>

namespace rtmp::destiny {

/// Electrical/geometric parameters of one RTM configuration, in the exact
/// units of Table I.
struct DeviceParams {
  double leakage_mw = 0.0;        ///< leakage power [mW]
  double write_energy_pj = 0.0;   ///< energy per word write [pJ]
  double read_energy_pj = 0.0;    ///< energy per word read [pJ]
  double shift_energy_pj = 0.0;   ///< energy per one-domain shift [pJ]
  double read_latency_ns = 0.0;   ///< word read latency [ns]
  double write_latency_ns = 0.0;  ///< word write latency [ns]
  double shift_latency_ns = 0.0;  ///< one-domain shift latency [ns]
  double area_mm2 = 0.0;          ///< array area [mm^2]
};

/// The DBC counts evaluated in the paper (Table I columns).
inline constexpr std::array<unsigned, 4> kTableOneDbcCounts{2, 4, 8, 16};

/// Returns the published Table I column for `dbcs` in {2,4,8,16}.
/// Throws std::out_of_range for any other count.
[[nodiscard]] const DeviceParams& PaperTableOne(unsigned dbcs);

/// Number of domains per DBC in the paper's iso-capacity setup:
/// 4 KiB / 32-bit words = 1024 words spread over `dbcs` DBCs.
[[nodiscard]] unsigned PaperDomainsPerDbc(unsigned dbcs);

/// A device query: the knobs DESTINY-lite models.
struct DeviceQuery {
  unsigned dbcs = 4;            ///< DBCs in the array
  double capacity_kib = 4.0;    ///< total array capacity [KiB]
  double tech_nm = 32.0;        ///< feature size [nm]
  unsigned tracks_per_dbc = 32; ///< word width
  unsigned ports_per_track = 1; ///< access ports per nanotrack
};

/// Evaluates the model. Exact at Table I anchors
/// (dbcs in {2,4,8,16}, capacity 4 KiB, 32 nm, 32 tracks, 1 port).
///
/// Scaling laws beyond the anchors:
///  * leakage, area           ~ linear in capacity;
///  * read/write/shift energy ~ sqrt of capacity (longer wires);
///  * latencies               ~ sqrt of capacity;
///  * area, energy            ~ (tech/32)^2 resp. (tech/32) for latency;
///  * each extra port per track adds 12% area and 3% leakage (ports
///    dominate RTM cell footprint, cf. paper §IV-C / Fig. 6 discussion).
[[nodiscard]] DeviceParams EvaluateDevice(const DeviceQuery& query);

}  // namespace rtmp::destiny
