// rtmlint: hot-path — see metrics.h.
#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <limits>

#include "util/json.h"

namespace rtmp::obs {

std::size_t Histogram::BucketOf(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::BucketLow(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Histogram::BucketHigh(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << bucket) - 1;
}

void Histogram::Merge(const Histogram& other) noexcept {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
}

std::uint64_t Histogram::Quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  double rank_real = std::ceil(q * static_cast<double>(total_));
  if (rank_real < 1.0) rank_real = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(rank_real);
  if (rank > total_) rank = total_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) return BucketHigh(b);
  }
  return BucketHigh(kNumBuckets - 1);
}

void Histogram::WriteJson(util::JsonWriter& writer) const {
  writer.BeginObject();
  writer.Member("count", total_);
  writer.Member("p50", Quantile(0.5));
  writer.Member("p95", Quantile(0.95));
  writer.Member("p99", Quantile(0.99));
  writer.Member("p999", Quantile(0.999));
  writer.Key("buckets");
  writer.BeginArray();
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (counts_[b] == 0) continue;
    writer.BeginArray();
    writer.UInt(BucketLow(b));
    writer.UInt(counts_[b]);
    writer.EndArray();
  }
  writer.EndArray();
  writer.EndObject();
}

std::uint64_t& MetricsRegistry::Counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), 0).first->second;
}

double& MetricsRegistry::Gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), 0.0).first->second;
}

Histogram& MetricsRegistry::Hist(std::string_view name) {
  const auto it = hists_.find(name);
  if (it != hists_.end()) return it->second;
  return hists_.emplace(std::string(name), Histogram{}).first->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) Counter(name) += value;
  for (const auto& [name, value] : other.gauges_) Gauge(name) += value;
  for (const auto& [name, hist] : other.hists_) Hist(name).Merge(hist);
}

void MetricsRegistry::WriteJson(util::JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : counters_) writer.Member(name, value);
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, value] : gauges_) writer.Member(name, value);
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, hist] : hists_) {
    writer.Key(name);
    hist.WriteJson(writer);
  }
  writer.EndObject();
  writer.EndObject();
}

std::string MetricsRegistry::ToJson(int indent) const {
  std::string out;
  util::JsonWriter writer(&out, indent);
  WriteJson(writer);
  return out;
}

}  // namespace rtmp::obs
