// rtmlint: hot-path — metric recording runs inside the window-service
// loops; Record()/counter increments must stay allocation-free.
//
// Deterministic metrics: named counters, gauges and fixed-layout
// log2-bucketed histograms. Everything here is a pure function of the
// recorded values — no wall clock, no addresses, no hash order — so a
// snapshot is bit-identical across reruns and RTMPLACE_THREADS values
// (the sim layer gives each matrix cell a private registry and merges
// them in grid order; see sim/experiment.cpp).
//
// Name/lookup calls (Counter/Gauge/Hist) may allocate and belong at
// setup time: they return references with stable addresses (std::map
// node stability), so engines resolve their metrics once at
// construction and the hot path is a pointer increment.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace rtmp::util {
class JsonWriter;
}  // namespace rtmp::util

namespace rtmp::obs {

/// Fixed-layout log2 histogram over unsigned 64-bit samples.
///
/// Bucket index of a value is std::bit_width(value): bucket 0 holds the
/// exact value 0 and bucket b in [1, 64] holds [2^(b-1), 2^b - 1]
/// (bucket 64's high end saturates at UINT64_MAX). Counts are exact
/// integers, so Merge (elementwise add) is associative and commutative
/// and per-shard histograms sum EXACTLY to the device histogram — the
/// serve layer's attribution invariant extends to distributions.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;

  /// Bucket index a value lands in.
  [[nodiscard]] static std::size_t BucketOf(std::uint64_t value) noexcept;
  /// Inclusive value range of a bucket (index < kNumBuckets).
  [[nodiscard]] static std::uint64_t BucketLow(std::size_t bucket) noexcept;
  [[nodiscard]] static std::uint64_t BucketHigh(std::size_t bucket) noexcept;

  void Record(std::uint64_t value) noexcept {
    ++counts_[BucketOf(value)];
    ++total_;
  }

  /// Elementwise count addition.
  void Merge(const Histogram& other) noexcept;

  /// Upper bound of the bucket containing the q-quantile sample (q in
  /// [0, 1]; the rank-ceil(q*total) sample in sorted order). An empty
  /// histogram reads 0. The true sample quantile always lies within the
  /// returned bucket's [BucketLow, BucketHigh] — pinned against a
  /// sorted-vector oracle in tests/obs_test.cpp.
  [[nodiscard]] std::uint64_t Quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const noexcept {
    return counts_[bucket];
  }

  [[nodiscard]] bool operator==(const Histogram& other) const noexcept =
      default;

  /// {"count": N, "p50": ..., "p95": ..., "p99": ..., "p999": ...,
  ///  "buckets": [[low, count], ...]} — non-empty buckets only, in
  ///  ascending bucket order.
  void WriteJson(util::JsonWriter& writer) const;

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Named counters, gauges and histograms. Storage is std::map — sorted
/// iteration makes the JSON snapshot order deterministic and keeps node
/// addresses stable, so the references returned by Counter()/Gauge()/
/// Hist() stay valid for the registry's lifetime (engines cache them at
/// construction; the hot path never touches the map).
class MetricsRegistry {
 public:
  /// Resolve-or-create. Metric names follow "<layer>/<metric>"
  /// (e.g. "online/windows", "serve/turns", "cache/misses").
  [[nodiscard]] std::uint64_t& Counter(std::string_view name);
  [[nodiscard]] double& Gauge(std::string_view name);
  [[nodiscard]] Histogram& Hist(std::string_view name);

  /// Counters and gauges add, histograms Merge. Associative and
  /// commutative in the counts; the sim layer merges per-cell
  /// registries in grid order regardless, so the snapshot text is
  /// rerun- and thread-count-invariant too.
  void Merge(const MetricsRegistry& other);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: ...}}
  /// with members in sorted name order.
  void WriteJson(util::JsonWriter& writer) const;
  [[nodiscard]] std::string ToJson(int indent = 2) const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> hists_;
};

}  // namespace rtmp::obs
