// Observability wiring: one struct of non-owning pointers threaded
// through every layer's config (OnlineConfig::obs, ServeConfig::obs,
// ExperimentOptions::obs). Default-constructed = disabled: every
// instrumentation site is guarded by a null check on the pointer it
// needs, so the disabled path costs one predictable branch and the
// `throughput` golden stays untouched.
//
// pid/tid place events on trace rows: the sim layer assigns pid =
// matrix-cell index (with a private recorder per cell, merged in grid
// order for thread invariance), the serve layer assigns tid = shard,
// the online cell runner tid = sequence index.
#pragma once

#include <cstdint>

namespace rtmp::obs {

class MetricsRegistry;
class TraceRecorder;

struct ObsConfig {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics != nullptr || trace != nullptr;
  }
};

}  // namespace rtmp::obs
