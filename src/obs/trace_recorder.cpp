// rtmlint: hot-path — see trace_recorder.h.
#include "obs/trace_recorder.h"

#include <algorithm>

#include "util/json.h"

namespace rtmp::obs {

TraceRecorder::TraceRecorder(std::size_t capacity) { Reserve(capacity); }

void TraceRecorder::Reserve(std::size_t capacity) {
  if (capacity > events_.size()) events_.resize(capacity);
}

std::uint32_t TraceRecorder::Intern(std::string_view text) {
  const auto it = intern_.find(text);
  if (it != intern_.end()) return it->second;
  const std::uint32_t index = static_cast<std::uint32_t>(strings_.size());
  strings_.resize(strings_.size() + 1);
  strings_[index] = std::string(text);
  intern_.emplace(strings_[index], index);
  return index;
}

void TraceRecorder::Append(const Event& event,
                           std::span<const Arg> args) noexcept {
  if (size_ >= events_.size()) {
    ++dropped_;
    return;
  }
  Event& slot = events_[size_];
  slot = event;
  const std::size_t n = std::min(args.size(), kMaxArgs);
  for (std::size_t i = 0; i < n; ++i) slot.args[i] = args[i];
  slot.num_args = static_cast<std::uint8_t>(n);
  ++size_;
}

void TraceRecorder::Complete(std::uint32_t name, std::uint32_t pid,
                             std::uint32_t tid, double ts_ns, double dur_ns,
                             std::span<const Arg> args) noexcept {
  Event event;
  event.name = name;
  event.pid = pid;
  event.tid = tid;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.phase = Phase::kComplete;
  Append(event, args);
}

void TraceRecorder::Instant(std::uint32_t name, std::uint32_t pid,
                            std::uint32_t tid, double ts_ns,
                            std::span<const Arg> args) noexcept {
  Event event;
  event.name = name;
  event.pid = pid;
  event.tid = tid;
  event.ts_ns = ts_ns;
  event.phase = Phase::kInstant;
  Append(event, args);
}

void TraceRecorder::SetProcessName(std::uint32_t pid, std::string_view name) {
  process_names_[pid] = std::string(name);
}

void TraceRecorder::SetThreadName(std::uint32_t pid, std::uint32_t tid,
                                  std::string_view name) {
  thread_names_[{pid, tid}] = std::string(name);
}

void TraceRecorder::Merge(const TraceRecorder& other) {
  Reserve(size_ + other.size_);
  // Remap the other recorder's interned indices into this table once.
  std::vector<std::uint32_t> remap;
  remap.resize(other.strings_.size());
  for (std::size_t i = 0; i < other.strings_.size(); ++i) {
    remap[i] = Intern(other.strings_[i]);
  }
  const auto remap_arg = [&remap](Arg arg) {
    if (arg.is_string) arg.value = remap[static_cast<std::size_t>(arg.value)];
    return arg;
  };
  for (std::size_t i = 0; i < other.size_; ++i) {
    const Event& src = other.events_[i];
    Event& slot = events_[size_];
    slot = src;
    slot.name = remap[src.name];
    for (std::size_t a = 0; a < src.num_args; ++a) {
      Arg arg = remap_arg(src.args[a]);
      arg.key = remap[arg.key];
      slot.args[a] = arg;
    }
    ++size_;
  }
  dropped_ += other.dropped_;
  for (const auto& [pid, name] : other.process_names_) {
    process_names_[pid] = name;
  }
  for (const auto& [key, name] : other.thread_names_) {
    thread_names_[key] = name;
  }
}

namespace {

/// Simulated ns -> trace-format microseconds.
double ToMicros(double ns) { return ns / 1000.0; }

}  // namespace

void TraceRecorder::WriteEvent(util::JsonWriter& writer,
                               const Event& event) const {
  writer.BeginObject();
  writer.Member("name", strings_[event.name]);
  writer.Member("ph", event.phase == Phase::kComplete ? "X" : "i");
  writer.Member("ts", ToMicros(event.ts_ns));
  if (event.phase == Phase::kComplete) {
    writer.Member("dur", ToMicros(event.dur_ns));
  } else {
    writer.Member("s", "t");
  }
  writer.Member("pid", event.pid);
  writer.Member("tid", event.tid);
  if (event.num_args > 0) {
    writer.Key("args");
    writer.BeginObject();
    for (std::size_t a = 0; a < event.num_args; ++a) {
      const Arg& arg = event.args[a];
      writer.Key(strings_[arg.key]);
      if (arg.is_string) {
        writer.String(strings_[static_cast<std::size_t>(arg.value)]);
      } else {
        writer.UInt(arg.value);
      }
    }
    writer.EndObject();
  }
  writer.EndObject();
}

void TraceRecorder::WriteJson(util::JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("traceEvents");
  writer.BeginArray();
  for (const auto& [pid, name] : process_names_) {
    writer.BeginObject();
    writer.Member("name", "process_name");
    writer.Member("ph", "M");
    writer.Member("pid", pid);
    writer.Member("tid", 0u);
    writer.Key("args");
    writer.BeginObject();
    writer.Member("name", name);
    writer.EndObject();
    writer.EndObject();
  }
  for (const auto& [key, name] : thread_names_) {
    writer.BeginObject();
    writer.Member("name", "thread_name");
    writer.Member("ph", "M");
    writer.Member("pid", key.first);
    writer.Member("tid", key.second);
    writer.Key("args");
    writer.BeginObject();
    writer.Member("name", name);
    writer.EndObject();
    writer.EndObject();
  }
  for (std::size_t i = 0; i < size_; ++i) {
    WriteEvent(writer, events_[i]);
  }
  writer.EndArray();
  if (dropped_ > 0) writer.Member("droppedEvents", dropped_);
  writer.EndObject();
}

std::string TraceRecorder::ToJson(int indent) const {
  std::string out;
  util::JsonWriter writer(&out, indent);
  WriteJson(writer);
  return out;
}

}  // namespace rtmp::obs
