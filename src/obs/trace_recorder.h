// rtmlint: hot-path — event recording runs inside the window-service
// loops; Complete()/Instant() write into a preallocated arena and must
// stay allocation-free (Reserve() up front, drop-on-full past it).
//
// Simulated-time trace recorder. Events are timestamped from the
// controller's simulated nanoseconds (ControllerStats::makespan_ns),
// never the wall clock, so an emitted trace is bit-identical across
// reruns and RTMPLACE_THREADS values. The JSON output is the Chrome
// trace-event format ({"traceEvents": [...]}, ts/dur in microseconds)
// and opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Strings (event names, arg keys, string arg values) are interned at
// setup time via Intern(); the per-event record stores fixed-width
// indices only. pid/tid are free-form rows: the sim layer uses
// pid = matrix cell, the serve layer tid = shard.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtmp::util {
class JsonWriter;
}  // namespace rtmp::util

namespace rtmp::obs {

class TraceRecorder {
 public:
  /// One event argument: `key` is an interned index; the value is either
  /// an interned string index (is_string) or a raw unsigned number.
  struct Arg {
    std::uint32_t key = 0;
    bool is_string = false;
    std::uint64_t value = 0;
  };

  /// Most events carry 0-3 args; the fixed inline slot count keeps the
  /// arena record flat.
  static constexpr std::size_t kMaxArgs = 3;
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Grows the event arena to at least `capacity` events. Cold path:
  /// call before recording starts. Events past capacity are dropped
  /// (counted in dropped_events()) rather than reallocating mid-run.
  void Reserve(std::size_t capacity);

  /// Interns `text`, returning its stable index. Setup-time only.
  [[nodiscard]] std::uint32_t Intern(std::string_view text);

  /// Complete span ("ph":"X"): [ts_ns, ts_ns + dur_ns] of simulated time.
  void Complete(std::uint32_t name, std::uint32_t pid, std::uint32_t tid,
                double ts_ns, double dur_ns,
                std::span<const Arg> args = {}) noexcept;

  /// Instant event ("ph":"i", thread scope).
  void Instant(std::uint32_t name, std::uint32_t pid, std::uint32_t tid,
               double ts_ns, std::span<const Arg> args = {}) noexcept;

  /// Row labels, emitted as "M" metadata events. Setup-time only.
  void SetProcessName(std::uint32_t pid, std::string_view name);
  void SetThreadName(std::uint32_t pid, std::uint32_t tid,
                     std::string_view name);

  /// Appends another recorder's events (re-interning its strings) and
  /// row labels, preserving their order. The sim layer merges per-cell
  /// recorders in grid order, making the combined trace independent of
  /// worker scheduling.
  void Merge(const TraceRecorder& other);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_;
  }

  /// Chrome trace-event JSON: {"traceEvents": [...]}. Metadata rows
  /// first, then events in record order; ts/dur are simulated ns
  /// divided by 1000 (the format's unit is microseconds).
  void WriteJson(util::JsonWriter& writer) const;
  [[nodiscard]] std::string ToJson(int indent = 0) const;

 private:
  enum class Phase : std::uint8_t { kComplete, kInstant };

  struct Event {
    std::uint32_t name = 0;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    double ts_ns = 0.0;
    double dur_ns = 0.0;
    Phase phase = Phase::kComplete;
    std::uint8_t num_args = 0;
    std::array<Arg, kMaxArgs> args{};
  };

  void Append(const Event& event, std::span<const Arg> args) noexcept;
  void WriteEvent(util::JsonWriter& writer, const Event& event) const;

  std::vector<Event> events_;  ///< fixed arena; size_ tracks the fill
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> strings_;
  std::map<std::string, std::uint32_t, std::less<>> intern_;
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names_;
};

/// RAII span over a live simulated clock: reads `*now_ns` at
/// construction and emits a Complete event covering [begin, now] at
/// destruction. `now_ns` must outlive the scope (engines point it at
/// their controller's stats().makespan_ns, whose address is stable).
/// A null recorder makes the scope a no-op.
class SpanScope {
 public:
  SpanScope(TraceRecorder* recorder, std::uint32_t name, std::uint32_t pid,
            std::uint32_t tid, const double* now_ns) noexcept
      : recorder_(recorder),
        now_ns_(now_ns),
        name_(name),
        pid_(pid),
        tid_(tid),
        begin_ns_(recorder != nullptr ? *now_ns : 0.0) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches an argument (ignored past kMaxArgs or with no recorder).
  void AddArg(const TraceRecorder::Arg& arg) noexcept {
    if (recorder_ == nullptr || num_args_ >= TraceRecorder::kMaxArgs) return;
    args_[num_args_] = arg;
    ++num_args_;
  }

  ~SpanScope() {
    if (recorder_ == nullptr) return;
    const double end_ns = *now_ns_;
    recorder_->Complete(name_, pid_, tid_, begin_ns_, end_ns - begin_ns_,
                        std::span<const TraceRecorder::Arg>(
                            args_.data(), num_args_));
  }

 private:
  TraceRecorder* recorder_;
  const double* now_ns_;
  std::uint32_t name_;
  std::uint32_t pid_;
  std::uint32_t tid_;
  double begin_ns_;
  std::size_t num_args_ = 0;
  std::array<TraceRecorder::Arg, TraceRecorder::kMaxArgs> args_{};
};

}  // namespace rtmp::obs
