#include "offsetstone/suite.h"

#include <algorithm>
#include <cmath>

#include "trace/generators.h"
#include "util/rng.h"

namespace rtmp::offsetstone {

namespace {

/// Domain archetypes; per-benchmark profiles below start from one of these
/// and then vary the sizes. Weights: uniform, zipf, phased, markov, loop,
/// sequential. OffsetStone records STATIC offset-assignment access
/// sequences (loops contribute their body once), so the sequential
/// straight-line shape dominates every archetype; the dynamic-trace
/// families (markov/zipf/uniform/loop) only season the mix — one expensive
/// dynamic sequence would otherwise dominate a benchmark's shift total and
/// mask the placement behaviour under study.
constexpr PatternMix kDspMix{0.00, 0.00, 0.06, 0.00, 0.04, 0.90};
constexpr PatternMix kControlMix{0.01, 0.03, 0.03, 0.03, 0.00, 0.90};
constexpr PatternMix kMixedMix{0.01, 0.02, 0.04, 0.03, 0.00, 0.90};

/// Sequence sizes: most OffsetStone sequences are mid-sized functions; the
/// minima keep even the 16-DBC device meaningfully occupied (a couple of
/// variables per DBC), matching the published suite where the interesting
/// shift totals come from the larger sequences.
BenchmarkProfile Sized(std::string name, std::size_t sequences,
                       std::size_t max_vars, std::size_t max_length,
                       const PatternMix& mix) {
  BenchmarkProfile p;
  p.name = std::move(name);
  p.num_sequences = sequences;
  p.max_vars = max_vars;
  p.min_vars = std::max<std::size_t>(32, max_vars / 4);
  p.max_length = max_length;
  p.min_length = std::max<std::size_t>(256, max_length / 5);
  p.mix = mix;
  return p;
}

BenchmarkProfile Dsp(std::string name, std::size_t sequences,
                     std::size_t max_vars, std::size_t max_length) {
  return Sized(std::move(name), sequences, max_vars, max_length, kDspMix);
}

BenchmarkProfile Control(std::string name, std::size_t sequences,
                         std::size_t max_vars, std::size_t max_length) {
  return Sized(std::move(name), sequences, max_vars, max_length, kControlMix);
}

BenchmarkProfile Mixed(std::string name, std::size_t sequences,
                       std::size_t max_vars, std::size_t max_length) {
  return Sized(std::move(name), sequences, max_vars, max_length, kMixedMix);
}

std::vector<BenchmarkProfile> BuildProfiles() {
  // The 31 names of Fig. 4 with sizes spanning the published suite ranges
  // (1..1336 variables, sequence lengths 1..3640). cc65 carries the
  // variable-count extreme; gzip the sequence-length extreme; anthr and
  // triangle include degenerate tiny sequences (the "1 variable, length 1"
  // end of the published ranges).
  std::vector<BenchmarkProfile> profiles;
  profiles.push_back(Control("8051", 6, 128, 896));
  profiles.push_back(Dsp("adpcm", 5, 96, 768));
  profiles.push_back(Control("anagram", 4, 96, 704));
  {
    BenchmarkProfile p = Mixed("anthr", 5, 96, 640);
    p.pin_first_vars = 2;  // keeps a degenerate near-empty sequence around
    p.pin_first_length = 4;
    profiles.push_back(std::move(p));
  }
  profiles.push_back(Control("bdd", 6, 128, 768));
  profiles.push_back(Control("bison", 8, 220, 1024));
  profiles.push_back(Mixed("cavity", 4, 112, 832));
  {
    BenchmarkProfile p = Control("cc65", 9, 1336, 1400);
    p.min_vars = 16;
    p.pin_first_vars = 1336;  // the suite's variable-count extreme
    p.pin_first_length = 1400;
    profiles.push_back(std::move(p));
  }
  profiles.push_back(Dsp("codecs", 6, 128, 896));
  profiles.push_back(Control("cpp", 8, 300, 1200));
  profiles.push_back(Dsp("dct", 4, 112, 832));
  profiles.push_back(Dsp("dspstone", 7, 96, 704));
  profiles.push_back(Control("eqntott", 5, 112, 704));
  profiles.push_back(Control("f2c", 8, 260, 1100));
  profiles.push_back(Dsp("fft", 4, 128, 896));
  profiles.push_back(Control("flex", 8, 240, 1152));
  profiles.push_back(Mixed("fuzzy", 4, 96, 704));
  profiles.push_back(Dsp("gif2asc", 4, 96, 704));
  profiles.push_back(Dsp("gsm", 6, 128, 960));
  {
    BenchmarkProfile p = Control("gzip", 7, 180, 3640);
    p.min_length = 64;
    p.pin_first_vars = 160;
    p.pin_first_length = 3640;  // the suite's sequence-length extreme
    profiles.push_back(std::move(p));
  }
  profiles.push_back(Dsp("h263", 6, 120, 960));
  profiles.push_back(Mixed("hmm", 5, 128, 896));
  profiles.push_back(Dsp("jpeg", 8, 320, 1280));
  profiles.push_back(Dsp("klt", 4, 104, 768));
  profiles.push_back(Control("lpsolve", 6, 150, 896));
  profiles.push_back(Dsp("motion", 4, 96, 704));
  profiles.push_back(Dsp("mp3", 6, 140, 1024));
  profiles.push_back(Dsp("mpeg2", 7, 200, 1152));
  profiles.push_back(Mixed("sparse", 5, 96, 704));
  {
    BenchmarkProfile p = Mixed("triangle", 4, 96, 640);
    p.pin_first_vars = 1;  // the published "1 variable, length 1" extreme
    p.pin_first_length = 1;
    profiles.push_back(std::move(p));
  }
  profiles.push_back(Dsp("viterbi", 5, 120, 832));
  return profiles;
}

std::size_t DrawSize(util::Rng& rng, std::size_t lo, std::size_t hi) {
  if (hi <= lo) return lo;
  // Log-uniform-ish draw so large sequences stay rare, as in the real
  // suite (most OffsetStone sequences are small; a few are huge).
  const double u = rng.NextDouble();
  const double lo_d = static_cast<double>(lo);
  const double hi_d = static_cast<double>(hi);
  const double value = lo_d * std::pow(hi_d / lo_d, u);
  return std::clamp(static_cast<std::size_t>(value), lo, hi);
}

trace::AccessSequence GenerateOne(const BenchmarkProfile& profile,
                                  util::Rng& rng, std::size_t pin_vars,
                                  std::size_t pin_length) {
  const std::size_t target_vars =
      pin_vars != 0 ? pin_vars
                    : DrawSize(rng, profile.min_vars, profile.max_vars);
  const std::size_t target_len = std::max(
      pin_length != 0 ? pin_length
                      : DrawSize(rng, profile.min_length, profile.max_length),
      target_vars);  // every variable should have a chance to occur
  const double weights[] = {profile.mix.uniform, profile.mix.zipf,
                            profile.mix.phased,  profile.mix.markov,
                            profile.mix.loop,    profile.mix.sequential};
  // Degenerate sizes can't support structured patterns.
  const bool tiny = target_vars < 4 || target_len < 8;
  const std::size_t family = tiny ? 0 : rng.NextWeighted(weights);
  switch (family) {
    case 0: {
      trace::UniformParams p;
      p.num_vars = target_vars;
      p.length = target_len;
      p.write_fraction = profile.write_fraction;
      return trace::GenerateUniform(p, rng);
    }
    case 1: {
      trace::ZipfParams p;
      p.num_vars = target_vars;
      p.length = target_len;
      p.exponent = 0.8 + 0.6 * rng.NextDouble();
      p.write_fraction = profile.write_fraction;
      return trace::GenerateZipf(p, rng);
    }
    case 2: {
      trace::PhasedParams p;
      p.num_phases = std::max<std::size_t>(2, target_vars / 12);
      p.num_globals = std::min<std::size_t>(3, target_vars / 8);
      p.vars_per_phase =
          std::max<std::size_t>(2,
                                (target_vars - p.num_globals) / p.num_phases);
      p.accesses_per_phase =
          std::max<std::size_t>(4, target_len / p.num_phases);
      p.global_access_prob = 0.05 + 0.1 * rng.NextDouble();
      p.zipf_exponent = 0.6 + 0.6 * rng.NextDouble();
      p.write_fraction = profile.write_fraction;
      return trace::GeneratePhased(p, rng);
    }
    case 3: {
      trace::MarkovParams p;
      p.num_vars = target_vars;
      p.length = target_len;
      p.self_loop_prob = 0.15 + 0.2 * rng.NextDouble();
      p.locality_prob = 0.4 + 0.25 * rng.NextDouble();
      p.locality_window = 2 + rng.NextBelow(5);
      p.hot_jump_zipf = 0.9 + 0.5 * rng.NextDouble();
      p.write_fraction = profile.write_fraction;
      return trace::GenerateMarkov(p, rng);
    }
    case 4: {
      trace::LoopNestParams p;
      p.num_arrays = 2 + rng.NextBelow(3);
      p.num_scalars = std::min<std::size_t>(
          4, std::max<std::size_t>(1, target_vars / 10));
      // Staged pipeline: several kernels, each with fresh (disjoint) arrays.
      p.num_kernels = 2 + rng.NextBelow(3);
      p.array_len = std::max<std::size_t>(
          2, (target_vars - p.num_scalars) / (p.num_arrays * p.num_kernels));
      const std::size_t body = p.num_arrays * p.array_len * p.num_kernels;
      p.iterations = std::max<std::size_t>(
          1, target_len / std::max<std::size_t>(body, 1));
      p.stride = 1 + rng.NextBelow(2);
      p.scalar_access_prob = 0.05 + 0.1 * rng.NextDouble();
      p.write_fraction = profile.write_fraction;
      return trace::GenerateLoopNest(p, rng);
    }
    default: {
      trace::SequentialParams p;
      p.num_globals = std::min<std::size_t>(2 + rng.NextBelow(3),
                                            target_vars / 4 + 1);
      p.num_vars = target_vars > p.num_globals ? target_vars - p.num_globals
                                               : target_vars;
      p.length = target_len;
      p.window = 2 + rng.NextBelow(2);
      p.stay_prob = 0.65 + 0.15 * rng.NextDouble();
      p.neighbor_prob = 0.05 + 0.08 * rng.NextDouble();
      p.global_access_prob = 0.04 + 0.06 * rng.NextDouble();
      p.write_fraction = profile.write_fraction;
      return trace::GenerateSequential(p, rng);
    }
  }
}

}  // namespace

const std::vector<BenchmarkProfile>& SuiteProfiles() {
  static const std::vector<BenchmarkProfile> kProfiles = BuildProfiles();
  return kProfiles;
}

std::optional<BenchmarkProfile> FindProfile(std::string_view name) {
  for (const BenchmarkProfile& p : SuiteProfiles()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

Benchmark Generate(const BenchmarkProfile& profile, std::uint64_t suite_seed) {
  util::Rng rng(util::HashString(profile.name) ^ suite_seed);
  Benchmark benchmark;
  benchmark.name = profile.name;
  benchmark.sequences.reserve(profile.num_sequences);
  for (std::size_t i = 0; i < profile.num_sequences; ++i) {
    const bool pinned = i == 0;
    benchmark.sequences.push_back(
        GenerateOne(profile, rng, pinned ? profile.pin_first_vars : 0,
                    pinned ? profile.pin_first_length : 0));
  }
  return benchmark;
}

Benchmark Generate(const BenchmarkProfile& profile, std::uint64_t suite_seed,
                   double scale) {
  BenchmarkProfile scaled = profile;
  scaled.num_sequences = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             static_cast<double>(profile.num_sequences) * scale)));
  return Generate(scaled, suite_seed);
}

std::vector<Benchmark> GenerateSuite(std::uint64_t suite_seed) {
  std::vector<Benchmark> suite;
  suite.reserve(SuiteProfiles().size());
  for (const BenchmarkProfile& profile : SuiteProfiles()) {
    suite.push_back(Generate(profile, suite_seed));
  }
  return suite;
}

std::size_t LargestBenchmarkIndex(const std::vector<Benchmark>& suite) {
  std::size_t best = 0;
  std::size_t best_accesses = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    std::size_t accesses = 0;
    for (const auto& seq : suite[i].sequences) accesses += seq.size();
    if (accesses > best_accesses) {
      best_accesses = accesses;
      best = i;
    }
  }
  return best;
}

}  // namespace rtmp::offsetstone
