// OffsetStone-lite: the paper's benchmark suite, rebuilt synthetically.
//
// The paper evaluates on the 30 OffsetStone benchmarks (Leupers, CC'03) —
// its Fig. 4 lists 31 names — whose traces record per-function variable
// access sequences of real embedded programs (1 to 1336 variables per
// sequence, sequence lengths 1 to 3640). The original trace files are not
// redistributable here, so this module regenerates, per published benchmark
// name, a deterministic set of access sequences whose size statistics match
// the published ranges and whose access structure matches the benchmark's
// application domain:
//
//  * DSP/media codecs (adpcm, dct, fft, gsm, h263, jpeg, ...) lean on
//    loop-nest and phased patterns — many short-lived temporaries with
//    disjoint lifespans, the structure DMA exploits;
//  * control-dominated programs (bison, cpp, flex, gzip, ...) lean on
//    Markov and Zipf patterns — hot globals and overlapping lifespans.
//
// Every sequence is deterministic: the per-benchmark RNG seed is derived
// from the benchmark name and a suite seed, so results are reproducible
// across runs and platforms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/access_sequence.h"

namespace rtmp::offsetstone {

/// Relative weights of the six generator families for one benchmark.
/// `sequential` (the sliding-window straight-line-code shape) dominates all
/// profiles: OffsetStone sequences ARE offset-assignment traces of
/// sequential code, whose variables live briefly and die permanently —
/// the property that makes liveliness-aware placement worthwhile.
struct PatternMix {
  double uniform = 0.0;
  double zipf = 0.0;
  double phased = 0.0;
  double markov = 0.0;
  double loop = 0.0;
  double sequential = 0.0;
};

struct BenchmarkProfile {
  std::string name;
  std::size_t num_sequences = 6;
  std::size_t min_vars = 4;
  std::size_t max_vars = 64;     ///< suite-wide max is 1336 (paper §IV-A)
  std::size_t min_length = 16;
  std::size_t max_length = 512;  ///< suite-wide max is 3640 (paper §IV-A)
  /// When non-zero, the benchmark's FIRST sequence is generated with
  /// exactly these sizes — used to pin the published suite extremes
  /// (cc65's 1336 variables, gzip's 3640-access sequence) so they are
  /// present deterministically rather than by draw.
  std::size_t pin_first_vars = 0;
  std::size_t pin_first_length = 0;
  PatternMix mix;
  double write_fraction = 0.3;
};

/// A generated benchmark: named sequences ready for placement.
struct Benchmark {
  std::string name;
  std::vector<trace::AccessSequence> sequences;
};

/// The 31 benchmark profiles named in the paper's Fig. 4.
[[nodiscard]] const std::vector<BenchmarkProfile>& SuiteProfiles();

/// Profile lookup by name; nullopt if unknown.
[[nodiscard]] std::optional<BenchmarkProfile> FindProfile(
    std::string_view name);

/// Generates one benchmark deterministically (seed derived from
/// profile.name and suite_seed).
[[nodiscard]] Benchmark Generate(const BenchmarkProfile& profile,
                                 std::uint64_t suite_seed = 0);

/// Scaled variant: multiplies the profile's sequence count (min 1).
/// scale = 1 reproduces Generate(profile, suite_seed) exactly; smaller
/// scales yield a deterministic prefix of its sequences — the knob the
/// workload registry (workloads/workload.h) exposes.
[[nodiscard]] Benchmark Generate(const BenchmarkProfile& profile,
                                 std::uint64_t suite_seed, double scale);

/// Generates the whole suite.
[[nodiscard]] std::vector<Benchmark> GenerateSuite(
    std::uint64_t suite_seed = 0);

/// Largest benchmark of the suite by total accesses (the paper's long-GA
/// experiment targets "the benchmark with the largest access sequence").
[[nodiscard]] std::size_t LargestBenchmarkIndex(
    const std::vector<Benchmark>& suite);

}  // namespace rtmp::offsetstone
