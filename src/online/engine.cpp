// rtmlint: hot-path — the batched Feed/ServeWindow path carries the
// throughput scenario's numbers; allocations here are advisory findings.
#include "online/engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/cost_evaluator.h"
#include "core/cost_model.h"
#include "core/strategy_registry.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "online/migration.h"
#include "util/rng.h"

namespace rtmp::online {

std::uint64_t WindowSeed(std::uint64_t base, std::size_t window) {
  if (window == 0) return base;
  std::uint64_t state =
      base + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(window);
  return util::SplitMix64(state);
}

OnlineEngine::OnlineEngine(OnlineConfig config, rtm::RtmConfig device)
    : config_(std::move(config)),
      device_config_(std::move(device)),
      controller_(device_config_, config_.controller),
      detector_(config_.detector) {
  if (config_.window_accesses == 0) {
    throw std::invalid_argument("OnlineEngine: window_accesses must be >= 1");
  }
  if (!std::isfinite(config_.migration_fraction) ||
      config_.migration_fraction < 0.0 || config_.migration_fraction > 1.0) {
    throw std::invalid_argument(
        "OnlineEngine: migration_fraction must be in [0, 1]");
  }
  if (!core::StrategyRegistry::Global().Contains(config_.reseed_strategy)) {
    throw std::invalid_argument(
        "OnlineEngine: unregistered re-seed strategy '" +
        config_.reseed_strategy + "'");
  }
  SetUpObs();
}

void OnlineEngine::SetUpObs() {
  obs_ = config_.obs;
  if (obs_.trace != nullptr) {
    trace_window_ = obs_.trace->Intern("window");
    trace_migration_ = obs_.trace->Intern("migration");
    trace_phase_change_ = obs_.trace->Intern("phase-change");
    trace_budget_denied_ = obs_.trace->Intern("budget-denied");
    key_window_ = obs_.trace->Intern("window_index");
    key_accesses_ = obs_.trace->Intern("accesses");
    key_shifts_ = obs_.trace->Intern("shifts");
    key_moved_ = obs_.trace->Intern("moved_vars");
  }
  if (obs_.metrics != nullptr) {
    m_windows_ = &obs_.metrics->Counter("online/windows");
    m_phase_changes_ = &obs_.metrics->Counter("online/phase_changes");
    m_migrations_ = &obs_.metrics->Counter("online/migrations");
    m_budget_denials_ = &obs_.metrics->Counter("online/budget_denials");
    m_service_shifts_ = &obs_.metrics->Counter("online/service_shifts");
    m_migration_shifts_ = &obs_.metrics->Counter("online/migration_shifts");
    latency_hist_ = &obs_.metrics->Hist("online/window_latency_ns");
  }
}

void OnlineEngine::RecordWindowObs(const WindowRecord& record,
                                   double begin_ns) {
  if (obs_.trace != nullptr) {
    const std::array<obs::TraceRecorder::Arg, 3> args{
        obs::TraceRecorder::Arg{
            key_window_, false,
            static_cast<std::uint64_t>(windows_processed_)},
        obs::TraceRecorder::Arg{key_accesses_, false, record.accesses},
        obs::TraceRecorder::Arg{key_shifts_, false, record.service_shifts}};
    obs_.trace->Complete(trace_window_, obs_.pid, obs_.tid, begin_ns,
                         record.latency_ns, args);
  }
  if (obs_.metrics != nullptr) {
    ++*m_windows_;
    *m_service_shifts_ += record.service_shifts;
    *m_migration_shifts_ += record.migration_shifts;
    if (record.phase_change) ++*m_phase_changes_;
    latency_hist_->Record(
        static_cast<std::uint64_t>(std::llround(record.latency_ns)));
  }
}

void OnlineEngine::RecordBudgetDenialObs(std::uint64_t estimated_shifts) {
  if (obs_.trace != nullptr) {
    const std::array<obs::TraceRecorder::Arg, 1> args{
        obs::TraceRecorder::Arg{key_shifts_, false, estimated_shifts}};
    obs_.trace->Instant(trace_budget_denied_, obs_.pid, obs_.tid,
                        controller_.stats().makespan_ns, args);
  }
  if (m_budget_denials_ != nullptr) ++*m_budget_denials_;
}

trace::VariableId OnlineEngine::RegisterVariable(std::string_view name) {
  if (finished_) {
    throw std::logic_error("OnlineEngine: session already finished");
  }
  return window_seq_.AddVariable(std::string(name));
}

void OnlineEngine::Feed(std::string_view name, trace::AccessType type) {
  Feed(RegisterVariable(name), type);
}

void OnlineEngine::Feed(trace::VariableId variable, trace::AccessType type) {
  if (finished_) {
    throw std::logic_error("OnlineEngine: session already finished");
  }
  if (variable >= window_seq_.num_variables()) {
    throw std::out_of_range("OnlineEngine: unregistered variable id");
  }
  window_seq_.Append(variable, type);
  if (window_seq_.size() >= config_.window_accesses) ProcessWindow();
}

void OnlineEngine::Feed(std::span<const trace::Access> accesses,
                        trace::VariableId id_offset) {
  if (finished_) {
    throw std::logic_error("OnlineEngine: session already finished");
  }
  // Fill the window buffer a block at a time, processing each boundary
  // as it is crossed — the same boundaries the per-access loop would hit
  // (a window closes exactly when it reaches window_accesses).
  const std::size_t limit = config_.window_accesses;
  std::size_t i = 0;
  while (i < accesses.size()) {
    if (window_seq_.empty() && accesses.size() - i >= limit &&
        DirectServeEligible()) {
      // Steady state: a whole window is already contiguous in the fed
      // block — serve it in place, skipping the buffer copy. Id bounds
      // are checked per access by ServeWindow's SlotOf (same
      // out-of-range guarantee as the append loop below).
      ProcessWindowFromSpan(accesses.subspan(i, limit), id_offset);
      i += limit;
      continue;
    }
    const std::size_t take =
        std::min(limit - window_seq_.size(), accesses.size() - i);
    for (const trace::Access& access : accesses.subspan(i, take)) {
      const trace::VariableId v = access.variable + id_offset;
      if (v >= window_seq_.num_variables()) {
        throw std::out_of_range("OnlineEngine: unregistered variable id");
      }
      window_seq_.Append(v, access.type);
    }
    i += take;
    if (window_seq_.size() >= limit) ProcessWindow();
  }
}

void OnlineEngine::Feed(std::span<const trace::VariableId> variables) {
  if (finished_) {
    throw std::logic_error("OnlineEngine: session already finished");
  }
  const std::size_t limit = config_.window_accesses;
  std::size_t i = 0;
  while (i < variables.size()) {
    const std::size_t take =
        std::min(limit - window_seq_.size(), variables.size() - i);
    for (const trace::VariableId v : variables.subspan(i, take)) {
      if (v >= window_seq_.num_variables()) {
        throw std::out_of_range("OnlineEngine: unregistered variable id");
      }
      window_seq_.Append(v, trace::AccessType::kRead);
    }
    i += take;
    if (window_seq_.size() >= limit) ProcessWindow();
  }
}

void OnlineEngine::PlaceNewVariables() {
  const std::size_t have = placement_.num_variables();
  const std::size_t want = window_seq_.num_variables();
  if (have == want) return;

  std::vector<std::vector<trace::VariableId>> lists;
  lists.reserve(placement_.num_dbcs());
  for (std::uint32_t d = 0; d < placement_.num_dbcs(); ++d) {
    lists.push_back(placement_.dbc(d));
  }
  core::Placement grown = core::Placement::FromLists(
      std::move(lists), want, placement_.capacity());
  for (trace::VariableId v = static_cast<trace::VariableId>(have); v < want;
       ++v) {
    // Emptiest DBC, lowest index on ties — deterministic and cheap. A
    // variable's FIRST placement moves nothing, so it is not migration.
    std::uint32_t best = grown.num_dbcs();
    std::size_t best_size = 0;
    for (std::uint32_t d = 0; d < grown.num_dbcs(); ++d) {
      if (grown.FreeIn(d) == 0) continue;
      if (best == grown.num_dbcs() || grown.dbc(d).size() < best_size) {
        best = d;
        best_size = grown.dbc(d).size();
      }
    }
    if (best == grown.num_dbcs()) {
      throw std::invalid_argument(
          "OnlineEngine: device too small for the streamed variable space");
    }
    grown.Append(best, v);
  }
  placement_ = std::move(grown);
}

core::Placement OnlineEngine::Reseed() {
  const auto strategy =
      core::StrategyRegistry::Global().Find(config_.reseed_strategy);
  core::PlacementRequest request;
  request.sequence = &window_seq_;
  request.num_dbcs = device_config_.total_dbcs();
  request.capacity = device_config_.domains_per_dbc;
  request.options = config_.strategy_options;
  // Each stream derives from ITS configured base seed — window 0 uses
  // both verbatim, so the single-window oracle holds even when a caller
  // configures ga.seed != rw.seed.
  request.options.ga.seed =
      WindowSeed(config_.strategy_options.ga.seed, windows_processed_);
  request.options.rw.seed =
      WindowSeed(config_.strategy_options.rw.seed, windows_processed_);
  // The engine prices windows itself (record.window_cost); skip the
  // constructive strategies' analytic pass.
  request.compute_cost = false;
  core::PlacementResult placed = core::RunTimed(*strategy, request);
  result_.placement_wall_ms += placed.wall_ms;
  result_.evaluations += placed.evaluations;
  return std::move(placed.placement);
}

bool OnlineEngine::Refine(WindowRecord& record) {
  core::CostEvaluator evaluator(window_seq_, config_.strategy_options.cost);
  evaluator.Bind(placement_);

  // Hottest window variables first (frequency, then id, both
  // deterministic).
  std::vector<std::uint64_t> freq(window_seq_.num_variables(), 0);
  for (const trace::Access& access : window_seq_.accesses()) {
    ++freq[access.variable];
  }
  std::vector<trace::VariableId> hot;
  for (trace::VariableId v = 0; v < freq.size(); ++v) {
    if (freq[v] > 0) hot.push_back(v);
  }
  std::sort(hot.begin(), hot.end(),
            [&freq](trace::VariableId a, trace::VariableId b) {
              if (freq[a] != freq[b]) return freq[a] > freq[b];
              return a < b;
            });
  if (hot.size() > config_.refine_top_k) hot.resize(config_.refine_top_k);

  const std::uint64_t margin =
      config_.charge_migration
          ? EstimatedSingleMoveShifts(device_config_.domains_per_dbc)
          : 0;
  bool committed = false;
  for (const trace::VariableId v : hot) {
    const std::uint32_t home = evaluator.placement().SlotOf(v).dbc;
    std::uint32_t best_dbc = home;
    std::uint64_t best_cost = evaluator.Cost();
    for (std::uint32_t d = 0; d < placement_.num_dbcs(); ++d) {
      if (d == home || evaluator.placement().FreeIn(d) == 0) continue;
      const std::uint64_t cost = evaluator.PeekMove(v, d);
      ++result_.evaluations;
      if (cost < best_cost) {
        best_cost = cost;
        best_dbc = d;
      }
    }
    if (best_dbc == home) continue;
    // Commit, then roll back unless the realized saving clears the
    // per-move migration charge — the peek picked the target, the
    // apply/undo pair makes the accept decision on the actual delta.
    const std::uint64_t before = evaluator.Cost();
    const std::uint64_t after = evaluator.ApplyMove(v, best_dbc);
    if (after >= before || before - after <= margin) {
      evaluator.Undo();
      continue;
    }
    committed = true;
  }
  if (!committed) return false;

  const MigrationPlan plan =
      PlanMigration(placement_, evaluator.placement());
  if (config_.migration_gate &&
      !config_.migration_gate(plan.estimated_shifts)) {
    record.budget_denied = true;
    ++result_.budget_denials;
    RecordBudgetDenialObs(plan.estimated_shifts);
    return false;
  }
  ChargeMigration(plan, record);
  placement_ = evaluator.placement();
  return true;
}

void OnlineEngine::ChargeMigration(const MigrationPlan& plan,
                                   WindowRecord& record) {
  if (plan.empty()) return;
  if (config_.charge_migration) {
    const std::uint64_t shifts_before = controller_.stats().shifts;
    const double makespan_before = controller_.stats().makespan_ns;
    (void)controller_.Execute(plan.requests);
    const std::uint64_t shifts =
        controller_.stats().shifts - shifts_before;
    record.migration_shifts += shifts;
    result_.migration_shifts += shifts;
    result_.migration_accesses += plan.requests.size();
    // One read at the old slot, one write at the new, per moved variable.
    result_.reads += plan.moves.size();
    result_.writes += plan.moves.size();
    if (obs_.trace != nullptr) {
      const std::array<obs::TraceRecorder::Arg, 2> args{
          obs::TraceRecorder::Arg{key_moved_, false, plan.moves.size()},
          obs::TraceRecorder::Arg{key_shifts_, false, shifts}};
      obs_.trace->Complete(trace_migration_, obs_.pid, obs_.tid,
                           makespan_before,
                           controller_.stats().makespan_ns - makespan_before,
                           args);
    }
  }
  record.replaced = true;
  record.migrated_vars += plan.moves.size();
  ++result_.migrations;
  result_.migrated_vars += plan.moves.size();
  if (m_migrations_ != nullptr) ++*m_migrations_;
}

void OnlineEngine::ServeWindow(WindowRecord& record,
                               std::span<const trace::Access> accesses,
                               trace::VariableId id_offset) {
  // One pass over the window: map each access to its slot once, build
  // the batched request block in reused scratch, count reads/writes,
  // and — single port — accumulate the analytic window cost inline
  // (exactly the SinglePortCosts walk of core::ShiftCost, which
  // previously cost a second full replay of the window). Multi-port
  // pricing does not decompose per access; it falls back to ShiftCost
  // over the window buffer (the direct span path requires fused mode).
  const core::CostOptions& cost = config_.strategy_options.cost;
  const bool fused = cost.port_offsets.size() == 1;
  std::uint64_t window_cost = 0;
  constexpr std::int64_t kNoAccess = -1;
  std::int64_t port = 0;
  bool first_pays = false;
  if (fused) {
    core::ValidateAgainstDomains(placement_, cost);
    last_off_scratch_.assign(placement_.num_dbcs(), kNoAccess);
    port = static_cast<std::int64_t>(cost.port_offsets.front());
    first_pays = cost.initial_alignment == rtm::InitialAlignment::kZero;
  }
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  request_scratch_.clear();
  for (const trace::Access& access : accesses) {
    const core::Slot slot = placement_.SlotOf(access.variable + id_offset);
    request_scratch_.push_back(
        rtm::TimedRequest{0.0, slot.dbc, slot.offset, access.type});
    if (access.type == trace::AccessType::kWrite) {
      ++writes;
    } else {
      ++reads;
    }
    if (fused) {
      const auto pos = static_cast<std::int64_t>(slot.offset);
      std::int64_t& last = last_off_scratch_[slot.dbc];
      if (last == kNoAccess) {
        if (first_pays) {
          window_cost += static_cast<std::uint64_t>(std::llabs(pos - port));
        }
      } else {
        window_cost += static_cast<std::uint64_t>(std::llabs(pos - last));
      }
      last = pos;
    }
  }
  result_.reads += reads;
  result_.writes += writes;
  record.window_cost =
      fused ? window_cost
            : core::ShiftCost(window_seq_, placement_,
                              config_.strategy_options.cost);
  result_.placement_cost += record.window_cost;
  const std::uint64_t shifts_before = controller_.stats().shifts;
  controller_.ExecuteBatch(request_scratch_);
  record.service_shifts = controller_.stats().shifts - shifts_before;
  result_.service_shifts += record.service_shifts;
}

bool OnlineEngine::DirectServeEligible() const noexcept {
  return placed_ && !config_.refine &&
         config_.detector.kind == DetectorKind::kNone &&
         placement_.num_variables() == window_seq_.num_variables() &&
         config_.strategy_options.cost.port_offsets.size() == 1;
}

void OnlineEngine::ProcessWindowFromSpan(std::span<const trace::Access> block,
                                         trace::VariableId id_offset) {
  WindowRecord record;
  record.begin = served_accesses_;
  record.accesses = block.size();
  const double makespan_before = controller_.stats().makespan_ns;
  // Counter parity with the buffered path: kNone ignores the summary but
  // still counts the window.
  (void)detector_.Observe(TransitionSummary{});
  if (pre_serve_hook_) pre_serve_hook_(placement_, controller_);
  ServeWindow(record, block, id_offset);
  record.latency_ns = controller_.stats().makespan_ns - makespan_before;
  if (obs_.enabled()) RecordWindowObs(record, makespan_before);
  result_.windows.push_back(record);
  served_accesses_ += block.size();
  ++windows_processed_;
}

void OnlineEngine::ProcessWindow() {
  WindowRecord record;
  record.begin = served_accesses_;
  record.accesses = window_seq_.size();
  const double makespan_before = controller_.stats().makespan_ns;

  // Every window feeds the detector — window 0 seeds the drift model so
  // a phase seam right after it is visible. kNone ignores the summary
  // entirely (the static/oracle configuration), so the service hot path
  // skips the per-window transition summarization; Observe still runs to
  // keep the observed-window counter moving.
  const bool summarize = config_.detector.kind != DetectorKind::kNone;
  const TransitionSummary summary =
      summarize ? SummarizeTransitions(window_seq_.accesses())
                : TransitionSummary{};
  const PhaseDetector::Verdict verdict = detector_.Observe(summary);

  if (!placed_) {
    placement_ = Reseed();
    placed_ = true;
  } else {
    PlaceNewVariables();
    record.phase_change = verdict.phase_change;
    record.drift = verdict.drift;
    if (verdict.phase_change) {
      if (obs_.trace != nullptr) {
        const std::array<obs::TraceRecorder::Arg, 1> args{
            obs::TraceRecorder::Arg{
                key_window_, false,
                static_cast<std::uint64_t>(windows_processed_)}};
        obs_.trace->Instant(trace_phase_change_, obs_.pid, obs_.tid,
                            controller_.stats().makespan_ns, args);
      }
      core::Placement candidate = Reseed();
      MigrationPlan plan;
      if (config_.migration_fraction < 1.0 ||
          config_.migration_min_benefit > 0) {
        // Partial migration: realize only the highest-value moves of the
        // diff; candidate and plan become the trimmed pair.
        TrimmedMigration trimmed = TrimMigration(
            placement_, candidate, window_seq_, config_.strategy_options.cost,
            config_.migration_fraction, config_.migration_min_benefit);
        result_.evaluations += trimmed.evaluations;
        candidate = std::move(trimmed.placement);
        plan = std::move(trimmed.plan);
      } else {
        plan = PlanMigration(placement_, candidate);
      }
      if (!plan.empty()) {
        bool accept = config_.always_accept_reseed;
        if (!accept) {
          // Migration-aware accept: the candidate must recoup its own
          // traffic within the window that triggered it.
          core::CostEvaluator evaluator(window_seq_,
                                        config_.strategy_options.cost);
          const std::uint64_t cost_keep = evaluator.Evaluate(placement_);
          const std::uint64_t cost_candidate = evaluator.Evaluate(candidate);
          result_.evaluations += 2;
          const std::uint64_t charge =
              config_.charge_migration ? plan.estimated_shifts : 0;
          accept = cost_candidate + charge < cost_keep;
        }
        if (accept && config_.migration_gate &&
            !config_.migration_gate(plan.estimated_shifts)) {
          record.budget_denied = true;
          ++result_.budget_denials;
          RecordBudgetDenialObs(plan.estimated_shifts);
          accept = false;
        }
        if (accept) {
          ChargeMigration(plan, record);
          placement_ = std::move(candidate);
        }
      }
    } else if (config_.refine) {
      (void)Refine(record);
    }
  }

  // The placement is final for this window: let the cache tier land its
  // evict+fill traffic before service (see SetPreServeHook).
  if (pre_serve_hook_) pre_serve_hook_(placement_, controller_);

  // ServeWindow prices the window (record.window_cost) fused into its
  // request-building pass and books it into result_.placement_cost.
  ServeWindow(record, window_seq_.accesses(), 0);
  record.latency_ns = controller_.stats().makespan_ns - makespan_before;
  if (obs_.enabled()) RecordWindowObs(record, makespan_before);
  result_.windows.push_back(record);
  served_accesses_ += window_seq_.size();
  window_seq_.ClearAccesses();
  ++windows_processed_;
}

void OnlineEngine::FlushWindow() {
  if (finished_) {
    throw std::logic_error("OnlineEngine: session already finished");
  }
  if (!window_seq_.empty()) ProcessWindow();
}

OnlineResult OnlineEngine::Finish() {
  if (finished_) {
    throw std::logic_error("OnlineEngine: session already finished");
  }
  // Flush the trailing partial window; a never-fed session still places
  // once so the result mirrors the static path on empty sequences.
  if (!window_seq_.empty() || !placed_) ProcessWindow();
  finished_ = true;

  result_.stats = controller_.stats();
  result_.energy = controller_.Energy();
  result_.amortized_shifts =
      result_.service_shifts + result_.migration_shifts;
  result_.final_placement = placement_;
  return std::move(result_);
}

OnlineResult RunOnline(const trace::AccessSequence& seq,
                       const OnlineConfig& config,
                       const rtm::RtmConfig& device) {
  OnlineEngine engine(config, device);
  // Pre-register the full variable space in id order: zero-access
  // variables get placement slots exactly as the static strategies give
  // them, keeping the single-window oracle bit-identical.
  for (trace::VariableId v = 0; v < seq.num_variables(); ++v) {
    (void)engine.RegisterVariable(seq.name_of(v));
  }
  engine.Feed(std::span<const trace::Access>(seq.accesses()));
  return engine.Finish();
}

std::vector<OnlineTraceResult> RunOnlineOverTrace(
    std::istream& in, const OnlineConfig& config,
    const rtm::RtmConfig& device,
    const trace::TraceStreamOptions& stream_options) {
  std::vector<OnlineTraceResult> results;
  (void)trace::StreamTrace(
      in,
      [&](const std::string& name, trace::AccessSequence sequence) {
        results.push_back({name, RunOnline(sequence, config, device)});
      },
      stream_options);
  return results;
}

}  // namespace rtmp::online
