// The online adaptive placement engine.
//
// The paper's strategies are offline: one placement per sequence, chosen
// from the full trace. This engine serves the trace in windows and adapts
// the placement while traffic flows, charging every adaptation as real
// device work:
//
//  1. Accesses are buffered into fixed-size windows (the controller's
//     batching epoch). A window is the unit of decision AND of service:
//     the engine decides the layout for a window after collecting it,
//     then issues it to the device — the epoch-batch model of runtime-
//     reconfigurable racetrack systems (R4-style).
//  2. At each window boundary a PhaseDetector (online/phase_detector.h)
//     inspects the window's transition-weight distribution. On a declared
//     phase change, the re-seed strategy — ANY registry strategy
//     (core/strategy_registry.h) — produces a candidate placement from
//     the window, and the engine accepts it only when the candidate's
//     analytic window cost plus the migration estimate beats the current
//     placement's window cost (migration-aware accept rule).
//  3. Without a phase change the engine can still refine incrementally:
//     a bounded greedy pass over the window's hottest variables, scored
//     with core::CostEvaluator's PeekMove and committed/rolled back with
//     ApplyMove/Undo, each move charged against a conservative per-move
//     migration estimate.
//  4. Every accepted layout change is realized by a MigrationPlanner
//     traffic plan (online/migration.h) executed on the engine's live
//     rtm::RtmController — the reported shifts, latency and energy
//     therefore INCLUDE migration overhead, and track alignments carry
//     across windows and migrations exactly as hardware would.
//
// Oracle property (pinned by tests/online_engine_test.cpp): with
// detection disabled and one window covering the whole trace, the engine
// degenerates to the wrapped static strategy — placement and analytic
// cost are bit-identical, and the serial controller replay reproduces
// sim::Simulate's shift count exactly. With migrations, total shifts
// decompose into service + migration traffic, verified against an
// independently spliced request stream.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/placement.h"
#include "core/strategy.h"
#include "obs/obs.h"
#include "online/phase_detector.h"
#include "rtm/config.h"
#include "rtm/controller.h"
#include "rtm/energy_model.h"
#include "trace/access_sequence.h"
#include "trace/trace_stream.h"

namespace rtmp::obs {
class Histogram;
}  // namespace rtmp::obs

namespace rtmp::online {

struct MigrationPlan;  // online/migration.h

/// Sentinel for "one window covering the whole trace".
inline constexpr std::size_t kWholeTraceWindow =
    static_cast<std::size_t>(-1);

struct OnlineConfig {
  /// Registry strategy that seeds window 0 and re-seeds on phase changes.
  std::string reseed_strategy = "dma-sr";
  /// Accesses per window; kWholeTraceWindow = a single window.
  std::size_t window_accesses = 256;
  PhaseDetectorConfig detector{};
  /// Charge migration traffic through the controller (read old slot,
  /// write new slot per moved variable) and weigh it in the accept rule.
  /// Off = migrations are free and accepted on window cost alone — an
  /// upper-bound oracle, not a deployable configuration.
  bool charge_migration = true;
  /// Skip the accept rule and adopt every re-seed candidate. Used by the
  /// decomposition tests (placements become pure per-window strategy
  /// outputs) and by oracle studies.
  bool always_accept_reseed = false;
  /// Incremental refinement between phase changes (see header comment).
  bool refine = false;
  /// Hottest window variables the refinement pass may try to move.
  std::size_t refine_top_k = 8;
  /// Fraction of a re-seed migration's moves to realize, highest peek
  /// benefit first (online/migration.h TrimMigration); 1.0 realizes the
  /// full diff, 0.0 never migrates on re-seed. With a trim active the
  /// accept rule weighs the TRIMMED candidate and plan. Must be finite
  /// and in [0, 1] (std::invalid_argument otherwise).
  double migration_fraction = 1.0;
  /// Minimum realized window-cost saving each kept move of a trimmed
  /// migration must clear (0 = any strict improvement). Only consulted
  /// when a trim is active (fraction < 1 or min_benefit > 0).
  std::uint64_t migration_min_benefit = 0;
  /// External admission gate for migration traffic (the serve layer's
  /// shared MigrationBudget): called with the plan's estimated shifts
  /// right before a migration would be charged; returning false denies
  /// the re-placement, recorded in WindowRecord::budget_denied. Null =
  /// always allowed. The gate runs AFTER the accept rule, so a denial
  /// always suppresses a migration the engine wanted.
  std::function<bool(std::uint64_t)> migration_gate;
  /// Controller timing mode for service and migration traffic.
  rtm::ControllerConfig controller{};
  /// Observability sinks (obs/obs.h). Default = disabled: every
  /// recording site is behind a null check, so the hot path is
  /// untouched (the `throughput` golden pins this). Trace names and
  /// metric references are resolved once at construction; per-window
  /// recording is allocation-free.
  obs::ObsConfig obs{};
  /// Strategy tuning handed to every re-seed run (effort, cost options,
  /// base seeds). Window 0 uses the seeds verbatim — the single-window
  /// oracle is bit-identical to the static strategy; later windows use
  /// WindowSeed().
  core::StrategyOptions strategy_options{};
};

/// Deterministic per-window search seed: window 0 returns `base`
/// unchanged (oracle equality with the static strategy), later windows
/// mix the index in.
[[nodiscard]] std::uint64_t WindowSeed(std::uint64_t base,
                                       std::size_t window);

/// What happened at one window boundary.
struct WindowRecord {
  /// Index of the window's first access in the served sequence.
  std::size_t begin = 0;
  std::size_t accesses = 0;
  /// Detector verdict for this window (always false for window 0).
  bool phase_change = false;
  double drift = 0.0;
  /// The engine adopted a new placement before serving this window.
  bool replaced = false;
  std::size_t migrated_vars = 0;
  std::uint64_t migration_shifts = 0;
  std::uint64_t service_shifts = 0;
  /// Analytic shift cost of the window under the placement that served
  /// it (first-access-free per window; the device charge differs by the
  /// carried-over alignments).
  std::uint64_t window_cost = 0;
  /// The migration gate denied a re-placement the engine had accepted
  /// (see OnlineConfig::migration_gate).
  bool budget_denied = false;
  /// Makespan advance of this window: migration + service time it added
  /// to the controller timeline, including waits behind a shared channel
  /// — the serve layer's per-tenant exposed latency.
  double latency_ns = 0.0;
};

struct OnlineResult {
  std::vector<WindowRecord> windows;
  /// Windows whose placement changed (re-seed accepts + refinements).
  std::size_t migrations = 0;
  /// Migrations the migration_gate denied after the accept rule.
  std::size_t budget_denials = 0;
  std::size_t migrated_vars = 0;
  std::uint64_t service_shifts = 0;
  std::uint64_t migration_shifts = 0;
  /// service_shifts + migration_shifts == stats.shifts: the headline
  /// "shifts including migration overhead" number.
  std::uint64_t amortized_shifts = 0;
  std::uint64_t migration_accesses = 0;
  std::uint64_t reads = 0;   ///< incl. migration reads
  std::uint64_t writes = 0;  ///< incl. migration writes
  /// Controller view of the whole run (service + migration traffic).
  rtm::ControllerStats stats{};
  rtm::EnergyBreakdown energy{};
  /// Sum of WindowRecord::window_cost (analytic, migration excluded).
  std::uint64_t placement_cost = 0;
  /// Wall time spent inside re-seed strategy runs.
  double placement_wall_ms = 0.0;
  /// Strategy evaluations plus refinement trial scores.
  std::size_t evaluations = 0;
  core::Placement final_placement{0, 1};
};

/// One streaming session: feed accesses (registering variable names on
/// first appearance), then Finish(). Holds one window plus the placement
/// and device state — never the whole trace.
class OnlineEngine {
 public:
  /// Validates the configuration: the re-seed strategy must be
  /// registered and window_accesses non-zero (the device configuration
  /// validates itself through the controller). Throws
  /// std::invalid_argument.
  OnlineEngine(OnlineConfig config, rtm::RtmConfig device);

  /// Registers a variable without accessing it (returns its id; idempotent
  /// per name). Feed() registers on the fly; this exists so a caller that
  /// knows the variable space up front — RunOnline does, for bit-equality
  /// with the static strategies on sequences that declare zero-access
  /// variables — can pre-populate it in id order.
  trace::VariableId RegisterVariable(std::string_view name);

  /// Appends one access, registering `name` on first appearance. A full
  /// window is processed (decide + serve) before the call returns.
  void Feed(std::string_view name, trace::AccessType type);

  /// Allocation-free overload for callers with a pre-registered space
  /// (RunOnline's hot loop): `variable` must be a previously returned
  /// id, std::out_of_range otherwise.
  void Feed(trace::VariableId variable, trace::AccessType type);

  /// Batched feed: appends a whole block of accesses, deciding and
  /// serving every window boundary the block crosses in place — one call
  /// per quantum instead of one per access, and the window service path
  /// runs allocation-free (the request block and pricing scratch are
  /// reused across windows). `id_offset` is added to every variable id
  /// in the block (the serve layer's per-tenant base id); the shifted
  /// ids must be pre-registered, std::out_of_range otherwise.
  /// Bit-identical to the equivalent per-access Feed loop: windows break
  /// at the same boundaries and see the same accesses.
  void Feed(std::span<const trace::Access> accesses,
            trace::VariableId id_offset = 0);

  /// Batched all-reads feed over raw variable ids (pre-registered).
  void Feed(std::span<const trace::VariableId> variables);

  /// Forces a window boundary now: the buffered partial window is
  /// decided and served as if it had filled up; no-op on an empty
  /// buffer. The serve layer closes every arbitration turn with this, so
  /// engine windows align 1:1 with (tenant, turn) batches. Throws
  /// std::logic_error after Finish().
  void FlushWindow();

  /// Called once per processed window, after the window's placement is
  /// final (post re-seed / refinement / migration) and before the
  /// window's service traffic is issued, with the placement the window
  /// will be served under and the engine's live controller. The cache
  /// tier (cache/engine.h) executes its planned evict+fill sweeps here:
  /// the traffic lands between migration and service on the controller
  /// timeline, inside the window's latency_ns, and pollutes neither
  /// service_shifts nor migration_shifts — which is what lets fill
  /// shifts be accounted as their own term of the device-total
  /// decomposition. The hook runs on the buffered AND the direct-span
  /// window paths. Replacing the hook mid-session is allowed; pass
  /// nullptr to clear.
  using PreServeHook =
      std::function<void(const core::Placement&, rtm::RtmController&)>;
  void SetPreServeHook(PreServeHook hook) {
    pre_serve_hook_ = std::move(hook);
  }

  /// The placement currently serving traffic; meaningful once placed()
  /// (window 0 has been decided). The cache tier peeks slots through
  /// this for shift-aware victim ranking.
  [[nodiscard]] const core::Placement& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] bool placed() const noexcept { return placed_; }

  /// Flushes the trailing partial window and returns the run's result.
  /// A session that never saw an access still runs the re-seed strategy
  /// once over the (possibly empty) variable space, mirroring the static
  /// path. The engine cannot be fed afterwards.
  [[nodiscard]] OnlineResult Finish();

  [[nodiscard]] std::size_t variables_seen() const noexcept {
    return window_seq_.num_variables();
  }

  /// Window records so far (grows by exactly one per processed window);
  /// the serve layer reads the latest record for per-turn attribution.
  [[nodiscard]] const std::vector<WindowRecord>& Windows() const noexcept {
    return result_.windows;
  }

  /// Live controller view of everything executed so far (service plus
  /// migration traffic); totals move only at window boundaries.
  [[nodiscard]] const rtm::ControllerStats& DeviceStats() const noexcept {
    return controller_.stats();
  }

  /// Energy of everything executed so far (leakage over the makespan).
  [[nodiscard]] rtm::EnergyBreakdown DeviceEnergy() const {
    return controller_.Energy();
  }

 private:
  void ProcessWindow();
  /// Serves one full window straight from a fed span — the steady-state
  /// fast path of the batched Feed (no buffer copy, no second pass).
  /// Only taken when it is bit-identical to the buffered path: placement
  /// settled (no re-seed, no refinement, no unplaced variables), detector
  /// kNone, single-port fused pricing.
  void ProcessWindowFromSpan(std::span<const trace::Access> block,
                             trace::VariableId id_offset);
  /// Whether ProcessWindowFromSpan may serve the next full window.
  [[nodiscard]] bool DirectServeEligible() const noexcept;
  /// Extends `placement_` over variables that appeared this window:
  /// each goes to the emptiest DBC (lowest index on ties). First
  /// placement of a variable is not migration — nothing moves.
  void PlaceNewVariables();
  /// Runs the re-seed strategy over the current window with the
  /// per-window seed; accumulates wall time and evaluations.
  [[nodiscard]] core::Placement Reseed();
  /// Bounded greedy refinement of `placement_` (see header comment);
  /// returns true when any move was committed.
  bool Refine(WindowRecord& record);
  /// Executes a migration plan on the controller and books it into
  /// `record` and the running totals.
  void ChargeMigration(const MigrationPlan& plan, WindowRecord& record);
  /// Issues `accesses` (shifted by `id_offset`) under `placement_` and
  /// prices them into `record`. The buffered path passes the window
  /// buffer with offset 0; the direct path passes the fed span.
  void ServeWindow(WindowRecord& record,
                   std::span<const trace::Access> accesses,
                   trace::VariableId id_offset);
  /// Interns trace names and resolves metric references (constructor).
  void SetUpObs();
  /// Emits the window span + per-window metrics (both window paths).
  void RecordWindowObs(const WindowRecord& record, double begin_ns);
  /// Emits the budget-denied instant + counter (both denial sites).
  void RecordBudgetDenialObs(std::uint64_t estimated_shifts);

  OnlineConfig config_;
  rtm::RtmConfig device_config_;
  rtm::RtmController controller_;
  PhaseDetector detector_;
  PreServeHook pre_serve_hook_;
  /// The rolling window buffer: the variable space accumulates across
  /// the session (ids are feed order), the accesses are the CURRENT
  /// window only (cleared after each ProcessWindow) — no per-window
  /// name-table rebuild.
  trace::AccessSequence window_seq_;
  core::Placement placement_{0, 1};
  bool placed_ = false;
  bool finished_ = false;
  std::size_t windows_processed_ = 0;
  std::size_t served_accesses_ = 0;
  OnlineResult result_;
  /// Reusable window-service request block: built once per window,
  /// capacity survives across windows (no per-window allocation).
  std::vector<rtm::TimedRequest> request_scratch_;
  /// Per-DBC last-offset scratch for the fused single-port window cost
  /// (the SinglePortCosts walk folded into the request-building pass).
  std::vector<std::int64_t> last_off_scratch_;
  /// Observability wiring, resolved once by SetUpObs(): interned trace
  /// names/arg keys and stable metric references, so the per-window
  /// recording sites are null-checked pointer writes.
  obs::ObsConfig obs_{};
  std::uint32_t trace_window_ = 0;
  std::uint32_t trace_migration_ = 0;
  std::uint32_t trace_phase_change_ = 0;
  std::uint32_t trace_budget_denied_ = 0;
  std::uint32_t key_window_ = 0;
  std::uint32_t key_accesses_ = 0;
  std::uint32_t key_shifts_ = 0;
  std::uint32_t key_moved_ = 0;
  std::uint64_t* m_windows_ = nullptr;
  std::uint64_t* m_phase_changes_ = nullptr;
  std::uint64_t* m_migrations_ = nullptr;
  std::uint64_t* m_budget_denials_ = nullptr;
  std::uint64_t* m_service_shifts_ = nullptr;
  std::uint64_t* m_migration_shifts_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

/// Convenience: feeds a whole sequence through one session.
[[nodiscard]] OnlineResult RunOnline(const trace::AccessSequence& seq,
                                     const OnlineConfig& config,
                                     const rtm::RtmConfig& device);

/// Streaming entry point: runs every sequence of a trace stream (text or
/// binary, sniffed by magic — see trace/trace_stream.h) through its own
/// session, holding one sequence in memory at a time.
struct OnlineTraceResult {
  std::string sequence_name;
  OnlineResult result;
};
[[nodiscard]] std::vector<OnlineTraceResult> RunOnlineOverTrace(
    std::istream& in, const OnlineConfig& config,
    const rtm::RtmConfig& device,
    const trace::TraceStreamOptions& stream_options = {});

}  // namespace rtmp::online
