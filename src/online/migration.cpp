#include "online/migration.h"

#include <algorithm>
#include <stdexcept>

namespace rtmp::online {

namespace {

/// Appends one ascending-offset sweep per DBC over `slots` and returns
/// its first-access-free shift estimate. `slots` must already be sorted
/// by (dbc, offset).
std::uint64_t AppendSweep(const std::vector<core::Slot>& slots,
                          trace::AccessType type,
                          std::vector<rtm::TimedRequest>& requests) {
  std::uint64_t shifts = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i > 0 && slots[i].dbc == slots[i - 1].dbc) {
      shifts += slots[i].offset - slots[i - 1].offset;
    }
    requests.push_back(rtm::TimedRequest{0.0, slots[i].dbc, slots[i].offset,
                                         type});
  }
  return shifts;
}

}  // namespace

MigrationPlan PlanMigration(const core::Placement& from,
                            const core::Placement& to) {
  if (from.num_variables() != to.num_variables()) {
    throw std::invalid_argument(
        "PlanMigration: placements cover different variable spaces");
  }
  MigrationPlan plan;
  for (trace::VariableId v = 0; v < from.num_variables(); ++v) {
    const bool placed_from = from.IsPlaced(v);
    if (placed_from != to.IsPlaced(v)) {
      throw std::invalid_argument(
          "PlanMigration: variable placed in only one placement");
    }
    if (!placed_from) continue;
    const core::Slot old_slot = from.SlotOf(v);
    const core::Slot new_slot = to.SlotOf(v);
    if (old_slot == new_slot) continue;
    plan.moves.push_back({v, old_slot, new_slot});
  }
  if (plan.moves.empty()) return plan;

  // Reads sweep each source DBC in ascending old-offset order ...
  std::sort(plan.moves.begin(), plan.moves.end(),
            [](const MigrationMove& a, const MigrationMove& b) {
              if (a.from.dbc != b.from.dbc) return a.from.dbc < b.from.dbc;
              if (a.from.offset != b.from.offset) {
                return a.from.offset < b.from.offset;
              }
              return a.variable < b.variable;
            });
  std::vector<core::Slot> slots;
  slots.reserve(plan.moves.size());
  for (const MigrationMove& move : plan.moves) slots.push_back(move.from);
  plan.requests.reserve(2 * plan.moves.size());
  plan.estimated_shifts +=
      AppendSweep(slots, trace::AccessType::kRead, plan.requests);

  // ... then the buffered words are written in target-DBC sweeps.
  slots.clear();
  for (const MigrationMove& move : plan.moves) slots.push_back(move.to);
  std::sort(slots.begin(), slots.end(),
            [](const core::Slot& a, const core::Slot& b) {
              if (a.dbc != b.dbc) return a.dbc < b.dbc;
              return a.offset < b.offset;
            });
  plan.estimated_shifts +=
      AppendSweep(slots, trace::AccessType::kWrite, plan.requests);
  return plan;
}

std::uint64_t EstimatedSingleMoveShifts(std::uint32_t domains_per_dbc) {
  const std::uint64_t per_access = domains_per_dbc / 3;
  return std::max<std::uint64_t>(2, 2 * per_access);
}

}  // namespace rtmp::online
