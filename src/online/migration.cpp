#include "online/migration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/cost_evaluator.h"

namespace rtmp::online {

std::uint64_t AppendSweepRequests(std::span<const core::Slot> slots,
                                  trace::AccessType type,
                                  std::vector<rtm::TimedRequest>& requests) {
  std::uint64_t shifts = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i > 0 && slots[i].dbc == slots[i - 1].dbc) {
      shifts += slots[i].offset - slots[i - 1].offset;
    }
    requests.push_back(rtm::TimedRequest{0.0, slots[i].dbc, slots[i].offset,
                                         type});
  }
  return shifts;
}

MigrationPlan PlanMigration(const core::Placement& from,
                            const core::Placement& to) {
  if (from.num_variables() != to.num_variables()) {
    throw std::invalid_argument(
        "PlanMigration: placements cover different variable spaces");
  }
  MigrationPlan plan;
  for (trace::VariableId v = 0; v < from.num_variables(); ++v) {
    const bool placed_from = from.IsPlaced(v);
    if (placed_from != to.IsPlaced(v)) {
      throw std::invalid_argument(
          "PlanMigration: variable placed in only one placement");
    }
    if (!placed_from) continue;
    const core::Slot old_slot = from.SlotOf(v);
    const core::Slot new_slot = to.SlotOf(v);
    if (old_slot == new_slot) continue;
    plan.moves.push_back({v, old_slot, new_slot});
  }
  if (plan.moves.empty()) return plan;

  // Reads sweep each source DBC in ascending old-offset order ...
  std::sort(plan.moves.begin(), plan.moves.end(),
            [](const MigrationMove& a, const MigrationMove& b) {
              if (a.from.dbc != b.from.dbc) return a.from.dbc < b.from.dbc;
              if (a.from.offset != b.from.offset) {
                return a.from.offset < b.from.offset;
              }
              return a.variable < b.variable;
            });
  std::vector<core::Slot> slots;
  slots.reserve(plan.moves.size());
  for (const MigrationMove& move : plan.moves) slots.push_back(move.from);
  plan.requests.reserve(2 * plan.moves.size());
  plan.estimated_shifts +=
      AppendSweepRequests(slots, trace::AccessType::kRead, plan.requests);

  // ... then the buffered words are written in target-DBC sweeps.
  slots.clear();
  for (const MigrationMove& move : plan.moves) slots.push_back(move.to);
  std::sort(slots.begin(), slots.end(),
            [](const core::Slot& a, const core::Slot& b) {
              if (a.dbc != b.dbc) return a.dbc < b.dbc;
              return a.offset < b.offset;
            });
  plan.estimated_shifts +=
      AppendSweepRequests(slots, trace::AccessType::kWrite, plan.requests);
  return plan;
}

std::uint64_t EstimatedSingleMoveShifts(std::uint32_t domains_per_dbc) {
  const std::uint64_t per_access = domains_per_dbc / 3;
  return std::max<std::uint64_t>(2, 2 * per_access);
}

TrimmedMigration TrimMigration(const core::Placement& from,
                               const core::Placement& to,
                               const trace::AccessSequence& window,
                               const core::CostOptions& cost,
                               double fraction, std::uint64_t min_benefit) {
  if (!std::isfinite(fraction) || fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("TrimMigration: fraction must be in [0, 1]");
  }
  TrimmedMigration out;
  MigrationPlan full = PlanMigration(from, to);
  if (full.moves.empty() || (fraction >= 1.0 && min_benefit == 0)) {
    // Nothing to trim: the full diff is the plan.
    out.placement = to;
    out.plan = std::move(full);
    return out;
  }

  const auto budget = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(full.moves.size())));

  core::CostEvaluator evaluator(window, cost);
  evaluator.Bind(from);
  const std::uint64_t base_cost = evaluator.Cost();

  // Rank the full plan's moves by their stand-alone peek benefit against
  // `from` (benefit descending, variable id ascending — deterministic).
  // Same-DBC reorders and moves into a currently full DBC are skipped:
  // the greedy subset cannot realize them in isolation.
  struct Candidate {
    trace::VariableId variable = 0;
    std::uint32_t to_dbc = 0;
    std::uint64_t benefit = 0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(full.moves.size());
  for (const MigrationMove& move : full.moves) {
    if (move.to.dbc == move.from.dbc) continue;
    if (evaluator.placement().FreeIn(move.to.dbc) == 0) continue;
    const std::uint64_t peek = evaluator.PeekMove(move.variable, move.to.dbc);
    ++out.evaluations;
    candidates.push_back({move.variable, move.to.dbc,
                          base_cost > peek ? base_cost - peek : 0});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.benefit != b.benefit) return a.benefit > b.benefit;
              return a.variable < b.variable;
            });

  // Greedy commit, re-scored at apply time; every kept move must clear
  // the benefit threshold on the ACTUAL delta, mirroring the engine's
  // refinement accept rule.
  const std::uint64_t required = std::max<std::uint64_t>(1, min_benefit);
  std::size_t kept = 0;
  for (const Candidate& candidate : candidates) {
    if (kept >= budget) break;
    if (evaluator.placement().FreeIn(candidate.to_dbc) == 0) continue;
    const std::uint64_t before = evaluator.Cost();
    const std::uint64_t after =
        evaluator.ApplyMove(candidate.variable, candidate.to_dbc);
    ++out.evaluations;
    if (after >= before || before - after < required) {
      evaluator.Undo();
      continue;
    }
    ++kept;
  }

  out.placement = evaluator.placement();
  out.plan = PlanMigration(from, out.placement);
  if (out.plan.estimated_shifts > full.estimated_shifts) {
    // Gap compaction made the subset dearer than the whole diff (see
    // TrimmedMigration::plan) — a trim must never cost more, so fall
    // back to the full plan.
    out.placement = to;
    out.plan = std::move(full);
  }
  return out;
}

}  // namespace rtmp::online
