// Migration planning: the variable moves between two placements and the
// device traffic that realizes them.
//
// Re-placement is not free. When the online engine swaps placement A for
// placement B, every variable whose slot changed must physically move:
// its word is read at the old (DBC, domain) location and written at the
// new one, and both operations shift the racetracks like any other
// access. The planner turns a placement diff into exactly that request
// stream, ordered for minimal shifting (one ascending-offset sweep per
// source DBC for the reads, then one per target DBC for the writes —
// the order a migration buffer in the controller would use), plus an
// analytic shift estimate the engine's accept decision can weigh against
// the projected window savings before committing.
//
// The estimate prices each per-DBC sweep with the paper's
// first-access-free convention (distance between consecutive sorted
// offsets); the true charge additionally depends on where each track
// happens to be aligned when the migration runs, which only the
// controller knows — the engine therefore charges the actual traffic by
// executing MigrationPlan::requests on its live rtm::RtmController.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/cost_model.h"
#include "core/placement.h"
#include "rtm/controller.h"
#include "trace/access_sequence.h"

namespace rtmp::online {

/// One variable whose slot differs between the two placements.
struct MigrationMove {
  trace::VariableId variable = 0;
  core::Slot from{};
  core::Slot to{};
};

struct MigrationPlan {
  /// Moved variables in read order (source DBC, then old offset).
  std::vector<MigrationMove> moves;
  /// The realizing device traffic: one read per move at the old slot
  /// (source-DBC ascending-offset sweeps), then one write per move at
  /// the new slot (target-DBC sweeps). All arrivals are 0 (back-to-back;
  /// the controller serializes them on the shared channel).
  std::vector<rtm::TimedRequest> requests;
  /// Analytic shift estimate of `requests` under the first-access-free
  /// convention (see header comment).
  std::uint64_t estimated_shifts = 0;

  [[nodiscard]] bool empty() const noexcept { return moves.empty(); }
};

/// Appends one ascending-offset sweep per DBC over `slots` to `requests`
/// — one request of `type` per slot, arrivals 0 — and returns the
/// sweep's first-access-free shift estimate. `slots` must already be
/// sorted by (dbc, offset). This is the ordering building block
/// PlanMigration's read and write phases are made of; it is public so
/// the cache tier (cache/engine.h) plans its evict+fill traffic as the
/// same kind of sweeps a migration buffer would issue.
std::uint64_t AppendSweepRequests(std::span<const core::Slot> slots,
                                  trace::AccessType type,
                                  std::vector<rtm::TimedRequest>& requests);

/// Diffs `to` against `from` and plans the realizing traffic. The two
/// placements must cover the same variable space; a variable placed in
/// one but not the other throws std::invalid_argument (the engine grows
/// both sides in lock-step). Unmoved variables produce no traffic.
[[nodiscard]] MigrationPlan PlanMigration(const core::Placement& from,
                                          const core::Placement& to);

/// Analytic per-move charge used by the engine's incremental-refinement
/// accept rule: moving one variable in isolation costs about one read
/// plus one write at an average alignment distance (~K/3 each, rounded
/// up, at least 2). Deliberately conservative — a refinement move must
/// promise more window savings than this to be worth committing.
[[nodiscard]] std::uint64_t EstimatedSingleMoveShifts(
    std::uint32_t domains_per_dbc);

/// A partial migration: the realized subset of a placement diff.
struct TrimmedMigration {
  /// `from` with only the kept moves applied — the placement the engine
  /// adopts instead of the full candidate.
  core::Placement placement{0, 1};
  /// PlanMigration(from, placement): the traffic realizing the subset.
  /// The subset is over MOVES, not requests: removing a variable from a
  /// DBC compacts the list behind it (offsets are implied by order), so
  /// the plan may relocate bystanders of the source DBC too — it prices
  /// them like any other move, and TrimMigration falls back to the full
  /// plan whenever the subset would not actually be cheaper.
  MigrationPlan plan;
  /// CostEvaluator peeks/applies consumed (accounting parity with the
  /// engine's refinement pass).
  std::size_t evaluations = 0;
};

/// Trims the `from` -> `to` migration to its highest-value moves. The
/// full plan's moves are ranked by their stand-alone peek benefit on
/// `window` (core::CostEvaluator::PeekMove against `from`), then applied
/// greedily — re-scored at commit time, earlier commits change later
/// moves' value — until ceil(fraction * moves) are kept; every kept move
/// must improve the window cost by at least max(1, min_benefit) shifts.
/// fraction 1.0 with min_benefit 0 returns the untrimmed plan verbatim;
/// fraction 0.0 keeps nothing (the "never migrate on re-seed" knob).
/// Guarantees plan.estimated_shifts <= PlanMigration(from, to)'s (see
/// TrimmedMigration::plan). Throws std::invalid_argument on a fraction
/// outside [0, 1] or mismatched variable spaces.
[[nodiscard]] TrimmedMigration TrimMigration(
    const core::Placement& from, const core::Placement& to,
    const trace::AccessSequence& window, const core::CostOptions& cost,
    double fraction, std::uint64_t min_benefit);

}  // namespace rtmp::online
