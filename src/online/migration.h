// Migration planning: the variable moves between two placements and the
// device traffic that realizes them.
//
// Re-placement is not free. When the online engine swaps placement A for
// placement B, every variable whose slot changed must physically move:
// its word is read at the old (DBC, domain) location and written at the
// new one, and both operations shift the racetracks like any other
// access. The planner turns a placement diff into exactly that request
// stream, ordered for minimal shifting (one ascending-offset sweep per
// source DBC for the reads, then one per target DBC for the writes —
// the order a migration buffer in the controller would use), plus an
// analytic shift estimate the engine's accept decision can weigh against
// the projected window savings before committing.
//
// The estimate prices each per-DBC sweep with the paper's
// first-access-free convention (distance between consecutive sorted
// offsets); the true charge additionally depends on where each track
// happens to be aligned when the migration runs, which only the
// controller knows — the engine therefore charges the actual traffic by
// executing MigrationPlan::requests on its live rtm::RtmController.
#pragma once

#include <cstdint>
#include <vector>

#include "core/placement.h"
#include "rtm/controller.h"

namespace rtmp::online {

/// One variable whose slot differs between the two placements.
struct MigrationMove {
  trace::VariableId variable = 0;
  core::Slot from{};
  core::Slot to{};
};

struct MigrationPlan {
  /// Moved variables in read order (source DBC, then old offset).
  std::vector<MigrationMove> moves;
  /// The realizing device traffic: one read per move at the old slot
  /// (source-DBC ascending-offset sweeps), then one write per move at
  /// the new slot (target-DBC sweeps). All arrivals are 0 (back-to-back;
  /// the controller serializes them on the shared channel).
  std::vector<rtm::TimedRequest> requests;
  /// Analytic shift estimate of `requests` under the first-access-free
  /// convention (see header comment).
  std::uint64_t estimated_shifts = 0;

  [[nodiscard]] bool empty() const noexcept { return moves.empty(); }
};

/// Diffs `to` against `from` and plans the realizing traffic. The two
/// placements must cover the same variable space; a variable placed in
/// one but not the other throws std::invalid_argument (the engine grows
/// both sides in lock-step). Unmoved variables produce no traffic.
[[nodiscard]] MigrationPlan PlanMigration(const core::Placement& from,
                                          const core::Placement& to);

/// Analytic per-move charge used by the engine's incremental-refinement
/// accept rule: moving one variable in isolation costs about one read
/// plus one write at an average alignment distance (~K/3 each, rounded
/// up, at least 2). Deliberately conservative — a refinement move must
/// promise more window savings than this to be worth committing.
[[nodiscard]] std::uint64_t EstimatedSingleMoveShifts(
    std::uint32_t domains_per_dbc);

}  // namespace rtmp::online
