#include "online/online_cell.h"

#include <stdexcept>
#include <string>

#include "core/strategy.h"
#include "online/policy.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rtmp::online {

sim::SimulationResult ToSimulationResult(const OnlineResult& result,
                                         const rtm::RtmConfig& config) {
  sim::SimulationResult sim_result;
  sim_result.stats.reads = result.reads;
  sim_result.stats.writes = result.writes;
  sim_result.stats.shifts = result.stats.shifts;
  sim_result.stats.runtime_ns = result.stats.makespan_ns;
  sim_result.energy = result.energy;
  sim_result.area_mm2 = config.params.area_mm2;
  return sim_result;
}

OnlineConfig CellOnlineConfig(const OnlinePolicy& policy,
                              const rtm::RtmConfig& config,
                              const sim::ExperimentOptions& options,
                              std::string_view benchmark_name,
                              std::size_t sequence_index, unsigned dbcs) {
  OnlineConfig online = policy.MakeConfig();
  online.strategy_options.cost.initial_alignment = config.initial_alignment;
  core::ScaleSearchEffort(online.strategy_options, options.search_effort);
  // Same derivation as sim::RunCell: the window-0 re-seed of an
  // online-static policy draws the exact seed its static twin draws.
  const std::uint64_t seed =
      util::HashString(benchmark_name) ^
      (options.seed + sequence_index * 0x9E3779B9ULL + dbcs);
  online.strategy_options.ga.seed = seed;
  online.strategy_options.rw.seed = seed;
  // Observability rides along; within a cell, tid tells sequences apart.
  online.obs = options.obs;
  online.obs.tid = static_cast<std::uint32_t>(sequence_index);
  return online;
}

void AccumulateOnlineSequence(const trace::AccessSequence& seq,
                              std::size_t sequence_index, unsigned dbcs,
                              const OnlinePolicy& policy,
                              const sim::ExperimentOptions& options,
                              std::string_view benchmark_name,
                              sim::RunResult& run) {
  if (seq.num_variables() == 0) return;
  const rtm::RtmConfig config = sim::CellConfig(dbcs, seq.num_variables());
  const OnlineConfig online = CellOnlineConfig(
      policy, config, options, benchmark_name, sequence_index, dbcs);
  const OnlineResult result = RunOnline(seq, online, config);
  run.placement_cost += result.placement_cost;
  run.placement_wall_ms += result.placement_wall_ms;
  run.search_evaluations += result.evaluations;
  run.metrics.Accumulate(ToSimulationResult(result, config));
}

sim::RunResult RunOnlineCell(const offsetstone::Benchmark& benchmark,
                             unsigned dbcs, std::string_view policy_name,
                             const sim::ExperimentOptions& options) {
  const auto policy = OnlinePolicyRegistry::Global().Find(policy_name);
  if (!policy) {
    throw std::invalid_argument("RunOnlineCell: unregistered online policy '" +
                                std::string(policy_name) + "'");
  }

  sim::RunResult run;
  run.benchmark = benchmark.name;
  run.dbcs = dbcs;
  run.strategy_name = util::ToLower(policy_name);

  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    AccumulateOnlineSequence(benchmark.sequences[s], s, dbcs, *policy,
                             options, benchmark.name, run);
  }
  return run;
}

}  // namespace rtmp::online
