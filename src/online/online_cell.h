// Online cells of the evaluation matrix.
//
// RunOnlineCell is the online counterpart of sim::RunCell: one
// (benchmark, dbc count, online policy) cell, every sequence served by
// its own OnlineEngine session on the cell's device configuration
// (sim::CellConfig — identical to the static cells'). The returned
// sim::RunResult carries the controller's view — shifts, accesses,
// runtime and energy all INCLUDE migration traffic — so online and
// static cells compare apples-to-apples in the same report, golden and
// ResultTable.
//
// sim::RunCell dispatches here for any strategy name that resolves in
// the online-policy registry, which is what lets
// ExperimentOptions::extra_strategies mix policies into RunMatrix grids.
#pragma once

#include <string_view>

#include "offsetstone/suite.h"
#include "online/engine.h"
#include "online/policy.h"
#include "sim/experiment.h"

namespace rtmp::online {

/// Runs one online cell. Throws std::invalid_argument when `policy_name`
/// is not in OnlinePolicyRegistry::Global(). Seeding and effort follow
/// sim::RunCell exactly (per-sequence seeds derived from benchmark name,
/// sequence index and DBC count), so online cells are deterministic and
/// thread-placement independent like static ones — and an
/// "online-static-<s>" cell is bit-identical to the "<s>" cell on every
/// exact counter.
[[nodiscard]] sim::RunResult RunOnlineCell(
    const offsetstone::Benchmark& benchmark, unsigned dbcs,
    std::string_view policy_name, const sim::ExperimentOptions& options);

/// Accumulates one sequence into `run` (the per-sequence body of
/// RunOnlineCell); exposed for the streaming trace-cell path, which
/// delivers sequences one at a time instead of through a materialized
/// benchmark. `sequence_index` must count DELIVERED sequences including
/// empty ones — RunOnlineCell's seed derivation does.
void AccumulateOnlineSequence(const trace::AccessSequence& seq,
                              std::size_t sequence_index, unsigned dbcs,
                              const OnlinePolicy& policy,
                              const sim::ExperimentOptions& options,
                              std::string_view benchmark_name,
                              sim::RunResult& run);

/// Aggregate of one OnlineResult in sim terms (the piece RunOnlineCell
/// accumulates per sequence); exposed for scenarios that run the engine
/// directly and want matching metrics.
[[nodiscard]] sim::SimulationResult ToSimulationResult(
    const OnlineResult& result, const rtm::RtmConfig& config);

/// The OnlineConfig an experiment cell hands the engine: the policy's
/// recipe with the experiment's cost options, search effort and seed
/// stamped in (seed derivation identical to sim::RunCell's).
[[nodiscard]] OnlineConfig CellOnlineConfig(
    const OnlinePolicy& policy, const rtm::RtmConfig& config,
    const sim::ExperimentOptions& options, std::string_view benchmark_name,
    std::size_t sequence_index, unsigned dbcs);

}  // namespace rtmp::online
