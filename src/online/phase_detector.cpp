#include "online/phase_detector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtmp::online {

namespace {

constexpr std::uint64_t PackPair(trace::VariableId a,
                                 trace::VariableId b) noexcept {
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  return (lo << 32) | hi;
}

/// Entries below this weight are dropped from the EWMA model: they no
/// longer influence any drift decision but would otherwise accumulate
/// across phases and grow the model without bound.
constexpr double kModelFloor = 1e-9;

}  // namespace

TransitionSummary SummarizeTransitions(
    std::span<const trace::Access> window) {
  TransitionSummary summary;
  if (window.size() < 2) return summary;
  std::vector<std::uint64_t> keys;
  keys.reserve(window.size() - 1);
  for (std::size_t i = 1; i < window.size(); ++i) {
    keys.push_back(PackPair(window[i - 1].variable, window[i].variable));
  }
  std::sort(keys.begin(), keys.end());
  summary.weights.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size();) {
    std::size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    summary.weights.emplace_back(keys[i], j - i);
    i = j;
  }
  summary.total = keys.size();
  return summary;
}

std::string_view ToString(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kNone:
      return "none";
    case DetectorKind::kFixedWindow:
      return "fixed";
    case DetectorKind::kEwmaDrift:
      return "ewma";
    case DetectorKind::kCusum:
      return "cusum";
  }
  return "none";
}

std::optional<DetectorKind> ParseDetectorKind(std::string_view name) {
  if (name == "none") return DetectorKind::kNone;
  if (name == "fixed") return DetectorKind::kFixedWindow;
  if (name == "ewma") return DetectorKind::kEwmaDrift;
  if (name == "cusum") return DetectorKind::kCusum;
  return std::nullopt;
}

PhaseDetector::PhaseDetector(PhaseDetectorConfig config) : config_(config) {
  if (config_.kind == DetectorKind::kFixedWindow && config_.period == 0) {
    throw std::invalid_argument("PhaseDetector: period must be >= 1");
  }
  if (config_.kind == DetectorKind::kEwmaDrift ||
      config_.kind == DetectorKind::kCusum) {
    // The CUSUM statistic accumulates, so its threshold may exceed 1;
    // a single window's TV distance cannot.
    const bool threshold_ok =
        std::isfinite(config_.threshold) && config_.threshold >= 0.0 &&
        (config_.kind == DetectorKind::kCusum || config_.threshold <= 1.0);
    if (!threshold_ok) {
      throw std::invalid_argument(
          config_.kind == DetectorKind::kCusum
              ? "PhaseDetector: cusum threshold must be >= 0"
              : "PhaseDetector: threshold must be in [0, 1]");
    }
    if (!std::isfinite(config_.alpha) || config_.alpha <= 0.0 ||
        config_.alpha > 1.0) {
      throw std::invalid_argument("PhaseDetector: alpha must be in (0, 1]");
    }
  }
  if (config_.kind == DetectorKind::kCusum &&
      (!std::isfinite(config_.slack) || config_.slack < 0.0)) {
    throw std::invalid_argument("PhaseDetector: slack must be >= 0");
  }
}

PhaseDetector::Verdict PhaseDetector::Observe(
    const TransitionSummary& window) {
  ++observed_;
  Verdict verdict;
  switch (config_.kind) {
    case DetectorKind::kNone:
      return verdict;
    case DetectorKind::kFixedWindow:
      // The first window seeds the initial placement; boundaries fall
      // every `period` windows after it.
      verdict.phase_change =
          observed_ > 1 && (observed_ - 1) % config_.period == 0;
      return verdict;
    case DetectorKind::kEwmaDrift:
    case DetectorKind::kCusum:
      break;
  }

  // Normalize the window to a probability distribution; an empty window
  // (fewer than two accesses) carries no signal and leaves the model
  // untouched.
  if (window.empty()) return verdict;
  std::vector<std::pair<std::uint64_t, double>> current;
  current.reserve(window.weights.size());
  const double inv_total = 1.0 / static_cast<double>(window.total);
  for (const auto& [key, weight] : window.weights) {
    current.emplace_back(key, static_cast<double>(weight) * inv_total);
  }

  if (model_.empty()) {
    // First informative window (or a fully pruned model): seed, don't
    // compare — there is nothing meaningful to drift from.
    model_ = std::move(current);
    return verdict;
  }

  // Total variation distance: 0.5 * sum |p(k) - m(k)| over the merged
  // key set. Both inputs are sorted by key.
  double l1 = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < current.size() || j < model_.size()) {
    if (j >= model_.size() ||
        (i < current.size() && current[i].first < model_[j].first)) {
      l1 += current[i].second;
      ++i;
    } else if (i >= current.size() || model_[j].first < current[i].first) {
      l1 += model_[j].second;
      ++j;
    } else {
      l1 += std::fabs(current[i].second - model_[j].second);
      ++i;
      ++j;
    }
  }
  const double tv = 0.5 * l1;
  if (config_.kind == DetectorKind::kCusum) {
    // Only drift above the slack allowance accumulates; stationary noise
    // below it decays the statistic back toward zero.
    cusum_ = std::max(0.0, cusum_ + tv - config_.slack);
    verdict.drift = cusum_;
  } else {
    verdict.drift = tv;
  }
  verdict.phase_change = verdict.drift > config_.threshold;

  if (verdict.phase_change) {
    // Restart the model (and statistic) from the new phase: a single
    // long drift must not re-trigger on every subsequent window.
    model_ = std::move(current);
    cusum_ = 0.0;
    return verdict;
  }

  // m = (1 - alpha) m + alpha p over the merged key set.
  std::vector<std::pair<std::uint64_t, double>> updated;
  updated.reserve(model_.size() + current.size());
  const double keep = 1.0 - config_.alpha;
  i = 0;
  j = 0;
  while (i < current.size() || j < model_.size()) {
    double value = 0.0;
    std::uint64_t key = 0;
    if (j >= model_.size() ||
        (i < current.size() && current[i].first < model_[j].first)) {
      key = current[i].first;
      value = config_.alpha * current[i].second;
      ++i;
    } else if (i >= current.size() || model_[j].first < current[i].first) {
      key = model_[j].first;
      value = keep * model_[j].second;
      ++j;
    } else {
      key = current[i].first;
      value = keep * model_[j].second + config_.alpha * current[i].second;
      ++i;
      ++j;
    }
    if (value > kModelFloor) updated.emplace_back(key, value);
  }
  model_ = std::move(updated);
  return verdict;
}

void PhaseDetector::Reset() {
  model_.clear();
  cusum_ = 0.0;
  observed_ = 0;
}

}  // namespace rtmp::online
