// Phase detection over streaming access windows.
//
// The online placement engine (online/engine.h) consumes a trace in
// fixed-size windows and must decide, at each window boundary, whether the
// workload has entered a new phase — i.e. whether paying for a
// re-placement (migration traffic) is worth considering at all. The
// signal is the window's transition-weight distribution: how often each
// unordered variable pair is accessed consecutively. That is exactly the
// quantity the single-port shift cost decomposes into (see
// core/cost_evaluator.h), but summarized globally (placement-independent),
// so the detector needs no knowledge of the current layout.
//
// Three detector families are provided:
//
//  * kFixedWindow — declare a phase boundary every `period` windows.
//    The classic epoch-based reconfiguration baseline (R4-style runtime
//    reconfiguration on a timer).
//  * kEwmaDrift — maintain an exponentially-weighted moving average of
//    the transition distribution and declare a boundary when the total
//    variation distance between the current window and the model exceeds
//    `threshold`. The model resets to the new window on a boundary, so
//    one long drift does not re-trigger every window.
//  * kCusum — accumulate the per-window drift above a `slack` allowance
//    into a CUSUM statistic S = max(0, S + d - slack) and declare a
//    boundary when S exceeds `threshold` (which may exceed 1 — S is
//    cumulative); S and the reference model reset on the boundary.
//    Where kEwmaDrift needs ONE window to jump its threshold, the CUSUM
//    integrates small persistent drifts, catching slow phase ramps at
//    the cost of a detection delay of about threshold / (d - slack)
//    windows.
//
// kNone never declares a boundary (the static/oracle configuration).
// All detectors are deterministic: equal window streams yield equal
// verdicts on every platform.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/access_sequence.h"

namespace rtmp::online {

/// Sparse distribution of consecutive-access variable pairs of one
/// window. Keys pack the unordered pair (min << 32 | max); entries are
/// sorted by key. Self-transitions (u == u) are counted too — they carry
/// no shift cost but do carry phase information (a variable turning from
/// streamed to hammered is a phase signal).
struct TransitionSummary {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> weights;
  std::uint64_t total = 0;

  [[nodiscard]] bool empty() const noexcept { return total == 0; }
};

/// Builds the transition summary of one window (consecutive pairs over
/// the whole window, regardless of DBC assignment).
[[nodiscard]] TransitionSummary SummarizeTransitions(
    std::span<const trace::Access> window);

enum class DetectorKind : std::uint8_t {
  kNone,
  kFixedWindow,
  kEwmaDrift,
  kCusum
};

/// "none", "fixed", "ewma", "cusum".
[[nodiscard]] std::string_view ToString(DetectorKind kind);
[[nodiscard]] std::optional<DetectorKind> ParseDetectorKind(
    std::string_view name);

struct PhaseDetectorConfig {
  DetectorKind kind = DetectorKind::kNone;
  /// kFixedWindow: boundary every `period` observed windows (>= 1).
  std::size_t period = 1;
  /// kEwmaDrift: boundary when total variation distance in [0, 1]
  /// between the window and the model exceeds this. kCusum: boundary
  /// when the accumulated statistic exceeds this (>= 0, may exceed 1).
  double threshold = 0.35;
  /// kEwmaDrift / kCusum: model update weight in (0, 1]; higher forgets
  /// faster.
  double alpha = 0.3;
  /// kCusum: per-window drift allowance (>= 0); only drift above it
  /// accumulates. Raising it ignores stronger stationary noise, at the
  /// cost of missing slower ramps.
  double slack = 0.05;
};

class PhaseDetector {
 public:
  /// Validates the configuration (throws std::invalid_argument on a zero
  /// period, a threshold outside [0, 1] — or merely negative for kCusum —
  /// a negative slack, or an alpha outside (0, 1]).
  explicit PhaseDetector(PhaseDetectorConfig config);

  struct Verdict {
    bool phase_change = false;
    /// Drift score that produced the verdict: total variation distance
    /// for kEwmaDrift, the accumulated statistic for kCusum, 0
    /// otherwise.
    double drift = 0.0;
  };

  /// Feeds one window's summary; returns whether a phase boundary is
  /// declared at this window. The first observed window never declares a
  /// boundary (there is nothing to drift from); it seeds the model.
  Verdict Observe(const TransitionSummary& window);

  /// Returns to the just-constructed state.
  void Reset();

  [[nodiscard]] const PhaseDetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  PhaseDetectorConfig config_;
  /// kEwmaDrift / kCusum: normalized model distribution, sorted by key.
  std::vector<std::pair<std::uint64_t, double>> model_;
  /// kCusum: the accumulated statistic S.
  double cusum_ = 0.0;
  std::size_t observed_ = 0;
};

}  // namespace rtmp::online
