#include "online/policy.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

#include "core/registry_namespace.h"
#include "core/strategy_registry.h"
#include "util/strings.h"

namespace rtmp::online {

namespace {

class FixedPolicy final : public OnlinePolicy {
 public:
  FixedPolicy(OnlinePolicyInfo info, OnlineConfig config)
      : info_(std::move(info)), config_(std::move(config)) {}

  [[nodiscard]] const OnlinePolicyInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] OnlineConfig MakeConfig() const override { return config_; }

 private:
  OnlinePolicyInfo info_;
  OnlineConfig config_;
};

void RegisterFamily(OnlinePolicyRegistry& registry,
                    const std::string& reseed) {
  {
    OnlineConfig config;
    config.reseed_strategy = reseed;
    config.window_accesses = kWholeTraceWindow;
    config.detector.kind = DetectorKind::kNone;
    registry.Register(
        "online-static-" + reseed,
        [info = OnlinePolicyInfo{
             "online-static-" + reseed,
             "one whole-trace window, no re-placement: the oracle wrapper, "
             "bit-identical to " + reseed,
             reseed, "none"},
         config] { return MakeFixedPolicy(info, config); });
  }
  {
    OnlineConfig config;
    config.reseed_strategy = reseed;
    config.window_accesses = 256;
    config.detector.kind = DetectorKind::kFixedWindow;
    config.detector.period = 1;
    registry.Register(
        "online-fixed-" + reseed,
        [info = OnlinePolicyInfo{
             "online-fixed-" + reseed,
             "256-access windows, re-seed weighed at every boundary "
             "(period-1 epoch baseline) via " + reseed,
             reseed, "fixed"},
         config] { return MakeFixedPolicy(info, config); });
  }
  {
    OnlineConfig config;
    config.reseed_strategy = reseed;
    config.window_accesses = 256;
    config.detector.kind = DetectorKind::kEwmaDrift;
    config.detector.threshold = 0.35;
    config.detector.alpha = 0.3;
    config.refine = true;
    registry.Register(
        "online-ewma-" + reseed,
        [info = OnlinePolicyInfo{
             "online-ewma-" + reseed,
             "256-access windows, EWMA-drift phase detection + incremental "
             "refinement, re-seeded via " + reseed,
             reseed, "ewma"},
         config] { return MakeFixedPolicy(info, config); });
  }
  {
    OnlineConfig config;
    config.reseed_strategy = reseed;
    config.window_accesses = 256;
    config.detector.kind = DetectorKind::kCusum;
    config.detector.threshold = 0.6;
    config.detector.slack = 0.1;
    config.detector.alpha = 0.3;
    config.refine = true;
    registry.Register(
        "online-cusum-" + reseed,
        [info = OnlinePolicyInfo{
             "online-cusum-" + reseed,
             "256-access windows, CUSUM change-point detection (slack 0.1, "
             "threshold 0.6) + incremental refinement, re-seeded via " +
                 reseed,
             reseed, "cusum"},
         config] { return MakeFixedPolicy(info, config); });
  }
}

}  // namespace

std::shared_ptr<const OnlinePolicy> MakeFixedPolicy(OnlinePolicyInfo info,
                                                    OnlineConfig config) {
  return std::make_shared<const FixedPolicy>(std::move(info),
                                             std::move(config));
}

OnlinePolicyRegistry& OnlinePolicyRegistry::Global() {
  static OnlinePolicyRegistry* registry = [] {
    // Leaked: outlives OnlinePolicyRegistrar uses in static
    // destructors.
    // NOLINTNEXTLINE(rtmlint:naked-new): leaked Global() singleton.
    auto* r = new OnlinePolicyRegistry();
    r->ClaimCellNamespace("online policy");
    RegisterBuiltinOnlinePolicies(*r);
    return r;
  }();
  return *registry;
}

void OnlinePolicyRegistry::Register(std::string name, Factory factory) {
  if (!factory) {
    throw std::invalid_argument("OnlinePolicyRegistry: null factory for '" +
                                name + "'");
  }
  std::string key = util::ToLower(name);
  // Policy names share the experiment engine's strategy-name space
  // (cells, CLI arguments, report keys): same charset, and no collision
  // with a registered strategy.
  const auto valid_char = [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '-' || c == '_' || c == '.';
  };
  if (key.empty() || !std::all_of(key.begin(), key.end(), valid_char)) {
    throw std::invalid_argument("OnlinePolicyRegistry: invalid name '" +
                                name + "'");
  }
  if (core::StrategyRegistry::Global().Contains(key)) {
    throw std::invalid_argument(
        "OnlinePolicyRegistry: '" + key +
        "' is already a registered placement strategy");
  }
  if (namespace_kind_ != nullptr) {
    core::RegistryNamespace::Global().Claim(key, namespace_kind_);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    throw std::invalid_argument("OnlinePolicyRegistry: duplicate policy '" +
                                key + "'");
  }
  entries_.insert(it, {std::move(key), Entry{std::move(factory), nullptr}});
}

const OnlinePolicyRegistry::Entry* OnlinePolicyRegistry::FindEntry(
    const std::string& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) return nullptr;
  return &it->second;
}

std::shared_ptr<const OnlinePolicy> OnlinePolicyRegistry::Find(
    std::string_view name) const {
  const std::string key = util::ToLower(name);
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* entry = FindEntry(key);
    if (entry == nullptr) return nullptr;
    if (entry->instance) return entry->instance;
    factory = entry->factory;
  }
  // Run the factory unlocked: factories may consult the registries.
  auto instance = factory();
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindEntry(key);
  if (entry == nullptr) return instance;
  if (!entry->instance) entry->instance = std::move(instance);
  return entry->instance;
}

std::optional<OnlinePolicyInfo> OnlinePolicyRegistry::Describe(
    std::string_view name) const {
  const auto policy = Find(name);
  if (!policy) return std::nullopt;
  return policy->Describe();
}

bool OnlinePolicyRegistry::Contains(std::string_view name) const {
  const std::string key = util::ToLower(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  return FindEntry(key) != nullptr;
}

std::vector<std::string> OnlinePolicyRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(key);
  return names;
}

std::size_t OnlinePolicyRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void RegisterBuiltinOnlinePolicies(OnlinePolicyRegistry& registry) {
  RegisterFamily(registry, "dma-sr");
  RegisterFamily(registry, "afd-ofu");
}

OnlinePolicyRegistrar::OnlinePolicyRegistrar(
    std::string name, OnlinePolicyRegistry::Factory factory) {
  OnlinePolicyRegistry::Global().Register(std::move(name),
                                          std::move(factory));
}

}  // namespace rtmp::online
