// Online-policy registry: the name-keyed dispatch layer for online
// placement policies, mirroring the strategy registry (solution side)
// and the workload registry (input side).
//
// An online policy is a named OnlineConfig recipe: which registry
// strategy re-seeds the placement, which phase detector triggers
// re-placement, how large the windows are, and whether migration is
// charged. Policies enter the evaluation matrix by name exactly like
// strategies do — sim::RunCell resolves a name it does not find in the
// strategy registry here, so `ExperimentOptions::extra_strategies`,
// `rtmbench` scenarios and `placement_explorer online` all accept policy
// names interchangeably with strategy names.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "online/engine.h"

namespace rtmp::online {

/// Self-description of a registered online policy.
struct OnlinePolicyInfo {
  /// Registry key: lowercase, unique ("online-ewma-dma-sr", ...).
  std::string name;
  /// One-line human-readable description for listings and docs.
  std::string summary;
  /// Registry name of the re-seed strategy the policy wraps.
  std::string reseed_strategy;
  /// Detector family: "none", "fixed", "ewma" or "cusum".
  std::string detector;
};

/// Abstract online policy. Implementations must be stateless or
/// internally synchronized: the experiment engine may call MakeConfig()
/// from many threads concurrently on one instance.
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  [[nodiscard]] virtual const OnlinePolicyInfo& Describe() const noexcept = 0;

  /// The engine configuration this policy stands for. Callers stamp the
  /// run-specific fields afterwards (strategy_options effort/seeds come
  /// from the experiment, not the policy).
  [[nodiscard]] virtual OnlineConfig MakeConfig() const = 0;
};

/// Name -> factory registry. Lookups are case-insensitive (names are
/// normalized to lowercase); construction is lazy and the instance is
/// cached. All members are thread-safe. Deliberately the same shape as
/// core::StrategyRegistry and workloads::WorkloadRegistry.
class OnlinePolicyRegistry {
 public:
  using Factory = std::function<std::shared_ptr<const OnlinePolicy>()>;

  OnlinePolicyRegistry() = default;
  OnlinePolicyRegistry(const OnlinePolicyRegistry&) = delete;
  OnlinePolicyRegistry& operator=(const OnlinePolicyRegistry&) = delete;

  /// The process-wide registry, pre-populated with the built-in
  /// policies (see RegisterBuiltinOnlinePolicies).
  [[nodiscard]] static OnlinePolicyRegistry& Global();

  /// Registers `factory` under `name` (normalized to lowercase). Throws
  /// std::invalid_argument if the name is empty, contains characters
  /// outside [a-z0-9._-], collides with a registered policy OR with a
  /// registered placement strategy (the registries share the experiment
  /// engine's name space; see core/registry_namespace.h for the
  /// process-wide arbitration covering serve policies too).
  void Register(std::string name, Factory factory);

  /// Marks this instance as an owner in the process-wide cell-name space
  /// (core/registry_namespace.h); same contract as
  /// core::StrategyRegistry::ClaimCellNamespace — Global() enables it
  /// ("online policy"), fresh test instances leave it off.
  void ClaimCellNamespace(const char* kind) noexcept {
    namespace_kind_ = kind;
  }

  /// The policy registered under `name`; nullptr if unknown.
  [[nodiscard]] std::shared_ptr<const OnlinePolicy> Find(
      std::string_view name) const;

  /// Metadata of the policy registered under `name`; nullopt if unknown.
  [[nodiscard]] std::optional<OnlinePolicyInfo> Describe(
      std::string_view name) const;

  [[nodiscard]] bool Contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> Names() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    Factory factory;
    /// Constructed on first lookup, under mutex_.
    mutable std::shared_ptr<const OnlinePolicy> instance;
  };

  /// Requires mutex_ to be held by the caller.
  [[nodiscard]] const Entry* FindEntry(const std::string& key) const;

  mutable std::mutex mutex_;
  // Sorted by key; small enough (tens of policies) that a flat vector
  // beats a map.
  std::vector<std::pair<std::string, Entry>> entries_;
  /// Non-null only for Global() (see ClaimCellNamespace).
  const char* namespace_kind_ = nullptr;
};

/// Registers the built-in policies into `registry`:
///
///   online-static-<s>   one window over the whole trace, no detection —
///                       the oracle wrapper, bit-identical to strategy s;
///   online-fixed-<s>    256-access windows, re-seed considered every
///                       window boundary (period-1 epoch baseline);
///   online-ewma-<s>     256-access windows, EWMA-drift detection plus
///                       CostEvaluator refinement between phases;
///   online-cusum-<s>    256-access windows, CUSUM change-point detection
///                       (integrates slow drifts a single-window EWMA
///                       test misses) plus refinement;
///
/// for s in {dma-sr, afd-ofu}. Global() calls this once; tests use it to
/// build fresh registries.
void RegisterBuiltinOnlinePolicies(OnlinePolicyRegistry& registry);

/// Convenience used by the built-ins and available to external code: a
/// policy that returns a fixed OnlineConfig under a fixed description.
[[nodiscard]] std::shared_ptr<const OnlinePolicy> MakeFixedPolicy(
    OnlinePolicyInfo info, OnlineConfig config);

/// RAII self-registration into the Global() registry, for policies
/// defined outside this library. Same linker caveat as
/// core::StrategyRegistrar: keep registrars in a translation unit that
/// is otherwise linked in.
struct OnlinePolicyRegistrar {
  OnlinePolicyRegistrar(std::string name,
                        OnlinePolicyRegistry::Factory factory);
};

}  // namespace rtmp::online
