#include "rtm/address_map.h"

#include <stdexcept>

namespace rtmp::rtm {

AddressMap::AddressMap(const RtmConfig& config, InterleavePolicy policy)
    : banks_(config.banks),
      subarrays_per_bank_(config.subarrays_per_bank),
      dbcs_per_subarray_(config.dbcs_per_subarray),
      domains_per_dbc_(config.domains_per_dbc),
      capacity_(config.word_capacity()),
      policy_(policy) {
  config.Validate();
}

WordLocation AddressMap::Decompose(std::uint64_t word_address) const {
  if (word_address >= capacity_) {
    throw std::out_of_range("AddressMap: word address beyond capacity");
  }
  const std::uint64_t total_dbcs =
      static_cast<std::uint64_t>(banks_) * subarrays_per_bank_ *
      dbcs_per_subarray_;
  std::uint64_t flat_dbc = 0;
  std::uint32_t domain = 0;
  if (policy_ == InterleavePolicy::kBlock) {
    flat_dbc = word_address / domains_per_dbc_;
    domain = static_cast<std::uint32_t>(word_address % domains_per_dbc_);
  } else {
    flat_dbc = word_address % total_dbcs;
    domain = static_cast<std::uint32_t>(word_address / total_dbcs);
  }
  WordLocation loc;
  loc.domain = domain;
  loc.dbc = static_cast<unsigned>(flat_dbc % dbcs_per_subarray_);
  const std::uint64_t subarray_flat = flat_dbc / dbcs_per_subarray_;
  loc.subarray = static_cast<unsigned>(subarray_flat % subarrays_per_bank_);
  loc.bank = static_cast<unsigned>(subarray_flat / subarrays_per_bank_);
  return loc;
}

std::uint64_t AddressMap::Compose(const WordLocation& loc) const {
  const std::uint64_t total_dbcs =
      static_cast<std::uint64_t>(banks_) * subarrays_per_bank_ *
      dbcs_per_subarray_;
  const std::uint64_t flat_dbc =
      (static_cast<std::uint64_t>(loc.bank) * subarrays_per_bank_ +
       loc.subarray) *
          dbcs_per_subarray_ +
      loc.dbc;
  std::uint64_t address = 0;
  if (policy_ == InterleavePolicy::kBlock) {
    address = flat_dbc * domains_per_dbc_ + loc.domain;
  } else {
    address = static_cast<std::uint64_t>(loc.domain) * total_dbcs + flat_dbc;
  }
  if (address >= capacity_) {
    throw std::out_of_range("AddressMap: location beyond capacity");
  }
  return address;
}

}  // namespace rtmp::rtm
