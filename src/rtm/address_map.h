// Word-address decomposition for raw address traces.
//
// The placement experiments address the device through (DBC, domain) pairs
// produced by a Placement, but the device is also usable as a plain memory:
// this maps linear word addresses onto the RTM geometry.
#pragma once

#include <cstdint>

#include "rtm/config.h"

namespace rtmp::rtm {

/// Physical location of a word.
struct WordLocation {
  unsigned bank = 0;
  unsigned subarray = 0;   ///< within the bank
  unsigned dbc = 0;        ///< within the subarray
  std::uint32_t domain = 0;///< within the DBC

  /// Flat DBC index across the whole device.
  [[nodiscard]] unsigned FlatDbc(const RtmConfig& config) const noexcept {
    return (bank * config.subarrays_per_bank + subarray) *
               config.dbcs_per_subarray +
           dbc;
  }

  friend bool operator==(const WordLocation&, const WordLocation&) = default;
};

/// How consecutive word addresses are spread over DBCs.
enum class InterleavePolicy : std::uint8_t {
  /// Consecutive words fill one DBC before moving to the next; preserves
  /// the contiguity intra-DBC placement relies on.
  kBlock,
  /// Consecutive words round-robin across DBCs (classic bank interleaving).
  kInterleave,
};

class AddressMap {
 public:
  AddressMap(const RtmConfig& config, InterleavePolicy policy);

  /// Decomposes a word address; throws std::out_of_range beyond capacity.
  [[nodiscard]] WordLocation Decompose(std::uint64_t word_address) const;

  /// Inverse of Decompose.
  [[nodiscard]] std::uint64_t Compose(const WordLocation& loc) const;

  [[nodiscard]] std::uint64_t word_capacity() const noexcept {
    return capacity_;
  }

 private:
  unsigned banks_;
  unsigned subarrays_per_bank_;
  unsigned dbcs_per_subarray_;
  std::uint32_t domains_per_dbc_;
  std::uint64_t capacity_;
  InterleavePolicy policy_;
};

}  // namespace rtmp::rtm
