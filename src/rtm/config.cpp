#include "rtm/config.h"

#include <set>
#include <stdexcept>

namespace rtmp::rtm {

std::vector<std::uint32_t> RtmConfig::EffectivePortOffsets() const {
  if (!port_offsets.empty()) return port_offsets;
  // Evenly spread P ports so each serves a K/P segment centred on it:
  // offsets (2i+1) * K / (2P), i.e. one port at K/2 rounded down for P=1.
  // For the single-port paper setup the exact offset is irrelevant to shift
  // counts (only distances matter); we use 0 to match the cost model's
  // "position = offset" convention.
  std::vector<std::uint32_t> offsets;
  offsets.reserve(ports_per_track);
  if (ports_per_track == 1) {
    offsets.push_back(0);
    return offsets;
  }
  for (unsigned i = 0; i < ports_per_track; ++i) {
    offsets.push_back(static_cast<std::uint32_t>(
        (2ULL * i + 1) * domains_per_dbc / (2ULL * ports_per_track)));
  }
  return offsets;
}

void RtmConfig::Validate() const {
  if (banks == 0 || subarrays_per_bank == 0 || dbcs_per_subarray == 0) {
    throw std::invalid_argument(
        "RtmConfig: bank/subarray/DBC counts must be positive");
  }
  if (tracks_per_dbc == 0) {
    throw std::invalid_argument("RtmConfig: tracks_per_dbc must be positive");
  }
  if (domains_per_dbc == 0) {
    throw std::invalid_argument("RtmConfig: domains_per_dbc must be positive");
  }
  if (ports_per_track == 0) {
    throw std::invalid_argument("RtmConfig: need at least one access port");
  }
  const auto offsets = EffectivePortOffsets();
  if (offsets.size() != ports_per_track) {
    throw std::invalid_argument(
        "RtmConfig: port_offsets size must equal ports_per_track");
  }
  std::set<std::uint32_t> unique;
  for (const auto offset : offsets) {
    if (offset >= domains_per_dbc) {
      throw std::invalid_argument("RtmConfig: port offset out of range");
    }
    if (!unique.insert(offset).second) {
      throw std::invalid_argument("RtmConfig: duplicate port offset");
    }
  }
}

RtmConfig RtmConfig::Paper(unsigned dbcs) {
  RtmConfig config;
  config.banks = 1;
  config.subarrays_per_bank = 1;
  config.dbcs_per_subarray = dbcs;
  config.tracks_per_dbc = 32;
  config.domains_per_dbc = destiny::PaperDomainsPerDbc(dbcs);
  config.ports_per_track = 1;
  config.initial_alignment = InitialAlignment::kFirstAccess;
  config.params = destiny::PaperTableOne(dbcs);
  config.Validate();
  return config;
}

}  // namespace rtmp::rtm
