// RTM organization (cf. paper Fig. 2): banks -> subarrays -> DBCs, each DBC
// being T nanotracks of K domains accessed through one or more ports.
#pragma once

#include <cstdint>
#include <vector>

#include "destiny/device_model.h"

namespace rtmp::rtm {

/// Where a DBC's port alignment starts.
///
/// kFirstAccess matches the paper's cost arithmetic (the first access in
/// each DBC is free; Fig. 3 example: AFD = 39, DMA = 11 shifts).
/// kZero matches cold hardware: every track starts aligned at domain 0 and
/// the first access pays the full distance.
enum class InitialAlignment : std::uint8_t { kFirstAccess, kZero };

struct RtmConfig {
  unsigned banks = 1;
  unsigned subarrays_per_bank = 1;
  unsigned dbcs_per_subarray = 4;
  unsigned tracks_per_dbc = 32;    ///< word width T in bits
  unsigned domains_per_dbc = 256;  ///< K addressable words per DBC
  unsigned ports_per_track = 1;
  /// Port positions within [0, domains_per_dbc); empty derives evenly
  /// spaced offsets (single port at 0; two ports at K/4 and 3K/4, ...).
  std::vector<std::uint32_t> port_offsets;
  /// Overhead domains on each track end so shifts never push data off the
  /// wire; 0 derives the always-safe default (domains_per_dbc).
  unsigned overhead_domains = 0;
  InitialAlignment initial_alignment = InitialAlignment::kFirstAccess;
  /// Circuit parameters (energies, latencies, leakage, area).
  destiny::DeviceParams params;

  [[nodiscard]] unsigned total_dbcs() const noexcept {
    return banks * subarrays_per_bank * dbcs_per_subarray;
  }

  /// Total addressable words.
  [[nodiscard]] std::uint64_t word_capacity() const noexcept {
    return static_cast<std::uint64_t>(total_dbcs()) * domains_per_dbc;
  }

  /// Capacity in bytes (tracks_per_dbc bits per word).
  [[nodiscard]] std::uint64_t byte_capacity() const noexcept {
    return word_capacity() * tracks_per_dbc / 8;
  }

  /// Port offsets actually in effect (derived when port_offsets is empty).
  [[nodiscard]] std::vector<std::uint32_t> EffectivePortOffsets() const;

  /// Overhead domains actually in effect.
  [[nodiscard]] unsigned EffectiveOverhead() const noexcept {
    return overhead_domains == 0 ? domains_per_dbc : overhead_domains;
  }

  /// Throws std::invalid_argument when structurally inconsistent
  /// (zero-sized dimensions, ports out of range, duplicate ports).
  void Validate() const;

  /// The paper's evaluated configuration for `dbcs` in {2,4,8,16}:
  /// 4 KiB, 32 tracks/DBC, 1024/dbcs domains per DBC, one port,
  /// Table I circuit parameters, paper cost-model alignment.
  [[nodiscard]] static RtmConfig Paper(unsigned dbcs);
};

}  // namespace rtmp::rtm
