// rtmlint: hot-path — ExecuteSpan is the per-request inner loop of every
// window flush; allocations here are advisory findings (hot-path-alloc).
#include "rtm/controller.h"

#include <algorithm>
#include <stdexcept>

namespace rtmp::rtm {

RtmController::RtmController(RtmConfig config, ControllerConfig controller)
    : config_(std::move(config)), controller_(controller) {
  config_.Validate();
  const auto offsets = config_.EffectivePortOffsets();
  const bool start_at_zero =
      config_.initial_alignment == InitialAlignment::kZero;
  dbcs_.reserve(config_.total_dbcs());
  for (unsigned i = 0; i < config_.total_dbcs(); ++i) {
    dbcs_.emplace_back(config_.domains_per_dbc, offsets, start_at_zero);
  }
  dbc_free_ns_.assign(config_.total_dbcs(), 0.0);
}

double RtmController::channel_free() const noexcept {
  return controller_.shared_channel != nullptr
             ? controller_.shared_channel->free_ns_
             : channel_free_ns_;
}

void RtmController::set_channel_free(double when_ns) noexcept {
  if (controller_.shared_channel != nullptr) {
    controller_.shared_channel->free_ns_ = when_ns;
  } else {
    channel_free_ns_ = when_ns;
  }
}

std::vector<RequestTiming> RtmController::Execute(
    const std::vector<TimedRequest>& requests) {
  std::vector<RequestTiming> timings;
  timings.reserve(requests.size());
  ExecuteSpan(requests, &timings);
  return timings;
}

void RtmController::ExecuteBatch(std::span<const TimedRequest> requests) {
  ExecuteSpan(requests, nullptr);
}

void RtmController::ExecuteSpan(std::span<const TimedRequest> requests,
                                std::vector<RequestTiming>* out) {
  const unsigned lookahead = controller_.lookahead;
  const bool proactive = controller_.proactive_alignment;
  if (proactive && lookahead > 0) {
    // Per-batch lookahead window (Execute's timings[i - lookahead] read,
    // without the vector): slot i % lookahead holds the access start of
    // the request issued `lookahead` places earlier.
    lookahead_ring_.assign(lookahead, 0.0);
  }
  // Loop invariants and running state the compiler cannot keep in
  // registers itself: everything is reached through `this`, and the
  // shared-channel write in set_channel_free() aliases with every member
  // read, forcing a reload per request. Accumulate locally and flush at
  // every exit (the channel is exclusively ours for the duration of the
  // call — Execute callers are never interleaved mid-batch).
  const double shift_latency_ns = config_.params.shift_latency_ns;
  const double write_latency_ns = config_.params.write_latency_ns;
  const double read_latency_ns = config_.params.read_latency_ns;
  double channel_free_ns = channel_free();
  double last_arrival_ns = last_arrival_ns_;
  ControllerStats stats = stats_;
  std::uint64_t reads = reads_;
  std::uint64_t writes = writes_;
  const auto flush = [&] {
    set_channel_free(channel_free_ns);
    last_arrival_ns_ = last_arrival_ns;
    stats_ = stats;
    reads_ = reads;
    writes_ = writes;
  };
  try {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const TimedRequest& request = requests[i];
      if (request.arrival_ns < last_arrival_ns) {
        throw std::invalid_argument(
            "RtmController: arrivals must be non-decreasing");
      }
      last_arrival_ns = request.arrival_ns;
      if (request.dbc >= dbcs_.size()) {
        throw std::out_of_range("RtmController: DBC index out of range");
      }

      const std::uint64_t shifts = dbcs_[request.dbc].Access(request.domain);
      const double shift_time =
          static_cast<double>(shifts) * shift_latency_ns;
      const bool is_write = request.type == trace::AccessType::kWrite;
      const double access_time = is_write ? write_latency_ns
                                          : read_latency_ns;

      RequestTiming timing;
      timing.shifts = shifts;
      if (proactive) {
        // The target becomes known when the request `lookahead` places
        // earlier issued; the DBC can shift in the background from then
        // on.
        double known_ns = request.arrival_ns;
        if (lookahead == 0) {
          known_ns = std::max(known_ns, channel_free_ns);
        } else if (i >= lookahead) {
          known_ns = std::max(known_ns, lookahead_ring_[i % lookahead]);
        }
        timing.shift_start_ns = std::max(dbc_free_ns_[request.dbc], known_ns);
        const double shift_done = timing.shift_start_ns + shift_time;
        timing.access_start_ns =
            std::max({request.arrival_ns, channel_free_ns, shift_done});
        timing.finish_ns = timing.access_start_ns + access_time;
        timing.hidden_shift_ns =
            shift_time - std::max(0.0, shift_done - channel_free_ns);
        timing.hidden_shift_ns =
            std::clamp(timing.hidden_shift_ns, 0.0, shift_time);
        if (lookahead > 0) {
          lookahead_ring_[i % lookahead] = timing.access_start_ns;
        }
        channel_free_ns = timing.finish_ns;
        dbc_free_ns_[request.dbc] = timing.finish_ns;
        // Shifts occupy the DBC, not the shared channel: only the access
        // itself books channel time. The shift time the request still had
        // to wait out is exposed stall, accounted separately — folding it
        // into channel_busy_ns double-booked the channel (utilization
        // > 100%).
        stats.channel_busy_ns += access_time;
        stats.exposed_shift_ns += shift_time - timing.hidden_shift_ns;
      } else {
        // Serial operation: shift + access both occupy the channel, so
        // the whole shift is exposed stall AND channel time.
        timing.shift_start_ns = std::max(request.arrival_ns, channel_free_ns);
        timing.access_start_ns = timing.shift_start_ns + shift_time;
        timing.finish_ns = timing.access_start_ns + access_time;
        channel_free_ns = timing.finish_ns;
        dbc_free_ns_[request.dbc] = timing.finish_ns;
        stats.channel_busy_ns += shift_time + access_time;
        stats.exposed_shift_ns += shift_time;
      }

      stats.shifts += shifts;
      stats.shift_busy_ns += shift_time;
      stats.hidden_shift_ns += timing.hidden_shift_ns;
      stats.makespan_ns = std::max(stats.makespan_ns, timing.finish_ns);
      ++stats.requests;
      if (is_write) ++writes;
      else ++reads;
      if (out != nullptr) out->push_back(timing);
    }
  } catch (...) {
    // Keep the pre-throw prefix booked exactly as the member-state loop
    // did (the failing request's own work is not yet in the locals).
    flush();
    throw;
  }
  flush();
}

EnergyBreakdown RtmController::Energy() const {
  ActivityCounts activity;
  activity.reads = reads_;
  activity.writes = writes_;
  activity.shifts = stats_.shifts;
  activity.runtime_ns = stats_.makespan_ns;
  return ComputeEnergy(config_.params, activity);
}

void RtmController::Reset() {
  for (DbcState& dbc : dbcs_) dbc.Reset();
  dbc_free_ns_.assign(dbcs_.size(), 0.0);
  channel_free_ns_ = 0.0;
  last_arrival_ns_ = 0.0;
  reads_ = 0;
  writes_ = 0;
  stats_ = ControllerStats{};
}

ControllerStats ReplaySequence(
    const trace::AccessSequence& seq,
    const std::vector<std::pair<unsigned, std::uint32_t>>& locations,
    const RtmConfig& config, const ControllerConfig& controller) {
  if (locations.size() != seq.num_variables()) {
    throw std::invalid_argument("ReplaySequence: one location per variable");
  }
  std::vector<TimedRequest> requests;
  requests.reserve(seq.size());
  for (const trace::Access& access : seq.accesses()) {
    const auto& [dbc, domain] = locations[access.variable];
    requests.push_back(TimedRequest{0.0, dbc, domain, access.type});
  }
  RtmController engine(config, controller);
  (void)engine.Execute(requests);
  return engine.stats();
}

}  // namespace rtmp::rtm
