// Request-level RTM controller with timing.
//
// RtmDevice answers "how many shifts / how much energy"; this controller
// answers "when": requests carry arrival times, the read/write channel is a
// shared resource, and per-DBC shifting can optionally proceed in the
// background (proactive port alignment, the technique of the paper's
// related work [1], [12], [20], [21]: align the likely-next domain to the
// port while the channel serves other DBCs).
//
// Timing model, per request r on DBC d (in arrival order):
//  * the controller learns r's target when the request `lookahead` places
//    earlier issues (lookahead 0 = no foresight, shifts start at issue);
//  * shifting occupies only DBC d: it may run from
//      max(dbc_free[d], known_time) for shifts x t_shift;
//  * the access occupies the shared channel:
//      start = max(arrival, channel_free, shift_done),
//      busy for t_read or t_write.
// With proactive alignment off, shifting is folded into the channel
// occupancy (classic serial operation), which reproduces the trace-driven
// runtime = sum of per-access latencies exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rtm/config.h"
#include "rtm/dbc_state.h"
#include "rtm/energy_model.h"
#include "trace/access_sequence.h"

namespace rtmp::rtm {

/// A read/write-channel timeline shared between several controllers.
/// The multi-tenant serve layer (src/serve/) partitions a device into
/// shards, each with its own RtmController (private DBC state), but the
/// access channel stays ONE resource: every shard controller pointed at
/// the same SharedChannel books its channel occupancy here, so one
/// shard's traffic delays another's exactly as on real hardware. With no
/// SharedChannel configured the controller uses its private timeline —
/// the arithmetic is identical either way, so a single shard behind a
/// SharedChannel is bit-identical to a bare controller.
class SharedChannel {
 public:
  /// Time the channel becomes free (ns since the common epoch).
  [[nodiscard]] double free_ns() const noexcept { return free_ns_; }

  void Reset() noexcept { free_ns_ = 0.0; }

 private:
  friend class RtmController;
  double free_ns_ = 0.0;
};

struct ControllerConfig {
  /// Enables background shifting (proactive alignment).
  bool proactive_alignment = false;
  /// How many requests ahead the controller can see targets (only
  /// meaningful with proactive_alignment; 1 is a realistic one-deep
  /// request queue, larger values approach the oracle).
  unsigned lookahead = 1;
  /// Non-owning; when set, channel occupancy is booked on this shared
  /// timeline instead of the controller's private one (see
  /// SharedChannel). The channel must outlive the controller; Reset()
  /// leaves it untouched (it belongs to the arbiter, not the shard).
  SharedChannel* shared_channel = nullptr;
};

/// One memory request presented to the controller.
struct TimedRequest {
  double arrival_ns = 0.0;
  unsigned dbc = 0;
  std::uint32_t domain = 0;
  trace::AccessType type = trace::AccessType::kRead;
};

/// Completion record for one request.
struct RequestTiming {
  double shift_start_ns = 0.0;
  double access_start_ns = 0.0;
  double finish_ns = 0.0;
  std::uint64_t shifts = 0;
  /// Shift time that ran in the background (hidden from the channel).
  double hidden_shift_ns = 0.0;
};

/// Aggregate controller statistics.
///
/// Shift-time accounting: every request's shift time splits into a hidden
/// part (ran in the background while the channel served other requests;
/// proactive mode only) and an exposed part (the requester had to wait it
/// out): shift_busy_ns == hidden_shift_ns + exposed_shift_ns. The shared
/// channel is booked only for time it is actually occupied — accesses
/// always; shifts only in serial mode, where the controller holds the
/// channel while shifting. In proactive mode shifts occupy just their DBC,
/// so exposed shift time is stall, NOT channel occupancy; it never inflates
/// channel_busy_ns (which previously could exceed the makespan, reporting
/// more than 100% channel utilization). Invariant either way:
/// channel_busy_ns <= makespan_ns for back-to-back request streams.
struct ControllerStats {
  std::uint64_t requests = 0;
  std::uint64_t shifts = 0;
  double makespan_ns = 0.0;       ///< finish time of the last request
  double channel_busy_ns = 0.0;   ///< time the shared channel was occupied
  double shift_busy_ns = 0.0;     ///< total shifting time across DBCs
  double hidden_shift_ns = 0.0;   ///< shifting overlapped with the channel
  double exposed_shift_ns = 0.0;  ///< shift stall the requests waited out
};

class RtmController {
 public:
  RtmController(RtmConfig config, ControllerConfig controller);

  /// Executes requests in order (arrival times must be non-decreasing;
  /// throws std::invalid_argument otherwise). Returns per-request timings.
  std::vector<RequestTiming> Execute(const std::vector<TimedRequest>& requests);

  /// Batched service path: identical arithmetic and statistics to
  /// Execute, but no per-request RequestTiming is materialized — the
  /// proactive lookahead window lives in a small reused ring buffer
  /// instead of the full timing vector. The allocation-free way to
  /// service a window whose caller only reads stats().
  void ExecuteBatch(std::span<const TimedRequest> requests);

  [[nodiscard]] const ControllerStats& stats() const noexcept {
    return stats_;
  }

  /// Energy of everything executed so far; leakage uses the makespan
  /// (the array leaks while anything is in flight).
  [[nodiscard]] EnergyBreakdown Energy() const;

  void Reset();

 private:
  /// Private vs. shared channel timeline (see ControllerConfig).
  [[nodiscard]] double channel_free() const noexcept;
  void set_channel_free(double when_ns) noexcept;
  /// Shared body of Execute/ExecuteBatch; appends timings to `out` when
  /// non-null.
  void ExecuteSpan(std::span<const TimedRequest> requests,
                   std::vector<RequestTiming>* out);

  RtmConfig config_;
  ControllerConfig controller_;
  std::vector<DbcState> dbcs_;
  std::vector<double> dbc_free_ns_;
  double channel_free_ns_ = 0.0;
  double last_arrival_ns_ = 0.0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  ControllerStats stats_;
  /// access_start_ns of the last `lookahead` requests of the running
  /// batch (proactive mode): ExecuteBatch's replacement for indexing the
  /// materialized timing vector. Reused across batches.
  std::vector<double> lookahead_ring_;
};

/// Convenience: wraps a placement-mapped access sequence into back-to-back
/// requests (arrival 0) and executes them.
[[nodiscard]] ControllerStats ReplaySequence(
    const trace::AccessSequence& seq,
    const std::vector<std::pair<unsigned, std::uint32_t>>& locations,
    const RtmConfig& config, const ControllerConfig& controller);

}  // namespace rtmp::rtm
