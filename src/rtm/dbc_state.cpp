// rtmlint: hot-path — Access() runs once per memory request; allocations
// here are advisory findings (hot-path-alloc).
#include "rtm/dbc_state.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace rtmp::rtm {

DbcState::DbcState(std::uint32_t num_domains,
                   std::vector<std::uint32_t> port_offsets, bool start_at_zero)
    : num_domains_(num_domains),
      port_offsets_(std::move(port_offsets)),
      start_at_zero_(start_at_zero) {
  if (num_domains_ == 0) {
    throw std::invalid_argument("DbcState: num_domains must be positive");
  }
  if (port_offsets_.empty()) {
    throw std::invalid_argument("DbcState: need at least one port");
  }
  for (const auto offset : port_offsets_) {
    if (offset >= num_domains_) {
      throw std::invalid_argument("DbcState: port offset out of range");
    }
  }
  Reset();
}

DbcState::AccessPlan DbcState::Plan(std::uint32_t domain) const {
  if (domain >= num_domains_) {
    throw std::out_of_range("DbcState: domain out of range");
  }
  AccessPlan best;
  bool have_best = false;
  for (std::uint32_t p = 0; p < port_offsets_.size(); ++p) {
    const std::int64_t target = static_cast<std::int64_t>(domain) -
                                static_cast<std::int64_t>(port_offsets_[p]);
    const std::uint64_t shifts =
        alignment_.has_value()
            ? static_cast<std::uint64_t>(std::llabs(*alignment_ - target))
            : 0;  // first access free: the port starts wherever needed
    if (!have_best || shifts < best.shifts) {
      best = AccessPlan{shifts, p, target};
      have_best = true;
    }
  }
  return best;
}

std::uint64_t DbcState::Access(std::uint32_t domain) {
  // Single-port fast path (the paper's device model): Plan() degenerates
  // to one subtraction — skip the port-selection loop and the AccessPlan
  // round-trip. Bit-identical to the general path below.
  if (port_offsets_.size() == 1) {
    if (domain >= num_domains_) {
      throw std::out_of_range("DbcState: domain out of range");
    }
    const std::int64_t target = static_cast<std::int64_t>(domain) -
                                static_cast<std::int64_t>(port_offsets_[0]);
    const std::uint64_t shifts =
        alignment_.has_value()
            ? static_cast<std::uint64_t>(std::llabs(*alignment_ - target))
            : 0;
    alignment_ = target;
    total_shifts_ += shifts;
    const auto excursion = static_cast<std::uint64_t>(std::llabs(target));
    if (excursion > max_excursion_) max_excursion_ = excursion;
    return shifts;
  }
  const AccessPlan plan = Plan(domain);
  alignment_ = plan.new_alignment;
  total_shifts_ += plan.shifts;
  const auto excursion =
      static_cast<std::uint64_t>(std::llabs(plan.new_alignment));
  if (excursion > max_excursion_) max_excursion_ = excursion;
  return plan.shifts;
}

void DbcState::Reset() {
  alignment_ = start_at_zero_ ? std::optional<std::int64_t>(0) : std::nullopt;
  total_shifts_ = 0;
  max_excursion_ = 0;
}

}  // namespace rtmp::rtm
