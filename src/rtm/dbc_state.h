// Shift-position state of one DBC.
//
// All T nanotracks of a DBC shift in lock-step, so a single signed
// "alignment" integer captures the cluster state: alignment a means domain
// x is readable at the port with offset o iff a == x - o. Accessing domain
// x therefore costs min over ports |a - (x - o_p)| one-domain shifts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rtmp::rtm {

class DbcState {
 public:
  /// `num_domains` addressable domains; `port_offsets` non-empty, each in
  /// [0, num_domains). If `start_at_zero` the track begins aligned at
  /// a = 0 (hardware reset); otherwise the first access is free (the
  /// paper's cost-model convention).
  DbcState(std::uint32_t num_domains, std::vector<std::uint32_t> port_offsets,
           bool start_at_zero);

  struct AccessPlan {
    std::uint64_t shifts = 0;       ///< one-domain shift operations needed
    std::uint32_t port_index = 0;   ///< chosen (cheapest) port
    std::int64_t new_alignment = 0; ///< alignment after the access
  };

  /// Cheapest way to align `domain` to some port; does not mutate state.
  /// Ties between ports break toward the lower port index for determinism.
  [[nodiscard]] AccessPlan Plan(std::uint32_t domain) const;

  /// Executes Plan(domain): shifts, updates alignment, returns shift count.
  std::uint64_t Access(std::uint32_t domain);

  /// Current alignment; nullopt until the first access when the DBC starts
  /// in first-access-free mode.
  [[nodiscard]] std::optional<std::int64_t> alignment() const noexcept {
    return alignment_;
  }

  /// Largest |alignment| ever reached — the overhead-domain head-room the
  /// run actually needed on each track end.
  [[nodiscard]] std::uint64_t max_excursion() const noexcept {
    return max_excursion_;
  }

  [[nodiscard]] std::uint64_t total_shifts() const noexcept {
    return total_shifts_;
  }

  [[nodiscard]] std::uint32_t num_domains() const noexcept {
    return num_domains_;
  }

  /// Returns to the construction state (including first-access-free mode).
  void Reset();

 private:
  std::uint32_t num_domains_;
  std::vector<std::uint32_t> port_offsets_;
  bool start_at_zero_;
  std::optional<std::int64_t> alignment_;
  std::uint64_t total_shifts_ = 0;
  std::uint64_t max_excursion_ = 0;
};

}  // namespace rtmp::rtm
