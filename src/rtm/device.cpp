#include "rtm/device.h"

#include <stdexcept>

namespace rtmp::rtm {

RtmDevice::RtmDevice(RtmConfig config) : config_(std::move(config)) {
  config_.Validate();
  const auto offsets = config_.EffectivePortOffsets();
  const bool start_at_zero =
      config_.initial_alignment == InitialAlignment::kZero;
  dbcs_.reserve(config_.total_dbcs());
  for (unsigned i = 0; i < config_.total_dbcs(); ++i) {
    dbcs_.emplace_back(config_.domains_per_dbc, offsets, start_at_zero);
  }
  stats_.per_dbc_shifts.assign(config_.total_dbcs(), 0);
}

AccessResult RtmDevice::Access(unsigned dbc, std::uint32_t domain,
                               trace::AccessType type) {
  if (dbc >= dbcs_.size()) {
    throw std::out_of_range("RtmDevice: DBC index out of range");
  }
  const std::uint64_t shifts = dbcs_[dbc].Access(domain);

  AccessResult result;
  result.shifts = shifts;
  const bool is_write = type == trace::AccessType::kWrite;
  result.latency_ns =
      static_cast<double>(shifts) * config_.params.shift_latency_ns +
      (is_write ? config_.params.write_latency_ns
                : config_.params.read_latency_ns);

  stats_.shifts += shifts;
  stats_.per_dbc_shifts[dbc] += shifts;
  if (is_write) ++stats_.writes;
  else ++stats_.reads;
  stats_.runtime_ns += result.latency_ns;
  if (dbcs_[dbc].max_excursion() > stats_.max_excursion) {
    stats_.max_excursion = dbcs_[dbc].max_excursion();
  }
  return result;
}

EnergyBreakdown RtmDevice::Energy() const {
  ActivityCounts activity;
  activity.reads = stats_.reads;
  activity.writes = stats_.writes;
  activity.shifts = stats_.shifts;
  activity.runtime_ns = stats_.runtime_ns;
  return ComputeEnergy(config_.params, activity);
}

void RtmDevice::Reset() {
  for (DbcState& dbc : dbcs_) dbc.Reset();
  stats_ = RtmStats{};
  stats_.per_dbc_shifts.assign(config_.total_dbcs(), 0);
}

}  // namespace rtmp::rtm
