// Request-level RTM device: the observable core of RTSim.
//
// The device executes (DBC, domain, read/write) accesses, maintains per-DBC
// shift state, and accumulates the statistics the paper reports: shift
// counts, access latency (runtime in trace-driven mode) and the energy
// breakdown of Fig. 5.
#pragma once

#include <cstdint>
#include <vector>

#include "rtm/config.h"
#include "rtm/dbc_state.h"
#include "rtm/energy_model.h"
#include "trace/access_sequence.h"

namespace rtmp::rtm {

/// Outcome of a single access.
struct AccessResult {
  std::uint64_t shifts = 0;
  double latency_ns = 0.0;
};

/// Running statistics of a device since construction/Reset.
struct RtmStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t shifts = 0;
  double runtime_ns = 0.0;
  std::vector<std::uint64_t> per_dbc_shifts;
  std::uint64_t max_excursion = 0;  ///< worst |alignment| over all DBCs

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return reads + writes;
  }
};

class RtmDevice {
 public:
  /// Validates and adopts the configuration.
  explicit RtmDevice(RtmConfig config);

  /// Performs one access; throws std::out_of_range for bad coordinates.
  AccessResult Access(unsigned dbc, std::uint32_t domain,
                      trace::AccessType type);

  [[nodiscard]] const RtmConfig& config() const noexcept { return config_; }
  [[nodiscard]] const RtmStats& stats() const noexcept { return stats_; }

  /// Energy of everything executed so far (leakage uses accumulated
  /// runtime).
  [[nodiscard]] EnergyBreakdown Energy() const;

  /// Area of the array (from the circuit parameters).
  [[nodiscard]] double area_mm2() const noexcept {
    return config_.params.area_mm2;
  }

  /// Clears statistics and re-arms initial alignments.
  void Reset();

 private:
  RtmConfig config_;
  std::vector<DbcState> dbcs_;
  RtmStats stats_;
};

}  // namespace rtmp::rtm
