#include "rtm/energy_model.h"

namespace rtmp::rtm {

EnergyBreakdown ComputeEnergy(const destiny::DeviceParams& params,
                              const ActivityCounts& activity) {
  EnergyBreakdown energy;
  energy.leakage_pj = params.leakage_mw * activity.runtime_ns;
  energy.read_write_pj =
      static_cast<double>(activity.reads) * params.read_energy_pj +
      static_cast<double>(activity.writes) * params.write_energy_pj;
  energy.shift_pj =
      static_cast<double>(activity.shifts) * params.shift_energy_pj;
  return energy;
}

double ComputeRuntimeNs(const destiny::DeviceParams& params,
                        std::uint64_t reads, std::uint64_t writes,
                        std::uint64_t shifts) {
  return static_cast<double>(reads) * params.read_latency_ns +
         static_cast<double>(writes) * params.write_latency_ns +
         static_cast<double>(shifts) * params.shift_latency_ns;
}

}  // namespace rtmp::rtm
