// Energy accounting in the paper's terms (Fig. 5): leakage energy
// (leakage power x runtime), read/write energy, and shift energy.
#pragma once

#include <cstdint>

#include "destiny/device_model.h"

namespace rtmp::rtm {

/// Operation counts plus the runtime they imply.
struct ActivityCounts {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t shifts = 0;
  double runtime_ns = 0.0;
};

/// Energy totals in pJ. 1 mW x 1 ns = 1 pJ, so leakage_pj =
/// leakage_mw * runtime_ns with no further unit conversion.
struct EnergyBreakdown {
  double leakage_pj = 0.0;
  double read_write_pj = 0.0;
  double shift_pj = 0.0;

  [[nodiscard]] double total_pj() const noexcept {
    return leakage_pj + read_write_pj + shift_pj;
  }
};

/// Computes the breakdown for the given activity on the given device.
[[nodiscard]] EnergyBreakdown ComputeEnergy(
    const destiny::DeviceParams& params, const ActivityCounts& activity);

/// Runtime of the activity when requests are served back to back
/// (trace-driven mode, as in RTSim): every access pays its read/write
/// latency plus its shifts x shift latency.
[[nodiscard]] double ComputeRuntimeNs(const destiny::DeviceParams& params,
                                      std::uint64_t reads,
                                      std::uint64_t writes,
                                      std::uint64_t shifts);

}  // namespace rtmp::rtm
