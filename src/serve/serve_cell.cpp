#include "serve/serve_cell.h"

#include <stdexcept>
#include <string>

#include "core/strategy.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rtmp::serve {

sim::SimulationResult ToSimulationResult(const ServeResult& result,
                                         const rtm::RtmConfig& config) {
  sim::SimulationResult sim_result;
  sim_result.stats.reads = result.reads;
  sim_result.stats.writes = result.writes;
  sim_result.stats.shifts = result.total_shifts;
  sim_result.stats.runtime_ns = result.makespan_ns;
  sim_result.energy = result.energy;
  sim_result.area_mm2 = config.params.area_mm2;
  return sim_result;
}

ServeConfig CellServeConfig(const ServePolicy& policy,
                            const rtm::RtmConfig& config,
                            const sim::ExperimentOptions& options,
                            std::string_view benchmark_name, unsigned dbcs) {
  ServeConfig serve = policy.MakeConfig();
  serve.engine.strategy_options.cost.initial_alignment =
      config.initial_alignment;
  core::ScaleSearchEffort(serve.engine.strategy_options,
                          options.search_effort);
  // Same derivation as sim::RunCell's sequence 0: shard 0 keeps this
  // seed verbatim (WindowSeed(base, 0) == base), so a single-tenant
  // serve-static cell draws the exact seed its static twin draws.
  const std::uint64_t seed = util::HashString(benchmark_name) ^
                             (options.seed + dbcs);
  serve.engine.strategy_options.ga.seed = seed;
  serve.engine.strategy_options.rw.seed = seed;
  // Observability rides along; PlacementService::Run re-stamps tid with
  // the shard index per shard engine.
  serve.obs = options.obs;
  return serve;
}

sim::RunResult RunServeCell(const offsetstone::Benchmark& benchmark,
                            unsigned dbcs, std::string_view policy_name,
                            const sim::ExperimentOptions& options) {
  const auto policy = ServePolicyRegistry::Global().Find(policy_name);
  if (!policy) {
    throw std::invalid_argument("RunServeCell: unregistered serve policy '" +
                                std::string(policy_name) + "'");
  }

  sim::RunResult run;
  run.benchmark = benchmark.name;
  run.dbcs = dbcs;
  run.strategy_name = util::ToLower(policy_name);

  // All tenants share one device, so the cell's variable population is
  // the union of every admitted sequence's (tenant-prefixed) space.
  std::size_t total_vars = 0;
  for (const trace::AccessSequence& seq : benchmark.sequences) {
    total_vars += seq.num_variables();
  }
  if (total_vars == 0) return run;

  const rtm::RtmConfig config = sim::CellConfig(dbcs, total_vars);
  PlacementService service(
      CellServeConfig(*policy, config, options, benchmark.name, dbcs),
      config);
  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    const trace::AccessSequence& seq = benchmark.sequences[s];
    if (seq.num_variables() == 0) continue;
    (void)service.OpenSession("t" + std::to_string(s), seq);
  }
  const ServeResult result = service.Run();
  run.placement_cost = result.placement_cost;
  run.placement_wall_ms = result.placement_wall_ms;
  run.search_evaluations = result.evaluations;
  run.metrics.Accumulate(ToSimulationResult(result, config));
  return run;
}

}  // namespace rtmp::serve
