// Multi-tenant serve cells of the evaluation matrix.
//
// RunServeCell is the serve counterpart of online::RunOnlineCell: one
// (benchmark, dbc count, serve policy) cell, the benchmark's sequences
// admitted as tenants of ONE PlacementService on the cell's device
// configuration. The returned sim::RunResult carries the service's
// device view — shifts, accesses, runtime and energy all INCLUDE
// migration traffic and shared-channel waits — so serve cells compare
// apples-to-apples with static and online cells in the same report,
// golden and ResultTable.
//
// sim::RunCell dispatches here for any name that resolves in the
// serve-policy registry (after the strategy and online-policy
// registries miss), which is what lets ExperimentOptions::
// extra_strategies mix serve policies into RunMatrix grids.
#pragma once

#include <string_view>

#include "offsetstone/suite.h"
#include "serve/serve_policy.h"
#include "serve/service.h"
#include "sim/experiment.h"

namespace rtmp::serve {

/// Runs one serve cell: every non-empty sequence of `benchmark` becomes
/// a tenant ("t0", "t1", ... by sequence index) of one PlacementService
/// on the cell's device. Throws std::invalid_argument when `policy_name`
/// is not in ServePolicyRegistry::Global(). Seeding and effort follow
/// sim::RunCell's sequence-0 derivation, so a single-tenant
/// "serve-1s-static-<s>" cell is bit-identical to the
/// "online-static-<s>" cell (and hence to the "<s>" cell) on every exact
/// counter.
[[nodiscard]] sim::RunResult RunServeCell(
    const offsetstone::Benchmark& benchmark, unsigned dbcs,
    std::string_view policy_name, const sim::ExperimentOptions& options);

/// Aggregate of one ServeResult in sim terms (the piece RunServeCell
/// reports); exposed for scenarios that run the service directly and
/// want matching metrics.
[[nodiscard]] sim::SimulationResult ToSimulationResult(
    const ServeResult& result, const rtm::RtmConfig& config);

/// The ServeConfig an experiment cell hands the service: the policy's
/// recipe with the experiment's cost options, search effort and seed
/// stamped into the engine recipe (seed derivation identical to
/// sim::RunCell's sequence 0 — the service derives per-shard seeds from
/// it via online::WindowSeed).
[[nodiscard]] ServeConfig CellServeConfig(
    const ServePolicy& policy, const rtm::RtmConfig& config,
    const sim::ExperimentOptions& options, std::string_view benchmark_name,
    unsigned dbcs);

}  // namespace rtmp::serve
