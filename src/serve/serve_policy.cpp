#include "serve/serve_policy.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

#include "core/registry_namespace.h"
#include "core/strategy_registry.h"
#include "online/policy.h"
#include "util/strings.h"

namespace rtmp::serve {

namespace {

class FixedServePolicy final : public ServePolicy {
 public:
  FixedServePolicy(ServePolicyInfo info, ServeConfig config)
      : info_(std::move(info)), config_(std::move(config)) {}

  [[nodiscard]] const ServePolicyInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] ServeConfig MakeConfig() const override { return config_; }

 private:
  ServePolicyInfo info_;
  ServeConfig config_;
};

/// Factory body shared by the built-ins: resolve the wrapped online
/// policy lazily (at first Find), so registration order between the
/// registries does not matter.
ServePolicyRegistry::Factory BuiltinFactory(ServePolicyInfo info,
                                            MigrationBudgetConfig budget) {
  return [info = std::move(info), budget] {
    const auto online =
        online::OnlinePolicyRegistry::Global().Find(info.online_policy);
    if (!online) {
      throw std::invalid_argument(
          "ServePolicyRegistry: serve policy '" + info.name +
          "' wraps unregistered online policy '" + info.online_policy + "'");
    }
    ServeConfig config;
    config.num_shards = info.shards;
    config.budget = budget;
    config.engine = online->MakeConfig();
    return MakeFixedServePolicy(info, config);
  };
}

void RegisterFamily(ServePolicyRegistry& registry, const std::string& reseed) {
  // Budget tiers in migration shifts per served window (0 = unlimited);
  // burst allowance stays at the MigrationBudgetConfig default.
  constexpr std::uint64_t kTight = 256;
  constexpr std::uint64_t kLoose = 16384;

  for (const unsigned shards : {1u, 2u, 4u}) {
    const std::string n = std::to_string(shards) + "s";
    registry.Register(
        "serve-" + n + "-static-" + reseed,
        BuiltinFactory(
            ServePolicyInfo{
                "serve-" + n + "-static-" + reseed,
                n + " shard(s) of the online-static-" + reseed +
                    " oracle engine, unlimited migration budget",
                "online-static-" + reseed, shards, "unlimited"},
            MigrationBudgetConfig{}));
    registry.Register(
        "serve-" + n + "-ewma-" + reseed,
        BuiltinFactory(
            ServePolicyInfo{
                "serve-" + n + "-ewma-" + reseed,
                n + " shard(s) of online-ewma-" + reseed +
                    ", unlimited migration budget",
                "online-ewma-" + reseed, shards, "unlimited"},
            MigrationBudgetConfig{}));
    registry.Register(
        "serve-" + n + "-tight-ewma-" + reseed,
        BuiltinFactory(
            ServePolicyInfo{
                "serve-" + n + "-tight-ewma-" + reseed,
                n + " shard(s) of online-ewma-" + reseed +
                    ", tight global budget (" + std::to_string(kTight) +
                    " migration shifts/window)",
                "online-ewma-" + reseed, shards, "tight"},
            MigrationBudgetConfig{kTight, 4}));
    registry.Register(
        "serve-" + n + "-loose-ewma-" + reseed,
        BuiltinFactory(
            ServePolicyInfo{
                "serve-" + n + "-loose-ewma-" + reseed,
                n + " shard(s) of online-ewma-" + reseed +
                    ", loose global budget (" + std::to_string(kLoose) +
                    " migration shifts/window)",
                "online-ewma-" + reseed, shards, "loose"},
            MigrationBudgetConfig{kLoose, 4}));
  }
}

}  // namespace

std::shared_ptr<const ServePolicy> MakeFixedServePolicy(ServePolicyInfo info,
                                                        ServeConfig config) {
  return std::make_shared<const FixedServePolicy>(std::move(info),
                                                  std::move(config));
}

ServePolicyRegistry& ServePolicyRegistry::Global() {
  static ServePolicyRegistry* registry = [] {
    // Leaked: outlives ServePolicyRegistrar uses in static
    // destructors.
    // NOLINTNEXTLINE(rtmlint:naked-new): leaked Global() singleton.
    auto* r = new ServePolicyRegistry();
    r->ClaimCellNamespace("serve policy");
    RegisterBuiltinServePolicies(*r);
    return r;
  }();
  return *registry;
}

void ServePolicyRegistry::Register(std::string name, Factory factory) {
  if (!factory) {
    throw std::invalid_argument("ServePolicyRegistry: null factory for '" +
                                name + "'");
  }
  std::string key = util::ToLower(name);
  // Serve-policy names share the experiment engine's cell-name space
  // (cells, CLI arguments, report keys): same charset, and no collision
  // with a registered strategy or online policy.
  const auto valid_char = [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '-' || c == '_' || c == '.';
  };
  if (key.empty() || !std::all_of(key.begin(), key.end(), valid_char)) {
    throw std::invalid_argument("ServePolicyRegistry: invalid name '" + name +
                                "'");
  }
  if (core::StrategyRegistry::Global().Contains(key)) {
    throw std::invalid_argument(
        "ServePolicyRegistry: '" + key +
        "' is already a registered placement strategy");
  }
  if (online::OnlinePolicyRegistry::Global().Contains(key)) {
    throw std::invalid_argument("ServePolicyRegistry: '" + key +
                                "' is already a registered online policy");
  }
  if (namespace_kind_ != nullptr) {
    core::RegistryNamespace::Global().Claim(key, namespace_kind_);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    throw std::invalid_argument("ServePolicyRegistry: duplicate policy '" +
                                key + "'");
  }
  entries_.insert(it, {std::move(key), Entry{std::move(factory), nullptr}});
}

const ServePolicyRegistry::Entry* ServePolicyRegistry::FindEntry(
    const std::string& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) return nullptr;
  return &it->second;
}

std::shared_ptr<const ServePolicy> ServePolicyRegistry::Find(
    std::string_view name) const {
  const std::string key = util::ToLower(name);
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* entry = FindEntry(key);
    if (entry == nullptr) return nullptr;
    if (entry->instance) return entry->instance;
    factory = entry->factory;
  }
  // Run the factory unlocked: factories may consult the registries.
  auto instance = factory();
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindEntry(key);
  if (entry == nullptr) return instance;
  if (!entry->instance) entry->instance = std::move(instance);
  return entry->instance;
}

std::optional<ServePolicyInfo> ServePolicyRegistry::Describe(
    std::string_view name) const {
  const auto policy = Find(name);
  if (!policy) return std::nullopt;
  return policy->Describe();
}

bool ServePolicyRegistry::Contains(std::string_view name) const {
  const std::string key = util::ToLower(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  return FindEntry(key) != nullptr;
}

std::vector<std::string> ServePolicyRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(key);
  return names;
}

std::size_t ServePolicyRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void RegisterBuiltinServePolicies(ServePolicyRegistry& registry) {
  RegisterFamily(registry, "dma-sr");
}

ServePolicyRegistrar::ServePolicyRegistrar(
    std::string name, ServePolicyRegistry::Factory factory) {
  ServePolicyRegistry::Global().Register(std::move(name), std::move(factory));
}

}  // namespace rtmp::serve
