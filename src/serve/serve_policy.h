// Serve-policy registry: named multi-tenant service recipes, the third
// member of the experiment cell-name space after placement strategies
// (core/strategy_registry.h) and online policies (online/policy.h).
//
// A serve policy is a ServeConfig recipe: how many shards the device is
// partitioned into, which online policy drives each shard's engine, and
// how tight the global migration budget is. sim::RunCell resolves a name
// that neither the strategy nor the online-policy registry knows here,
// so serve policies enter RunMatrix grids, rtmbench scenarios and
// placement_explorer exactly like any other cell name.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/service.h"

namespace rtmp::serve {

/// Self-description of a registered serve policy.
struct ServePolicyInfo {
  /// Registry key: lowercase, unique ("serve-4s-ewma-dma-sr", ...).
  std::string name;
  /// One-line human-readable description for listings and docs.
  std::string summary;
  /// Registry name of the online policy driving each shard's engine.
  std::string online_policy;
  /// Device shards (equal DBC partitions).
  unsigned shards = 1;
  /// Migration-budget label: "unlimited", "tight" or "loose".
  std::string budget = "unlimited";
};

/// Abstract serve policy. Implementations must be stateless or
/// internally synchronized: the experiment engine may call MakeConfig()
/// from many threads concurrently on one instance.
class ServePolicy {
 public:
  virtual ~ServePolicy() = default;

  [[nodiscard]] virtual const ServePolicyInfo& Describe() const noexcept = 0;

  /// The service configuration this policy stands for. Callers stamp the
  /// run-specific engine fields afterwards (effort and seeds come from
  /// the experiment, not the policy).
  [[nodiscard]] virtual ServeConfig MakeConfig() const = 0;
};

/// Name -> factory registry, deliberately the same shape as
/// online::OnlinePolicyRegistry (lowercase keys, lazy cached instances,
/// thread-safe throughout).
class ServePolicyRegistry {
 public:
  using Factory = std::function<std::shared_ptr<const ServePolicy>()>;

  ServePolicyRegistry() = default;
  ServePolicyRegistry(const ServePolicyRegistry&) = delete;
  ServePolicyRegistry& operator=(const ServePolicyRegistry&) = delete;

  /// The process-wide registry, pre-populated with the built-in policies
  /// (see RegisterBuiltinServePolicies).
  [[nodiscard]] static ServePolicyRegistry& Global();

  /// Registers `factory` under `name` (normalized to lowercase). Throws
  /// std::invalid_argument if the name is empty, contains characters
  /// outside [a-z0-9._-], collides with a registered serve policy, a
  /// registered placement strategy, or a registered online policy (all
  /// three registries share the experiment cell-name space; see
  /// core/registry_namespace.h).
  void Register(std::string name, Factory factory);

  /// Marks this instance as an owner in the process-wide cell-name space
  /// (core/registry_namespace.h); same contract as
  /// core::StrategyRegistry::ClaimCellNamespace — Global() enables it
  /// ("serve policy"), fresh test instances leave it off.
  void ClaimCellNamespace(const char* kind) noexcept {
    namespace_kind_ = kind;
  }

  /// The policy registered under `name`; nullptr if unknown.
  [[nodiscard]] std::shared_ptr<const ServePolicy> Find(
      std::string_view name) const;

  /// Metadata of the policy registered under `name`; nullopt if unknown.
  [[nodiscard]] std::optional<ServePolicyInfo> Describe(
      std::string_view name) const;

  [[nodiscard]] bool Contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> Names() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    Factory factory;
    /// Constructed on first lookup, under mutex_.
    mutable std::shared_ptr<const ServePolicy> instance;
  };

  /// Requires mutex_ to be held by the caller.
  [[nodiscard]] const Entry* FindEntry(const std::string& key) const;

  mutable std::mutex mutex_;
  // Sorted by key; small enough (tens of policies) that a flat vector
  // beats a map.
  std::vector<std::pair<std::string, Entry>> entries_;
  /// Non-null only for Global() (see ClaimCellNamespace).
  const char* namespace_kind_ = nullptr;
};

/// Registers the built-in policies into `registry`:
///
///   serve-<N>s-static-<s>          N shards, each running the
///                                  online-static-<s> oracle engine;
///   serve-<N>s-ewma-<s>            N shards of online-ewma-<s>,
///                                  unlimited migration budget;
///   serve-<N>s-tight-ewma-<s>      as above with a tight global budget
///                                  (256 migration shifts per window);
///   serve-<N>s-loose-ewma-<s>      as above with a loose budget
///                                  (16384 shifts per window);
///
/// for N in {1, 2, 4} and s = dma-sr. Global() calls this once; tests
/// use it to build fresh registries.
void RegisterBuiltinServePolicies(ServePolicyRegistry& registry);

/// Convenience used by the built-ins and available to external code: a
/// policy that returns a fixed ServeConfig under a fixed description.
[[nodiscard]] std::shared_ptr<const ServePolicy> MakeFixedServePolicy(
    ServePolicyInfo info, ServeConfig config);

/// RAII self-registration into the Global() registry, for policies
/// defined outside this library. Same linker caveat as
/// core::StrategyRegistrar: keep registrars in a translation unit that
/// is otherwise linked in.
struct ServePolicyRegistrar {
  ServePolicyRegistrar(std::string name, ServePolicyRegistry::Factory factory);
};

}  // namespace rtmp::serve
