#include "serve/service.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace_recorder.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rtmp::serve {

namespace {

/// One shard's slice of the device: an equal DBC partition with the same
/// track geometry and circuit parameters. The DBC depth widens when the
/// shard's variable population outgrows its slice, mirroring
/// sim::CellConfig's oversized-sequence rule; a 1-shard partition of a
/// paper device is the device itself, which is what makes the
/// single-shard service bit-identical to a bare engine.
rtm::RtmConfig ShardDeviceConfig(const rtm::RtmConfig& device,
                                 unsigned num_shards,
                                 std::size_t shard_vars) {
  rtm::RtmConfig shard = device;
  shard.banks = 1;
  shard.subarrays_per_bank = 1;
  shard.dbcs_per_subarray = device.total_dbcs() / num_shards;
  if (shard_vars > shard.word_capacity()) {
    const std::uint64_t per_dbc =
        (shard_vars + shard.dbcs_per_subarray - 1) / shard.dbcs_per_subarray;
    shard.domains_per_dbc = static_cast<unsigned>(per_dbc);
  }
  shard.Validate();
  return shard;
}

/// Counter-wise a - b: the cache-tier delta of one arbitration turn.
cache::CacheStats CacheStatsDelta(const cache::CacheStats& a,
                                  const cache::CacheStats& b) {
  cache::CacheStats d;
  d.accesses = a.accesses - b.accesses;
  d.hits = a.hits - b.hits;
  d.misses = a.misses - b.misses;
  d.fills = a.fills - b.fills;
  d.writebacks = a.writebacks - b.writebacks;
  d.fill_shifts = a.fill_shifts - b.fill_shifts;
  d.fill_accesses = a.fill_accesses - b.fill_accesses;
  d.backing_ns = a.backing_ns - b.backing_ns;
  d.backing_pj = a.backing_pj - b.backing_pj;
  return d;
}

void AddCacheStats(cache::CacheStats& into, const cache::CacheStats& d) {
  into.accesses += d.accesses;
  into.hits += d.hits;
  into.misses += d.misses;
  into.fills += d.fills;
  into.writebacks += d.writebacks;
  into.fill_shifts += d.fill_shifts;
  into.fill_accesses += d.fill_accesses;
  into.backing_ns += d.backing_ns;
  into.backing_pj += d.backing_pj;
}

}  // namespace

std::uint32_t PlacementService::ShardEngine::RegisterVariable(
    std::string_view name, std::uint32_t owner) {
  if (cache != nullptr) return cache->RegisterVariable(name, owner);
  return online->RegisterVariable(name);
}

std::size_t PlacementService::ShardEngine::variables_seen() const noexcept {
  return cache != nullptr ? cache->variables_seen() : online->variables_seen();
}

void PlacementService::ShardEngine::Feed(std::span<const trace::Access> block,
                                         std::uint32_t base_id) {
  if (cache != nullptr) {
    cache->Feed(block, base_id);
  } else {
    online->Feed(block, base_id);
  }
}

void PlacementService::ShardEngine::FlushWindow() {
  if (cache != nullptr) {
    cache->FlushWindow();
  } else {
    online->FlushWindow();
  }
}

const std::vector<online::WindowRecord>&
PlacementService::ShardEngine::Windows() const noexcept {
  return cache != nullptr ? cache->Windows() : online->Windows();
}

const rtm::ControllerStats& PlacementService::ShardEngine::DeviceStats()
    const noexcept {
  return cache != nullptr ? cache->DeviceStats() : online->DeviceStats();
}

rtm::EnergyBreakdown PlacementService::ShardEngine::DeviceEnergy() const {
  return cache != nullptr ? cache->DeviceEnergy() : online->DeviceEnergy();
}

cache::CacheStats PlacementService::ShardEngine::CacheStatsNow() const {
  return cache != nullptr ? cache->stats() : cache::CacheStats{};
}

const char* ToString(AssignmentPolicy policy) noexcept {
  switch (policy) {
    case AssignmentPolicy::kRoundRobin:
      return "round-robin";
    case AssignmentPolicy::kLeastLoaded:
      return "least-loaded";
    case AssignmentPolicy::kAffinity:
      return "affinity";
  }
  return "?";
}

AssignmentPolicy ParseAssignmentPolicy(std::string_view text) {
  if (text == "round-robin") return AssignmentPolicy::kRoundRobin;
  if (text == "least-loaded") return AssignmentPolicy::kLeastLoaded;
  if (text == "affinity") return AssignmentPolicy::kAffinity;
  throw std::invalid_argument("ParseAssignmentPolicy: unknown policy '" +
                              std::string(text) + "'");
}

void MigrationBudget::RefillForWindow() noexcept {
  if (unlimited()) return;
  granted_ += config_.shifts_per_window;
  const std::uint64_t ceiling =
      config_.shifts_per_window * std::max<std::uint64_t>(
                                      config_.burst_windows, 1);
  balance_ = std::min(balance_ + config_.shifts_per_window, ceiling);
}

bool MigrationBudget::TryConsume(std::uint64_t shifts) noexcept {
  if (unlimited()) {
    spent_ += shifts;
    return true;
  }
  if (shifts > balance_) return false;
  balance_ -= shifts;
  spent_ += shifts;
  return true;
}

ChannelArbiter::ChannelArbiter(
    std::vector<std::vector<std::size_t>> tenants_per_shard,
    std::vector<unsigned> weights) {
  if (weights.size() != tenants_per_shard.size()) {
    throw std::invalid_argument(
        "ChannelArbiter: one weight per shard required");
  }
  shards_.reserve(tenants_per_shard.size());
  for (std::size_t s = 0; s < tenants_per_shard.size(); ++s) {
    if (weights[s] == 0) {
      throw std::invalid_argument("ChannelArbiter: shard weights must be >= 1");
    }
    shards_.push_back(ShardQueue{std::move(tenants_per_shard[s]), 0,
                                 weights[s]});
  }
}

std::size_t ChannelArbiter::NextTurn() {
  if (shards_.empty()) return kDone;
  for (std::size_t probed = 0; probed < shards_.size(); ++probed) {
    ShardQueue& queue = shards_[shard_cursor_];
    if (queue.tenants.empty()) {
      shard_cursor_ = (shard_cursor_ + 1) % shards_.size();
      turns_in_shard_ = 0;
      continue;
    }
    const std::size_t session = queue.tenants[queue.cursor];
    queue.cursor = (queue.cursor + 1) % queue.tenants.size();
    if (++turns_in_shard_ >= queue.weight) {
      shard_cursor_ = (shard_cursor_ + 1) % shards_.size();
      turns_in_shard_ = 0;
    }
    return session;
  }
  return kDone;
}

void ChannelArbiter::Retire(std::size_t shard, std::size_t session) {
  ShardQueue& queue = shards_.at(shard);
  const auto it =
      std::find(queue.tenants.begin(), queue.tenants.end(), session);
  if (it == queue.tenants.end()) return;
  const std::size_t index =
      static_cast<std::size_t>(it - queue.tenants.begin());
  queue.tenants.erase(it);
  if (index < queue.cursor) --queue.cursor;
  if (queue.cursor >= queue.tenants.size()) queue.cursor = 0;
}

PlacementService::PlacementService(ServeConfig config, rtm::RtmConfig device)
    : config_(std::move(config)),
      device_(std::move(device)),
      budget_(config_.budget),
      shard_load_(config_.num_shards, 0) {
  if (config_.num_shards == 0) {
    throw std::invalid_argument("PlacementService: num_shards must be >= 1");
  }
  if (device_.total_dbcs() % config_.num_shards != 0) {
    throw std::invalid_argument(
        "PlacementService: num_shards must divide the device's DBC count");
  }
  if (!config_.shard_weights.empty() &&
      config_.shard_weights.size() != config_.num_shards) {
    throw std::invalid_argument(
        "PlacementService: shard_weights must be empty or one per shard");
  }
  for (const unsigned w : config_.shard_weights) {
    if (w == 0) {
      throw std::invalid_argument(
          "PlacementService: shard weights must be >= 1");
    }
  }
  obs_ = config_.obs;
  if (obs_.trace != nullptr) {
    trace_turn_ = obs_.trace->Intern("turn");
    trace_budget_denied_ = obs_.trace->Intern("budget-denied");
    key_tenant_ = obs_.trace->Intern("tenant");
    key_accesses_ = obs_.trace->Intern("accesses");
    key_shifts_ = obs_.trace->Intern("shifts");
  }
  if (obs_.metrics != nullptr) {
    m_turns_ = &obs_.metrics->Counter("serve/turns");
    m_budget_denials_ = &obs_.metrics->Counter("serve/budget_denials");
  }
}

std::size_t PlacementService::AssignShard(
    std::string_view name, const trace::AccessSequence& sequence) {
  const std::size_t shards = config_.num_shards;
  std::size_t shard = 0;
  switch (config_.assignment) {
    case AssignmentPolicy::kRoundRobin:
      shard = sessions_.size() % shards;
      break;
    case AssignmentPolicy::kLeastLoaded: {
      for (std::size_t s = 1; s < shards; ++s) {
        if (shard_load_[s] < shard_load_[shard]) shard = s;
      }
      break;
    }
    case AssignmentPolicy::kAffinity:
      shard = util::HashString(name) % shards;
      break;
  }
  // Transition weight of the admitted stream (cost-bearing transitions).
  shard_load_[shard] += sequence.empty()
                            ? 0
                            : static_cast<std::uint64_t>(sequence.size() - 1);
  return shard;
}

std::size_t PlacementService::OpenSession(
    std::string tenant_name, const trace::AccessSequence& sequence) {
  if (finished_) {
    throw std::logic_error("PlacementService: service already ran");
  }
  if (tenant_name.empty()) {
    throw std::invalid_argument("PlacementService: empty tenant name");
  }
  for (const Session& session : sessions_) {
    if (session.name == tenant_name) {
      throw std::invalid_argument("PlacementService: duplicate tenant '" +
                                  tenant_name + "'");
    }
  }
  Session session;
  session.shard = AssignShard(tenant_name, sequence);
  session.name = std::move(tenant_name);
  session.sequence = &sequence;
  sessions_.push_back(std::move(session));
  return sessions_.size() - 1;
}

void PlacementService::ServeTurn(Session& session, ShardEngine& engine,
                                 TenantStats& stats) {
  budget_.RefillForWindow();
  const trace::AccessSequence& seq = *session.sequence;
  const std::size_t remaining = seq.size() - session.cursor;
  const std::size_t quantum =
      config_.engine.window_accesses == online::kWholeTraceWindow
          ? remaining
          : std::min(config_.engine.window_accesses, remaining);

  const std::uint64_t requests_before = engine.DeviceStats().requests;
  const rtm::EnergyBreakdown energy_before = engine.DeviceEnergy();
  const cache::CacheStats cache_before = engine.CacheStatsNow();
  const double makespan_before = engine.DeviceStats().makespan_ns;

  // The whole quantum goes down as one batched span — one engine call
  // per turn, remapped into the tenant's shard-local id space — instead
  // of a per-access Feed loop.
  const std::span<const trace::Access> block(
      seq.accesses().data() + session.cursor, quantum);
  engine.Feed(block, session.base_id);
  for (const trace::Access& access : block) {
    if (access.type == trace::AccessType::kWrite) {
      ++stats.writes;
    } else {
      ++stats.reads;
    }
  }
  session.cursor += quantum;
  // Close the turn at a window boundary: engine windows map 1:1 onto
  // (tenant, turn) batches, so the latest record is this turn's.
  engine.FlushWindow();

  const online::WindowRecord& record = engine.Windows().back();
  stats.accesses += quantum;
  stats.device_requests += engine.DeviceStats().requests - requests_before;
  stats.service_shifts += record.service_shifts;
  stats.migration_shifts += record.migration_shifts;
  if (record.replaced) ++stats.migrations;
  stats.migrated_vars += record.migrated_vars;
  if (record.budget_denied) ++stats.budget_denials;
  ++stats.windows;
  stats.placement_cost += record.window_cost;
  stats.exposed_latency_ns += record.latency_ns;
  stats.window_latencies.push_back(record.latency_ns);
  // Always-on latency distribution: the tenant's and the service's own
  // device-level histogram see the same rounded sample, which is what
  // makes the tenant-merge == device equality exact.
  const std::uint64_t latency_sample =
      static_cast<std::uint64_t>(std::llround(record.latency_ns));
  stats.latency_hist.Record(latency_sample);
  latency_hist_.Record(latency_sample);

  if (obs_.trace != nullptr) {
    const auto tid = static_cast<std::uint32_t>(session.shard);
    const double makespan_after = engine.DeviceStats().makespan_ns;
    const std::array<obs::TraceRecorder::Arg, 3> args{
        obs::TraceRecorder::Arg{key_tenant_, true, session.trace_name},
        obs::TraceRecorder::Arg{key_accesses_, false, quantum},
        obs::TraceRecorder::Arg{key_shifts_, false, record.service_shifts}};
    obs_.trace->Complete(trace_turn_, obs_.pid, tid, makespan_before,
                         makespan_after - makespan_before, args);
    if (record.budget_denied) {
      const std::array<obs::TraceRecorder::Arg, 1> denied{
          obs::TraceRecorder::Arg{key_tenant_, true, session.trace_name}};
      obs_.trace->Instant(trace_budget_denied_, obs_.pid, tid, makespan_after,
                          denied);
    }
  }
  if (m_turns_ != nullptr) ++*m_turns_;
  if (record.budget_denied && m_budget_denials_ != nullptr) {
    ++*m_budget_denials_;
  }

  const rtm::EnergyBreakdown energy_after = engine.DeviceEnergy();
  stats.energy.leakage_pj += energy_after.leakage_pj - energy_before.leakage_pj;
  stats.energy.read_write_pj +=
      energy_after.read_write_pj - energy_before.read_write_pj;
  stats.energy.shift_pj += energy_after.shift_pj - energy_before.shift_pj;
  AddCacheStats(stats.cache,
                CacheStatsDelta(engine.CacheStatsNow(), cache_before));
}

ServeResult PlacementService::Run() {
  if (finished_) {
    throw std::logic_error("PlacementService: service already ran");
  }
  finished_ = true;

  const std::size_t shards = config_.num_shards;
  std::vector<std::vector<std::size_t>> members(shards);
  std::vector<std::size_t> shard_vars(shards, 0);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    members[sessions_[i].shard].push_back(i);
    shard_vars[sessions_[i].shard] += sessions_[i].sequence->num_variables();
  }

  // One engine per shard. All controllers point at the one shared
  // channel; the global budget gates every engine's migrations (after a
  // caller-provided gate, which keeps its veto). In hybrid-memory mode
  // the engine is a cache tier wrapped around the same recipe, its
  // capacity resolved against the shard's variable population and its
  // device sized for the CAPACITY — at ratio 1.0 the same device the
  // plain service would build, which is what keeps the cache oracle
  // bit-identical.
  const bool cache_mode = config_.cache.enabled;
  const online::OnlineConfig& recipe = config_.engine;
  std::vector<ShardEngine> engines;
  engines.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    online::OnlineConfig engine_config = recipe;
    engine_config.controller.shared_channel = &channel_;
    // Shard engines inherit the service's sinks on their own trace row.
    engine_config.obs = config_.obs;
    engine_config.obs.tid = static_cast<std::uint32_t>(s);
    if (obs_.trace != nullptr) {
      obs_.trace->SetThreadName(obs_.pid, static_cast<std::uint32_t>(s),
                                "shard " + std::to_string(s));
    }
    engine_config.strategy_options.ga.seed =
        online::WindowSeed(recipe.strategy_options.ga.seed, s);
    engine_config.strategy_options.rw.seed =
        online::WindowSeed(recipe.strategy_options.rw.seed, s);
    engine_config.migration_gate =
        [this, user_gate = recipe.migration_gate](std::uint64_t shifts) {
          if (user_gate && !user_gate(shifts)) return false;
          return budget_.TryConsume(shifts);
        };
    ShardEngine engine;
    if (cache_mode) {
      cache::CacheConfig cc;
      cc.eviction = config_.cache.eviction;
      cc.capacity_ratio = config_.cache.capacity_ratio;
      cc.backing = config_.cache.backing;
      cc.eviction_seed = online::WindowSeed(config_.cache.eviction_seed, s);
      cc.engine = std::move(engine_config);
      cc.capacity_slots = cache::ResolveCapacity(cc, shard_vars[s]);
      const std::size_t capacity = cc.capacity_slots;
      engine.cache = std::make_unique<cache::CacheEngine>(
          std::move(cc),
          ShardDeviceConfig(device_, config_.num_shards, capacity));
    } else {
      engine.online = std::make_unique<online::OnlineEngine>(
          std::move(engine_config),
          ShardDeviceConfig(device_, config_.num_shards, shard_vars[s]));
    }
    engines.push_back(std::move(engine));
  }

  // Pre-register every tenant's variable space shard-major in admission
  // order, names prefixed "<tenant>/": ids stay dense per shard, and a
  // single tenant's ids coincide with its sequence's (oracle property).
  // In cache mode the tenant is the variable's cache OWNER (session
  // index), so quota-scoped eviction can tell frames apart by tenant.
  ServeResult result;
  result.tenants.resize(sessions_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    for (const std::size_t i : members[s]) {
      Session& session = sessions_[i];
      const trace::AccessSequence& seq = *session.sequence;
      session.base_id =
          static_cast<trace::VariableId>(engines[s].variables_seen());
      for (trace::VariableId v = 0; v < seq.num_variables(); ++v) {
        (void)engines[s].RegisterVariable(session.name + "/" + seq.name_of(v),
                                          static_cast<std::uint32_t>(i));
      }
      result.tenants[i].name = session.name;
      result.tenants[i].shard = s;
      if (obs_.trace != nullptr) {
        session.trace_name = obs_.trace->Intern(session.name);
      }
    }
  }
  if (cache_mode && config_.cache.tenant_quota_slots != 0) {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      engines[sessions_[i].shard].cache->SetOwnerQuota(
          static_cast<std::uint32_t>(i), config_.cache.tenant_quota_slots);
    }
  }

  // Arbiter over tenants with traffic; accessless tenants keep their
  // placement slots but never hold the channel.
  std::vector<std::vector<std::size_t>> active(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    for (const std::size_t i : members[s]) {
      if (!sessions_[i].sequence->empty()) active[s].push_back(i);
    }
  }
  std::vector<unsigned> weights = config_.shard_weights;
  if (weights.empty()) weights.assign(shards, 1);
  ChannelArbiter arbiter(std::move(active), std::move(weights));

  for (std::size_t turn = arbiter.NextTurn(); turn != ChannelArbiter::kDone;
       turn = arbiter.NextTurn()) {
    Session& session = sessions_[turn];
    ServeTurn(session, engines[session.shard], result.tenants[turn]);
    if (session.cursor >= session.sequence->size()) {
      arbiter.Retire(session.shard, turn);
    }
  }

  const unsigned dbcs_per_shard =
      device_.total_dbcs() / config_.num_shards;
  result.shards.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ShardStats shard;
    shard.index = s;
    shard.first_dbc = static_cast<unsigned>(s) * dbcs_per_shard;
    shard.num_dbcs = dbcs_per_shard;
    for (const std::size_t i : members[s]) {
      shard.tenants.push_back(sessions_[i].name);
    }
    if (engines[s].cache != nullptr) {
      cache::CacheResult finished = engines[s].cache->Finish();
      shard.result = std::move(finished.online);
      shard.cache = finished.cache;
    } else {
      shard.result = engines[s].online->Finish();
    }

    const online::OnlineResult& r = shard.result;
    result.service_shifts += r.service_shifts;
    result.migration_shifts += r.migration_shifts;
    result.reads += r.reads;
    result.writes += r.writes;
    result.migrations += r.migrations;
    result.migrated_vars += r.migrated_vars;
    result.budget_denials += r.budget_denials;
    result.placement_cost += r.placement_cost;
    result.placement_wall_ms += r.placement_wall_ms;
    result.evaluations += r.evaluations;
    result.makespan_ns = std::max(result.makespan_ns, r.stats.makespan_ns);
    result.energy.leakage_pj += r.energy.leakage_pj;
    result.energy.read_write_pj += r.energy.read_write_pj;
    result.energy.shift_pj += r.energy.shift_pj;
    AddCacheStats(result.cache, shard.cache);
    result.shards.push_back(std::move(shard));
  }
  result.total_shifts = result.service_shifts + result.migration_shifts +
                        result.cache.fill_shifts;
  result.budget_granted = budget_.granted();
  result.budget_spent = budget_.spent();
  result.latency_hist = latency_hist_;

  std::vector<double> mean_latencies;
  for (const TenantStats& tenant : result.tenants) {
    if (tenant.windows > 0) {
      mean_latencies.push_back(tenant.mean_window_latency_ns());
    }
  }
  result.fairness = util::JainFairness(mean_latencies);
  return result;
}

}  // namespace rtmp::serve
