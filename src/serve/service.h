// Multi-tenant placement service: several tenants' access streams served
// concurrently on ONE device.
//
// The device's DBCs are partitioned into `num_shards` equal shards, each
// driven by its own online::OnlineEngine (private DBC state, private
// placement, private phase detector). What stays shared is exactly what
// hardware shares:
//
//  * the read/write channel — every shard controller books occupancy on
//    one rtm::SharedChannel, so one tenant's traffic delays another's;
//  * the migration budget — a global MigrationBudget meters re-placement
//    shifts across ALL shards (per-window refill with a bounded burst
//    allowance), plugged into each engine's migration_gate;
//  * the arbiter — a deterministic weighted-round-robin ChannelArbiter
//    decides which tenant's next window batch is issued, one engine
//    window per turn.
//
// Tenants are assigned to shards by a pluggable AssignmentPolicy
// (round-robin, least-loaded by transition weight, or name-affinity
// hashing). Per-tenant accounting (TenantStats) attributes every window's
// accesses, shifts, exposed latency, energy and budget denials to the
// tenant whose turn produced them; the per-tenant sums reproduce the
// device totals exactly on integer counters (and to rounding on energy).
//
// Oracle property (pinned by tests/serve_service_test.cpp): one tenant on
// one shard with an unlimited budget is bit-identical to a bare
// OnlineEngine run of the same configuration — same placement decisions,
// same shift counts, same makespan.
//
// Hybrid-memory mode (ServeCacheConfig): each shard's engine can be a
// cache::CacheEngine instead — the shard device holds a bounded resident
// set and misses fill from the modeled backing store. Tenants become
// cache OWNERS (owner id = session index) so a per-tenant resident quota
// scopes a hot tenant's evictions to its own frames once it is at quota.
// Per-tenant CacheStats are attributed turn-by-turn exactly like shifts.
// Cache oracle (also pinned by tests/serve_service_test.cpp): cache mode
// at capacity_ratio 1.0 with no quotas is bit-identical to the plain
// service on every counter.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cache/engine.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "online/engine.h"
#include "rtm/config.h"
#include "rtm/controller.h"
#include "rtm/energy_model.h"
#include "trace/access_sequence.h"

namespace rtmp::serve {

/// How tenants are mapped onto shards at admission time.
enum class AssignmentPolicy : std::uint8_t {
  /// i-th admitted tenant goes to shard i mod num_shards.
  kRoundRobin,
  /// Shard with the least accumulated transition weight (sequence length
  /// minus one, the number of cost-bearing transitions); lowest index on
  /// ties. Balances load when tenants differ wildly in traffic.
  kLeastLoaded,
  /// util::HashString(tenant name) mod num_shards: a tenant re-admitted
  /// under the same name always lands on the same shard.
  kAffinity,
};

/// "round-robin", "least-loaded", "affinity".
[[nodiscard]] const char* ToString(AssignmentPolicy policy) noexcept;

/// Inverse of ToString; throws std::invalid_argument on unknown text.
[[nodiscard]] AssignmentPolicy ParseAssignmentPolicy(std::string_view text);

/// Global re-placement allowance shared by every shard.
struct MigrationBudgetConfig {
  /// Migration shifts granted per served window; 0 = unlimited.
  std::uint64_t shifts_per_window = 0;
  /// Unused allowance accumulates up to shifts_per_window *
  /// burst_windows, so a quiet stretch can bankroll one large
  /// re-placement without unmetering steady-state traffic.
  std::uint64_t burst_windows = 4;
};

/// Token-bucket meter over migration shifts (see MigrationBudgetConfig).
/// The service calls RefillForWindow() once per arbitration turn and
/// plugs TryConsume into every shard engine's migration_gate; turns are
/// serialized by the arbiter, so no locking is needed.
class MigrationBudget {
 public:
  explicit MigrationBudget(MigrationBudgetConfig config) : config_(config) {}

  [[nodiscard]] bool unlimited() const noexcept {
    return config_.shifts_per_window == 0;
  }

  /// Accrues one window's allowance (capped at the burst ceiling).
  void RefillForWindow() noexcept;

  /// Admits a migration estimated at `shifts` if covered; consumes on
  /// admission. Unlimited budgets admit everything (and still track
  /// spending).
  [[nodiscard]] bool TryConsume(std::uint64_t shifts) noexcept;

  /// Total allowance accrued / migration shifts admitted so far. For a
  /// limited budget spent() <= granted() is an invariant.
  [[nodiscard]] std::uint64_t granted() const noexcept { return granted_; }
  [[nodiscard]] std::uint64_t spent() const noexcept { return spent_; }
  [[nodiscard]] std::uint64_t balance() const noexcept { return balance_; }

 private:
  MigrationBudgetConfig config_;
  std::uint64_t balance_ = 0;
  std::uint64_t granted_ = 0;
  std::uint64_t spent_ = 0;
};

/// Deterministic weighted-round-robin interleaving of per-shard tenant
/// queues on the shared channel. One turn = one engine window of one
/// tenant. A shard with weight w serves w consecutive turns (round-robin
/// over its active tenants) before the arbiter moves on; exhausted
/// tenants are retired and skipped.
class ChannelArbiter {
 public:
  /// Sentinel session index for "every tenant is retired".
  static constexpr std::size_t kDone = static_cast<std::size_t>(-1);

  /// `tenants_per_shard[s]` lists the session indices assigned to shard
  /// s in admission order; `weights` must have one entry (>= 1) per
  /// shard. Throws std::invalid_argument on a size mismatch or a zero
  /// weight.
  ChannelArbiter(std::vector<std::vector<std::size_t>> tenants_per_shard,
                 std::vector<unsigned> weights);

  /// The session index whose window batch goes next; kDone when every
  /// tenant has been retired. Advances the arbiter state.
  [[nodiscard]] std::size_t NextTurn();

  /// Removes a finished session from its shard's queue.
  void Retire(std::size_t shard, std::size_t session);

 private:
  struct ShardQueue {
    std::vector<std::size_t> tenants;
    std::size_t cursor = 0;  ///< next tenant within the shard
    unsigned weight = 1;
  };

  std::vector<ShardQueue> shards_;
  std::size_t shard_cursor_ = 0;    ///< shard currently holding the channel
  unsigned turns_in_shard_ = 0;     ///< turns served in the current hold
};

/// Cache-tier settings of the service (see header comment). With
/// `enabled`, every shard runs a cache::CacheEngine whose capacity is
/// ResolveCapacity(capacity_ratio) of the shard's variable population,
/// and the shard device is sized for that CAPACITY (capacity_ratio 1.0
/// reproduces the plain service's devices exactly).
struct ServeCacheConfig {
  bool enabled = false;
  /// Eviction policy registry name (cache/eviction.h).
  std::string eviction = "cache-lru";
  /// Shard resident-set size as a fraction of the shard's variables.
  double capacity_ratio = 1.0;
  /// Per-tenant resident-frame cap (cache::CacheEngine::SetOwnerQuota);
  /// 0 = unlimited. Applied to every tenant alike.
  std::size_t tenant_quota_slots = 0;
  cache::BackingStoreConfig backing{};
  /// Base seed for randomized eviction policies; shard s uses
  /// online::WindowSeed(eviction_seed, s) so shards draw independent
  /// streams deterministically.
  std::uint64_t eviction_seed = 0;
};

struct ServeConfig {
  /// Equal DBC partitions of the device; must divide total_dbcs().
  unsigned num_shards = 1;
  AssignmentPolicy assignment = AssignmentPolicy::kRoundRobin;
  /// Arbiter weight per shard (consecutive turns before moving on);
  /// empty = weight 1 everywhere, otherwise one entry (>= 1) per shard.
  std::vector<unsigned> shard_weights;
  MigrationBudgetConfig budget{};
  /// Per-shard engine recipe. The service overrides
  /// controller.shared_channel (all shards share one channel), composes
  /// migration_gate with the global budget (a caller-provided gate is
  /// consulted first), and derives per-shard search seeds with
  /// online::WindowSeed(base, shard) — shard 0 keeps the base seeds
  /// verbatim, preserving the single-shard oracle.
  online::OnlineConfig engine{};
  /// Hybrid-memory mode; disabled by default (plain shard engines).
  ServeCacheConfig cache{};
  /// Observability sinks (obs/obs.h), forwarded into every shard engine
  /// with tid = shard index; the service adds per-turn spans with tenant
  /// attribution and budget-denial instants. Default = disabled. The
  /// per-tenant latency histograms below are ALWAYS on — one integer
  /// Record per turn — so quantiles are available without wiring.
  obs::ObsConfig obs{};
};

/// Everything attributed to one tenant across its turns.
struct TenantStats {
  std::string name;
  std::size_t shard = 0;
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;   ///< service reads fed by this tenant
  std::uint64_t writes = 0;  ///< service writes fed by this tenant
  /// Controller requests issued during this tenant's turns (service plus
  /// migration traffic its windows triggered, plus cache fill sweeps in
  /// hybrid-memory mode).
  std::uint64_t device_requests = 0;
  std::uint64_t service_shifts = 0;
  std::uint64_t migration_shifts = 0;
  std::size_t migrations = 0;
  std::size_t migrated_vars = 0;
  /// Re-placements the shared budget denied during this tenant's turns.
  std::size_t budget_denials = 0;
  std::size_t windows = 0;
  std::uint64_t placement_cost = 0;
  /// Sum of WindowRecord::latency_ns over the tenant's windows: the
  /// makespan its turns added, including waits behind other tenants on
  /// the shared channel.
  double exposed_latency_ns = 0.0;
  /// Per-window exposed latencies (fairness is scored on their mean).
  std::vector<double> window_latencies;
  /// Exposed-latency distribution (log2 buckets over rounded
  /// latency_ns). Tenant histograms Merge to ServeResult::latency_hist
  /// EXACTLY — the attribution invariant extended to distributions;
  /// read p50/p99 via Quantile().
  obs::Histogram latency_hist{};
  /// Energy delta across the tenant's turns (leakage follows makespan
  /// advance, so shared-channel waits are charged to the waiting tenant).
  rtm::EnergyBreakdown energy{};
  /// Cache-tier counters across the tenant's turns (zeros when the
  /// cache tier is disabled). A miss is charged to the tenant whose
  /// turn triggered it, even when the quota let it evict another
  /// tenant's frame.
  cache::CacheStats cache{};

  [[nodiscard]] double mean_window_latency_ns() const noexcept {
    if (windows == 0) return 0.0;
    return exposed_latency_ns / static_cast<double>(windows);
  }
};

/// One shard's engine run plus its DBC slice.
struct ShardStats {
  std::size_t index = 0;
  unsigned first_dbc = 0;
  unsigned num_dbcs = 0;
  std::vector<std::string> tenants;  ///< names, admission order
  online::OnlineResult result;
  /// Cache-tier counters of this shard's engine (zeros when disabled).
  cache::CacheStats cache{};
};

/// The service's aggregate view of one Run().
struct ServeResult {
  std::vector<TenantStats> tenants;  ///< admission order
  std::vector<ShardStats> shards;
  std::uint64_t service_shifts = 0;
  std::uint64_t migration_shifts = 0;
  /// service + migration + cache fill — the device total; per-tenant
  /// service and migration shifts plus cache.fill_shifts sum to it
  /// exactly.
  std::uint64_t total_shifts = 0;
  /// Cache-tier totals over all shards (zeros when disabled); the
  /// per-tenant CacheStats sum to it exactly.
  cache::CacheStats cache{};
  std::uint64_t reads = 0;   ///< incl. migration reads
  std::uint64_t writes = 0;  ///< incl. migration writes
  std::size_t migrations = 0;
  std::size_t migrated_vars = 0;
  std::size_t budget_denials = 0;
  std::uint64_t budget_granted = 0;
  std::uint64_t budget_spent = 0;
  /// Finish time of the latest shard (shards share one timeline through
  /// the channel, so this is the service makespan).
  double makespan_ns = 0.0;
  rtm::EnergyBreakdown energy{};
  /// Device-level exposed-latency distribution, recorded per turn by
  /// the service itself (not derived from the tenant histograms — their
  /// exact-Merge equality to this one is a tested invariant).
  obs::Histogram latency_hist{};
  /// Jain fairness index over the mean per-window exposed latency of
  /// every tenant that served at least one window.
  double fairness = 1.0;
  std::uint64_t placement_cost = 0;
  double placement_wall_ms = 0.0;
  std::size_t evaluations = 0;
};

/// One service run: admit tenants with OpenSession(), then Run() once.
///
/// Sequences are borrowed — they must outlive Run(). Tenant variable
/// names are prefixed "<tenant>/" inside the shard engines, so tenants
/// may reuse names freely without sharing placement slots.
class PlacementService {
 public:
  /// Validates the configuration: num_shards must be >= 1 and divide the
  /// device's DBC count, shard_weights empty or one nonzero entry per
  /// shard (the engine recipe validates itself when the shards are
  /// built). Throws std::invalid_argument.
  PlacementService(ServeConfig config, rtm::RtmConfig device);

  /// Admits a tenant and assigns its shard per the assignment policy.
  /// Returns the session index (admission order). Throws
  /// std::invalid_argument on an empty or duplicate name, std::logic_error
  /// after Run().
  std::size_t OpenSession(std::string tenant_name,
                          const trace::AccessSequence& sequence);

  /// Serves every admitted tenant to completion and returns the
  /// aggregate result. One-shot: throws std::logic_error on reuse.
  [[nodiscard]] ServeResult Run();

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_sessions() const noexcept {
    return sessions_.size();
  }

 private:
  struct Session {
    std::string name;
    const trace::AccessSequence* sequence = nullptr;
    std::size_t shard = 0;
    /// First engine variable id of this tenant's (prefixed) space.
    trace::VariableId base_id = 0;
    std::size_t cursor = 0;  ///< next un-fed access
    /// Interned tenant name for turn-span attribution (trace enabled).
    std::uint32_t trace_name = 0;
  };

  /// One shard's engine: the bare adaptive engine, or — in hybrid-memory
  /// mode — the cache tier wrapped around one. Exactly one member is
  /// set; the forwarders give ServeTurn a single shape for both.
  struct ShardEngine {
    std::unique_ptr<online::OnlineEngine> online;
    std::unique_ptr<cache::CacheEngine> cache;

    std::uint32_t RegisterVariable(std::string_view name,
                                   std::uint32_t owner);
    [[nodiscard]] std::size_t variables_seen() const noexcept;
    void Feed(std::span<const trace::Access> block, std::uint32_t base_id);
    void FlushWindow();
    [[nodiscard]] const std::vector<online::WindowRecord>& Windows()
        const noexcept;
    [[nodiscard]] const rtm::ControllerStats& DeviceStats() const noexcept;
    [[nodiscard]] rtm::EnergyBreakdown DeviceEnergy() const;
    /// Live cache counters; all-zero in plain mode.
    [[nodiscard]] cache::CacheStats CacheStatsNow() const;
  };

  [[nodiscard]] std::size_t AssignShard(std::string_view name,
                                        const trace::AccessSequence& sequence);
  /// Feeds one window batch of `session` and attributes the outcome.
  void ServeTurn(Session& session, ShardEngine& engine, TenantStats& stats);

  ServeConfig config_;
  rtm::RtmConfig device_;
  MigrationBudget budget_;
  rtm::SharedChannel channel_;
  std::vector<Session> sessions_;
  /// Accumulated transition weight per shard (kLeastLoaded bookkeeping).
  std::vector<std::uint64_t> shard_load_;
  bool finished_ = false;
  /// Device-level latency histogram, fed once per turn (always on).
  obs::Histogram latency_hist_{};
  /// Observability wiring resolved at construction (see ServeConfig::obs).
  obs::ObsConfig obs_{};
  std::uint32_t trace_turn_ = 0;
  std::uint32_t trace_budget_denied_ = 0;
  std::uint32_t key_tenant_ = 0;
  std::uint32_t key_accesses_ = 0;
  std::uint32_t key_shifts_ = 0;
  std::uint64_t* m_turns_ = nullptr;
  std::uint64_t* m_budget_denials_ = nullptr;
};

}  // namespace rtmp::serve
