#include "sim/experiment.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "cache/cache_cell.h"
#include "cache/cache_policy.h"
#include "core/strategy_registry.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "online/online_cell.h"
#include "online/policy.h"
#include "serve/serve_cell.h"
#include "serve/serve_policy.h"
#include "sim/worker_pool.h"
#include "trace/trace_stream.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workloads/phased.h"
#include "workloads/workload.h"

namespace rtmp::sim {

namespace {

unsigned ResolveThreadCount(unsigned requested, std::size_t num_cells) {
  unsigned threads = requested;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(1, num_cells)));
}

/// The per-sequence body of a static-strategy cell, shared by RunCell's
/// materialized loop and the streaming trace path. `sequence_index`
/// counts delivered sequences including empty ones (the seed
/// derivation does).
void AccumulateStaticSequence(const trace::AccessSequence& seq,
                              std::size_t sequence_index, unsigned dbcs,
                              const core::PlacementStrategy& runner,
                              const ExperimentOptions& options,
                              std::string_view benchmark_name,
                              RunResult& run) {
  if (seq.num_variables() == 0) return;
  const rtm::RtmConfig config = CellConfig(dbcs, seq.num_variables());

  core::PlacementRequest request;
  request.sequence = &seq;
  request.num_dbcs = config.total_dbcs();
  request.capacity = config.domains_per_dbc;
  request.options.cost.initial_alignment = config.initial_alignment;
  core::ScaleSearchEffort(request.options, options.search_effort);
  // Distinct, reproducible seeds per (benchmark, sequence, dbcs) —
  // independent of which worker thread runs the cell.
  const std::uint64_t seed =
      util::HashString(benchmark_name) ^
      (options.seed + sequence_index * 0x9E3779B9ULL + dbcs);
  request.options.ga.seed = seed;
  request.options.rw.seed = seed;

  const core::PlacementResult placed = core::RunTimed(runner, request);
  run.placement_cost += placed.cost;
  run.placement_wall_ms += placed.wall_ms;
  run.search_evaluations += placed.evaluations;
  run.metrics.Accumulate(Simulate(seq, placed.placement, config));
}

/// A workload spec the streaming matrix hands to RunStreamedTraceCell:
/// an on-disk trace file that neither the workload registry nor the
/// phased combinator claims (ResolveWorkload's exact precedence).
bool IsStreamableTraceFile(const std::string& spec) {
  if (workloads::WorkloadRegistry::Global().Contains(spec)) return false;
  if (workloads::ParsePhasedSpec(spec)) return false;
  std::error_code ec;
  return std::filesystem::is_regular_file(std::filesystem::path(spec), ec);
}

/// The benchmark name a streamed trace cell reports: the file's declared
/// name, or the file stem — the exact naming TraceFileWorkload uses, so
/// streamed and materialized cells key identically in ResultTable.
std::string StreamedBenchmarkName(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("RunStreamedTraceCell: cannot open " + path);
  }
  std::string name = trace::PeekTraceBenchmark(in);
  if (name.empty()) name = std::filesystem::path(path).stem().string();
  return name;
}

}  // namespace

rtm::RtmConfig CellConfig(unsigned dbcs, std::size_t num_variables) {
  // The paper's device for `dbcs`, with the DBC depth widened when a
  // sequence has more variables than the 4 KiB part can hold (cc65's
  // 1336 variables exceed the 1024 words of the 2-DBC config).
  rtm::RtmConfig config = rtm::RtmConfig::Paper(dbcs);
  const std::uint64_t capacity = config.word_capacity();
  if (num_variables > capacity) {
    const auto per_dbc = static_cast<unsigned>(
        (num_variables + dbcs - 1) / dbcs);
    config.domains_per_dbc = per_dbc;
  }
  return config;
}

void RunMetrics::Accumulate(const SimulationResult& result) {
  shifts += result.stats.shifts;
  accesses += result.stats.accesses();
  runtime_ns += result.stats.runtime_ns;
  leakage_pj += result.energy.leakage_pj;
  read_write_pj += result.energy.read_write_pj;
  shift_pj += result.energy.shift_pj;
  area_mm2 = std::max(area_mm2, result.area_mm2);
}

double SearchEffortFromEnv(double fallback) {
  const char* raw = std::getenv("RTMPLACE_EFFORT");
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || value <= 0.0) return fallback;
  return value;
}

unsigned ThreadCountFromEnv(unsigned fallback) {
  // Anything beyond this is surely a typo, and values above UINT_MAX
  // would otherwise wrap in the cast.
  constexpr long kMaxThreads = 1024;
  const char* raw = std::getenv("RTMPLACE_THREADS");
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || value <= 0 || value > kMaxThreads) return fallback;
  return static_cast<unsigned>(value);
}

void WriteJson(util::JsonWriter& writer, const RunResult& result) {
  writer.BeginObject();
  writer.Member("benchmark", result.benchmark);
  writer.Member("dbcs", result.dbcs);
  writer.Member("strategy", result.strategy_name);
  writer.Member("shifts", result.metrics.shifts);
  writer.Member("accesses", result.metrics.accesses);
  writer.Member("runtime_ns", result.metrics.runtime_ns);
  writer.Member("leakage_pj", result.metrics.leakage_pj);
  writer.Member("read_write_pj", result.metrics.read_write_pj);
  writer.Member("shift_pj", result.metrics.shift_pj);
  writer.Member("area_mm2", result.metrics.area_mm2);
  writer.Member("placement_cost", result.placement_cost);
  writer.Member("placement_wall_ms", result.placement_wall_ms);
  writer.Member("search_evaluations",
                static_cast<std::uint64_t>(result.search_evaluations));
  writer.EndObject();
}

RunResult RunResultFromJson(const util::JsonValue& value) {
  RunResult result;
  result.benchmark = value.At("benchmark").AsString();
  result.dbcs = static_cast<unsigned>(value.At("dbcs").AsUInt());
  result.strategy_name = value.At("strategy").AsString();
  result.strategy = core::ParseStrategy(result.strategy_name);
  result.metrics.shifts = value.At("shifts").AsUInt();
  result.metrics.accesses = value.At("accesses").AsUInt();
  result.metrics.runtime_ns = value.At("runtime_ns").AsDouble();
  result.metrics.leakage_pj = value.At("leakage_pj").AsDouble();
  result.metrics.read_write_pj = value.At("read_write_pj").AsDouble();
  result.metrics.shift_pj = value.At("shift_pj").AsDouble();
  result.metrics.area_mm2 = value.At("area_mm2").AsDouble();
  result.placement_cost = value.At("placement_cost").AsUInt();
  result.placement_wall_ms = value.At("placement_wall_ms").AsDouble();
  result.search_evaluations =
      static_cast<std::size_t>(value.At("search_evaluations").AsUInt());
  return result;
}

RunResult RunCell(const offsetstone::Benchmark& benchmark, unsigned dbcs,
                  std::string_view strategy_name,
                  const ExperimentOptions& options) {
  const auto runner = core::StrategyRegistry::Global().Find(strategy_name);
  const bool is_online =
      online::OnlinePolicyRegistry::Global().Contains(strategy_name);
  const bool is_serve =
      serve::ServePolicyRegistry::Global().Contains(strategy_name);
  const bool is_cache =
      cache::CachePolicyRegistry::Global().Contains(strategy_name);
  // The registries reject cross-registry collisions at registration
  // (enforced process-wide by core::RegistryNamespace for the Global()
  // instances), but a name registered AFTER its twin would silently
  // shadow it here — refuse to guess which one the caller meant.
  if ((runner != nullptr) + is_online + is_serve + is_cache > 1) {
    throw std::invalid_argument(
        "RunCell: '" + std::string(strategy_name) +
        "' is registered in more than one of the strategy, online-policy, "
        "serve-policy and cache-policy registries; re-register one under a "
        "distinct name");
  }
  if (!runner) {
    // Online, serve and cache policies share the strategy name space: a
    // miss here is one of their cells when those registries know the
    // name.
    if (is_online) {
      return online::RunOnlineCell(benchmark, dbcs, strategy_name, options);
    }
    if (is_serve) {
      return serve::RunServeCell(benchmark, dbcs, strategy_name, options);
    }
    if (is_cache) {
      return cache::RunCacheCell(benchmark, dbcs, strategy_name, options);
    }
    throw std::invalid_argument(
        "RunCell: '" + std::string(strategy_name) +
        "' is neither a registered strategy, an online policy, a serve "
        "policy, nor a cache policy");
  }

  RunResult run;
  run.benchmark = benchmark.name;
  run.dbcs = dbcs;
  // Store the normalized *requested* name (the registry key), not
  // Describe().name: a delegating factory may self-describe differently,
  // and the cell must stay reachable under the name the caller used.
  run.strategy_name = util::ToLower(strategy_name);
  run.strategy = runner->Describe().spec;

  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    AccumulateStaticSequence(benchmark.sequences[s], s, dbcs, *runner,
                             options, benchmark.name, run);
  }
  return run;
}

RunResult RunStreamedTraceCell(const std::string& path, unsigned dbcs,
                               std::string_view strategy_name,
                               const ExperimentOptions& options) {
  const auto runner = core::StrategyRegistry::Global().Find(strategy_name);
  const bool is_online =
      online::OnlinePolicyRegistry::Global().Contains(strategy_name);
  const bool is_serve =
      serve::ServePolicyRegistry::Global().Contains(strategy_name);
  const bool is_cache =
      cache::CachePolicyRegistry::Global().Contains(strategy_name);
  if ((runner != nullptr) + is_online + is_serve + is_cache > 1) {
    throw std::invalid_argument(
        "RunStreamedTraceCell: '" + std::string(strategy_name) +
        "' is registered in more than one of the strategy, online-policy, "
        "serve-policy and cache-policy registries; re-register one under a "
        "distinct name");
  }
  if (is_serve) {
    // A serve cell arbitrates its tenants' sequences against each other,
    // so it needs the whole benchmark at once: materialize this one cell.
    const std::vector<std::string> spec{path};
    const auto suite = LoadWorkloads(spec, options);
    return serve::RunServeCell(suite.front(), dbcs, strategy_name, options);
  }
  if (runner == nullptr && !is_online && !is_cache) {
    throw std::invalid_argument(
        "RunStreamedTraceCell: '" + std::string(strategy_name) +
        "' is neither a registered strategy, an online policy, a serve "
        "policy, nor a cache policy");
  }

  RunResult run;
  run.benchmark = StreamedBenchmarkName(path);
  run.dbcs = dbcs;
  run.strategy_name = util::ToLower(strategy_name);
  if (runner) run.strategy = runner->Describe().spec;

  const auto online_policy =
      is_online ? online::OnlinePolicyRegistry::Global().Find(strategy_name)
                : nullptr;
  const auto cache_policy =
      is_cache ? cache::CachePolicyRegistry::Global().Find(strategy_name)
               : nullptr;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("RunStreamedTraceCell: cannot open " + path);
  }
  std::size_t index = 0;
  const trace::SequenceSink sink = [&](const std::string&,
                                       trace::AccessSequence seq) {
    // `index` counts every delivered sequence (empty ones included),
    // matching the materialized loop's seed derivation.
    if (runner != nullptr) {
      AccumulateStaticSequence(seq, index, dbcs, *runner, options,
                               run.benchmark, run);
    } else if (online_policy) {
      online::AccumulateOnlineSequence(seq, index, dbcs, *online_policy,
                                       options, run.benchmark, run);
    } else {
      cache::AccumulateCacheSequence(seq, index, dbcs, *cache_policy, options,
                                     run.benchmark, run);
    }
    ++index;
  };
  (void)trace::StreamTrace(in, sink);
  return run;
}

RunResult RunCell(const offsetstone::Benchmark& benchmark, unsigned dbcs,
                  const core::StrategySpec& strategy,
                  const ExperimentOptions& options) {
  return RunCell(benchmark, dbcs, ToString(strategy), options);
}

namespace {

/// Shared body of both RunMatrix overloads. `stream_paths` parallels
/// `suite` (or is empty): a non-empty entry marks a stub benchmark whose
/// cells run through RunStreamedTraceCell on that path instead of the
/// materialized suite entry.
std::vector<RunResult> RunMatrixImpl(
    const std::vector<offsetstone::Benchmark>& suite,
    const std::vector<std::string>& stream_paths,
    const ExperimentOptions& options) {
  // Enum-backed strategies first, then the name-only extras, matching the
  // documented grid order. Deduped on the normalized name: a repeated
  // strategy would burn duplicate cells and then be silently dropped by
  // ResultTable's first-wins map.
  std::vector<std::string> strategy_names;
  strategy_names.reserve(options.strategies.size() +
                         options.extra_strategies.size());
  const auto add_name = [&strategy_names](std::string name) {
    if (std::find(strategy_names.begin(), strategy_names.end(), name) ==
        strategy_names.end()) {
      strategy_names.push_back(std::move(name));
    }
  };
  for (const core::StrategySpec& spec : options.strategies) {
    add_name(ToString(spec));
  }
  for (const std::string& name : options.extra_strategies) {
    add_name(util::ToLower(name));
  }

  struct Cell {
    std::size_t benchmark;
    unsigned dbcs;
    std::size_t strategy;
  };
  std::vector<Cell> cells;
  cells.reserve(suite.size() * options.dbc_counts.size() *
                strategy_names.size());
  for (std::size_t b = 0; b < suite.size(); ++b) {
    for (const unsigned dbcs : options.dbc_counts) {
      for (std::size_t s = 0; s < strategy_names.size(); ++s) {
        cells.push_back({b, dbcs, s});
      }
    }
  }

  std::vector<RunResult> results(cells.size());
  if (cells.empty()) return results;

  const unsigned threads = ResolveThreadCount(options.num_threads,
                                              cells.size());

  // Observability: each cell records into PRIVATE sinks (pid = cell
  // index) that are merged into the caller's sinks in grid order after
  // the parallel run — the emitted trace/metrics are therefore invariant
  // under RTMPLACE_THREADS and rerun even though cells finish in any
  // order.
  struct CellObs {
    std::unique_ptr<obs::TraceRecorder> trace;
    std::unique_ptr<obs::MetricsRegistry> metrics;
  };
  const bool obs_on = options.obs.enabled();
  std::vector<CellObs> cell_obs(obs_on ? cells.size() : 0);

  // Each worker claims the next unstarted cell and writes its result into
  // the cell's fixed slot; a lock serializes only the progress callback.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::size_t completed = 0;
  std::exception_ptr error;

  const auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      const Cell& cell = cells[i];
      try {
        const ExperimentOptions* run_options = &options;
        ExperimentOptions cell_options;
        if (obs_on) {
          cell_options = options;
          if (options.obs.trace != nullptr) {
            cell_obs[i].trace = std::make_unique<obs::TraceRecorder>();
            cell_options.obs.trace = cell_obs[i].trace.get();
          }
          if (options.obs.metrics != nullptr) {
            cell_obs[i].metrics = std::make_unique<obs::MetricsRegistry>();
            cell_options.obs.metrics = cell_obs[i].metrics.get();
          }
          cell_options.obs.pid = static_cast<std::uint32_t>(i);
          run_options = &cell_options;
        }
        const bool streamed = cell.benchmark < stream_paths.size() &&
                              !stream_paths[cell.benchmark].empty();
        results[i] =
            streamed ? RunStreamedTraceCell(stream_paths[cell.benchmark],
                                            cell.dbcs,
                                            strategy_names[cell.strategy],
                                            *run_options)
                     : RunCell(suite[cell.benchmark], cell.dbcs,
                               strategy_names[cell.strategy], *run_options);
        if (options.progress) {
          const std::lock_guard<std::mutex> lock(mutex);
          options.progress(results[i], ++completed, cells.size());
        }
      } catch (...) {
        // Captures RunCell AND progress-callback exceptions: anything that
        // escaped a worker's entry function would std::terminate.
        const std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    // Parked persistent threads instead of a spawn-and-join per matrix:
    // back-to-back grids (the bench harness, the serve layer) reuse the
    // same workers. Determinism is unchanged — cells are still claimed
    // through the atomic counter and written to fixed slots.
    WorkerPool::Global().Run(threads, worker);
  }
  if (error) std::rethrow_exception(error);

  if (obs_on) {
    // Merge the per-cell sinks in grid order and label each cell's trace
    // row. The "cell" span covers the cell's simulated makespan on a
    // synthetic tid 0; the cell's own engine events sit next to it under
    // the same pid.
    obs::TraceRecorder* trace = options.obs.trace;
    std::uint32_t trace_cell = 0;
    std::uint32_t key_shifts = 0;
    std::uint32_t key_accesses = 0;
    if (trace != nullptr) {
      trace_cell = trace->Intern("cell");
      key_shifts = trace->Intern("shifts");
      key_accesses = trace->Intern("accesses");
    }
    std::uint64_t* cells_counter =
        options.obs.metrics != nullptr
            ? &options.obs.metrics->Counter("sim/cells")
            : nullptr;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const RunResult& run = results[i];
      if (trace != nullptr) {
        const auto pid = static_cast<std::uint32_t>(i);
        trace->SetProcessName(pid, run.benchmark + "/" +
                                       std::to_string(run.dbcs) + "dbc/" +
                                       run.strategy_name);
        const std::array<obs::TraceRecorder::Arg, 2> args{
            obs::TraceRecorder::Arg{key_shifts, false, run.metrics.shifts},
            obs::TraceRecorder::Arg{key_accesses, false,
                                    run.metrics.accesses}};
        trace->Complete(trace_cell, pid, 0, 0.0, run.metrics.runtime_ns,
                        args);
        if (cell_obs[i].trace != nullptr) trace->Merge(*cell_obs[i].trace);
      }
      if (options.obs.metrics != nullptr && cell_obs[i].metrics != nullptr) {
        options.obs.metrics->Merge(*cell_obs[i].metrics);
      }
      if (cells_counter != nullptr) ++*cells_counter;
    }
  }
  return results;
}

}  // namespace

std::vector<RunResult> RunMatrix(
    const std::vector<offsetstone::Benchmark>& suite,
    const ExperimentOptions& options) {
  return RunMatrixImpl(suite, {}, options);
}

std::vector<offsetstone::Benchmark> LoadWorkloads(
    std::span<const std::string> specs, const ExperimentOptions& options) {
  workloads::WorkloadRequest request;
  request.seed = options.workload_seed;
  request.scale = options.workload_scale;
  std::vector<offsetstone::Benchmark> suite;
  suite.reserve(specs.size());
  for (const std::string& spec : specs) {
    const auto workload = workloads::ResolveWorkload(spec);
    if (!workload) {
      throw std::invalid_argument(
          "LoadWorkloads: '" + spec +
          "' is neither a registered workload nor a trace file");
    }
    suite.push_back(workload->Generate(request));
  }
  return suite;
}

std::vector<RunResult> RunMatrix(std::span<const std::string> workload_specs,
                                 const ExperimentOptions& options) {
  if (!options.stream_trace_files) {
    return RunMatrix(LoadWorkloads(workload_specs, options), options);
  }
  // Streaming mode: trace-file specs become name-only stubs paired with
  // their path; everything else materializes exactly as before.
  workloads::WorkloadRequest request;
  request.seed = options.workload_seed;
  request.scale = options.workload_scale;
  std::vector<offsetstone::Benchmark> suite;
  std::vector<std::string> stream_paths;
  suite.reserve(workload_specs.size());
  stream_paths.reserve(workload_specs.size());
  for (const std::string& spec : workload_specs) {
    if (IsStreamableTraceFile(spec)) {
      offsetstone::Benchmark stub;
      stub.name = StreamedBenchmarkName(spec);
      suite.push_back(std::move(stub));
      stream_paths.push_back(spec);
      continue;
    }
    const auto workload = workloads::ResolveWorkload(spec);
    if (!workload) {
      throw std::invalid_argument(
          "RunMatrix: '" + spec +
          "' is neither a registered workload nor a trace file");
    }
    suite.push_back(workload->Generate(request));
    stream_paths.emplace_back();
  }
  return RunMatrixImpl(suite, stream_paths, options);
}

std::string ResultTable::Key(const std::string& benchmark, unsigned dbcs,
                             const std::string& strategy_name) {
  // Strategy names are case-insensitive everywhere else; keep lookups
  // consistent with the registry.
  return benchmark + "|" + std::to_string(dbcs) + "|" +
         util::ToLower(strategy_name);
}

ResultTable::ResultTable(const std::vector<RunResult>& results) {
  for (const RunResult& r : results) {
    cells_.emplace(Key(r.benchmark, r.dbcs, r.strategy_name), r.metrics);
  }
}

const RunMetrics& ResultTable::At(const std::string& benchmark, unsigned dbcs,
                                  const std::string& strategy_name) const {
  const auto it = cells_.find(Key(benchmark, dbcs, strategy_name));
  if (it == cells_.end()) {
    throw std::out_of_range("ResultTable: missing cell " +
                            Key(benchmark, dbcs, strategy_name));
  }
  return it->second;
}

const RunMetrics& ResultTable::At(const std::string& benchmark, unsigned dbcs,
                                  const core::StrategySpec& strategy) const {
  return At(benchmark, dbcs, core::ToString(strategy));
}

std::vector<double> ResultTable::NormalizedShifts(
    const std::vector<std::string>& benchmarks, unsigned dbcs,
    const core::StrategySpec& strategy,
    const core::StrategySpec& baseline) const {
  std::vector<double> normalized;
  normalized.reserve(benchmarks.size());
  for (const std::string& b : benchmarks) {
    const double value = static_cast<double>(At(b, dbcs, strategy).shifts);
    const double base = static_cast<double>(At(b, dbcs, baseline).shifts);
    // A zero-shift baseline (degenerate tiny benchmark) normalizes to 1:
    // both strategies are optimal there.
    normalized.push_back(base == 0.0 ? (value == 0.0 ? 1.0 : value)
                                     : value / base);
  }
  return normalized;
}

}  // namespace rtmp::sim
