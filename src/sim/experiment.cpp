#include "sim/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace rtmp::sim {

namespace {

/// The paper's device for `dbcs`, with the DBC depth widened when a
/// sequence has more variables than the 4 KiB part can hold (cc65's 1336
/// variables exceed the 1024 words of the 2-DBC config).
rtm::RtmConfig ConfigFor(unsigned dbcs, std::size_t num_variables) {
  rtm::RtmConfig config = rtm::RtmConfig::Paper(dbcs);
  const std::uint64_t capacity = config.word_capacity();
  if (num_variables > capacity) {
    const auto per_dbc = static_cast<unsigned>(
        (num_variables + dbcs - 1) / dbcs);
    config.domains_per_dbc = per_dbc;
  }
  return config;
}

}  // namespace

void RunMetrics::Accumulate(const SimulationResult& result) {
  shifts += result.stats.shifts;
  accesses += result.stats.accesses();
  runtime_ns += result.stats.runtime_ns;
  leakage_pj += result.energy.leakage_pj;
  read_write_pj += result.energy.read_write_pj;
  shift_pj += result.energy.shift_pj;
  area_mm2 = std::max(area_mm2, result.area_mm2);
}

double SearchEffortFromEnv(double fallback) {
  const char* raw = std::getenv("RTMPLACE_EFFORT");
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || value <= 0.0) return fallback;
  return value;
}

RunResult RunCell(const offsetstone::Benchmark& benchmark, unsigned dbcs,
                  const core::StrategySpec& strategy,
                  const ExperimentOptions& options) {
  RunResult run;
  run.benchmark = benchmark.name;
  run.dbcs = dbcs;
  run.strategy = strategy;

  for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
    const trace::AccessSequence& seq = benchmark.sequences[s];
    if (seq.num_variables() == 0) continue;
    const rtm::RtmConfig config = ConfigFor(dbcs, seq.num_variables());

    core::StrategyOptions strategy_options;
    strategy_options.cost.initial_alignment = config.initial_alignment;
    core::ScaleSearchEffort(strategy_options, options.search_effort);
    // Distinct, reproducible seeds per (benchmark, sequence, dbcs).
    const std::uint64_t seed = util::HashString(benchmark.name) ^
                               (options.seed + s * 0x9E3779B9ULL + dbcs);
    strategy_options.ga.seed = seed;
    strategy_options.rw.seed = seed;

    const core::Placement placement =
        core::RunStrategy(strategy, seq, config.total_dbcs(),
                          config.domains_per_dbc, strategy_options);
    run.metrics.Accumulate(Simulate(seq, placement, config));
  }
  return run;
}

std::vector<RunResult> RunMatrix(
    const std::vector<offsetstone::Benchmark>& suite,
    const ExperimentOptions& options) {
  std::vector<RunResult> results;
  results.reserve(suite.size() * options.dbc_counts.size() *
                  options.strategies.size());
  for (const offsetstone::Benchmark& benchmark : suite) {
    for (const unsigned dbcs : options.dbc_counts) {
      for (const core::StrategySpec& strategy : options.strategies) {
        results.push_back(RunCell(benchmark, dbcs, strategy, options));
      }
    }
  }
  return results;
}

std::string ResultTable::Key(const std::string& benchmark, unsigned dbcs,
                             const core::StrategySpec& strategy) {
  return benchmark + "|" + std::to_string(dbcs) + "|" +
         core::ToString(strategy);
}

ResultTable::ResultTable(const std::vector<RunResult>& results) {
  for (const RunResult& r : results) {
    cells_.emplace(Key(r.benchmark, r.dbcs, r.strategy), r.metrics);
  }
}

const RunMetrics& ResultTable::At(const std::string& benchmark, unsigned dbcs,
                                  const core::StrategySpec& strategy) const {
  const auto it = cells_.find(Key(benchmark, dbcs, strategy));
  if (it == cells_.end()) {
    throw std::out_of_range("ResultTable: missing cell " +
                            Key(benchmark, dbcs, strategy));
  }
  return it->second;
}

std::vector<double> ResultTable::NormalizedShifts(
    const std::vector<std::string>& benchmarks, unsigned dbcs,
    const core::StrategySpec& strategy,
    const core::StrategySpec& baseline) const {
  std::vector<double> normalized;
  normalized.reserve(benchmarks.size());
  for (const std::string& b : benchmarks) {
    const double value = static_cast<double>(At(b, dbcs, strategy).shifts);
    const double base = static_cast<double>(At(b, dbcs, baseline).shifts);
    // A zero-shift baseline (degenerate tiny benchmark) normalizes to 1:
    // both strategies are optimal there.
    normalized.push_back(base == 0.0 ? (value == 0.0 ? 1.0 : value) : value / base);
  }
  return normalized;
}

}  // namespace rtmp::sim
