// Experiment harness: runs benchmark suites through strategies and RTM
// configurations and aggregates the metrics the paper's evaluation section
// reports. Every bench binary is a thin wrapper around this module.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "offsetstone/suite.h"
#include "rtm/config.h"
#include "rtm/energy_model.h"
#include "sim/simulator.h"

namespace rtmp::sim {

/// Metrics summed over all sequences of one benchmark under one strategy
/// and one RTM configuration.
struct RunMetrics {
  std::uint64_t shifts = 0;
  std::uint64_t accesses = 0;
  double runtime_ns = 0.0;
  double leakage_pj = 0.0;
  double read_write_pj = 0.0;
  double shift_pj = 0.0;
  double area_mm2 = 0.0;  ///< of the (largest) device used, not summed

  [[nodiscard]] double total_energy_pj() const noexcept {
    return leakage_pj + read_write_pj + shift_pj;
  }

  void Accumulate(const SimulationResult& result);
};

/// One (benchmark, dbc count, strategy) cell of the evaluation matrix.
struct RunResult {
  std::string benchmark;
  unsigned dbcs = 0;
  core::StrategySpec strategy;
  RunMetrics metrics;
};

struct ExperimentOptions {
  std::vector<unsigned> dbc_counts{2, 4, 8, 16};
  std::vector<core::StrategySpec> strategies = core::PaperStrategies();
  /// GA/RW effort relative to the paper's parameters (1.0 = 200 GA
  /// generations with mu = lambda = 100 and 60 000 RW iterations). The
  /// benches default to a fraction so the full matrix runs in minutes;
  /// set the RTMPLACE_EFFORT environment variable to raise it.
  double search_effort = 0.05;
  std::uint64_t seed = 0x0FF5E7ULL;
};

/// Reads ExperimentOptions::search_effort from the RTMPLACE_EFFORT
/// environment variable (falls back to `fallback` when unset/invalid).
[[nodiscard]] double SearchEffortFromEnv(double fallback);

/// Runs the full matrix over `suite`. Sequences whose variable count
/// exceeds the paper device's capacity run on an iso-DBC-count device with
/// proportionally deeper DBCs (documented in DESIGN.md §3); everything else
/// uses rtm::RtmConfig::Paper(dbcs) exactly.
[[nodiscard]] std::vector<RunResult> RunMatrix(
    const std::vector<offsetstone::Benchmark>& suite,
    const ExperimentOptions& options);

/// Runs one benchmark / strategy / DBC-count cell.
[[nodiscard]] RunResult RunCell(const offsetstone::Benchmark& benchmark,
                                unsigned dbcs,
                                const core::StrategySpec& strategy,
                                const ExperimentOptions& options);

/// Index into RunMatrix results: metrics keyed by (benchmark, dbcs,
/// strategy name).
class ResultTable {
 public:
  explicit ResultTable(const std::vector<RunResult>& results);

  [[nodiscard]] const RunMetrics& At(const std::string& benchmark,
                                     unsigned dbcs,
                                     const core::StrategySpec& strategy) const;

  /// value(strategy) / value(baseline) per benchmark; the paper's Fig. 4
  /// normalizes shift counts to GA, Fig. 5 energies to AFD-OFU.
  [[nodiscard]] std::vector<double> NormalizedShifts(
      const std::vector<std::string>& benchmarks, unsigned dbcs,
      const core::StrategySpec& strategy,
      const core::StrategySpec& baseline) const;

 private:
  std::map<std::string, RunMetrics> cells_;
  static std::string Key(const std::string& benchmark, unsigned dbcs,
                         const core::StrategySpec& strategy);
};

}  // namespace rtmp::sim
