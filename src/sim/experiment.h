// Experiment engine: runs benchmark suites through strategies and RTM
// configurations and aggregates the metrics the paper's evaluation section
// reports. Every bench binary is a thin wrapper around this module.
//
// RunMatrix fans the (benchmark x dbc count x strategy) grid across a
// std::thread pool. Cells are independent and carry their own
// deterministic seed (derived from benchmark name, sequence index and DBC
// count), so the parallel run is bit-identical to the serial one and to
// itself across machines; the result vector is always in grid order
// (benchmark-major, then dbcs, then strategy) regardless of which thread
// finished first.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/strategy.h"
#include "obs/obs.h"
#include "offsetstone/suite.h"
#include "rtm/config.h"
#include "rtm/energy_model.h"
#include "sim/simulator.h"
#include "util/json.h"

namespace rtmp::sim {

/// Metrics summed over all sequences of one benchmark under one strategy
/// and one RTM configuration.
struct RunMetrics {
  std::uint64_t shifts = 0;
  std::uint64_t accesses = 0;
  double runtime_ns = 0.0;
  double leakage_pj = 0.0;
  double read_write_pj = 0.0;
  double shift_pj = 0.0;
  double area_mm2 = 0.0;  ///< of the (largest) device used, not summed

  [[nodiscard]] double total_energy_pj() const noexcept {
    return leakage_pj + read_write_pj + shift_pj;
  }

  void Accumulate(const SimulationResult& result);
};

/// One (benchmark, dbc count, strategy) cell of the evaluation matrix.
struct RunResult {
  std::string benchmark;
  unsigned dbcs = 0;
  /// Registry name of the strategy this cell ran (canonical lowercase).
  std::string strategy_name;
  /// Enum spec when the strategy is an enum-backed built-in; nullopt for
  /// cells from ExperimentOptions::extra_strategies without one.
  std::optional<core::StrategySpec> strategy;
  RunMetrics metrics;
  /// Analytic shift cost reported by the strategy (sums over sequences);
  /// cross-checks metrics.shifts from the device simulation.
  std::uint64_t placement_cost = 0;
  /// Wall time spent inside the strategy itself, summed over sequences.
  double placement_wall_ms = 0.0;
  /// Candidate placements the strategy evaluated (search effort used).
  std::size_t search_evaluations = 0;
};

/// Serializes one cell as a JSON object (the element type of the bench
/// harness' "cells" array; see bench/harness/report.h for the schema).
/// Emits `strategy` by registry name only — the enum spec is restored on
/// the way back via core::ParseStrategy.
void WriteJson(util::JsonWriter& writer, const RunResult& result);

/// Inverse of WriteJson; throws std::runtime_error on schema mismatch.
[[nodiscard]] RunResult RunResultFromJson(const util::JsonValue& value);

/// Called after each finished cell. `completed` counts finished cells so
/// far, `total` the whole grid. Invoked under a lock, so the callback may
/// print without further synchronization, but it runs on a worker thread —
/// keep it cheap.
using ProgressCallback =
    std::function<void(const RunResult&, std::size_t completed,
                       std::size_t total)>;

struct ExperimentOptions {
  std::vector<unsigned> dbc_counts{2, 4, 8, 16};
  std::vector<core::StrategySpec> strategies = core::PaperStrategies();
  /// Additional strategies by registry name, appended after `strategies`
  /// in the grid. This is how externally registered strategies (see
  /// core::StrategyRegistrar) enter the evaluation matrix.
  std::vector<std::string> extra_strategies;
  /// GA/RW effort relative to the paper's parameters (1.0 = 200 GA
  /// generations with mu = lambda = 100 and 60 000 RW iterations). The
  /// benches default to a fraction so the full matrix runs in minutes;
  /// set the RTMPLACE_EFFORT environment variable to raise it.
  double search_effort = 0.05;
  std::uint64_t seed = 0x0FF5E7ULL;
  /// Worker threads for RunMatrix. 0 = hardware concurrency, 1 = serial
  /// (same results either way; see header comment).
  unsigned num_threads = 0;
  ProgressCallback progress;
  /// Generation seed and scale handed to workloads resolved by name
  /// (the workload-spec RunMatrix overload / LoadWorkloads). Independent
  /// of `seed`, which drives the GA/RW search streams.
  std::uint64_t workload_seed = 0;
  double workload_scale = 1.0;
  /// Stream trace-FILE specs of the workload-spec RunMatrix overload
  /// through RunStreamedTraceCell instead of materializing them: each
  /// cell re-reads the file holding one sequence in memory at a time.
  /// Bit-identical to the materialized run (pinned by
  /// tests/experiment_test.cpp); registered workloads and phased specs
  /// always materialize. Off by default — materializing once and
  /// sharing the benchmark across cells is faster for files that fit.
  bool stream_trace_files = false;
  /// Observability sinks (obs/obs.h), forwarded into every cell's engine
  /// config. RunMatrix gives each cell a PRIVATE recorder/registry
  /// (pid = cell index) and merges them into these sinks in grid order
  /// after the parallel run, plus a per-cell "cell" span — so the
  /// emitted trace and metrics snapshot are invariant under
  /// RTMPLACE_THREADS and rerun. Default = disabled.
  obs::ObsConfig obs{};
};

/// Device configuration of one experiment cell: the paper's device for
/// `dbcs`, with the DBC depth widened when a sequence has more variables
/// than the 4 KiB part can hold (see the "Oversized sequences" note in
/// README.md). Static and online cells share this so their numbers stay
/// comparable.
[[nodiscard]] rtm::RtmConfig CellConfig(unsigned dbcs,
                                        std::size_t num_variables);

/// Reads ExperimentOptions::search_effort from the RTMPLACE_EFFORT
/// environment variable (falls back to `fallback` when unset/invalid).
[[nodiscard]] double SearchEffortFromEnv(double fallback);

/// Reads ExperimentOptions::num_threads from the RTMPLACE_THREADS
/// environment variable (falls back to `fallback` when unset/invalid).
[[nodiscard]] unsigned ThreadCountFromEnv(unsigned fallback);

/// Runs the full matrix over `suite` on a thread pool (see header
/// comment). Sequences whose variable count exceeds the paper device's
/// capacity run on an iso-DBC-count device with proportionally deeper
/// DBCs (see ConfigFor in experiment.cpp and the "Oversized sequences"
/// note in README.md); everything else uses rtm::RtmConfig::Paper(dbcs)
/// exactly.
[[nodiscard]] std::vector<RunResult> RunMatrix(
    const std::vector<offsetstone::Benchmark>& suite,
    const ExperimentOptions& options);

/// Materializes workload specs — registry names (workloads/workload.h)
/// or trace-file paths — into benchmarks, generated with
/// options.workload_seed and options.workload_scale. Throws
/// std::invalid_argument on a spec that is neither.
[[nodiscard]] std::vector<offsetstone::Benchmark> LoadWorkloads(
    std::span<const std::string> specs, const ExperimentOptions& options);

/// Workload-spec entry point:
/// RunMatrix(LoadWorkloads(specs, options), options). This is how every
/// registered workload (and any external trace file) enters the
/// evaluation matrix by name. With options.stream_trace_files set,
/// trace-FILE specs skip LoadWorkloads and run through
/// RunStreamedTraceCell instead (same results, one in-memory sequence
/// per worker at a time).
[[nodiscard]] std::vector<RunResult> RunMatrix(
    std::span<const std::string> workload_specs,
    const ExperimentOptions& options);

/// Runs one benchmark / strategy / DBC-count cell. The name is resolved
/// through StrategyRegistry::Global() first and, on a miss, through
/// online::OnlinePolicyRegistry::Global(),
/// serve::ServePolicyRegistry::Global() and then
/// cache::CachePolicyRegistry::Global() (online, serve and cache
/// policies are cells like any other — see online/online_cell.h,
/// serve/serve_cell.h and cache/cache_cell.h); throws
/// std::invalid_argument if no registry knows it.
[[nodiscard]] RunResult RunCell(const offsetstone::Benchmark& benchmark,
                                unsigned dbcs,
                                std::string_view strategy_name,
                                const ExperimentOptions& options);

/// Streaming twin of RunCell for an on-disk trace file: sequences are
/// delivered one at a time by trace::StreamTrace — the file is never
/// materialized as a whole — and each runs on a device sized for ITS
/// variable count, exactly as the materialized loop sizes per sequence
/// (the device-sizing policy for variable counts unknown ahead of the
/// stream). The benchmark name is peeked from the file head
/// (trace::PeekTraceBenchmark; file-stem fallback) so seeds match the
/// materialized cell's. Serve cells materialize internally — a serve
/// cell arbitrates its tenants' sequences against each other and needs
/// them all at once. Bit-identical to
/// RunCell(LoadWorkloads({path}, ...)[0], ...); dispatch and errors as
/// RunCell. Throws std::runtime_error when the file cannot be opened or
/// parsed.
[[nodiscard]] RunResult RunStreamedTraceCell(const std::string& path,
                                             unsigned dbcs,
                                             std::string_view strategy_name,
                                             const ExperimentOptions& options);

/// Enum-spec convenience overload; equivalent to passing ToString(spec).
[[nodiscard]] RunResult RunCell(const offsetstone::Benchmark& benchmark,
                                unsigned dbcs,
                                const core::StrategySpec& strategy,
                                const ExperimentOptions& options);

/// Index into RunMatrix results: metrics keyed by (benchmark, dbcs,
/// strategy name).
class ResultTable {
 public:
  explicit ResultTable(const std::vector<RunResult>& results);

  [[nodiscard]] const RunMetrics& At(const std::string& benchmark,
                                     unsigned dbcs,
                                     const core::StrategySpec& strategy) const;

  /// Name-keyed lookup, covering extra_strategies cells as well.
  [[nodiscard]] const RunMetrics& At(const std::string& benchmark,
                                     unsigned dbcs,
                                     const std::string& strategy_name) const;

  /// value(strategy) / value(baseline) per benchmark; the paper's Fig. 4
  /// normalizes shift counts to GA, Fig. 5 energies to AFD-OFU.
  [[nodiscard]] std::vector<double> NormalizedShifts(
      const std::vector<std::string>& benchmarks, unsigned dbcs,
      const core::StrategySpec& strategy,
      const core::StrategySpec& baseline) const;

 private:
  std::map<std::string, RunMetrics> cells_;
  static std::string Key(const std::string& benchmark, unsigned dbcs,
                         const std::string& strategy_name);
};

}  // namespace rtmp::sim
