#include "sim/simulator.h"

#include <stdexcept>

#include "core/cost_model.h"

namespace rtmp::sim {

SimulationResult Simulate(const trace::AccessSequence& seq,
                          const core::Placement& placement,
                          const rtm::RtmConfig& config) {
  if (placement.num_dbcs() != config.total_dbcs()) {
    throw std::invalid_argument("Simulate: placement/config DBC mismatch");
  }
  for (std::uint32_t d = 0; d < placement.num_dbcs(); ++d) {
    if (placement.dbc(d).size() > config.domains_per_dbc) {
      throw std::invalid_argument("Simulate: placement deeper than DBC");
    }
  }
  rtm::RtmDevice device(config);
  for (const trace::Access& access : seq.accesses()) {
    const core::Slot slot = placement.SlotOf(access.variable);
    device.Access(slot.dbc, slot.offset, access.type);
  }
  SimulationResult result;
  result.stats = device.stats();
  result.energy = device.Energy();
  result.area_mm2 = device.area_mm2();
  return result;
}

bool SimulatorMatchesCostModel(const trace::AccessSequence& seq,
                               const core::Placement& placement,
                               const rtm::RtmConfig& config) {
  core::CostOptions options;
  options.initial_alignment = config.initial_alignment;
  options.port_offsets = config.EffectivePortOffsets();
  options.domains_per_dbc = config.domains_per_dbc;
  const std::uint64_t analytic = core::ShiftCost(seq, placement, options);
  return Simulate(seq, placement, config).stats.shifts == analytic;
}

}  // namespace rtmp::sim
