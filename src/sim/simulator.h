// Trace-driven simulation: replay an access sequence through the RTM device
// under a placement and collect the paper's metrics (shifts, runtime,
// energy breakdown, area).
#pragma once

#include "core/placement.h"
#include "rtm/device.h"
#include "trace/access_sequence.h"

namespace rtmp::sim {

struct SimulationResult {
  rtm::RtmStats stats;
  rtm::EnergyBreakdown energy;
  double area_mm2 = 0.0;
};

/// Replays `seq` on a fresh device built from `config`. The placement maps
/// each variable to (DBC, domain = offset). Throws std::invalid_argument if
/// the placement does not fit the configuration (DBC count or depth).
[[nodiscard]] SimulationResult Simulate(const trace::AccessSequence& seq,
                                        const core::Placement& placement,
                                        const rtm::RtmConfig& config);

/// Convenience: the analytic shift cost and the simulator agree by
/// construction under single-port configs; this asserts it (used by
/// integration tests and as a safety net in the harness's debug builds).
[[nodiscard]] bool SimulatorMatchesCostModel(const trace::AccessSequence& seq,
                                             const core::Placement& placement,
                                             const rtm::RtmConfig& config);

}  // namespace rtmp::sim
