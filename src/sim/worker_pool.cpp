#include "sim/worker_pool.h"

namespace rtmp::sim {

WorkerPool& WorkerPool::Global() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t WorkerPool::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void WorkerPool::Run(unsigned threads, const std::function<void()>& fn) {
  if (threads == 0) return;
  const std::lock_guard<std::mutex> serial(run_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  while (workers_.size() < threads) {
    // A freshly spawned thread blocks on mutex_ until we release it in
    // the wait below, then parks like the rest.
    workers_.emplace_back(&WorkerPool::WorkerLoop, this);
  }
  job_ = &fn;
  needed_ = threads;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return needed_ == 0 && active_ == 0; });
  job_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this, seen] {
      return shutdown_ || (generation_ != seen && needed_ > 0);
    });
    if (shutdown_) return;
    // Claim one unit of this generation; at most one per worker (seen
    // advances), so `threads` units land on `threads` distinct workers.
    seen = generation_;
    --needed_;
    ++active_;
    const std::function<void()>* job = job_;
    lock.unlock();
    (*job)();
    lock.lock();
    --active_;
    if (needed_ == 0 && active_ == 0) done_cv_.notify_all();
  }
}

}  // namespace rtmp::sim
