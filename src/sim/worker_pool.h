// Process-wide persistent worker pool.
//
// RunMatrix used to spawn a fresh std::vector<std::thread> per call and
// join it at the end — fine for one big matrix, measurable overhead for
// the bench harness and the serve layer, which run many small matrices
// back to back (thread creation is microseconds each, times threads,
// times cells-grids). This pool parks its threads between calls instead:
// the first Run() spawns up to the requested width, later calls reuse the
// parked threads and only grow the pool when asked for more than its
// high-water mark.
//
// Concurrency contract:
//  * Run(threads, fn) invokes fn() concurrently on `threads` pool workers
//    and blocks until every invocation returned — exactly the semantics
//    of the spawn-and-join loop it replaces. The caller's stack-captured
//    state is safe to reference from fn for the duration of the call.
//  * Runs are serialized: a second caller blocks until the first matrix
//    drains (RunMatrix's own atomic work-claiming makes concurrent cell
//    execution inside one Run; two independent matrices never interleave
//    on the same workers).
//  * fn must not throw — catch inside (RunMatrix's worker already
//    captures every exception into an std::exception_ptr).
//
// The singleton joins its threads from a function-local static's
// destructor at process exit, so ASan's leak checker and TSan see a
// clean shutdown.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rtmp::sim {

class WorkerPool {
 public:
  /// The process-wide pool (lazily constructed, joined at exit).
  static WorkerPool& Global();

  WorkerPool() = default;
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Runs `fn` on `threads` workers concurrently; returns when all have
  /// finished. No-op for threads == 0. See the header comment for the
  /// full contract.
  void Run(unsigned threads, const std::function<void()>& fn);

  /// Threads currently parked in the pool (the high-water mark of every
  /// Run so far). Exposed for tests.
  [[nodiscard]] std::size_t size() const;

 private:
  void WorkerLoop();

  /// Serializes Run callers (one matrix at a time).
  std::mutex run_mutex_;
  /// Guards everything below.
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait for a new generation
  std::condition_variable done_cv_;  ///< Run waits for the batch to drain
  std::vector<std::thread> workers_;
  const std::function<void()>* job_ = nullptr;
  /// Dispatch generation: a worker picks up at most one unit per bump.
  std::uint64_t generation_ = 0;
  unsigned needed_ = 0;  ///< units of the current generation not yet claimed
  unsigned active_ = 0;  ///< claimed units still running
  bool shutdown_ = false;
};

}  // namespace rtmp::sim
