#include "trace/access_graph.h"

#include <algorithm>
#include <map>

namespace rtmp::trace {

AccessGraph AccessGraph::FromSequence(const AccessSequence& seq) {
  return FromAccesses(seq.accesses(), seq.num_variables());
}

AccessGraph AccessGraph::FromAccesses(const std::vector<Access>& accesses,
                                      std::size_t num_variables) {
  // Count pair multiplicities first; a std::map keeps neighbor lists in a
  // deterministic order independent of insertion sequence.
  std::map<std::pair<VariableId, VariableId>, std::uint64_t> counts;
  std::vector<std::uint64_t> frequency(num_variables, 0);
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    ++frequency[accesses[i].variable];
    if (i == 0) continue;
    VariableId u = accesses[i - 1].variable;
    VariableId v = accesses[i].variable;
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    ++counts[{u, v}];
  }

  AccessGraph graph;
  graph.adjacency_.resize(num_variables);
  graph.vertex_weight_.assign(num_variables, 0);
  graph.frequency_ = std::move(frequency);
  for (const auto& [edge, weight] : counts) {
    const auto [u, v] = edge;
    graph.adjacency_[u].push_back({v, weight});
    graph.adjacency_[v].push_back({u, weight});
    graph.vertex_weight_[u] += weight;
    graph.vertex_weight_[v] += weight;
  }
  graph.num_edges_ = counts.size();
  return graph;
}

std::uint64_t AccessGraph::Weight(VariableId u, VariableId v) const {
  const auto& edges = adjacency_.at(u);
  const auto it = std::find_if(edges.begin(), edges.end(),
                               [v](const Edge& e) { return e.neighbor == v; });
  return it == edges.end() ? 0 : it->weight;
}

}  // namespace rtmp::trace
