// Weighted undirected access graph (§II-B): vertices are variables, an edge
// {u, v} counts how often u and v are accessed consecutively in S. The
// intra-DBC heuristics of Chen et al. and ShiftsReduce consume this summary.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/access_sequence.h"

namespace rtmp::trace {

class AccessGraph {
 public:
  struct Edge {
    VariableId neighbor = 0;
    std::uint64_t weight = 0;
  };

  /// Builds the graph from consecutive pairs in `seq`. Self pairs
  /// (s_t == s_{t+1}) contribute no edge: they never cost a shift.
  [[nodiscard]] static AccessGraph FromSequence(const AccessSequence& seq);

  /// Builds from an explicit access list over `num_variables` variables
  /// (used for per-DBC subsequences).
  [[nodiscard]] static AccessGraph FromAccesses(
      const std::vector<Access>& accesses, std::size_t num_variables);

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return adjacency_.size();
  }

  /// Edge weight between u and v (0 if absent).
  [[nodiscard]] std::uint64_t Weight(VariableId u, VariableId v) const;

  /// Neighbors of u with positive weight, unordered.
  [[nodiscard]] const std::vector<Edge>& Neighbors(VariableId u) const {
    return adjacency_.at(u);
  }

  /// Sum of incident edge weights of u (weighted degree).
  [[nodiscard]] std::uint64_t VertexWeight(VariableId u) const {
    return vertex_weight_.at(u);
  }

  /// Number of accesses of u in the underlying sequence.
  [[nodiscard]] std::uint64_t Frequency(VariableId u) const {
    return frequency_.at(u);
  }

  /// Total number of distinct edges.
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::uint64_t> vertex_weight_;
  std::vector<std::uint64_t> frequency_;
  std::size_t num_edges_ = 0;
};

}  // namespace rtmp::trace
