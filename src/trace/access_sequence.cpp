#include "trace/access_sequence.h"

#include <stdexcept>

namespace rtmp::trace {

AccessSequence AccessSequence::FromTokens(
    std::span<const std::string> tokens) {
  AccessSequence seq;
  for (const std::string& token : tokens) seq.AppendToken(token);
  return seq;
}

void AccessSequence::AppendToken(std::string token) {
  if (token.empty()) return;
  AccessType type = AccessType::kRead;
  if (token.back() == '!') {
    type = AccessType::kWrite;
    token.pop_back();
    if (token.empty()) {
      throw std::invalid_argument("trace token '!' has no variable name");
    }
  }
  Append(AddVariable(std::move(token)), type);
}

AccessSequence AccessSequence::FromCompactString(std::string_view text) {
  AccessSequence seq;
  for (const char c : text) {
    if (c == ' ') continue;
    seq.Append(seq.AddVariable(std::string(1, c)));
  }
  return seq;
}

VariableId AccessSequence::AddVariable(std::string name) {
  if (auto it = ids_.find(name); it != ids_.end()) return it->second;
  const auto id = static_cast<VariableId>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

std::optional<VariableId> AccessSequence::FindVariable(
    std::string_view name) const {
  if (auto it = ids_.find(std::string(name)); it != ids_.end()) {
    return it->second;
  }
  return std::nullopt;
}

void AccessSequence::Append(VariableId variable, AccessType type) {
  if (variable >= names_.size()) {
    throw std::out_of_range("access to unregistered variable id");
  }
  accesses_.push_back(Access{variable, type});
}

std::size_t AccessSequence::CountWrites() const noexcept {
  std::size_t writes = 0;
  for (const Access& a : accesses_) {
    if (a.type == AccessType::kWrite) ++writes;
  }
  return writes;
}

std::vector<Access> AccessSequence::Restrict(
    std::span<const VariableId> subset) const {
  // Variable ids are dense (assigned in registration order), so subset
  // membership is a flat bitmap — cheaper than a hash set, and no
  // unordered container near the per-DBC subsequences that feed every
  // cost figure.
  std::vector<bool> wanted(names_.size(), false);
  for (const VariableId v : subset) {
    if (v < wanted.size()) wanted[v] = true;
  }
  std::vector<Access> out;
  for (const Access& a : accesses_) {
    if (wanted[a.variable]) out.push_back(a);
  }
  return out;
}

}  // namespace rtmp::trace
