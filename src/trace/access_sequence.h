// Memory access traces: the input of every placement strategy.
//
// An AccessSequence is the paper's `S = (s1, ..., sk)`: an ordered list of
// accesses to named program variables. Variables are identified by dense
// 32-bit ids in order of first registration; positions are 0-based (the
// paper's prose is 1-based; tests that encode paper numbers subtract 1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rtmp::trace {

using VariableId = std::uint32_t;

/// Kind of memory access. OffsetStone-style traces do not distinguish reads
/// from writes; generators tag a configurable fraction as writes so the
/// energy model has both terms.
enum class AccessType : std::uint8_t { kRead, kWrite };

/// One element of an access sequence.
struct Access {
  VariableId variable = 0;
  AccessType type = AccessType::kRead;

  friend bool operator==(const Access&, const Access&) = default;
};

/// An ordered trace of accesses over a named variable set.
class AccessSequence {
 public:
  AccessSequence() = default;

  /// Builds a sequence from whitespace-style tokens; each distinct token
  /// becomes a variable (ids assigned in order of first appearance). A
  /// trailing '!' on a token marks a write access ("a!" = write to a).
  [[nodiscard]] static AccessSequence FromTokens(
      std::span<const std::string> tokens);

  /// Convenience for tests: builds from a string of single-character
  /// variable names, e.g. "abacab" (all reads).
  [[nodiscard]] static AccessSequence FromCompactString(std::string_view text);

  /// Registers a variable; returns its id. Re-registering a name returns the
  /// existing id.
  VariableId AddVariable(std::string name);

  /// Looks up a variable id by name.
  [[nodiscard]] std::optional<VariableId> FindVariable(
      std::string_view name) const;

  /// Appends one access. The variable must have been registered.
  void Append(VariableId variable, AccessType type = AccessType::kRead);

  /// Drops all accesses, keeping the registered variables. The online
  /// engine reuses one sequence as its rolling window buffer this way —
  /// names accumulate across windows, accesses do not.
  void ClearAccesses() noexcept { accesses_.clear(); }

  /// Appends one textual access token — a variable name with an
  /// optional trailing '!' write marker ("acc!") — registering the name
  /// on first appearance. Throws std::invalid_argument on a bare "!".
  /// The one token grammar shared by FromTokens and the streaming trace
  /// reader (trace/trace_stream.h).
  void AppendToken(std::string token);

  /// Number of registered variables (the paper's |V|). Variables with zero
  /// accesses are allowed (they still need a placement slot).
  [[nodiscard]] std::size_t num_variables() const noexcept {
    return names_.size();
  }

  /// Trace length (the paper's |S|).
  [[nodiscard]] std::size_t size() const noexcept { return accesses_.size(); }
  [[nodiscard]] bool empty() const noexcept { return accesses_.empty(); }

  [[nodiscard]] const Access& operator[](std::size_t i) const noexcept {
    return accesses_[i];
  }

  [[nodiscard]] const std::vector<Access>& accesses() const noexcept {
    return accesses_;
  }

  [[nodiscard]] const std::string& name_of(VariableId v) const {
    return names_.at(v);
  }

  [[nodiscard]] const std::vector<std::string>& variable_names()
      const noexcept {
    return names_;
  }

  /// Number of write accesses (the rest are reads).
  [[nodiscard]] std::size_t CountWrites() const noexcept;

  /// Restriction of this sequence to a variable subset, preserving order:
  /// the paper's per-DBC subsequence `S_i`. Ids and names are preserved
  /// (the result references the same variable space).
  [[nodiscard]] std::vector<Access> Restrict(
      std::span<const VariableId> subset) const;

 private:
  std::vector<std::string> names_;
  /// Lookup-only (find/emplace, never iterated): hash order must not
  /// leak into anything observable. `names_` is the deterministic,
  /// registration-ordered view; rtmlint's unordered-iteration rule
  /// keeps it that way.
  std::unordered_map<std::string, VariableId> ids_;
  std::vector<Access> accesses_;
};

}  // namespace rtmp::trace
