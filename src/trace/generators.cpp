#include "trace/generators.h"

#include <algorithm>

#include "util/strings.h"

namespace rtmp::trace {

namespace {

AccessType DrawType(double write_fraction, util::Rng& rng) {
  return rng.NextBool(write_fraction) ? AccessType::kWrite : AccessType::kRead;
}

/// Registers `count` variables named v0..v{count-1} and returns the sequence.
AccessSequence WithVariables(std::size_t count) {
  AccessSequence seq;
  for (std::size_t i = 0; i < count; ++i) {
    seq.AddVariable(MakeVariableName(i));
  }
  return seq;
}

}  // namespace

std::string MakeVariableName(std::size_t index) {
  // Real program identifiers sort lexicographically in an order unrelated
  // to when the variable first appears; plain "v<index>" names would sort
  // almost chronologically and systematically flatter every name-ordered
  // tie-break (AFD's frequency deal). A deterministic scrambled prefix
  // restores the realistic decorrelation while keeping the index readable.
  std::uint64_t h = util::HashString(std::to_string(index));
  std::string prefix(4, 'a');
  for (char& c : prefix) {
    c = static_cast<char>('a' + h % 26);
    h /= 26;
  }
  return prefix + "_" + std::to_string(index);
}

AccessSequence GenerateUniform(const UniformParams& params, util::Rng& rng) {
  AccessSequence seq = WithVariables(params.num_vars);
  for (std::size_t i = 0; i < params.length; ++i) {
    const auto v = static_cast<VariableId>(rng.NextBelow(params.num_vars));
    seq.Append(v, DrawType(params.write_fraction, rng));
  }
  return seq;
}

AccessSequence GenerateZipf(const ZipfParams& params, util::Rng& rng) {
  AccessSequence seq = WithVariables(params.num_vars);
  // Random rank->variable mapping so the hot set is not always v0, v1, ...
  std::vector<VariableId> by_rank(params.num_vars);
  for (std::size_t i = 0; i < params.num_vars; ++i) {
    by_rank[i] = static_cast<VariableId>(i);
  }
  rng.Shuffle(by_rank);
  for (std::size_t i = 0; i < params.length; ++i) {
    const std::size_t rank = rng.NextZipf(params.num_vars, params.exponent);
    seq.Append(by_rank[rank], DrawType(params.write_fraction, rng));
  }
  return seq;
}

AccessSequence GeneratePhased(const PhasedParams& params, util::Rng& rng) {
  const std::size_t phase_vars = params.num_phases * params.vars_per_phase;
  const std::size_t total_vars = phase_vars + params.num_globals;
  AccessSequence seq = WithVariables(total_vars);
  // Globals occupy the top ids: [phase_vars, total_vars).
  for (std::size_t phase = 0; phase < params.num_phases; ++phase) {
    const std::size_t base = phase * params.vars_per_phase;
    for (std::size_t i = 0; i < params.accesses_per_phase; ++i) {
      if (params.num_globals > 0 && rng.NextBool(params.global_access_prob)) {
        const auto g = static_cast<VariableId>(
            phase_vars + rng.NextBelow(params.num_globals));
        seq.Append(g, DrawType(params.write_fraction, rng));
        continue;
      }
      const std::size_t rank =
          rng.NextZipf(params.vars_per_phase, params.zipf_exponent);
      seq.Append(static_cast<VariableId>(base + rank),
                 DrawType(params.write_fraction, rng));
    }
  }
  return seq;
}

AccessSequence GenerateMarkov(const MarkovParams& params, util::Rng& rng) {
  AccessSequence seq = WithVariables(params.num_vars);
  if (params.num_vars == 0 || params.length == 0) return seq;
  auto current = static_cast<VariableId>(rng.NextBelow(params.num_vars));
  for (std::size_t i = 0; i < params.length; ++i) {
    seq.Append(current, DrawType(params.write_fraction, rng));
    const double draw = rng.NextDouble();
    if (draw < params.self_loop_prob) {
      continue;  // stay on the same variable
    }
    if (draw < params.self_loop_prob + params.locality_prob &&
        params.locality_window > 0) {
      // Jump to a nearby id (wrapping), modelling basic-block locality.
      const auto offset = static_cast<std::int64_t>(
          rng.NextInRange(
              1, static_cast<std::int64_t>(params.locality_window)));
      const bool forward = rng.NextBool(0.5);
      const auto n = static_cast<std::int64_t>(params.num_vars);
      std::int64_t next = static_cast<std::int64_t>(current) +
                          (forward ? offset : -offset);
      next = ((next % n) + n) % n;
      current = static_cast<VariableId>(next);
      continue;
    }
    // Global jump, Zipf by rank => a few hot variables shared program-wide.
    current = static_cast<VariableId>(
        rng.NextZipf(params.num_vars, params.hot_jump_zipf));
  }
  return seq;
}

AccessSequence GenerateLoopNest(const LoopNestParams& params, util::Rng& rng) {
  const std::size_t kernels = std::max<std::size_t>(params.num_kernels, 1);
  const std::size_t kernel_vars = params.num_arrays * params.array_len;
  const std::size_t total_vars = kernels * kernel_vars + params.num_scalars;
  AccessSequence seq = WithVariables(total_vars);
  const std::size_t scalar_base = kernels * kernel_vars;
  const std::size_t stride = std::max<std::size_t>(params.stride, 1);
  for (std::size_t kernel = 0; kernel < kernels; ++kernel) {
    // Each kernel sweeps its own arrays; the scalar pool persists across
    // kernels (loop counters, accumulators).
    const std::size_t base = kernel * kernel_vars;
    for (std::size_t iter = 0; iter < params.iterations; ++iter) {
      for (std::size_t idx = 0; idx < params.array_len; idx += stride) {
        for (std::size_t arr = 0; arr < params.num_arrays; ++arr) {
          // a[idx], b[idx], ... accessed together per loop body execution.
          const auto v = static_cast<VariableId>(
              base + arr * params.array_len + idx);
          seq.Append(v, DrawType(params.write_fraction, rng));
          if (params.num_scalars > 0 &&
              rng.NextBool(params.scalar_access_prob)) {
            const auto s = static_cast<VariableId>(
                scalar_base + rng.NextBelow(params.num_scalars));
            seq.Append(s, DrawType(params.write_fraction, rng));
          }
        }
      }
    }
  }
  return seq;
}

AccessSequence GenerateSequential(const SequentialParams& params,
                                  util::Rng& rng) {
  // Globals take ids [0, num_globals); short-lived variables follow in
  // introduction order.
  AccessSequence seq;
  for (std::size_t g = 0; g < params.num_globals; ++g) {
    seq.AddVariable(util::Concat({"g", std::to_string(g)}));
  }
  for (std::size_t i = 0; i < params.num_vars; ++i) {
    seq.AddVariable(MakeVariableName(i));
  }
  if (params.num_vars == 0 || params.length == 0) return seq;
  const std::size_t window = std::max<std::size_t>(
      std::min(params.window, params.num_vars), 1);
  // Live window [oldest, next_fresh); `current` is the newest member.
  std::size_t next_fresh = window;  // v0..v{window-1} start live
  std::size_t oldest = 0;
  std::size_t current = window - 1;
  for (std::size_t i = 0; i < params.length; ++i) {
    if (params.num_globals > 0 && rng.NextBool(params.global_access_prob)) {
      seq.Append(static_cast<VariableId>(rng.NextBelow(params.num_globals)),
                 DrawType(params.write_fraction, rng));
      continue;
    }
    seq.Append(static_cast<VariableId>(params.num_globals + current),
               DrawType(params.write_fraction, rng));
    const double draw = rng.NextDouble();
    if (draw < params.stay_prob) continue;
    if (draw < params.stay_prob + params.neighbor_prob) {
      // Touch a random live variable (possibly the current one again).
      current = oldest + rng.NextBelow(next_fresh - oldest);
      continue;
    }
    // Advance: retire the oldest variable, introduce a fresh one. Once the
    // variable pool is exhausted, keep cycling inside the final window.
    if (next_fresh < params.num_vars) {
      current = next_fresh++;
      if (next_fresh - oldest > window) ++oldest;
    } else {
      current = oldest + rng.NextBelow(next_fresh - oldest);
    }
  }
  return seq;
}

}  // namespace rtmp::trace
