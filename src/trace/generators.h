// Synthetic access-sequence generators.
//
// These synthesize the workload families that drive the evaluation: the
// OffsetStone-lite suite (src/offsetstone) composes them per benchmark, and
// tests/benches use them directly. Every generator is deterministic given
// the Rng it is handed.
//
// Families and the behaviour they exercise:
//  * Uniform  — no structure; worst case for everything, sanity floor.
//  * Zipf     — frequency skew with no temporal structure; the regime where
//               AFD's frequency-only policy is at its best.
//  * Phased   — program phases touching disjoint variable groups, plus a few
//               long-lived globals; the regime DMA's liveliness analysis is
//               designed for (DSP kernels, staged pipelines).
//  * Markov   — control-dominated code: a transition matrix with locality
//               ("after u, likely v") and hot states; overlapping lifespans.
//  * LoopNest — strided sweeps over array-like variable blocks repeated per
//               iteration, optionally with loop-carried scalars; a trace may
//               chain several kernels, each with fresh arrays (disjoint
//               working sets across kernels, as in tiled/staged pipelines).
//  * Sequential — straight-line compiler traces (the OffsetStone shape):
//               a small sliding window of live variables, heavy repetition
//               of the current variable, windows advancing monotonically so
//               most variables have short lifespans disjoint from all but
//               their neighbors. This is the dominant structure of offset-
//               assignment access sequences.
#pragma once

#include <cstddef>
#include <string>

#include "trace/access_sequence.h"
#include "util/rng.h"

namespace rtmp::trace {

/// Naming scheme for generated variables: "v0", "v1", ...
[[nodiscard]] std::string MakeVariableName(std::size_t index);

struct UniformParams {
  std::size_t num_vars = 16;
  std::size_t length = 256;
  double write_fraction = 0.3;
};

struct ZipfParams {
  std::size_t num_vars = 64;
  std::size_t length = 1024;
  double exponent = 1.0;  // Zipf skew; 0 degenerates to uniform.
  double write_fraction = 0.3;
};

struct PhasedParams {
  std::size_t num_phases = 6;
  std::size_t vars_per_phase = 8;
  std::size_t accesses_per_phase = 96;
  std::size_t num_globals = 2;      // long-lived variables spanning phases
  double global_access_prob = 0.08; // chance an access hits a global
  double zipf_exponent = 0.8;       // skew inside a phase
  double write_fraction = 0.3;
};

struct MarkovParams {
  std::size_t num_vars = 48;
  std::size_t length = 1024;
  double self_loop_prob = 0.25;   // repeat the same variable
  double locality_prob = 0.55;    // jump to an id-nearby variable
  std::size_t locality_window = 4;
  double hot_jump_zipf = 1.1;     // otherwise jump Zipf-distributed by rank
  double write_fraction = 0.3;
};

struct LoopNestParams {
  std::size_t num_arrays = 3;
  std::size_t array_len = 12;     // variables per array block
  std::size_t num_scalars = 4;    // loop-carried scalars (i, acc, ...)
  std::size_t iterations = 10;
  std::size_t stride = 1;
  std::size_t num_kernels = 1;    // kernels chained back to back, each with
                                  // fresh arrays (scalars persist)
  double scalar_access_prob = 0.25;
  double write_fraction = 0.3;
};

struct SequentialParams {
  std::size_t num_vars = 48;      // short-lived variables introduced in order
  std::size_t length = 512;
  std::size_t window = 2;         // live short-lived variables at any time
  double stay_prob = 0.55;        // repeat the current variable
  double neighbor_prob = 0.25;    // touch another live-window variable
  // Remaining probability advances the window: the oldest variable dies
  // (permanently) and a fresh one becomes current.
  std::size_t num_globals = 3;    // persistent variables (induction vars,
                                  // state) interleaved across the whole run
  double global_access_prob = 0.15;
  double write_fraction = 0.3;
};

[[nodiscard]] AccessSequence GenerateUniform(const UniformParams& params,
                                             util::Rng& rng);
[[nodiscard]] AccessSequence GenerateZipf(const ZipfParams& params,
                                          util::Rng& rng);
[[nodiscard]] AccessSequence GeneratePhased(const PhasedParams& params,
                                            util::Rng& rng);
[[nodiscard]] AccessSequence GenerateMarkov(const MarkovParams& params,
                                            util::Rng& rng);
[[nodiscard]] AccessSequence GenerateLoopNest(const LoopNestParams& params,
                                              util::Rng& rng);
[[nodiscard]] AccessSequence GenerateSequential(const SequentialParams& params,
                                                util::Rng& rng);

}  // namespace rtmp::trace
