#include "trace/liveliness.h"

#include <algorithm>
#include <numeric>

namespace rtmp::trace {

std::uint64_t SumNestedFrequency(std::span<const VariableStats> stats,
                                 const VariableStats& outer,
                                 std::span<const VariableId> candidates) {
  std::uint64_t sum = 0;
  for (const VariableId u : candidates) {
    if (LifespanNestedWithin(stats[u], outer)) sum += stats[u].frequency;
  }
  return sum;
}

bool AllPairwiseDisjoint(std::span<const VariableStats> stats,
                         std::span<const VariableId> group) {
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      if (!LifespansDisjoint(stats[group[i]], stats[group[j]])) return false;
    }
  }
  return true;
}

std::uint64_t CountDisjointPairs(std::span<const VariableStats> stats) {
  // Sweep intervals sorted by first occurrence: a pair is disjoint iff the
  // earlier interval's last precedes the later interval's first. Count
  // overlapping pairs and subtract from the total.
  std::vector<std::pair<std::size_t, std::size_t>> intervals;
  for (const VariableStats& s : stats) {
    if (s.first != kNever) intervals.emplace_back(s.first, s.last);
  }
  const std::uint64_t n = intervals.size();
  if (n < 2) return 0;
  std::sort(intervals.begin(), intervals.end());
  // For each interval, count how many earlier-starting intervals are still
  // live at its start (their last >= its first) => overlapping pair.
  std::vector<std::size_t> lasts;
  lasts.reserve(n);
  std::uint64_t overlapping = 0;
  for (const auto& [first, last] : intervals) {
    // lasts holds the sorted multiset of `last` values of earlier intervals.
    const auto it = std::lower_bound(lasts.begin(), lasts.end(), first);
    overlapping += static_cast<std::uint64_t>(lasts.end() - it);
    lasts.insert(std::upper_bound(lasts.begin(), lasts.end(), last), last);
  }
  return n * (n - 1) / 2 - overlapping;
}

std::vector<VariableId> SortByFirstOccurrence(
    std::span<const VariableStats> stats) {
  std::vector<VariableId> order(stats.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&stats](VariableId a, VariableId b) {
                     return stats[a].first < stats[b].first;
                   });
  return order;
}

}  // namespace rtmp::trace
