// Liveliness (lifespan) analysis over access sequences.
//
// The DMA heuristic's key signal (§III-B) is which variables have pairwise
// disjoint lifespans and how much access frequency is "nested" inside a
// candidate's lifespan. These are generic trace analyses, so they live in
// the trace layer; the placement policy built on them is in core/inter/dma.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/access_sequence.h"
#include "trace/variable_stats.h"

namespace rtmp::trace {

/// Sum of access frequencies of the variables in `candidates` whose lifespan
/// is strictly nested within `outer`'s (Fu > F_outer and Lu < L_outer):
/// the right-hand side of Algorithm 1 line 10.
[[nodiscard]] std::uint64_t SumNestedFrequency(
    std::span<const VariableStats> stats, const VariableStats& outer,
    std::span<const VariableId> candidates);

/// True if all variables in `group` have pairwise disjoint lifespans.
[[nodiscard]] bool AllPairwiseDisjoint(std::span<const VariableStats> stats,
                                       std::span<const VariableId> group);

/// Number of unordered variable pairs with disjoint lifespans. O(n log n)
/// via sorting by first occurrence. Variables absent from the sequence are
/// ignored. Used by trace characterization reports.
[[nodiscard]] std::uint64_t CountDisjointPairs(
    std::span<const VariableStats> stats);

/// Variables sorted by ascending first occurrence Fv (absent variables
/// last, by id); the iteration order of Algorithm 1 line 5.
[[nodiscard]] std::vector<VariableId> SortByFirstOccurrence(
    std::span<const VariableStats> stats);

}  // namespace rtmp::trace
