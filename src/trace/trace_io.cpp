#include "trace/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace rtmp::trace {

namespace {
constexpr std::string_view kBenchmarkDirective = "benchmark";
constexpr std::string_view kSequenceDirective = "sequence";
}  // namespace

TraceFile ReadTrace(std::istream& in) {
  TraceFile trace;
  std::vector<std::vector<std::string>> token_lists;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto tokens = util::SplitWhitespace(trimmed);
    if (tokens.front() == kBenchmarkDirective) {
      if (tokens.size() != 2) {
        throw std::runtime_error("trace: 'benchmark' needs exactly one name");
      }
      trace.benchmark = tokens[1];
      continue;
    }
    if (tokens.front() == kSequenceDirective) {
      if (tokens.size() > 2) {
        throw std::runtime_error("trace: 'sequence' takes at most one name");
      }
      trace.sequence_names.push_back(tokens.size() == 2 ? tokens[1] : "");
      token_lists.emplace_back();
      continue;
    }
    if (token_lists.empty()) {
      throw std::runtime_error(
          "trace: access tokens before any 'sequence' directive");
    }
    auto& current = token_lists.back();
    current.insert(current.end(), tokens.begin(), tokens.end());
  }
  trace.sequences.reserve(token_lists.size());
  for (const auto& tokens : token_lists) {
    trace.sequences.push_back(AccessSequence::FromTokens(tokens));
  }
  return trace;
}

TraceFile ReadTraceFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadTrace(in);
}

void WriteTrace(std::ostream& out, const TraceFile& trace) {
  out << "# rtmplace trace v1\n";
  if (!trace.benchmark.empty()) out << "benchmark " << trace.benchmark << '\n';
  for (std::size_t i = 0; i < trace.sequences.size(); ++i) {
    out << "sequence";
    if (i < trace.sequence_names.size() && !trace.sequence_names[i].empty()) {
      out << ' ' << trace.sequence_names[i];
    }
    out << '\n';
    const AccessSequence& seq = trace.sequences[i];
    constexpr std::size_t kPerLine = 16;
    for (std::size_t j = 0; j < seq.size(); ++j) {
      out << seq.name_of(seq[j].variable);
      if (seq[j].type == AccessType::kWrite) out << '!';
      out << ((j + 1) % kPerLine == 0 || j + 1 == seq.size() ? '\n' : ' ');
    }
  }
}

std::string WriteTraceToString(const TraceFile& trace) {
  std::ostringstream out;
  WriteTrace(out, trace);
  return out.str();
}

}  // namespace rtmp::trace
