#include "trace/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/trace_stream.h"

namespace rtmp::trace {

TraceFile ReadTrace(std::istream& in) {
  // The materializing reader is a thin collector over the streaming
  // parser (trace/trace_stream.h), so both paths share one grammar.
  TraceFile trace;
  const TraceSummary summary = StreamTextTrace(
      in, [&trace](const std::string& name, AccessSequence seq) {
        trace.sequence_names.push_back(name);
        trace.sequences.push_back(std::move(seq));
      });
  trace.benchmark = summary.benchmark;
  return trace;
}

TraceFile ReadTraceFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadTrace(in);
}

namespace {

/// True when `token`, placed first on a line, would be (mis)parsed as a
/// directive or a comment instead of an access. The writer must never
/// break a line right before such a token.
bool MisparsesAtLineStart(const std::string& token) {
  return token == "benchmark" || token == "sequence" || token == "total" ||
         (!token.empty() && token.front() == '#');
}

}  // namespace

void WriteTrace(std::ostream& out, const TraceFile& trace) {
  out << "# rtmplace trace v1\n";
  if (!trace.benchmark.empty()) out << "benchmark " << trace.benchmark << '\n';
  std::uint64_t total_accesses = 0;
  for (std::size_t i = 0; i < trace.sequences.size(); ++i) {
    out << "sequence";
    if (i < trace.sequence_names.size() && !trace.sequence_names[i].empty()) {
      out << ' ' << trace.sequence_names[i];
    }
    out << '\n';
    const AccessSequence& seq = trace.sequences[i];
    total_accesses += seq.size();
    constexpr std::size_t kPerLine = 16;
    std::size_t on_line = 0;
    for (std::size_t j = 0; j < seq.size(); ++j) {
      const std::string& name = seq.name_of(seq[j].variable);
      // The reader only treats the FIRST token of a line as a
      // directive/comment, so a colliding variable name ("total", "#x")
      // is representable anywhere but at a line start: extend the
      // current line past the wrap width instead of breaking before it.
      // Only a sequence's very first access has no line to extend.
      if (on_line == 0 && MisparsesAtLineStart(name)) {
        throw std::runtime_error(
            "trace: sequence starts with variable '" + name +
            "', which would parse as a directive at a line start; this "
            "trace is not representable in the text format (use "
            "WriteBinaryTrace)");
      }
      out << name;
      if (seq[j].type == AccessType::kWrite) out << '!';
      ++on_line;
      const bool last = j + 1 == seq.size();
      const bool wrap = on_line >= kPerLine &&
                        !(j + 1 < seq.size() &&
                          MisparsesAtLineStart(seq.name_of(seq[j + 1].variable)));
      if (last || wrap) {
        out << '\n';
        on_line = 0;
      } else {
        out << ' ';
      }
    }
  }
  // Truncation guard: readers cross-check these counts when present
  // (and can insist on them; see TraceStreamOptions::require_total).
  out << "total " << trace.sequences.size() << ' ' << total_accesses << '\n';
}

std::string WriteTraceToString(const TraceFile& trace) {
  std::ostringstream out;
  WriteTrace(out, trace);
  return out.str();
}

}  // namespace rtmp::trace
