// Text serialization of access traces.
//
// Format ("rtmplace trace v1"), line oriented:
//
//   # comment                          -- ignored
//   benchmark <name>                   -- optional benchmark name
//   sequence [<name>]                  -- starts a new access sequence
//   a b a c! b ...                     -- accesses; '!' suffix marks a write
//   total <sequences> <accesses>       -- optional footer (truncation guard)
//
// Access lines may be split over multiple lines; a sequence ends at the next
// `sequence` directive or end of file. This mirrors the shape of OffsetStone
// inputs (one file per benchmark, many access sequences per file).
//
// WriteTrace always emits the `total` footer; readers validate it when
// present (and must be the last directive). For large external traces and
// the compact binary format, see trace/trace_stream.h — the streaming
// layer both readers here are built on.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/access_sequence.h"

namespace rtmp::trace {

/// A parsed trace file: a named benchmark with one sequence per entry.
struct TraceFile {
  std::string benchmark;
  std::vector<std::string> sequence_names;
  std::vector<AccessSequence> sequences;
};

/// Parses a trace from a stream. Throws std::runtime_error on malformed
/// input (unknown directive, access tokens before any `sequence`).
[[nodiscard]] TraceFile ReadTrace(std::istream& in);

/// Parses a trace from a string (convenience for tests).
[[nodiscard]] TraceFile ReadTraceFromString(const std::string& text);

/// Serializes a trace; ReadTrace(WriteTrace(t)) round-trips names, access
/// order and access types.
void WriteTrace(std::ostream& out, const TraceFile& trace);

/// Serializes to a string (convenience for tests).
[[nodiscard]] std::string WriteTraceToString(const TraceFile& trace);

}  // namespace rtmp::trace
