#include "trace/trace_stream.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "util/strings.h"

namespace rtmp::trace {

namespace {

constexpr char kMagic[4] = {'R', 'T', 'M', 'B'};
constexpr std::uint32_t kBinaryVersion = 1;
/// Access word layout: variable id in the low 31 bits, write flag on top.
constexpr std::uint32_t kWriteBit = 0x80000000u;
/// Access words decoded per chunk; bounds the reader's working memory no
/// matter how long a sequence is on disk.
constexpr std::size_t kAccessChunkWords = 16384;

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("binary trace: " + what);
}

/// FNV-1a 64-bit, the integrity hash of the binary format. Every payload
/// byte (header included) feeds it; the file ends with the digest.
class Fnv1a {
 public:
  void Update(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// Little-endian primitive writer that feeds the checksum as it goes.
class ByteWriter {
 public:
  explicit ByteWriter(std::ostream& out) : out_(out) {}

  void Bytes(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    fnv_.Update(data, size);
  }
  void U32(std::uint32_t value) {
    unsigned char bytes[4];
    for (int i = 0; i < 4; ++i) {
      bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    Bytes(bytes, sizeof(bytes));
  }
  void U64(std::uint64_t value) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    Bytes(bytes, sizeof(bytes));
  }
  void Str(const std::string& text) {
    if (text.size() > kMaxTraceNameLength) {
      Fail("name longer than the format's " +
           std::to_string(kMaxTraceNameLength) + "-byte cap");
    }
    U32(static_cast<std::uint32_t>(text.size()));
    Bytes(text.data(), text.size());
  }
  /// The trailing digest itself is NOT part of the checksummed payload.
  void Digest() {
    const std::uint64_t digest = fnv_.digest();
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>(digest >> (8 * i));
    }
    out_.write(reinterpret_cast<const char*>(bytes), sizeof(bytes));
  }

 private:
  std::ostream& out_;
  Fnv1a fnv_;
};

/// Little-endian primitive reader; throws on truncation, validates the
/// trailing checksum against everything it has read.
class ByteReader {
 public:
  explicit ByteReader(std::istream& in) : in_(in) {}

  void Bytes(void* data, std::size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (static_cast<std::size_t>(in_.gcount()) != size) {
      Fail("truncated file");
    }
    fnv_.Update(data, size);
  }
  [[nodiscard]] std::uint32_t U32() {
    unsigned char bytes[4];
    Bytes(bytes, sizeof(bytes));
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
    }
    return value;
  }
  [[nodiscard]] std::uint64_t U64() {
    unsigned char bytes[8];
    Bytes(bytes, sizeof(bytes));
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    }
    return value;
  }
  [[nodiscard]] std::string Str() {
    const std::uint32_t length = U32();
    if (length > kMaxTraceNameLength) {
      Fail("name length " + std::to_string(length) + " exceeds the " +
           std::to_string(kMaxTraceNameLength) + "-byte cap");
    }
    std::string text(length, '\0');
    Bytes(text.data(), length);
    return text;
  }
  /// Reads the trailing digest (excluded from the checksum) and compares
  /// it against everything read so far.
  void VerifyDigest() {
    const std::uint64_t expected = fnv_.digest();
    unsigned char bytes[8];
    in_.read(reinterpret_cast<char*>(bytes), sizeof(bytes));
    if (static_cast<std::size_t>(in_.gcount()) != sizeof(bytes)) {
      Fail("truncated file (checksum missing)");
    }
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
      stored |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    }
    if (stored != expected) Fail("checksum mismatch (corrupt file)");
    if (in_.peek() != std::istream::traits_type::eof()) {
      Fail("trailing data after checksum");
    }
  }

 private:
  std::istream& in_;
  Fnv1a fnv_;
};

[[nodiscard]] std::uint64_t ParseCount(std::string_view token,
                                       std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    throw std::runtime_error("trace: non-numeric " + std::string(what) +
                             " '" + std::string(token) + "' in 'total'");
  }
  return value;
}

}  // namespace

TraceSummary StreamTextTrace(std::istream& in, const SequenceSink& sink,
                             const TraceStreamOptions& options) {
  TraceSummary summary;
  AccessSequence current;
  std::string current_name;
  bool in_sequence = false;
  bool saw_total = false;
  std::uint64_t declared_sequences = 0;
  std::uint64_t declared_accesses = 0;

  const auto flush = [&] {
    if (!in_sequence) return;
    summary.accesses += current.size();
    ++summary.sequences;
    sink(current_name, std::move(current));
    current = AccessSequence();
  };

  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto tokens = util::SplitWhitespace(trimmed);
    if (saw_total) {
      throw std::runtime_error("trace: content after the 'total' footer");
    }
    if (tokens.front() == "benchmark") {
      if (tokens.size() != 2) {
        throw std::runtime_error("trace: 'benchmark' needs exactly one name");
      }
      summary.benchmark = tokens[1];
      continue;
    }
    if (tokens.front() == "sequence") {
      if (tokens.size() > 2) {
        throw std::runtime_error("trace: 'sequence' takes at most one name");
      }
      flush();
      in_sequence = true;
      current_name = tokens.size() == 2 ? tokens[1] : "";
      continue;
    }
    if (tokens.front() == "total") {
      if (tokens.size() != 3) {
        throw std::runtime_error(
            "trace: 'total' needs <sequences> <accesses>");
      }
      declared_sequences = ParseCount(tokens[1], "sequence count");
      declared_accesses = ParseCount(tokens[2], "access count");
      saw_total = true;
      continue;
    }
    if (!in_sequence) {
      throw std::runtime_error(
          "trace: access tokens before any 'sequence' directive");
    }
    for (const std::string& token : tokens) {
      try {
        current.AppendToken(token);
      } catch (const std::invalid_argument& error) {
        // One shared grammar (AccessSequence::AppendToken); re-wrap so
        // this reader keeps its documented runtime_error contract.
        throw std::runtime_error("trace: " + std::string(error.what()));
      }
    }
  }
  flush();

  if (saw_total) {
    if (declared_sequences != summary.sequences ||
        declared_accesses != summary.accesses) {
      throw std::runtime_error(
          "trace: 'total' footer mismatch (file truncated or corrupt): "
          "declared " +
          std::to_string(declared_sequences) + " sequences / " +
          std::to_string(declared_accesses) + " accesses, found " +
          std::to_string(summary.sequences) + " / " +
          std::to_string(summary.accesses));
    }
  } else if (options.require_total) {
    throw std::runtime_error(
        "trace: missing 'total' footer (file truncated?)");
  }
  return summary;
}

TraceSummary StreamBinaryTrace(std::istream& in, const SequenceSink& sink) {
  ByteReader reader(in);
  char magic[4];
  reader.Bytes(magic, sizeof(magic));
  if (!std::equal(magic, magic + 4, kMagic)) Fail("bad magic");
  const std::uint32_t version = reader.U32();
  if (version != kBinaryVersion) {
    Fail("unsupported version " + std::to_string(version));
  }
  const std::uint32_t flags = reader.U32();
  if (flags != 0) Fail("unknown flags");

  TraceSummary summary;
  summary.benchmark = reader.Str();
  const std::uint32_t num_sequences = reader.U32();
  if (num_sequences > kMaxTraceSequences) Fail("sequence count overflow");

  std::vector<std::uint32_t> chunk;
  for (std::uint32_t s = 0; s < num_sequences; ++s) {
    const std::string name = reader.Str();
    const std::uint32_t num_variables = reader.U32();
    if (num_variables > kMaxTraceVariables) Fail("variable count overflow");
    AccessSequence seq;
    for (std::uint32_t v = 0; v < num_variables; ++v) {
      (void)seq.AddVariable(reader.Str());
    }
    // AddVariable dedups: a repeated name would silently merge two ids
    // and break the id bound below.
    if (seq.num_variables() != num_variables) {
      Fail("duplicate variable name in sequence " + std::to_string(s));
    }
    const std::uint64_t num_accesses = reader.U64();
    if (num_accesses > kMaxTraceAccesses) Fail("access count overflow");
    // Chunked decode: at most kAccessChunkWords words in memory at once.
    std::uint64_t remaining = num_accesses;
    while (remaining > 0) {
      const std::size_t batch = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, kAccessChunkWords));
      chunk.resize(batch);
      reader.Bytes(chunk.data(), batch * sizeof(std::uint32_t));
      for (std::size_t i = 0; i < batch; ++i) {
        // The words were checksummed as raw bytes; decode little-endian
        // explicitly so big-endian hosts agree.
        const auto* bytes =
            reinterpret_cast<const unsigned char*>(&chunk[i]);
        std::uint32_t word = 0;
        for (int b = 0; b < 4; ++b) {
          word |= static_cast<std::uint32_t>(bytes[b]) << (8 * b);
        }
        const std::uint32_t id = word & ~kWriteBit;
        if (id >= num_variables) {
          Fail("access to out-of-range variable id " + std::to_string(id));
        }
        seq.Append(id, (word & kWriteBit) != 0 ? AccessType::kWrite
                                               : AccessType::kRead);
      }
      remaining -= batch;
    }
    summary.accesses += seq.size();
    ++summary.sequences;
    sink(name, std::move(seq));
  }
  reader.VerifyDigest();
  return summary;
}

TraceSummary StreamTrace(std::istream& in, const SequenceSink& sink,
                         const TraceStreamOptions& options) {
  // Sniff the magic. The stream must be seekable (files and string
  // streams are); non-seekable streams fall back to the text reader.
  const std::istream::pos_type start = in.tellg();
  if (start != std::istream::pos_type(-1)) {
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    const bool binary = in.gcount() == sizeof(magic) &&
                        std::equal(magic, magic + 4, kMagic);
    in.clear();
    in.seekg(start);
    if (binary) return StreamBinaryTrace(in, sink);
  }
  return StreamTextTrace(in, sink, options);
}

std::string PeekTraceBenchmark(std::istream& in) {
  // Same sniff as StreamTrace; non-seekable streams fall back to the
  // text grammar.
  const std::istream::pos_type start = in.tellg();
  if (start != std::istream::pos_type(-1)) {
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    const bool binary = in.gcount() == sizeof(magic) &&
                        std::equal(magic, magic + 4, kMagic);
    in.clear();
    in.seekg(start);
    if (binary) {
      // Header only: magic, version, flags, benchmark name. The
      // checksum covers the whole file and is not validated here — the
      // full pass does that.
      ByteReader reader(in);
      char skipped[4];
      reader.Bytes(skipped, sizeof(skipped));
      const std::uint32_t version = reader.U32();
      if (version != kBinaryVersion) {
        Fail("unsupported version " + std::to_string(version));
      }
      const std::uint32_t flags = reader.U32();
      if (flags != 0) Fail("unknown flags");
      return reader.Str();
    }
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto tokens = util::SplitWhitespace(trimmed);
    if (tokens.front() == "benchmark") {
      if (tokens.size() != 2) {
        throw std::runtime_error("trace: 'benchmark' needs exactly one name");
      }
      return tokens[1];
    }
    // Anything else means the head holds no benchmark declaration.
    break;
  }
  return "";
}

void WriteBinaryTrace(std::ostream& out, const TraceFile& trace) {
  // Enforce the reader's caps on the way out too: a file that writes
  // but can never be read back (or whose counts truncate through the
  // u32 casts into a checksum-valid lie) must not exist.
  if (trace.sequences.size() > kMaxTraceSequences) {
    Fail("sequence count exceeds the format cap");
  }
  ByteWriter writer(out);
  writer.Bytes(kMagic, sizeof(kMagic));
  writer.U32(kBinaryVersion);
  writer.U32(0);  // flags
  writer.Str(trace.benchmark);
  writer.U32(static_cast<std::uint32_t>(trace.sequences.size()));
  for (std::size_t s = 0; s < trace.sequences.size(); ++s) {
    const AccessSequence& seq = trace.sequences[s];
    if (seq.num_variables() > kMaxTraceVariables) {
      Fail("variable count exceeds the format cap");
    }
    if (seq.size() > kMaxTraceAccesses) {
      Fail("access count exceeds the format cap");
    }
    writer.Str(s < trace.sequence_names.size() ? trace.sequence_names[s]
                                               : std::string());
    writer.U32(static_cast<std::uint32_t>(seq.num_variables()));
    for (const std::string& name : seq.variable_names()) writer.Str(name);
    writer.U64(seq.size());
    for (const Access& access : seq.accesses()) {
      writer.U32(access.variable |
                 (access.type == AccessType::kWrite ? kWriteBit : 0));
    }
  }
  writer.Digest();
}

namespace {

TraceFile Collect(std::istream& in, const TraceStreamOptions& options,
                  bool binary_only) {
  TraceFile file;
  const SequenceSink sink = [&file](const std::string& name,
                                    AccessSequence seq) {
    file.sequence_names.push_back(name);
    file.sequences.push_back(std::move(seq));
  };
  const TraceSummary summary = binary_only
                                   ? StreamBinaryTrace(in, sink)
                                   : StreamTrace(in, sink, options);
  file.benchmark = summary.benchmark;
  return file;
}

}  // namespace

TraceFile ReadBinaryTrace(std::istream& in) {
  return Collect(in, {}, /*binary_only=*/true);
}

TraceFile ReadAnyTrace(std::istream& in, const TraceStreamOptions& options) {
  return Collect(in, options, /*binary_only=*/false);
}

TraceFile LoadTraceFile(const std::string& path,
                        const TraceStreamOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return ReadAnyTrace(in, options);
}

}  // namespace rtmp::trace
