// Streaming trace ingestion: external (possibly multi-million-access)
// traces converted to AccessSequences one sequence at a time, without
// materializing the whole file.
//
// Two on-disk formats share one sink interface:
//
//  * Text — the "rtmplace trace v1" format of trace/trace_io.h, parsed
//    line by line. Machine-written files end with a
//    `total <sequences> <accesses>` footer (WriteTrace emits it); with
//    TraceStreamOptions::require_total the reader rejects files whose
//    footer is missing or inconsistent, so truncation cannot pass as a
//    shorter-but-valid trace.
//
//  * Binary ("RTMB" v1) — a compact little-endian format for large
//    traces: magic/version header, length-prefixed benchmark/sequence/
//    variable names, per-sequence u32 access words (bit 31 = write),
//    and a trailing FNV-1a checksum over everything before it. Any
//    corruption — truncation, a flipped byte, an overflowed count —
//    yields a clean std::runtime_error, never a crash or a silently
//    partial parse. See README.md ("Workloads") for the byte layout.
//
// Readers validate counts against hard caps before allocating, so a
// corrupt length field cannot trigger an allocation explosion.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "trace/access_sequence.h"
#include "trace/trace_io.h"

namespace rtmp::trace {

/// Hard caps a reader enforces before trusting an on-disk count.
inline constexpr std::size_t kMaxTraceNameLength = 4096;
inline constexpr std::size_t kMaxTraceSequences = 1u << 20;
inline constexpr std::size_t kMaxTraceVariables = 1u << 26;
inline constexpr std::uint64_t kMaxTraceAccesses = 1ULL << 40;

struct TraceStreamOptions {
  /// Reject text traces without a consistent `total` footer. Off by
  /// default: hand-written files may legitimately omit it.
  bool require_total = false;
};

/// Receives each completed sequence in file order. The sequence is moved
/// to the sink; the reader holds at most one sequence at a time.
using SequenceSink =
    std::function<void(const std::string& name, AccessSequence sequence)>;

/// What a streaming pass saw (for logging and footer validation).
struct TraceSummary {
  std::string benchmark;
  std::size_t sequences = 0;
  std::uint64_t accesses = 0;
};

/// Streams the text format. Throws std::runtime_error on malformed
/// input; see trace/trace_io.h for the line grammar.
TraceSummary StreamTextTrace(std::istream& in, const SequenceSink& sink,
                             const TraceStreamOptions& options = {});

/// Streams the binary format (header + checksum validated).
TraceSummary StreamBinaryTrace(std::istream& in, const SequenceSink& sink);

/// Sniffs the magic bytes and dispatches to the binary or text reader.
TraceSummary StreamTrace(std::istream& in, const SequenceSink& sink,
                         const TraceStreamOptions& options = {});

/// Reads just the benchmark name from the head of a trace stream (either
/// format, sniffed by magic) without touching any sequence data — the
/// streaming experiment path needs it up front for seed derivation,
/// while StreamTrace only reports it at end-of-stream. Returns "" when
/// no name is declared before the first sequence (both writers emit it
/// first; a nonconforming text file with a late `benchmark` directive
/// peeks as "" and gets the caller's fallback naming). Consumes the
/// stream — reopen or rewind before the full streaming pass. Throws
/// std::runtime_error on a malformed header.
[[nodiscard]] std::string PeekTraceBenchmark(std::istream& in);

/// Serializes `trace` in the binary format;
/// ReadBinaryTrace(WriteBinaryTrace(t)) round-trips benchmark name,
/// sequence names, variable names, access order and access types.
void WriteBinaryTrace(std::ostream& out, const TraceFile& trace);

/// Materializing convenience over StreamBinaryTrace.
[[nodiscard]] TraceFile ReadBinaryTrace(std::istream& in);

/// Materializing convenience over StreamTrace: reads either format.
[[nodiscard]] TraceFile ReadAnyTrace(std::istream& in,
                                     const TraceStreamOptions& options = {});

/// Opens and reads `path` in either format (binary sniffed by magic).
/// Throws std::runtime_error when the file cannot be opened or parsed.
[[nodiscard]] TraceFile LoadTraceFile(const std::string& path,
                                      const TraceStreamOptions& options = {});

}  // namespace rtmp::trace
