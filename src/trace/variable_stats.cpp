#include "trace/variable_stats.h"

namespace rtmp::trace {

std::vector<VariableStats> ComputeVariableStats(const AccessSequence& seq) {
  std::vector<VariableStats> stats(seq.num_variables());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    VariableStats& s = stats[seq[i].variable];
    ++s.frequency;
    if (s.first == kNever) s.first = i;
    s.last = i;
  }
  return stats;
}

bool LifespansDisjoint(const VariableStats& a,
                       const VariableStats& b) noexcept {
  if (a.first == kNever || b.first == kNever) return true;
  return a.last < b.first || b.last < a.first;
}

bool LifespanNestedWithin(const VariableStats& inner,
                          const VariableStats& outer) noexcept {
  if (inner.first == kNever || outer.first == kNever) return false;
  return inner.first > outer.first && inner.last < outer.last;
}

}  // namespace rtmp::trace
