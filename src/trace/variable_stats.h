// Per-variable summary of an access sequence: the paper's access frequency
// `Av`, first occurrence `Fv` and last occurrence `Lv` (Algorithm 1,
// lines 2-4). Positions are 0-based; a variable that never appears has
// frequency 0 and first/last == kNever.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "trace/access_sequence.h"

namespace rtmp::trace {

/// Sentinel position for variables absent from the sequence.
inline constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

struct VariableStats {
  std::uint64_t frequency = 0;   // Av
  std::size_t first = kNever;    // Fv
  std::size_t last = kNever;     // Lv

  /// Lifespan |Lv - Fv| as defined in §III-B; 0 for absent variables.
  [[nodiscard]] std::size_t Lifespan() const noexcept {
    return first == kNever ? 0 : last - first;
  }

  friend bool operator==(const VariableStats&, const VariableStats&) = default;
};

/// Computes stats for every registered variable in one pass over `seq`.
[[nodiscard]] std::vector<VariableStats> ComputeVariableStats(
    const AccessSequence& seq);

/// Two variables have disjoint lifespans iff one's last occurrence precedes
/// the other's first (§III-B). Absent variables are disjoint from everything.
[[nodiscard]] bool LifespansDisjoint(const VariableStats& a,
                                     const VariableStats& b) noexcept;

/// True if `inner`'s lifespan lies strictly inside `outer`'s
/// (F_outer < F_inner and L_inner < L_outer) — the nesting relation of
/// Algorithm 1 line 10.
[[nodiscard]] bool LifespanNestedWithin(const VariableStats& inner,
                                        const VariableStats& outer) noexcept;

}  // namespace rtmp::trace
