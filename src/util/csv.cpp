#include "util/csv.h"

namespace rtmp::util {

std::string CsvEscape(std::string_view field, char sep) {
  const bool needs_quotes =
      field.find(sep) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << sep_;
    out_ << CsvEscape(fields[i], sep_);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::WriteRow(std::initializer_list<std::string_view> fields) {
  std::size_t i = 0;
  for (const auto field : fields) {
    if (i++ != 0) out_ << sep_;
    out_ << CsvEscape(field, sep_);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace rtmp::util
