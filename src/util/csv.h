// Minimal CSV emission for experiment results. Benches write their series
// both as human-readable tables (util/table.h) and machine-readable CSV so
// plots can be regenerated outside the repo.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rtmp::util {

/// Escapes a single CSV field per RFC 4180 (quotes fields containing the
/// separator, quotes or newlines; doubles embedded quotes).
[[nodiscard]] std::string CsvEscape(std::string_view field, char sep = ',');

/// Streaming CSV writer. Owns no buffer; rows go straight to the ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',')
      : out_(out), sep_(sep) {}

  /// Writes one row; fields are escaped as needed.
  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(std::initializer_list<std::string_view> fields);

  /// Convenience: header then rows.
  void WriteHeader(std::initializer_list<std::string_view> fields) {
    WriteRow(fields);
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  char sep_;
  std::size_t rows_ = 0;
};

}  // namespace rtmp::util
