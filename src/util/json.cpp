#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <system_error>

namespace rtmp::util {

namespace {

constexpr int kMaxDepth = 64;

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("json: " + what);
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  if (ec != std::errc()) Fail("number formatting failed");
  // to_chars emits the shortest round-trip form; "1e+25" and "1.5" are
  // both valid JSON, but a bare "nan"/"inf" never reaches here.
  return std::string(buffer, end);
}

// ---- JsonWriter ------------------------------------------------------------

void JsonWriter::Prefix(bool is_key) {
  if (stack_.empty()) return;
  Level& level = stack_.back();
  if (level.is_object && !is_key) {
    // Value following its Key(): no separator, Key() already emitted it.
    if (!level.expects_value) {
      Fail("value emitted inside an object without a preceding Key()");
    }
    level.expects_value = false;
    return;
  }
  if (level.is_object && level.expects_value) {
    Fail("Key() called while the previous key still awaits its value");
  }
  if (level.has_members) Raw(",");
  level.has_members = true;
  if (indent_ > 0) {
    Raw("\n");
    out_->append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
  }
}

void JsonWriter::BeginObject() {
  Prefix(false);
  Raw("{");
  stack_.push_back({/*is_object=*/true});
}

void JsonWriter::EndObject() {
  if (stack_.empty() || !stack_.back().is_object) {
    Fail("EndObject without a matching BeginObject");
  }
  if (stack_.back().expects_value) {
    Fail("EndObject while the last key still awaits its value");
  }
  const bool had_members = stack_.back().has_members;
  stack_.pop_back();
  if (indent_ > 0 && had_members) {
    Raw("\n");
    out_->append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
  }
  Raw("}");
}

void JsonWriter::BeginArray() {
  Prefix(false);
  Raw("[");
  stack_.push_back({/*is_object=*/false});
}

void JsonWriter::EndArray() {
  if (stack_.empty() || stack_.back().is_object) {
    Fail("EndArray without a matching BeginArray");
  }
  const bool had_members = stack_.back().has_members;
  stack_.pop_back();
  if (indent_ > 0 && had_members) {
    Raw("\n");
    out_->append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
  }
  Raw("]");
}

void JsonWriter::Key(std::string_view key) {
  if (stack_.empty() || !stack_.back().is_object) {
    Fail("Key() outside an object");
  }
  Prefix(true);
  Raw("\"");
  Raw(JsonEscape(key));
  Raw(indent_ > 0 ? "\": " : "\":");
  if (!stack_.empty()) stack_.back().expects_value = true;
}

void JsonWriter::String(std::string_view value) {
  Prefix(false);
  Raw("\"");
  Raw(JsonEscape(value));
  Raw("\"");
}

void JsonWriter::Int(std::int64_t value) {
  Prefix(false);
  Raw(std::to_string(value));
}

void JsonWriter::UInt(std::uint64_t value) {
  Prefix(false);
  Raw(std::to_string(value));
}

void JsonWriter::Double(double value) {
  Prefix(false);
  Raw(JsonNumber(value));
}

void JsonWriter::Bool(bool value) {
  Prefix(false);
  Raw(value ? "true" : "false");
}

void JsonWriter::Null() {
  Prefix(false);
  Raw("null");
}

// ---- JsonValue accessors ---------------------------------------------------

bool JsonValue::AsBool() const {
  if (kind_ != Kind::kBool) Fail("value is not a boolean");
  return bool_;
}

double JsonValue::AsDouble() const {
  if (kind_ == Kind::kNull) return std::numeric_limits<double>::quiet_NaN();
  if (kind_ != Kind::kNumber) Fail("value is not a number");
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  if (ec != std::errc() || end != text_.data() + text_.size()) {
    Fail("bad number '" + text_ + "'");
  }
  return value;
}

std::int64_t JsonValue::AsInt() const {
  if (kind_ != Kind::kNumber) Fail("value is not a number");
  std::int64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  if (ec != std::errc() || end != text_.data() + text_.size()) {
    Fail("number '" + text_ + "' is not a 64-bit integer");
  }
  return value;
}

std::uint64_t JsonValue::AsUInt() const {
  if (kind_ != Kind::kNumber) Fail("value is not a number");
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  if (ec != std::errc() || end != text_.data() + text_.size()) {
    Fail("number '" + text_ + "' is not an unsigned 64-bit integer");
  }
  return value;
}

const std::string& JsonValue::AsString() const {
  if (kind_ != Kind::kString) Fail("value is not a string");
  return text_;
}

const std::vector<JsonValue>& JsonValue::Items() const {
  if (kind_ != Kind::kArray) Fail("value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::Members()
    const {
  if (kind_ != Kind::kObject) Fail("value is not an object");
  return members_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) Fail("value is not an object");
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::At(std::string_view key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) Fail("missing member '" + std::string(key) + "'");
  return *value;
}

// ---- parser ----------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue(0);
    SkipWhitespace();
    if (pos_ != text_.size()) Error("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void Error(const std::string& what) const {
    Fail(what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Error("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Error(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue(int depth) {
    if (depth > kMaxDepth) Error("nesting too deep");
    SkipWhitespace();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kString;
        value.text_ = ParseString();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        if (Consume("true")) {
          value.bool_ = true;
        } else if (Consume("false")) {
          value.bool_ = false;
        } else {
          Error("bad literal");
        }
        return value;
      }
      case 'n':
        if (!Consume("null")) Error("bad literal");
        return JsonValue{};
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject(int depth) {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      value.members_.emplace_back(std::move(key), ParseValue(depth + 1));
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == '}') return value;
      if (c != ',') Error("expected ',' or '}'");
    }
  }

  JsonValue ParseArray(int depth) {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items_.push_back(ParseValue(depth + 1));
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == ']') return value;
      if (c != ',') Error("expected ',' or ']'");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) Error("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          AppendUnicodeEscape(out);
          break;
        default:
          Error("bad escape");
      }
    }
  }

  std::uint32_t ParseHex4() {
    if (pos_ + 4 > text_.size()) Error("truncated \\u escape");
    std::uint32_t value = 0;
    const auto [end, ec] = std::from_chars(
        text_.data() + pos_, text_.data() + pos_ + 4, value, 16);
    if (ec != std::errc() || end != text_.data() + pos_ + 4) {
      Error("bad \\u escape");
    }
    pos_ += 4;
    return value;
  }

  /// Decodes \uXXXX (with surrogate pairs) to UTF-8.
  void AppendUnicodeEscape(std::string& out) {
    std::uint32_t code = ParseHex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (!Consume("\\u")) Error("unpaired surrogate");
      const std::uint32_t low = ParseHex4();
      if (low < 0xDC00 || low > 0xDFFF) Error("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      Error("unpaired surrogate");
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      Error("bad value");
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    value.text_ = std::string(text_.substr(start, pos_ - start));
    // Validate eagerly so malformed numbers fail at parse time, not at
    // first access.
    (void)value.AsDouble();
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace rtmp::util
