// Minimal JSON emission and parsing for benchmark results and goldens.
//
// The writer streams RFC 8259 JSON with optional pretty-printing; the
// value type is a small DOM whose numbers keep their source text so that
// 64-bit counters (shift counts, evaluation counts) round-trip exactly
// instead of being squeezed through a double. Both sides cover exactly
// the JSON subset the bench harness emits — objects, arrays, strings,
// numbers, booleans and null — with full string escaping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtmp::util {

/// Escapes `text` for use inside a JSON string literal (without the
/// surrounding quotes): backslash, quote and control characters.
[[nodiscard]] std::string JsonEscape(std::string_view text);

/// Formats a double as a JSON number with round-trip precision.
/// Non-finite values (which JSON cannot represent) render as null.
[[nodiscard]] std::string JsonNumber(double value);

/// Streaming JSON writer. Nesting, commas and indentation are handled
/// internally; the caller emits Begin/End pairs, keys and values in
/// document order. With indent == 0 the output is compact. Misuse — a
/// value without a Key() inside an object, two Key() calls in a row,
/// Key() outside an object, or an unbalanced/mismatched End — throws
/// std::runtime_error instead of emitting invalid JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::string* out, int indent = 2)
      : out_(out), indent_(indent) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next object member.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void UInt(std::uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Key/value conveniences for flat object members.
  void Member(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void Member(std::string_view key, const char* value) {
    Key(key);
    String(value);
  }
  void Member(std::string_view key, std::int64_t value) {
    Key(key);
    Int(value);
  }
  void Member(std::string_view key, std::uint64_t value) {
    Key(key);
    UInt(value);
  }
  void Member(std::string_view key, int value) {
    Key(key);
    Int(value);
  }
  void Member(std::string_view key, unsigned value) {
    Key(key);
    UInt(value);
  }
  void Member(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void Member(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }

 private:
  /// Writes the separator (comma, newline, indent) owed before a value
  /// or key at the current nesting depth.
  void Prefix(bool is_key);
  void Raw(std::string_view text) { out_->append(text); }

  struct Level {
    bool is_object = false;
    bool has_members = false;
    bool expects_value = false;  ///< object level: Key() seen, value owed
  };

  std::string* out_;
  int indent_;
  std::vector<Level> stack_;
};

/// Parsed JSON value. Numbers keep their raw text; AsUInt/AsInt/AsDouble
/// convert on demand (throwing std::runtime_error on range/kind errors,
/// like every other accessor here).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (throws std::runtime_error with an offset
  /// on malformed input or trailing garbage).
  [[nodiscard]] static JsonValue Parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  [[nodiscard]] bool AsBool() const;
  /// Numbers convert normally; null reads back as NaN (the writer's
  /// encoding of non-finite doubles, see JsonNumber) so a report
  /// containing one is still loadable. Any other kind throws.
  [[nodiscard]] double AsDouble() const;
  [[nodiscard]] std::int64_t AsInt() const;
  [[nodiscard]] std::uint64_t AsUInt() const;
  [[nodiscard]] const std::string& AsString() const;

  /// Array elements (throws unless is_array()).
  [[nodiscard]] const std::vector<JsonValue>& Items() const;

  /// Object members in document order (throws unless is_object()).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& Members()
      const;

  /// Object member lookup; nullptr when absent (throws unless is_object()).
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;

  /// Object member lookup; throws when absent.
  [[nodiscard]] const JsonValue& At(std::string_view key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  /// String payload for kString; raw number text for kNumber.
  std::string text_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace rtmp::util
