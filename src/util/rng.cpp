#include "util/rng.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rtmp::util {

std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t HashString(std::string_view text) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  // Fold through the splitmix finalizer for better avalanche on short names.
  std::uint64_t state = h;
  return SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded draw with rejection to stay
  // unbiased and platform-deterministic.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t x = (*this)();
    const auto wide = static_cast<unsigned __int128>(x) * bound;
    const auto low = static_cast<std::uint64_t>(wide);
    if (low >= threshold) return static_cast<std::uint64_t>(wide >> 64);
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) noexcept {
  const auto width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(width));
}

double Rng::NextDouble() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) noexcept {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

std::size_t Rng::NextWeighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += std::max(w, 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(weights[i], 0.0);
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Rng::NextGeometric(double p, std::uint64_t cap) noexcept {
  p = std::clamp(p, 1e-9, 1.0);
  std::uint64_t failures = 0;
  while (failures < cap && !NextBool(p)) ++failures;
  return failures;
}

std::size_t Rng::NextZipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 0;
  if (s <= 0.0) return static_cast<std::size_t>(NextBelow(n));
  // Rejection sampler over the continuous envelope (Devroye). Deterministic
  // given the stream; average a handful of iterations.
  const double nd = static_cast<double>(n);
  for (;;) {
    const double u = NextDouble();
    const double v = NextDouble();
    double x = 0.0;
    if (s == 1.0) {
      x = std::exp(u * std::log(nd + 1.0));
    } else {
      const double t = std::pow(nd + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const auto k = static_cast<std::size_t>(x);  // in [1, n] nearly always
    if (k < 1 || k > n) continue;
    const double ratio = std::pow(static_cast<double>(k) / x, s);
    if (v * x / static_cast<double>(k) <= ratio) return k - 1;
  }
}

Rng Rng::Fork() noexcept { return Rng((*this)()); }

}  // namespace rtmp::util
