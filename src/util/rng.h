// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of rtmplace (trace generators, the genetic
// algorithm, random-walk search) draw from Rng so that a fixed seed yields a
// bit-identical run on every platform. The generator is xoshiro256**, seeded
// via splitmix64; both are public-domain algorithms by Blackman/Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace rtmp::util {

/// Mixes a 64-bit value into a well-distributed 64-bit output (splitmix64
/// finalizer). Used for seeding and for hashing benchmark names to seeds.
[[nodiscard]] std::uint64_t SplitMix64(std::uint64_t& state) noexcept;

/// Stable 64-bit hash of a string (FNV-1a folded through splitmix64).
/// Used to derive per-benchmark seeds from benchmark names.
[[nodiscard]] std::uint64_t HashString(std::string_view text) noexcept;

/// xoshiro256** deterministic PRNG.
///
/// Satisfies the std::uniform_random_bit_generator concept so it can also be
/// plugged into <random> distributions if ever needed, though the member
/// helpers below are preferred for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t NextInRange(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double NextDouble() noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  [[nodiscard]] bool NextBool(double p) noexcept;

  /// Index drawn proportionally to the non-negative weights. Requires a
  /// non-empty span with a positive total weight.
  [[nodiscard]] std::size_t NextWeighted(
      std::span<const double> weights) noexcept;

  /// Geometric-like draw: number of failures before first success with
  /// probability p in (0,1]; capped at `cap`.
  [[nodiscard]] std::uint64_t NextGeometric(double p,
                                            std::uint64_t cap) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent s >= 0 (s = 0 is uniform).
  /// Uses an inverse-CDF table-free rejection sampler good enough for
  /// workload synthesis.
  [[nodiscard]] std::size_t NextZipf(std::size_t n, double s) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) noexcept {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& Pick(const std::vector<T>& items) noexcept {
    return items[static_cast<std::size_t>(NextBelow(items.size()))];
  }

  /// Forks a statistically independent child generator; the parent stream
  /// advances by one draw.
  [[nodiscard]] Rng Fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rtmp::util
