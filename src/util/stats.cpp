#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace rtmp::util {

double Mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double GeoMean(std::span<const double> values, double floor) noexcept {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(std::max(v, floor));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double StdDev(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - mu) * (v - mu);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double Median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

double Min(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double JainFairness(std::span<const double> values) noexcept {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double value : values) {
    sum += value;
    sum_sq += value * value;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

Summary Summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  s.mean = Mean(values);
  s.geomean = GeoMean(values);
  s.median = Median(values);
  s.stddev = StdDev(values);
  s.min = Min(values);
  s.max = Max(values);
  return s;
}

std::string FormatFixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace rtmp::util
