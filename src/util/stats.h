// Small descriptive-statistics helpers used by the experiment harness to
// aggregate per-benchmark results the same way the paper does (geometric
// means over benchmarks, arithmetic means over configurations).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace rtmp::util {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double Mean(std::span<const double> values) noexcept;

/// Geometric mean computed in log-space; requires strictly positive values
/// (non-positive entries are clamped to `floor` to keep aggregate plots
/// well-defined when a cost is zero). 0 for an empty span.
[[nodiscard]] double GeoMean(std::span<const double> values,
                             double floor = 1e-12) noexcept;

/// Population standard deviation; 0 for fewer than two values.
[[nodiscard]] double StdDev(std::span<const double> values) noexcept;

/// Median (average of middle two for even sizes); 0 for an empty span.
[[nodiscard]] double Median(std::span<const double> values);

/// Minimum / maximum; 0 for an empty span.
[[nodiscard]] double Min(std::span<const double> values) noexcept;
[[nodiscard]] double Max(std::span<const double> values) noexcept;

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over non-negative
/// samples: 1 when every x_i is equal, 1/n when one sample holds
/// everything. 1 for empty or all-zero input (nothing is being divided
/// unfairly). The serve layer scores per-tenant latencies with this.
[[nodiscard]] double JainFairness(std::span<const double> values) noexcept;

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double geomean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary Summarize(std::span<const double> values);

/// Formats a double with `digits` significant fraction digits, trimming to a
/// compact human-readable string for report tables.
[[nodiscard]] std::string FormatFixed(double value, int digits);

}  // namespace rtmp::util
