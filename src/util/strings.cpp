#include "util/strings.h"

#include <cctype>

namespace rtmp::util {

namespace {
bool IsSpace(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view Trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && IsSpace(text[begin])) ++begin;
  while (end > begin && IsSpace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsSpace(text[i])) ++i;
    std::size_t start = i;
    while (i < text.size() && !IsSpace(text[i])) ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Concat(std::initializer_list<std::string_view> parts) {
  std::size_t size = 0;
  for (const std::string_view part : parts) size += part.size();
  std::string out;
  out.reserve(size);
  for (const std::string_view part : parts) out.append(part);
  return out;
}

}  // namespace rtmp::util
