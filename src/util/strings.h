// String helpers shared by the trace parser and report code.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace rtmp::util {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view Trim(std::string_view text) noexcept;

/// Splits on any amount of ASCII whitespace; no empty tokens are produced.
[[nodiscard]] std::vector<std::string> SplitWhitespace(std::string_view text);

/// Splits on a single separator character; empty fields are kept.
[[nodiscard]] std::vector<std::string> Split(std::string_view text, char sep);

/// Joins with a separator.
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lower-casing.
[[nodiscard]] std::string ToLower(std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool StartsWith(std::string_view text,
                              std::string_view prefix) noexcept;

/// Single-allocation concatenation. Preferred over chained operator+ for
/// generated names ("v" + std::to_string(i)): one allocation instead of
/// one per +, and immune to GCC 12's -Wrestrict false positive on
/// char* + std::string&& under -O3 (PR 105329).
[[nodiscard]] std::string Concat(std::initializer_list<std::string_view> parts);

}  // namespace rtmp::util
