// String helpers shared by the trace parser and report code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rtmp::util {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view Trim(std::string_view text) noexcept;

/// Splits on any amount of ASCII whitespace; no empty tokens are produced.
[[nodiscard]] std::vector<std::string> SplitWhitespace(std::string_view text);

/// Splits on a single separator character; empty fields are kept.
[[nodiscard]] std::vector<std::string> Split(std::string_view text, char sep);

/// Joins with a separator.
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lower-casing.
[[nodiscard]] std::string ToLower(std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool StartsWith(std::string_view text,
                              std::string_view prefix) noexcept;

}  // namespace rtmp::util
