#include "util/table.h"

#include <algorithm>
#include <sstream>

namespace rtmp::util {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::SetAlignments(std::vector<Align> alignments) {
  alignments_ = std::move(alignments);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*is_rule=*/false});
}

void TextTable::AddRule() { rows_.push_back(Row{{}, /*is_rule=*/true}); }

std::string TextTable::Render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.cells.size());
  if (columns == 0) return {};

  std::vector<std::size_t> widths(columns, 0);
  auto account = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) {
    if (!row.is_rule) account(row.cells);
  }

  auto align_of = [this](std::size_t column) {
    return column < alignments_.size() ? alignments_[column] : Align::kLeft;
  };

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      const std::size_t pad = widths[i] - cell.size();
      if (i != 0) out << "  ";
      if (align_of(i) == Align::kRight) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i != 0) out << "  ";
      out << std::string(widths[i], '-');
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    emit_rule();
  }
  for (const auto& row : rows_) {
    if (row.is_rule) emit_rule();
    else emit(row.cells);
  }
  return out.str();
}

}  // namespace rtmp::util
