// Fixed-width ASCII table rendering for bench output. Keeps every bench
// binary's stdout in the same layout the paper's tables/figures use.
#pragma once

#include <string>
#include <vector>

namespace rtmp::util {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// Builds an ASCII table with a header row, a separator, and data rows.
/// Column widths are computed from content. Intended for small report
/// tables, not bulk data (use CsvWriter for that).
class TextTable {
 public:
  /// Sets the header; resets alignment to kLeft for new columns.
  void SetHeader(std::vector<std::string> header);

  /// Sets per-column alignment; missing entries default to kLeft.
  void SetAlignments(std::vector<Align> alignments);

  /// Appends a row; rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal rule row (rendered as dashes).
  void AddRule();

  /// Renders the table to a string, each line terminated by '\n'.
  [[nodiscard]] std::string Render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_rule = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

}  // namespace rtmp::util
