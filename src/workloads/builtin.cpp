// Built-in workload registration: the OffsetStone-lite suite profiles,
// the raw trace::Generate* families, and the synthetic application
// families of workloads/synthetic.h, all behind one registry.
#include <cmath>
#include <functional>
#include <string>
#include <utility>

#include "trace/generators.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workloads/synthetic.h"
#include "workloads/workload.h"

namespace rtmp::workloads {

namespace {

/// max(1, round(base * factor)) — the scale rule every size knob uses.
std::size_t Scaled(std::size_t base, double factor) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(static_cast<double>(base) * factor)));
}

using SequenceFn = std::function<trace::AccessSequence(
    const WorkloadRequest& request, std::size_t index, util::Rng& rng)>;

/// A workload materialized by calling `fn` once per sequence with a
/// name-seeded RNG stream. Deterministic in (name, seed, scale) and
/// independent of threads or call order: the RNG is local to Generate().
class FunctionWorkload final : public Workload {
 public:
  FunctionWorkload(WorkloadInfo info, std::size_t num_sequences,
                   SequenceFn fn)
      : info_(std::move(info)),
        num_sequences_(num_sequences),
        fn_(std::move(fn)) {}

  [[nodiscard]] const WorkloadInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] offsetstone::Benchmark Generate(
      const WorkloadRequest& request) const override {
    ValidateRequest(request);
    offsetstone::Benchmark benchmark;
    benchmark.name = info_.name;
    util::Rng rng(util::HashString(info_.name) ^ request.seed);
    benchmark.sequences.reserve(num_sequences_);
    for (std::size_t i = 0; i < num_sequences_; ++i) {
      benchmark.sequences.push_back(fn_(request, i, rng));
    }
    return benchmark;
  }

 private:
  WorkloadInfo info_;
  std::size_t num_sequences_;
  SequenceFn fn_;
};

/// One OffsetStone-lite profile as a workload. scale multiplies the
/// sequence count (scale 1 reproduces the suite benchmark exactly;
/// smaller scales keep a deterministic prefix of its sequences).
class SuiteWorkload final : public Workload {
 public:
  explicit SuiteWorkload(offsetstone::BenchmarkProfile profile)
      : profile_(std::move(profile)) {
    info_.name = profile_.name;
    info_.summary = util::Concat(
        {"OffsetStone-lite suite benchmark (",
         std::to_string(profile_.num_sequences), " sequences)"});
    info_.family = "offsetstone";
  }

  [[nodiscard]] const WorkloadInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] offsetstone::Benchmark Generate(
      const WorkloadRequest& request) const override {
    ValidateRequest(request);
    return offsetstone::Generate(profile_, request.seed, request.scale);
  }

 private:
  offsetstone::BenchmarkProfile profile_;
  WorkloadInfo info_;
};

void RegisterFn(WorkloadRegistry& registry, std::string name,
                std::string summary, std::string family,
                std::size_t num_sequences, SequenceFn fn) {
  WorkloadInfo info;
  info.name = name;
  info.summary = std::move(summary);
  info.family = std::move(family);
  registry.Register(
      std::move(name),
      [info = std::move(info), num_sequences, fn = std::move(fn)] {
        return std::make_shared<const FunctionWorkload>(info, num_sequences,
                                                        fn);
      });
}

/// Per-sequence size factor: each workload carries a small, a medium and
/// a large instance so one registry name still spans a size range.
double IndexFactor(std::size_t index) {
  return 1.0 + 0.5 * static_cast<double>(index);
}

void RegisterGeneratorFamilies(WorkloadRegistry& registry) {
  RegisterFn(registry, "gen-uniform", "unstructured uniform accesses",
             "generator", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               trace::UniformParams p;
               p.num_vars = Scaled(16, IndexFactor(i));
               p.length = Scaled(256, IndexFactor(i) * req.scale);
               return trace::GenerateUniform(p, rng);
             });
  RegisterFn(registry, "gen-zipf", "frequency-skewed accesses, no structure",
             "generator", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               trace::ZipfParams p;
               p.num_vars = Scaled(48, IndexFactor(i));
               p.length = Scaled(768, IndexFactor(i) * req.scale);
               p.exponent = 0.8 + 0.2 * static_cast<double>(i);
               return trace::GenerateZipf(p, rng);
             });
  RegisterFn(registry, "gen-phased",
             "program phases over disjoint variable groups", "generator", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               trace::PhasedParams p;
               p.num_phases = 4 + i;
               p.vars_per_phase = Scaled(8, IndexFactor(i));
               p.accesses_per_phase = Scaled(96, req.scale);
               return trace::GeneratePhased(p, rng);
             });
  RegisterFn(registry, "gen-markov",
             "control-dominated transition-matrix accesses", "generator", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               trace::MarkovParams p;
               p.num_vars = Scaled(48, IndexFactor(i));
               p.length = Scaled(768, IndexFactor(i) * req.scale);
               return trace::GenerateMarkov(p, rng);
             });
  RegisterFn(registry, "gen-loopnest",
             "strided array sweeps with loop-carried scalars", "generator", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               trace::LoopNestParams p;
               p.num_arrays = 2 + i;
               p.array_len = Scaled(12, IndexFactor(i));
               p.iterations = Scaled(10, req.scale);
               return trace::GenerateLoopNest(p, rng);
             });
  RegisterFn(registry, "gen-sequential",
             "straight-line sliding-window compiler traces", "generator", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               trace::SequentialParams p;
               p.num_vars = Scaled(48, IndexFactor(i));
               p.length = Scaled(512, IndexFactor(i) * req.scale);
               return trace::GenerateSequential(p, rng);
             });
}

void RegisterSyntheticFamilies(WorkloadRegistry& registry) {
  RegisterFn(registry, "stencil", "2D 5-point stencil sweep over a grid",
             "synthetic", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               StencilParams p;
               p.width = 6 + 2 * i;
               p.height = 6 + 2 * i;
               p.time_steps = Scaled(2, req.scale);
               return GenerateStencil(p, rng);
             });
  RegisterFn(registry, "gemm-tiled", "tiled dense matrix multiply (C += A*B)",
             "synthetic", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               TiledGemmParams p;
               // Work grows with dim^3: scale the edge by cbrt(scale) so
               // the trace length stays roughly linear in scale.
               p.dim = Scaled(4 + 2 * i, std::cbrt(req.scale));
               p.tile = 2 + i;
               return GenerateTiledGemm(p, rng);
             });
  RegisterFn(registry, "hash-join", "zipf-keyed hash-join probe stream",
             "synthetic", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               HashJoinParams p;
               p.num_buckets = Scaled(24, IndexFactor(i));
               p.probes = Scaled(384, req.scale);
               return GenerateHashJoin(p, rng);
             });
  RegisterFn(registry, "bfs-frontier",
             "frontier-expanding BFS over a random sparse graph",
             "synthetic", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               BfsFrontierParams p;
               p.num_vertices = Scaled(48, IndexFactor(i));
               p.rounds = Scaled(2, req.scale);
               return GenerateBfsFrontier(p, rng);
             });
  RegisterFn(registry, "kv-churn",
             "zipfian key-value churn with a sliding working set",
             "synthetic", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               KvChurnParams p;
               p.live_keys = Scaled(32, IndexFactor(i));
               p.operations = Scaled(512, req.scale);
               return GenerateKvChurn(p, rng);
             });
  RegisterFn(registry, "fft-butterfly",
             "radix-2 FFT butterfly stages (stride-doubling pairs)",
             "synthetic", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               FftButterflyParams p;
               p.points = std::size_t{32} << i;
               p.transforms = Scaled(1, req.scale);
               return GenerateFftButterfly(p, rng);
             });
  RegisterFn(registry, "pointer-chase",
             "serial walks of a random permutation cycle", "synthetic", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               PointerChaseParams p;
               p.num_nodes = Scaled(40, IndexFactor(i));
               p.steps = Scaled(448, IndexFactor(i) * req.scale);
               return GeneratePointerChase(p, rng);
             });
  RegisterFn(registry, "stream-scan",
             "sequential array passes with hot accumulators", "synthetic", 3,
             [](const WorkloadRequest& req, std::size_t i, util::Rng& rng) {
               StreamScanParams p;
               p.array_len = Scaled(64, IndexFactor(i));
               p.passes = Scaled(3, req.scale);
               return GenerateStreamScan(p, rng);
             });
}

}  // namespace

void RegisterBuiltinWorkloads(WorkloadRegistry& registry) {
  for (const offsetstone::BenchmarkProfile& profile :
       offsetstone::SuiteProfiles()) {
    registry.Register(profile.name, [profile] {
      return std::make_shared<const SuiteWorkload>(profile);
    });
  }
  RegisterGeneratorFamilies(registry);
  RegisterSyntheticFamilies(registry);
}

}  // namespace rtmp::workloads
