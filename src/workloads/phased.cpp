#include "workloads/phased.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/strings.h"

namespace rtmp::workloads {

namespace {

class PhasedWorkload final : public Workload {
 public:
  explicit PhasedWorkload(std::vector<std::string> phases)
      : phases_(std::move(phases)) {
    if (phases_.empty()) {
      throw std::invalid_argument("phased(): at least one phase required");
    }
    info_.name = CanonicalPhasedName(phases_);
    info_.summary = "phase-spliced concatenation of " +
                    std::to_string(phases_.size()) +
                    " workloads over one positional variable space";
    info_.family = "combinator";
  }

  [[nodiscard]] const WorkloadInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] offsetstone::Benchmark Generate(
      const WorkloadRequest& request) const override {
    ValidateRequest(request);
    std::vector<offsetstone::Benchmark> parts;
    parts.reserve(phases_.size());
    for (const std::string& phase : phases_) {
      const auto workload = ResolveWorkload(phase);
      if (!workload) {
        throw std::invalid_argument(
            "phased(): '" + phase +
            "' is neither a registered workload, a trace file nor a "
            "phased(...) spec");
      }
      parts.push_back(workload->Generate(request));
      if (parts.back().sequences.empty()) {
        throw std::invalid_argument("phased(): phase '" + phase +
                                    "' produced no sequences");
      }
    }

    std::size_t num_sequences = 0;
    for (const offsetstone::Benchmark& part : parts) {
      num_sequences = std::max(num_sequences, part.sequences.size());
    }

    offsetstone::Benchmark result;
    result.name = info_.name;
    result.sequences.reserve(num_sequences);
    for (std::size_t i = 0; i < num_sequences; ++i) {
      trace::AccessSequence spliced;
      // Positional variable union: id v of every phase is the shared
      // variable "x<v>" (see header comment). Register the full union
      // up front so ids stay dense and phase-order independent.
      std::size_t num_variables = 0;
      for (const offsetstone::Benchmark& part : parts) {
        num_variables = std::max(
            num_variables,
            part.sequences[i % part.sequences.size()].num_variables());
      }
      for (std::size_t v = 0; v < num_variables; ++v) {
        (void)spliced.AddVariable(util::Concat({"x", std::to_string(v)}));
      }
      for (const offsetstone::Benchmark& part : parts) {
        const trace::AccessSequence& phase_seq =
            part.sequences[i % part.sequences.size()];
        for (const trace::Access& access : phase_seq.accesses()) {
          spliced.Append(access.variable, access.type);
        }
      }
      result.sequences.push_back(std::move(spliced));
    }
    return result;
  }

 private:
  std::vector<std::string> phases_;
  WorkloadInfo info_;
};

}  // namespace

std::shared_ptr<const Workload> MakePhasedWorkload(
    std::vector<std::string> phases) {
  return std::make_shared<const PhasedWorkload>(std::move(phases));
}

std::optional<std::vector<std::string>> ParsePhasedSpec(
    std::string_view spec) {
  const std::string_view trimmed = util::Trim(spec);
  constexpr std::string_view kPrefix = "phased(";
  if (trimmed.size() < kPrefix.size()) return std::nullopt;
  const std::string lowered = util::ToLower(trimmed.substr(0, kPrefix.size()));
  if (lowered != kPrefix) return std::nullopt;
  if (trimmed.back() != ')') {
    throw std::invalid_argument("phased(): missing closing ')' in '" +
                                std::string(spec) + "'");
  }

  const std::string_view body =
      trimmed.substr(kPrefix.size(), trimmed.size() - kPrefix.size() - 1);
  std::vector<std::string> phases;
  std::size_t depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size() && body[i] == '(') {
      ++depth;
      continue;
    }
    if (i < body.size() && body[i] == ')') {
      if (depth == 0) {
        throw std::invalid_argument("phased(): unbalanced ')' in '" +
                                    std::string(spec) + "'");
      }
      --depth;
      continue;
    }
    if (i < body.size() && (body[i] != ',' || depth > 0)) continue;
    const std::string_view phase = util::Trim(body.substr(start, i - start));
    if (phase.empty()) {
      throw std::invalid_argument("phased(): empty phase in '" +
                                  std::string(spec) + "'");
    }
    phases.push_back(std::string(phase));
    start = i + 1;
  }
  if (depth != 0) {
    throw std::invalid_argument("phased(): unbalanced '(' in '" +
                                std::string(spec) + "'");
  }
  return phases;
}

std::string CanonicalPhasedName(const std::vector<std::string>& phases) {
  std::string name = "phased(";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) name += ",";
    name += util::ToLower(phases[i]);
  }
  name += ")";
  return name;
}

}  // namespace rtmp::workloads
