// The phased(a,b,c) workload combinator: splice registered workloads
// into one phase-change workload.
//
// The registry's workloads are stationary — one access structure per
// benchmark. Real deployments drift between phases, and the online
// placement engine (src/online/) exists exactly for that regime; this
// combinator manufactures phased traffic from ANY workloads already in
// the registry (or trace files, or nested phased(...) specs):
//
//   phased(gemm-tiled,bfs-frontier,stream-scan)
//
// Splice semantics — the deterministic seam:
//
//  * Phase k materializes its benchmark with the request's seed and
//    scale, exactly as it would standalone.
//  * Variables are identified ACROSS phases by position: id i of every
//    phase maps to the shared variable "x<i>". The phases therefore
//    reuse one working set (|V| = max over phases) with genuinely
//    different affinity structures — the hard case for a single static
//    placement, and the one migration pays off in. (Name-based union
//    would make most phase pairs disjoint, which a static strategy
//    handles trivially by clustering per phase.)
//  * Result sequence i (i in [0, max over phases of sequence count))
//    concatenates phase 0's sequence (i mod n_0), then phase 1's
//    (i mod n_1), ... — every sequence crosses every phase seam, and
//    every phase's sequences all appear.
//
// Specs are parsed by workloads::ResolveWorkload (the parentheses make
// them invalid registry names, so they cannot shadow a registered
// workload); `placement_explorer workloads` lists the combinator
// alongside the registry.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/workload.h"

namespace rtmp::workloads {

/// A workload splicing `phases` (each itself resolved through
/// ResolveWorkload at Generate() time — names, trace files and nested
/// phased(...) specs all work). Throws std::invalid_argument on an
/// empty phase list. Unresolvable phases surface when Generate() runs.
[[nodiscard]] std::shared_ptr<const Workload> MakePhasedWorkload(
    std::vector<std::string> phases);

/// Parses "phased(a,b,...)" into its phase specs (whitespace around
/// commas trimmed; nested parentheses respected, so phases can be
/// phased(...) themselves). Returns nullopt when `spec` is not a phased
/// spec at all; throws std::invalid_argument on a malformed one
/// (unbalanced parentheses, empty phase).
[[nodiscard]] std::optional<std::vector<std::string>> ParsePhasedSpec(
    std::string_view spec);

/// Canonical spelling of a phased spec: "phased(a,b,c)" lowercased with
/// no spaces — the benchmark name the combinator emits.
[[nodiscard]] std::string CanonicalPhasedName(
    const std::vector<std::string>& phases);

}  // namespace rtmp::workloads
