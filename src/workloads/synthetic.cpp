#include "workloads/synthetic.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/strings.h"

namespace rtmp::workloads {

namespace {

using trace::AccessSequence;
using trace::AccessType;
using trace::VariableId;

/// Registers `count` variables named "<prefix><i>" and returns their ids
/// (dense, in registration order).
std::vector<VariableId> AddBlock(AccessSequence& seq, std::string_view prefix,
                                 std::size_t count) {
  std::vector<VariableId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ids.push_back(
        seq.AddVariable(util::Concat({prefix, std::to_string(i)})));
  }
  return ids;
}

}  // namespace

AccessSequence GenerateStencil(const StencilParams& params, util::Rng&) {
  const std::size_t w = std::max<std::size_t>(params.width, 1);
  const std::size_t h = std::max<std::size_t>(params.height, 1);
  AccessSequence seq;
  const auto grid = AddBlock(seq, "c", w * h);
  const auto at = [&](std::size_t row, std::size_t col) {
    return grid[row * w + col];
  };
  for (std::size_t step = 0; step < std::max<std::size_t>(params.time_steps, 1);
       ++step) {
    for (std::size_t row = 0; row < h; ++row) {
      for (std::size_t col = 0; col < w; ++col) {
        // Clamped 5-point stencil: N, W, center, E, S reads in memory
        // order, then the center update.
        seq.Append(at(row == 0 ? 0 : row - 1, col));
        seq.Append(at(row, col == 0 ? 0 : col - 1));
        seq.Append(at(row, col));
        seq.Append(at(row, col + 1 == w ? col : col + 1));
        seq.Append(at(row + 1 == h ? row : row + 1, col));
        seq.Append(at(row, col), AccessType::kWrite);
      }
    }
  }
  return seq;
}

AccessSequence GenerateTiledGemm(const TiledGemmParams& params, util::Rng&) {
  const std::size_t n = std::max<std::size_t>(params.dim, 1);
  const std::size_t t =
      std::clamp<std::size_t>(params.tile, 1, n);
  AccessSequence seq;
  const auto a = AddBlock(seq, "a", n * n);
  const auto b = AddBlock(seq, "b", n * n);
  const auto c = AddBlock(seq, "x", n * n);  // "x" sorts away from a/b
  // Tiled C += A*B: the (ii, jj) C tile stays hot across the kk loop.
  for (std::size_t ii = 0; ii < n; ii += t) {
    for (std::size_t jj = 0; jj < n; jj += t) {
      for (std::size_t kk = 0; kk < n; kk += t) {
        for (std::size_t i = ii; i < std::min(ii + t, n); ++i) {
          for (std::size_t j = jj; j < std::min(jj + t, n); ++j) {
            seq.Append(c[i * n + j]);
            for (std::size_t k = kk; k < std::min(kk + t, n); ++k) {
              seq.Append(a[i * n + k]);
              seq.Append(b[k * n + j]);
            }
            seq.Append(c[i * n + j], AccessType::kWrite);
          }
        }
      }
    }
  }
  return seq;
}

AccessSequence GenerateHashJoin(const HashJoinParams& params, util::Rng& rng) {
  const std::size_t buckets = std::max<std::size_t>(params.num_buckets, 1);
  const std::size_t max_chain = std::max<std::size_t>(params.max_chain, 1);
  AccessSequence seq;
  // Build side: per-bucket chains of 1..max_chain entry variables.
  std::vector<std::vector<VariableId>> chains(buckets);
  for (std::size_t bkt = 0; bkt < buckets; ++bkt) {
    const std::size_t chain = 1 + rng.NextBelow(max_chain);
    for (std::size_t link = 0; link < chain; ++link) {
      chains[bkt].push_back(seq.AddVariable(util::Concat(
          {"b", std::to_string(bkt), "_", std::to_string(link)})));
    }
  }
  const auto accumulators =
      AddBlock(seq, "acc", std::max<std::size_t>(params.num_accumulators, 1));
  // Hot buckets: probe keys are zipf-ranked over a shuffled bucket order.
  std::vector<std::size_t> by_rank(buckets);
  for (std::size_t i = 0; i < buckets; ++i) by_rank[i] = i;
  rng.Shuffle(by_rank);
  for (std::size_t probe = 0; probe < params.probes; ++probe) {
    const auto& chain = chains[by_rank[rng.NextZipf(buckets, params.key_zipf)]];
    // Walk a prefix of the chain (the matching entry stops the walk).
    const std::size_t walk = 1 + rng.NextBelow(chain.size());
    for (std::size_t link = 0; link < walk; ++link) seq.Append(chain[link]);
    if (rng.NextBool(params.match_prob)) {
      seq.Append(accumulators[rng.NextBelow(accumulators.size())],
                 AccessType::kWrite);
    }
  }
  return seq;
}

AccessSequence GenerateBfsFrontier(const BfsFrontierParams& params,
                                   util::Rng& rng) {
  const std::size_t n = std::max<std::size_t>(params.num_vertices, 2);
  AccessSequence seq;
  const auto verts = AddBlock(seq, "v", n);
  // Random sparse digraph: a ring (guaranteeing connectivity) plus
  // avg_degree-1 random extra edges per vertex.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t u = 0; u < n; ++u) {
    adj[u].push_back((u + 1) % n);
    for (std::size_t e = 1; e < std::max<std::size_t>(params.avg_degree, 1);
         ++e) {
      adj[u].push_back(rng.NextBelow(n));
    }
  }
  for (std::size_t round = 0; round < std::max<std::size_t>(params.rounds, 1);
       ++round) {
    const std::size_t root = rng.NextBelow(n);
    std::vector<bool> visited(n, false);
    std::vector<std::size_t> frontier{root};
    visited[root] = true;
    seq.Append(verts[root], AccessType::kWrite);  // mark the root
    while (!frontier.empty()) {
      std::vector<std::size_t> next;
      for (const std::size_t u : frontier) {
        seq.Append(verts[u]);  // load the frontier vertex
        for (const std::size_t v : adj[u]) {
          seq.Append(verts[v]);  // inspect the neighbor
          if (!visited[v]) {
            visited[v] = true;
            seq.Append(verts[v], AccessType::kWrite);  // mark it
            next.push_back(v);
          }
        }
      }
      frontier = std::move(next);
    }
  }
  return seq;
}

AccessSequence GenerateKvChurn(const KvChurnParams& params, util::Rng& rng) {
  const std::size_t live = std::max<std::size_t>(params.live_keys, 1);
  const std::size_t period = std::max<std::size_t>(params.churn_period, 1);
  // The last operation (index operations-1) sees the highest window
  // base, so that is what bounds the key space — operations/period
  // would mint one phantom key no access can ever reach when the
  // operation count is an exact multiple of the period.
  const std::size_t slides =
      params.operations == 0 ? 0 : (params.operations - 1) / period;
  AccessSequence seq;
  const auto keys = AddBlock(seq, "k", live + slides);
  for (std::size_t op = 0; op < params.operations; ++op) {
    // The working-set window slides forward once per churn period: the
    // oldest key retires for good, a fresh key becomes the hottest.
    const std::size_t window_base = op / period;
    // Rank 0 = newest key: churn workloads are recency-skewed.
    const std::size_t rank = rng.NextZipf(live, params.zipf);
    const VariableId key = keys[window_base + (live - 1 - rank)];
    seq.Append(key, rng.NextBool(params.put_fraction) ? AccessType::kWrite
                                                      : AccessType::kRead);
  }
  return seq;
}

AccessSequence GenerateFftButterfly(const FftButterflyParams& params,
                                    util::Rng&) {
  std::size_t n = 2;
  while (n * 2 <= params.points) n *= 2;
  AccessSequence seq;
  const auto points = AddBlock(seq, "p", n);
  for (std::size_t pass = 0; pass < std::max<std::size_t>(params.transforms, 1);
       ++pass) {
    // Iterative radix-2: stage stride doubles 1, 2, 4, ..., n/2.
    for (std::size_t half = 1; half < n; half *= 2) {
      for (std::size_t group = 0; group < n; group += 2 * half) {
        for (std::size_t i = group; i < group + half; ++i) {
          seq.Append(points[i]);
          seq.Append(points[i + half]);
          seq.Append(points[i], AccessType::kWrite);
          seq.Append(points[i + half], AccessType::kWrite);
        }
      }
    }
  }
  return seq;
}

AccessSequence GeneratePointerChase(const PointerChaseParams& params,
                                    util::Rng& rng) {
  const std::size_t n = std::max<std::size_t>(params.num_nodes, 1);
  AccessSequence seq;
  const auto nodes = AddBlock(seq, "n", n);
  // next[] is a single random cycle over all nodes (Sattolo's algorithm),
  // so the chase revisits every node once per lap.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<std::size_t> next(n);
  for (std::size_t i = 0; i < n; ++i) next[order[i]] = order[(i + 1) % n];
  std::size_t current = order[0];
  for (std::size_t step = 0; step < params.steps; ++step) {
    seq.Append(nodes[current], rng.NextBool(params.write_fraction)
                                   ? AccessType::kWrite
                                   : AccessType::kRead);
    current = rng.NextBool(params.restart_prob) ? order[0] : next[current];
  }
  return seq;
}

AccessSequence GenerateStreamScan(const StreamScanParams& params,
                                  util::Rng& rng) {
  const std::size_t len = std::max<std::size_t>(params.array_len, 1);
  AccessSequence seq;
  const auto data = AddBlock(seq, "s", len);
  const auto accumulators =
      AddBlock(seq, "acc", std::max<std::size_t>(params.num_accumulators, 1));
  for (std::size_t pass = 0; pass < std::max<std::size_t>(params.passes, 1);
       ++pass) {
    for (std::size_t i = 0; i < len; ++i) {
      seq.Append(data[i]);
      if (rng.NextBool(params.accumulator_prob)) {
        seq.Append(accumulators[rng.NextBelow(accumulators.size())],
                   AccessType::kWrite);
      }
    }
  }
  return seq;
}

}  // namespace rtmp::workloads
