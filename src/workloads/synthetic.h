// Application-shaped synthetic workload families.
//
// The trace/generators.h families model statistical structure (skew,
// phases, windows); these model the access patterns of eight concrete
// application kernels, the scenario diversity the ROADMAP asks for.
// Every generator is deterministic given the Rng it is handed, and every
// structural write (a stencil update, a butterfly output) is a kWrite so
// the energy model sees realistic read/write mixes.
//
// Families and the placement behaviour they exercise:
//  * Stencil      — 5-point neighbor reads + center write sweeping a 2D
//                   grid; strong spatial reuse between adjacent rows.
//  * TiledGemm    — C += A*B with a tiled triple loop; three arrays with
//                   very different reuse distances (A row-, B column-,
//                   C tile-resident).
//  * HashJoin     — zipf-keyed probes walking short bucket chains plus
//                   hot accumulator writes; pointer-ish locality with a
//                   skewed hot set.
//  * BfsFrontier  — frontier expansion over a random sparse graph;
//                   irregular neighbor access with a moving frontier.
//  * KvChurn      — zipfian get/put over a key working set that slides
//                   over time (old keys retire, fresh keys enter) — the
//                   cache-churn regime.
//  * FftButterfly — log2(n) butterfly stages with stride-doubling pair
//                   accesses; the classic strided-reuse stress test.
//  * PointerChase — repeated walks of a random permutation cycle with
//                   occasional restarts; serial dependent accesses, the
//                   worst case for prefetch-like placement.
//  * StreamScan   — sequential passes over a large array with a few hot
//                   accumulators; minimal reuse plus a tiny hot set.
#pragma once

#include <cstddef>

#include "trace/access_sequence.h"
#include "util/rng.h"

namespace rtmp::workloads {

struct StencilParams {
  std::size_t width = 8;    ///< grid columns (one variable per cell)
  std::size_t height = 8;   ///< grid rows
  std::size_t time_steps = 2;
};

struct TiledGemmParams {
  std::size_t dim = 6;   ///< square matrix dimension (3*dim^2 variables)
  std::size_t tile = 3;  ///< tile edge; clamped to dim
};

struct HashJoinParams {
  std::size_t num_buckets = 32;
  std::size_t max_chain = 3;  ///< bucket chain length in [1, max_chain]
  std::size_t probes = 384;
  double key_zipf = 0.9;      ///< probe-key skew
  double match_prob = 0.55;   ///< chance a probe ends in a result write
  std::size_t num_accumulators = 2;
};

struct BfsFrontierParams {
  std::size_t num_vertices = 64;
  std::size_t avg_degree = 4;
  std::size_t rounds = 2;  ///< independent traversals from distinct roots
};

struct KvChurnParams {
  std::size_t live_keys = 40;    ///< working-set size at any moment
  std::size_t operations = 512;
  std::size_t churn_period = 16;  ///< ops between working-set slides
  double zipf = 1.0;              ///< popularity skew inside the window
  double put_fraction = 0.35;
};

struct FftButterflyParams {
  std::size_t points = 64;  ///< rounded down to a power of two, min 2
  std::size_t transforms = 1;
};

struct PointerChaseParams {
  std::size_t num_nodes = 56;
  std::size_t steps = 448;
  double restart_prob = 0.05;    ///< jump back to the cycle's entry node
  double write_fraction = 0.15;  ///< payload updates along the walk
};

struct StreamScanParams {
  std::size_t array_len = 96;
  std::size_t passes = 3;
  std::size_t num_accumulators = 3;
  double accumulator_prob = 0.25;  ///< accumulator write per element read
};

[[nodiscard]] trace::AccessSequence GenerateStencil(const StencilParams& params,
                                                    util::Rng& rng);
[[nodiscard]] trace::AccessSequence GenerateTiledGemm(
    const TiledGemmParams& params, util::Rng& rng);
[[nodiscard]] trace::AccessSequence GenerateHashJoin(
    const HashJoinParams& params, util::Rng& rng);
[[nodiscard]] trace::AccessSequence GenerateBfsFrontier(
    const BfsFrontierParams& params, util::Rng& rng);
[[nodiscard]] trace::AccessSequence GenerateKvChurn(const KvChurnParams& params,
                                                    util::Rng& rng);
[[nodiscard]] trace::AccessSequence GenerateFftButterfly(
    const FftButterflyParams& params, util::Rng& rng);
[[nodiscard]] trace::AccessSequence GeneratePointerChase(
    const PointerChaseParams& params, util::Rng& rng);
[[nodiscard]] trace::AccessSequence GenerateStreamScan(
    const StreamScanParams& params, util::Rng& rng);

}  // namespace rtmp::workloads
