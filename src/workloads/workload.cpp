#include "workloads/workload.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "trace/trace_stream.h"
#include "util/strings.h"
#include "workloads/phased.h"

namespace rtmp::workloads {

void ValidateRequest(const WorkloadRequest& request) {
  if (!std::isfinite(request.scale) || request.scale <= 0.0 ||
      request.scale > 16.0) {
    throw std::invalid_argument(
        "WorkloadRequest: scale must be finite and in (0, 16]");
  }
}

WorkloadRegistry& WorkloadRegistry::Global() {
  static WorkloadRegistry* registry = [] {
    // Leaked: outlives WorkloadRegistrar uses in static destructors.
    // NOLINTNEXTLINE(rtmlint:naked-new): leaked Global() singleton.
    auto* r = new WorkloadRegistry();
    RegisterBuiltinWorkloads(*r);
    return r;
  }();
  return *registry;
}

void WorkloadRegistry::Register(std::string name, Factory factory) {
  if (!factory) {
    throw std::invalid_argument("WorkloadRegistry: null factory for '" +
                                name + "'");
  }
  std::string key = util::ToLower(name);
  // Names appear in CLI arguments and '|'-delimited ResultTable keys:
  // restrict to a safe charset, like the strategy registry does.
  const auto valid_char = [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '-' || c == '_' || c == '.';
  };
  if (key.empty() || !std::all_of(key.begin(), key.end(), valid_char)) {
    throw std::invalid_argument("WorkloadRegistry: invalid name '" + name +
                                "'");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    throw std::invalid_argument("WorkloadRegistry: duplicate workload '" +
                                key + "'");
  }
  entries_.insert(it, {std::move(key), Entry{std::move(factory), nullptr}});
}

const WorkloadRegistry::Entry* WorkloadRegistry::FindEntry(
    const std::string& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) return nullptr;
  return &it->second;
}

std::shared_ptr<const Workload> WorkloadRegistry::Find(
    std::string_view name) const {
  const std::string key = util::ToLower(name);
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* entry = FindEntry(key);
    if (entry == nullptr) return nullptr;
    if (entry->instance) return entry->instance;
    factory = entry->factory;
  }
  // Run the factory unlocked: factories may consult the registry (e.g.
  // compose workloads) without deadlocking.
  auto instance = factory();
  if (!instance) {
    throw std::logic_error("WorkloadRegistry: factory for '" + key +
                           "' returned null");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  // Entries are never removed, so the entry is still present; another
  // thread may have cached an instance first, in which case that one
  // wins.
  const Entry* entry = FindEntry(key);
  if (!entry->instance) entry->instance = std::move(instance);
  return entry->instance;
}

std::optional<WorkloadInfo> WorkloadRegistry::Describe(
    std::string_view name) const {
  const auto workload = Find(name);
  if (!workload) return std::nullopt;
  return workload->Describe();
}

bool WorkloadRegistry::Contains(std::string_view name) const {
  const std::string key = util::ToLower(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  return FindEntry(key) != nullptr;
}

std::vector<std::string> WorkloadRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // entries_ is kept sorted by key
}

std::size_t WorkloadRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

namespace {

/// External trace file as a workload: re-read on every Generate() so a
/// changed file is picked up; seed/scale are ignored (the file is its
/// own ground truth).
class TraceFileWorkload final : public Workload {
 public:
  explicit TraceFileWorkload(std::string path) : path_(std::move(path)) {
    info_.name = path_;
    info_.summary = "external trace file";
    info_.family = "trace";
  }

  [[nodiscard]] const WorkloadInfo& Describe() const noexcept override {
    return info_;
  }

  [[nodiscard]] offsetstone::Benchmark Generate(
      const WorkloadRequest&) const override {
    trace::TraceFile file = trace::LoadTraceFile(path_);
    offsetstone::Benchmark benchmark;
    benchmark.name = !file.benchmark.empty()
                         ? file.benchmark
                         : std::filesystem::path(path_).stem().string();
    benchmark.sequences = std::move(file.sequences);
    return benchmark;
  }

 private:
  std::string path_;
  WorkloadInfo info_;
};

}  // namespace

std::shared_ptr<const Workload> MakeTraceFileWorkload(std::string path) {
  return std::make_shared<const TraceFileWorkload>(std::move(path));
}

std::shared_ptr<const Workload> ResolveWorkload(std::string_view spec) {
  if (auto workload = WorkloadRegistry::Global().Find(spec)) return workload;
  // phased(a,b,...) splice specs: parentheses are invalid registry
  // characters, so the combinator can never shadow a registered name.
  if (auto phases = ParsePhasedSpec(spec)) {
    return MakePhasedWorkload(std::move(*phases));
  }
  std::error_code ec;
  if (std::filesystem::is_regular_file(std::filesystem::path(spec), ec)) {
    return MakeTraceFileWorkload(std::string(spec));
  }
  return nullptr;
}

WorkloadRegistrar::WorkloadRegistrar(std::string name,
                                     WorkloadRegistry::Factory factory) {
  WorkloadRegistry::Global().Register(std::move(name), std::move(factory));
}

}  // namespace rtmp::workloads
