// Workload registry: the open, name-keyed dispatch layer for benchmark
// workloads — the input side of the evaluation, mirroring the strategy
// registry on the solution side (core/strategy_registry.h).
//
// A workload is anything that can turn a WorkloadRequest into an
// offsetstone::Benchmark (a named set of access sequences). Three source
// families register here:
//
//  * the OffsetStone-lite suite profiles ("gsm", "dct", ...), so the
//    paper's benchmarks are reachable through the same interface;
//  * the trace::Generate* families ("gen-zipf", "gen-markov", ...),
//    exposing each raw generator as a standalone workload;
//  * eight application-shaped synthetic families (workloads/synthetic.h):
//    stencil sweeps, tiled GEMM, hash-join probes, BFS frontiers, zipfian
//    key-value churn, FFT butterflies, pointer chases, streaming scans.
//
// External trace files (text or binary, see trace/trace_stream.h) enter
// through ResolveWorkload(), which falls back to treating an unregistered
// name as a file path — so `placement_explorer` and sim::RunMatrix accept
// registry names and trace paths interchangeably.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "offsetstone/suite.h"

namespace rtmp::workloads {

/// Everything a workload needs to materialize its benchmark. Generation
/// must be deterministic in (seed, scale): equal requests yield
/// bit-identical benchmarks on every platform and thread count.
struct WorkloadRequest {
  /// Seed the workload derives its RNG streams from (combined with the
  /// workload name, so two workloads never share a stream).
  std::uint64_t seed = 0;
  /// Size multiplier relative to the workload's documented default
  /// (sequence counts / lengths scale roughly linearly). Values in
  /// (0, 16] are supported; out-of-range throws std::invalid_argument.
  double scale = 1.0;
};

/// Self-description of a registered workload.
struct WorkloadInfo {
  /// Registry key: lowercase, unique ("gsm", "gen-zipf", "stencil", ...).
  std::string name;
  /// One-line human-readable description for listings and docs.
  std::string summary;
  /// Source family: "offsetstone", "generator", "synthetic" or "trace".
  std::string family;
};

/// Abstract workload. Implementations must be stateless or internally
/// synchronized: the experiment engine may call Generate() from many
/// threads concurrently on one instance.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual const WorkloadInfo& Describe() const noexcept = 0;

  /// Materializes the benchmark. Throws std::invalid_argument on
  /// requests the workload cannot serve (e.g. out-of-range scale) and
  /// std::runtime_error on I/O failures (trace-file workloads).
  [[nodiscard]] virtual offsetstone::Benchmark Generate(
      const WorkloadRequest& request) const = 0;
};

/// Validates request.scale (finite, in (0, 16]); throws
/// std::invalid_argument otherwise. Every built-in workload calls this
/// first so the documented parameter range is enforced uniformly.
void ValidateRequest(const WorkloadRequest& request);

/// Name -> factory registry. Lookups are case-insensitive (names are
/// normalized to lowercase); construction is lazy and the instance is
/// cached. All members are thread-safe. Deliberately the same shape as
/// core::StrategyRegistry so the two sides of the evaluation matrix read
/// the same.
class WorkloadRegistry {
 public:
  using Factory = std::function<std::shared_ptr<const Workload>()>;

  WorkloadRegistry() = default;
  WorkloadRegistry(const WorkloadRegistry&) = delete;
  WorkloadRegistry& operator=(const WorkloadRegistry&) = delete;

  /// The process-wide registry, pre-populated with the built-in
  /// workloads (suite profiles + generator families + synthetics).
  [[nodiscard]] static WorkloadRegistry& Global();

  /// Registers `factory` under `name` (normalized to lowercase). Throws
  /// std::invalid_argument if the name is empty, contains characters
  /// outside [a-z0-9._-], or is already taken. Factories should be
  /// cheap: listings instantiate the workload to read its WorkloadInfo,
  /// so defer heavy state to Generate().
  void Register(std::string name, Factory factory);

  /// The workload registered under `name`; nullptr if unknown.
  [[nodiscard]] std::shared_ptr<const Workload> Find(
      std::string_view name) const;

  /// Metadata of the workload registered under `name`; nullopt if
  /// unknown.
  [[nodiscard]] std::optional<WorkloadInfo> Describe(
      std::string_view name) const;

  [[nodiscard]] bool Contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> Names() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    Factory factory;
    /// Constructed on first lookup, under mutex_.
    mutable std::shared_ptr<const Workload> instance;
  };

  /// Requires mutex_ to be held by the caller.
  [[nodiscard]] const Entry* FindEntry(const std::string& key) const;

  mutable std::mutex mutex_;
  // Sorted by key; small enough (tens of workloads) that a flat vector
  // beats a map.
  std::vector<std::pair<std::string, Entry>> entries_;
};

/// Registers the built-in workloads into `registry`: every OffsetStone
/// suite profile under its benchmark name, the six trace::Generate*
/// families under "gen-<family>", and the eight synthetic application
/// families of workloads/synthetic.h. Global() calls this once; tests
/// use it to build fresh registries.
void RegisterBuiltinWorkloads(WorkloadRegistry& registry);

/// A workload that loads an external trace file on every Generate()
/// call: text format when the content starts like text, binary when the
/// file carries the RTMB magic (see trace/trace_stream.h). The request's
/// seed and scale are ignored — a trace file IS its own ground truth.
[[nodiscard]] std::shared_ptr<const Workload> MakeTraceFileWorkload(
    std::string path);

/// Resolves a workload spec: a registered name wins; "phased(a,b,...)"
/// specs build the splice combinator (workloads/phased.h); anything
/// else is treated as a trace-file path (the file must exist). Returns
/// nullptr when it is none of the three.
[[nodiscard]] std::shared_ptr<const Workload> ResolveWorkload(
    std::string_view spec);

/// RAII self-registration into the Global() registry, for workloads
/// defined outside this library. Same linker caveat as
/// core::StrategyRegistrar: keep registrars in a translation unit that
/// is otherwise linked in.
struct WorkloadRegistrar {
  WorkloadRegistrar(std::string name, WorkloadRegistry::Factory factory);
};

}  // namespace rtmp::workloads
