// bench/harness: report round-trips, golden-comparison tolerance logic
// (exact counters fail on any drift, wall-clock drift passes within its
// loose bound), and the scenario registry.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "harness/compare.h"
#include "harness/report.h"
#include "harness/scenario.h"

namespace rtmp::benchtool {
namespace {

sim::RunResult MakeCell(const char* benchmark, unsigned dbcs,
                        const char* strategy, std::uint64_t shifts) {
  sim::RunResult cell;
  cell.benchmark = benchmark;
  cell.dbcs = dbcs;
  cell.strategy_name = strategy;
  cell.metrics.shifts = shifts;
  cell.metrics.accesses = 10 * shifts;
  cell.metrics.runtime_ns = 1.5 * static_cast<double>(shifts);
  cell.metrics.leakage_pj = 0.25;
  cell.metrics.read_write_pj = 2.0;
  cell.metrics.shift_pj = 0.5 * static_cast<double>(shifts);
  cell.metrics.area_mm2 = 0.0181;
  cell.placement_cost = shifts;
  cell.placement_wall_ms = 12.5;
  cell.search_evaluations = 321;
  return cell;
}

BenchReport MakeReport() {
  BenchReport report;
  report.scenario = "unit";
  report.git_sha = "deadbeef";
  report.search_effort = 0.05;
  report.suite_seed = 0;
  report.search_seed = 0x0FF5E7;
  report.wall_s = 1.0;
  report.cells.push_back(MakeCell("gsm", 8, "dma-sr", 1000));
  report.cells.push_back(MakeCell("gzip", 4, "afd-ofu", 2000));
  report.scalars.push_back({"unit/improvement", 2.5, "x"});
  report.checks.push_back({"shape holds", true, false});
  return report;
}

TEST(MetricPolicyTest, CountersAreExact) {
  EXPECT_EQ(PolicyFor("shifts").rel_tol, 0.0);
  EXPECT_EQ(PolicyFor("accesses").rel_tol, 0.0);
  EXPECT_EQ(PolicyFor("placement_cost").rel_tol, 0.0);
  EXPECT_EQ(PolicyFor("search_evaluations").rel_tol, 0.0);
}

TEST(MetricPolicyTest, DerivedDoublesGetFpHeadroom) {
  EXPECT_EQ(PolicyFor("runtime_ns").rel_tol, kFpRelTol);
  EXPECT_EQ(PolicyFor("shift_pj").rel_tol, kFpRelTol);
  EXPECT_EQ(PolicyFor("unit/improvement").rel_tol, kFpRelTol);
}

TEST(MetricPolicyTest, WallClockMetricsAreLoose) {
  EXPECT_EQ(PolicyFor("placement_wall_ms").rel_tol, kWallRelTol);
  EXPECT_EQ(PolicyFor("wall_s").rel_tol, kWallRelTol);
}

TEST(WithinToleranceTest, ExactPolicy) {
  EXPECT_TRUE(WithinTolerance(10.0, 10.0, {0.0}));
  EXPECT_FALSE(WithinTolerance(10.0, 10.000001, {0.0}));
}

TEST(WithinToleranceTest, RelativePolicy) {
  EXPECT_TRUE(WithinTolerance(100.0, 100.1, {0.01}));
  EXPECT_FALSE(WithinTolerance(100.0, 102.0, {0.01}));
  // Symmetric: measured against the larger magnitude.
  EXPECT_TRUE(WithinTolerance(0.0, 0.0, {0.01}));
  EXPECT_FALSE(WithinTolerance(0.0, 1.0, {0.01}));
}

TEST(CompareReportsTest, IdenticalReportsPass) {
  const BenchReport golden = MakeReport();
  const Comparison comparison = CompareReports(golden, MakeReport());
  EXPECT_TRUE(comparison.pass);
  EXPECT_TRUE(comparison.structural.empty());
  EXPECT_TRUE(comparison.diffs.empty());
}

TEST(CompareReportsTest, ExactMetricMismatchFails) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.cells[0].metrics.shifts += 1;  // off by one: a real regression
  const Comparison comparison = CompareReports(golden, current);
  EXPECT_FALSE(comparison.pass);
  bool found = false;
  for (const MetricDiff& diff : comparison.diffs) {
    if (diff.metric == "shifts") {
      found = true;
      EXPECT_FALSE(diff.ok);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompareReportsTest, CounterDriftBeyondDoublePrecisionStillFails) {
  // 2^53 and 2^53 + 1 collapse to the same double; the comparator must
  // compare counters as uint64, not through a double cast.
  const std::uint64_t big = (1ULL << 53);
  BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  golden.cells[0].metrics.shifts = big;
  current.cells[0].metrics.shifts = big + 1;
  EXPECT_FALSE(CompareReports(golden, current).pass);
}

TEST(CompareReportsTest, WallTimeDriftWithinTolerancePasses) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.cells[0].placement_wall_ms *= 7.0;  // another machine, same code
  current.wall_s *= 0.1;
  const Comparison comparison = CompareReports(golden, current);
  EXPECT_TRUE(comparison.pass);
  // The drift is still visible in the diff list, just not failing.
  ASSERT_FALSE(comparison.diffs.empty());
  EXPECT_TRUE(comparison.diffs[0].ok);
}

TEST(CompareReportsTest, PathologicalWallTimeRegressionFails) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.cells[0].placement_wall_ms *= 5000.0;
  EXPECT_FALSE(CompareReports(golden, current).pass);
}

TEST(CompareReportsTest, FpLevelDriftInDerivedDoublesPasses) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.cells[0].metrics.runtime_ns *= 1.0 + 1e-9;
  EXPECT_TRUE(CompareReports(golden, current).pass);
  current.cells[0].metrics.runtime_ns *= 1.01;
  EXPECT_FALSE(CompareReports(golden, current).pass);
}

TEST(CompareReportsTest, MissingCellIsStructuralFailure) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.cells.pop_back();
  const Comparison comparison = CompareReports(golden, current);
  EXPECT_FALSE(comparison.pass);
  EXPECT_FALSE(comparison.structural.empty());
}

TEST(CompareReportsTest, ExtraCellIsStructuralFailure) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.cells.push_back(MakeCell("new", 2, "rw", 5));
  EXPECT_FALSE(CompareReports(golden, current).pass);
}

TEST(CompareReportsTest, MissingScalarIsStructuralFailure) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.scalars.clear();
  EXPECT_FALSE(CompareReports(golden, current).pass);
}

TEST(CompareReportsTest, SilentGrowthOfScalarsOrChecksFails) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.scalars.push_back({"unit/new_metric", 1.0, ""});
  EXPECT_FALSE(CompareReports(golden, current).pass);

  BenchReport more_checks = MakeReport();
  more_checks.checks.push_back({"new check", true, false});
  EXPECT_FALSE(CompareReports(golden, more_checks).pass);
}

TEST(CompareReportsTest, DisjointKeysAreReportedByNameNotThrown) {
  // Two reports of the same scenario whose scalar/check/cell key sets
  // are fully disjoint — the `rtmbench diff` across-revision case. The
  // comparison must complete (no throw) and name every added and
  // removed key, not just count them.
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.cells.clear();
  current.cells.push_back(MakeCell("new", 2, "online-ewma-dma-sr", 5));
  current.scalars.clear();
  current.scalars.push_back({"unit/other_metric", 1.0, ""});
  current.checks.clear();
  current.checks.push_back({"other check", true, false});

  Comparison comparison;
  ASSERT_NO_THROW(comparison = CompareReports(golden, current));
  EXPECT_FALSE(comparison.pass);

  const auto has_message = [&comparison](const std::string& needle) {
    for (const std::string& message : comparison.structural) {
      if (message.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  // Removed keys...
  EXPECT_TRUE(has_message("missing cell gsm/8/dma-sr"));
  EXPECT_TRUE(has_message("missing scalar unit/improvement"));
  EXPECT_TRUE(has_message("missing check shape holds"));
  // ... and added keys, each by name.
  EXPECT_TRUE(has_message("added cell new/2/online-ewma-dma-sr"));
  EXPECT_TRUE(has_message("added scalar unit/other_metric"));
  EXPECT_TRUE(has_message("added check other check"));
}

TEST(CompareReportsTest, DuplicateKeysInCurrentReportFail) {
  // A scenario bug that emits one key twice must not slip through the
  // key-set match (only the first occurrence is value-compared).
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.cells.push_back(current.cells[0]);
  Comparison comparison = CompareReports(golden, current);
  EXPECT_FALSE(comparison.pass);
  bool named = false;
  for (const std::string& message : comparison.structural) {
    named |= message.find("duplicate cell gsm/8/dma-sr") != std::string::npos;
  }
  EXPECT_TRUE(named);

  BenchReport dup_scalar = MakeReport();
  dup_scalar.scalars.push_back(dup_scalar.scalars[0]);
  EXPECT_FALSE(CompareReports(golden, dup_scalar).pass);
  BenchReport dup_check = MakeReport();
  dup_check.checks.push_back(dup_check.checks[0]);
  EXPECT_FALSE(CompareReports(golden, dup_check).pass);
}

TEST(CompareReportsTest, NonFiniteScalarsMatchEachOther) {
  // A deterministic NaN (stored as null in JSON) agrees with its golden;
  // NaN vs a finite value still fails.
  BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  golden.scalars[0].value = std::nan("");
  current.scalars[0].value = std::nan("");
  EXPECT_TRUE(CompareReports(golden, current).pass);
  current.scalars[0].value = 2.5;
  EXPECT_FALSE(CompareReports(golden, current).pass);
}

TEST(CompareReportsTest, RegressedCheckFailsImprovedCheckPasses) {
  BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.checks[0].pass = false;
  EXPECT_FALSE(CompareReports(golden, current).pass);

  golden.checks[0].pass = false;
  current.checks[0].pass = true;  // newly passing: an improvement
  EXPECT_TRUE(CompareReports(golden, current).pass);
}

TEST(CompareReportsTest, EffortMismatchRefusesComparison) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.search_effort = 1.0;
  const Comparison comparison = CompareReports(golden, current);
  EXPECT_FALSE(comparison.pass);
  ASSERT_FALSE(comparison.structural.empty());
  EXPECT_NE(comparison.structural[0].find("search_effort"),
            std::string::npos);
}

TEST(CompareReportsTest, SeedMismatchRefusesComparison) {
  const BenchReport golden = MakeReport();
  BenchReport suite_drift = MakeReport();
  suite_drift.suite_seed = 7;
  EXPECT_FALSE(CompareReports(golden, suite_drift).pass);
  BenchReport search_drift = MakeReport();
  search_drift.search_seed = 7;
  EXPECT_FALSE(CompareReports(golden, search_drift).pass);
}

TEST(CompareReportsTest, ScenarioMismatchRefusesComparison) {
  const BenchReport golden = MakeReport();
  BenchReport current = MakeReport();
  current.scenario = "other";
  EXPECT_FALSE(CompareReports(golden, current).pass);
}

TEST(BenchReportTest, JsonRoundTripPreservesEverything) {
  const BenchReport report = MakeReport();
  const BenchReport back =
      BenchReport::FromJson(util::JsonValue::Parse(report.ToJson()));
  EXPECT_EQ(back.schema_version, report.schema_version);
  EXPECT_EQ(back.scenario, report.scenario);
  EXPECT_EQ(back.git_sha, report.git_sha);
  EXPECT_EQ(back.search_effort, report.search_effort);
  EXPECT_EQ(back.suite_seed, report.suite_seed);
  EXPECT_EQ(back.search_seed, report.search_seed);
  EXPECT_EQ(back.cells.size(), report.cells.size());
  EXPECT_EQ(back.scalars.size(), report.scalars.size());
  EXPECT_EQ(back.checks.size(), report.checks.size());
  // Round-tripped report compares clean against the original.
  const Comparison comparison = CompareReports(report, back);
  EXPECT_TRUE(comparison.pass);
  EXPECT_TRUE(comparison.diffs.empty());
}

TEST(BenchReportTest, RejectsUnknownSchemaVersion) {
  BenchReport report = MakeReport();
  report.schema_version = kBenchSchemaVersion + 1;
  EXPECT_THROW(
      (void)BenchReport::FromJson(util::JsonValue::Parse(report.ToJson())),
      std::runtime_error);
}

TEST(ScenarioRegistryTest, BuiltinScenariosAreRegistered) {
  auto& registry = ScenarioRegistry::Global();
  for (const char* name :
       {"smoke", "fig3_example", "fig4_shifts", "fig5_energy",
        "fig6_dbc_tradeoff", "sec4c_latency", "headline_summary",
        "ga_convergence", "table1_device_params", "ablation_dma",
        "ablation_intra", "ablation_overlap"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.Find("nope"), nullptr);
}

TEST(ScenarioRegistryTest, SmokeIsEffortIndependent) {
  const Scenario* smoke = ScenarioRegistry::Global().Find("smoke");
  ASSERT_NE(smoke, nullptr);
  EXPECT_FALSE(smoke->uses_search);
}

TEST(ScenarioRegistryTest, DuplicateRegistrationThrows) {
  ScenarioRegistry registry;
  registry.Register({"x", "", false, nullptr});
  EXPECT_THROW(registry.Register({"x", "", false, nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtmp::benchtool
