// Correctness oracles of the hybrid-memory cache tier (src/cache/).
//
// The differential oracle (ISSUE 9): with capacity >= the working set,
// EVERY eviction policy is a no-op and the CacheEngine is bit-identical
// to the bare online::OnlineEngine on every counter — at the engine
// level and at the sim::RunCell level ("cache-<e>-c100" cells equal the
// "online-fixed-dma-sr" cell). Plus eviction-policy unit checks and the
// registry/validation error surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/cache_cell.h"
#include "cache/cache_policy.h"
#include "cache/engine.h"
#include "cache/eviction.h"
#include "online/engine.h"
#include "sim/experiment.h"
#include "trace/access_sequence.h"
#include "workloads/workload.h"

namespace {

using namespace rtmp;

const std::vector<std::string>& EvictionPolicies() {
  static const std::vector<std::string> policies = {
      "cache-lru", "cache-lfu", "cache-sample", "cache-shift-aware"};
  return policies;
}

trace::AccessSequence WorkloadSequence(const std::string& name,
                                       std::size_t index = 0) {
  const auto workload = workloads::ResolveWorkload(name);
  EXPECT_NE(workload, nullptr) << name;
  auto benchmark = workload->Generate({});
  EXPECT_GT(benchmark.sequences.size(), index);
  return std::move(benchmark.sequences[index]);
}

/// The engine recipe both sides of the engine-level oracle run: small
/// windows, re-seed weighed at every boundary.
online::OnlineConfig OracleEngineConfig(const rtm::RtmConfig& config) {
  online::OnlineConfig online;
  online.reseed_strategy = "dma-sr";
  online.window_accesses = 64;
  online.detector.kind = online::DetectorKind::kFixedWindow;
  online.detector.period = 1;
  online.strategy_options.cost.initial_alignment = config.initial_alignment;
  return online;
}

void ExpectOnlineResultsEqual(const online::OnlineResult& a,
                              const online::OnlineResult& b,
                              const std::string& label) {
  EXPECT_EQ(a.stats.shifts, b.stats.shifts) << label;
  EXPECT_EQ(a.stats.requests, b.stats.requests) << label;
  EXPECT_EQ(a.service_shifts, b.service_shifts) << label;
  EXPECT_EQ(a.migration_shifts, b.migration_shifts) << label;
  EXPECT_EQ(a.amortized_shifts, b.amortized_shifts) << label;
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.migrated_vars, b.migrated_vars) << label;
  EXPECT_EQ(a.placement_cost, b.placement_cost) << label;
  EXPECT_EQ(a.evaluations, b.evaluations) << label;
  EXPECT_DOUBLE_EQ(a.stats.makespan_ns, b.stats.makespan_ns) << label;
  EXPECT_DOUBLE_EQ(a.energy.total_pj(), b.energy.total_pj()) << label;
  EXPECT_TRUE(a.final_placement == b.final_placement) << label;
  ASSERT_EQ(a.windows.size(), b.windows.size()) << label;
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(a.windows[w].service_shifts, b.windows[w].service_shifts)
        << label << " window " << w;
    EXPECT_EQ(a.windows[w].migration_shifts, b.windows[w].migration_shifts)
        << label << " window " << w;
    EXPECT_EQ(a.windows[w].replaced, b.windows[w].replaced)
        << label << " window " << w;
    EXPECT_EQ(a.windows[w].window_cost, b.windows[w].window_cost)
        << label << " window " << w;
  }
}

// With capacity == |V| every variable is admitted at registration, no
// miss can occur, and the cache run must equal the bare engine run on
// every counter — for every eviction policy.
TEST(CacheOracle, FullCapacityBitIdenticalToBareEngine) {
  for (const std::string& workload : {std::string("kv-churn"),
                                      std::string("pointer-chase")}) {
    const trace::AccessSequence seq = WorkloadSequence(workload);
    const rtm::RtmConfig config = sim::CellConfig(4, seq.num_variables());
    const online::OnlineResult bare =
        online::RunOnline(seq, OracleEngineConfig(config), config);

    for (const std::string& eviction : EvictionPolicies()) {
      cache::CacheConfig cache_config;
      cache_config.eviction = eviction;
      cache_config.capacity_ratio = 1.0;
      cache_config.engine = OracleEngineConfig(config);
      const cache::CacheResult cached =
          cache::RunCache(seq, cache_config, config);

      const std::string label = workload + "/" + eviction;
      ExpectOnlineResultsEqual(cached.online, bare, label);
      EXPECT_EQ(cached.cache.accesses, seq.size()) << label;
      EXPECT_EQ(cached.cache.hits, seq.size()) << label;
      EXPECT_EQ(cached.cache.misses, 0u) << label;
      EXPECT_EQ(cached.cache.fills, 0u) << label;
      EXPECT_EQ(cached.cache.writebacks, 0u) << label;
      EXPECT_EQ(cached.cache.fill_shifts, 0u) << label;
      EXPECT_DOUBLE_EQ(cached.cache.backing_ns, 0.0) << label;
    }
  }
}

// The same oracle one layer up: a "cache-<e>-c100" experiment cell is
// bit-identical to the "online-fixed-dma-sr" cell (same engine recipe,
// same seeds, same device).
TEST(CacheOracle, FullCapacityCellEqualsOnlineCell) {
  const auto workload = workloads::ResolveWorkload("kv-churn");
  ASSERT_NE(workload, nullptr);
  const auto benchmark = workload->Generate({});
  sim::ExperimentOptions options;

  for (const unsigned dbcs : {4u, 8u}) {
    const sim::RunResult online =
        sim::RunCell(benchmark, dbcs, "online-fixed-dma-sr", options);
    for (const std::string& eviction : EvictionPolicies()) {
      const sim::RunResult cached =
          sim::RunCell(benchmark, dbcs, eviction + "-c100", options);
      const std::string label = eviction + "/" + std::to_string(dbcs);
      EXPECT_EQ(cached.metrics.shifts, online.metrics.shifts) << label;
      EXPECT_EQ(cached.metrics.accesses, online.metrics.accesses) << label;
      EXPECT_EQ(cached.placement_cost, online.placement_cost) << label;
      EXPECT_EQ(cached.search_evaluations, online.search_evaluations)
          << label;
      EXPECT_DOUBLE_EQ(cached.metrics.runtime_ns, online.metrics.runtime_ns)
          << label;
      EXPECT_DOUBLE_EQ(cached.metrics.total_energy_pj(),
                       online.metrics.total_energy_pj())
          << label;
    }
  }
}

/// Builds an EvictionContext over hand-authored frames. `frames` and
/// `candidates` must outlive the context.
cache::EvictionContext MakeContext(
    const std::vector<std::uint32_t>& candidates,
    const std::vector<cache::FrameInfo>& frames,
    const std::vector<std::uint64_t>& pending, std::uint64_t tick) {
  cache::EvictionContext ctx;
  ctx.candidates = candidates;
  ctx.frames = frames;
  ctx.placement = nullptr;
  ctx.pending_uses = pending;
  ctx.tick = tick;
  return ctx;
}

std::vector<cache::FrameInfo> OccupiedFrames(
    const std::vector<std::uint64_t>& last_uses,
    const std::vector<std::uint64_t>& uses) {
  std::vector<cache::FrameInfo> frames(last_uses.size());
  for (std::uint32_t f = 0; f < frames.size(); ++f) {
    frames[f].occupant = f;
    frames[f].last_use = last_uses[f];
    frames[f].uses = uses[f];
  }
  return frames;
}

TEST(EvictionPolicies, LruPicksLeastRecentlyUsed) {
  const auto policy =
      cache::EvictionPolicyRegistry::Global().Create("cache-lru", 0);
  ASSERT_NE(policy, nullptr);
  const auto frames = OccupiedFrames({7, 3, 9, 5}, {1, 1, 1, 1});
  const std::vector<std::uint32_t> candidates = {0, 1, 2, 3};
  const std::vector<std::uint64_t> pending(4, 0);
  EXPECT_EQ(policy->PickVictim(MakeContext(candidates, frames, pending, 10)),
            1u);
  // Scoped candidates: the global minimum is out of reach.
  const std::vector<std::uint32_t> scoped = {0, 2};
  EXPECT_EQ(policy->PickVictim(MakeContext(scoped, frames, pending, 10)), 0u);
}

TEST(EvictionPolicies, LfuPicksLeastFrequentThenOldest) {
  const auto policy =
      cache::EvictionPolicyRegistry::Global().Create("cache-lfu", 0);
  ASSERT_NE(policy, nullptr);
  const std::vector<std::uint32_t> candidates = {0, 1, 2, 3};
  const std::vector<std::uint64_t> pending(4, 0);
  {
    const auto frames = OccupiedFrames({7, 3, 9, 5}, {4, 2, 9, 2});
    // uses tie between frames 1 and 3 -> older last_use (frame 1) loses.
    EXPECT_EQ(
        policy->PickVictim(MakeContext(candidates, frames, pending, 10)), 1u);
  }
}

TEST(EvictionPolicies, SampledLruDegeneratesToLruOnSmallSets) {
  const auto policy =
      cache::EvictionPolicyRegistry::Global().Create("cache-sample", 42);
  ASSERT_NE(policy, nullptr);
  // <= sample size: the policy must scan everything, no randomness.
  const auto frames = OccupiedFrames({7, 3, 9, 5}, {1, 1, 1, 1});
  const std::vector<std::uint32_t> candidates = {0, 1, 2, 3};
  const std::vector<std::uint64_t> pending(4, 0);
  EXPECT_EQ(policy->PickVictim(MakeContext(candidates, frames, pending, 10)),
            1u);
}

TEST(EvictionPolicies, ShiftAwarePrefersVictimsWithoutPendingUses) {
  const auto policy = cache::EvictionPolicyRegistry::Global().Create(
      "cache-shift-aware", 0);
  ASSERT_NE(policy, nullptr);
  const auto frames = OccupiedFrames({3, 4, 5, 6}, {1, 1, 1, 1});
  const std::vector<std::uint32_t> candidates = {0, 1, 2, 3};
  // The LRU victim (frame 0) still has window uses pending; frame 2 is
  // done for the window and should be preferred despite being younger.
  const std::vector<std::uint64_t> pending = {5, 2, 0, 1};
  EXPECT_EQ(policy->PickVictim(MakeContext(candidates, frames, pending, 10)),
            2u);
}

TEST(CacheValidation, RejectsBadConfigurations) {
  const rtm::RtmConfig device = rtm::RtmConfig::Paper(4);

  cache::CacheConfig unresolved;  // capacity_slots == 0
  EXPECT_THROW(cache::CacheEngine(unresolved, device), std::invalid_argument);

  cache::CacheConfig unknown;
  unknown.capacity_slots = 4;
  unknown.eviction = "no-such-policy";
  EXPECT_THROW(cache::CacheEngine(unknown, device), std::invalid_argument);

  cache::CacheConfig bad_ratio;
  bad_ratio.capacity_ratio = 0.0;
  EXPECT_THROW((void)cache::ResolveCapacity(bad_ratio, 16),
               std::invalid_argument);
  cache::CacheConfig explicit_slots;
  explicit_slots.capacity_slots = 7;
  EXPECT_EQ(cache::ResolveCapacity(explicit_slots, 16), 7u);
  cache::CacheConfig half;
  half.capacity_ratio = 0.5;
  EXPECT_EQ(cache::ResolveCapacity(half, 16), 8u);

  cache::CacheConfig ok;
  ok.capacity_slots = 2;
  cache::CacheEngine engine(ok, device);
  EXPECT_THROW(engine.Feed(99, trace::AccessType::kRead), std::out_of_range);
  (void)engine.RegisterVariable("a");
  engine.Feed(0, trace::AccessType::kRead);
  (void)engine.Finish();
  EXPECT_THROW((void)engine.Finish(), std::logic_error);

  const auto benchmark = workloads::ResolveWorkload("kv-churn")->Generate({});
  EXPECT_THROW((void)sim::RunCell(benchmark, 4, "cache-no-such", {}),
               std::invalid_argument);
}

// Event recording classifies every access; the first `capacity` ids are
// admitted for free, so a small trace over them never misses.
TEST(CacheEvents, ClassifyHitsAndMisses) {
  const rtm::RtmConfig device = rtm::RtmConfig::Paper(2);
  cache::CacheConfig config;
  config.capacity_slots = 2;
  config.eviction = "cache-lru";
  config.record_events = true;
  config.engine.reseed_strategy = "dma-sr";
  config.engine.window_accesses = online::kWholeTraceWindow;
  config.engine.detector.kind = online::DetectorKind::kNone;

  cache::CacheEngine engine(config, device);
  ASSERT_EQ(engine.RegisterVariable("a"), 0u);
  ASSERT_EQ(engine.RegisterVariable("b"), 1u);
  ASSERT_EQ(engine.RegisterVariable("c"), 2u);  // not admitted: over capacity
  EXPECT_EQ(engine.resident(), 2u);

  engine.Feed(0u, trace::AccessType::kRead);   // hit
  engine.Feed(1u, trace::AccessType::kWrite);  // hit, dirties b's frame
  engine.Feed(2u, trace::AccessType::kRead);   // miss, evicts a (LRU)
  engine.Feed(0u, trace::AccessType::kRead);   // miss, evicts b (dirty)
  const cache::CacheResult result = engine.Finish();

  EXPECT_EQ(result.cache.accesses, 4u);
  EXPECT_EQ(result.cache.hits, 2u);
  EXPECT_EQ(result.cache.misses, 2u);
  EXPECT_EQ(result.cache.fills, 2u);
  EXPECT_EQ(result.cache.writebacks, 1u);

  ASSERT_EQ(result.events.size(), 4u);
  EXPECT_EQ(result.events[0].kind, cache::CacheEvent::Kind::kHit);
  EXPECT_EQ(result.events[1].kind, cache::CacheEvent::Kind::kHit);
  EXPECT_EQ(result.events[2].kind, cache::CacheEvent::Kind::kMiss);
  EXPECT_EQ(result.events[2].evicted, 0u);  // a was least recently used
  EXPECT_FALSE(result.events[2].wrote_back);
  EXPECT_EQ(result.events[3].kind, cache::CacheEvent::Kind::kMiss);
  EXPECT_EQ(result.events[3].evicted, 1u);  // b, dirty from the write
  EXPECT_TRUE(result.events[3].wrote_back);
}

// Quota scoping: a tenant at its resident quota evicts among its OWN
// frames only, leaving other owners' residents untouched.
TEST(CacheEvents, OwnerQuotaScopesEvictionToTheOwnersFrames) {
  const rtm::RtmConfig device = rtm::RtmConfig::Paper(4);
  cache::CacheConfig config;
  config.capacity_slots = 4;
  config.eviction = "cache-lru";
  config.record_events = true;
  config.engine.reseed_strategy = "dma-sr";
  config.engine.window_accesses = online::kWholeTraceWindow;
  config.engine.detector.kind = online::DetectorKind::kNone;

  const auto run = [&](std::size_t quota) -> std::uint32_t {
    cache::CacheEngine engine(config, device);
    EXPECT_EQ(engine.RegisterVariable("a0", /*owner=*/0), 0u);
    EXPECT_EQ(engine.RegisterVariable("a1", /*owner=*/0), 1u);
    EXPECT_EQ(engine.RegisterVariable("b0", /*owner=*/1), 2u);
    EXPECT_EQ(engine.RegisterVariable("b1", /*owner=*/1), 3u);
    EXPECT_EQ(engine.RegisterVariable("a2", /*owner=*/0), 4u);  // over capacity
    if (quota != 0) {
      engine.SetOwnerQuota(0, quota);
      engine.SetOwnerQuota(1, quota);
    }
    // Touch owner 0's residents so they are the most recently used...
    engine.Feed(0u, trace::AccessType::kRead);
    engine.Feed(1u, trace::AccessType::kRead);
    // ...then miss on a2: unscoped LRU would pick owner 1's untouched
    // b0 (frame 2); at quota, owner 0 must cannibalize its own a0.
    engine.Feed(4u, trace::AccessType::kRead);
    const cache::CacheResult result = engine.Finish();
    EXPECT_EQ(result.cache.misses, 1u);
    if (result.events.size() != 3) {
      ADD_FAILURE() << "expected 3 events, got " << result.events.size();
      return cache::kNoFrame;
    }
    EXPECT_EQ(result.events[2].kind, cache::CacheEvent::Kind::kMiss);
    return result.events[2].evicted;
  };

  EXPECT_EQ(run(/*quota=*/0), 2u);  // unscoped: b0, the true LRU victim
  EXPECT_EQ(run(/*quota=*/2), 0u);  // scoped: a0, owner 0's own LRU
}

// The registry exposes the built-ins and arbitration catches collisions.
TEST(CacheRegistries, BuiltinsRegisteredAndValidated) {
  auto& evictions = cache::EvictionPolicyRegistry::Global();
  for (const std::string& name : EvictionPolicies()) {
    EXPECT_TRUE(evictions.Contains(name)) << name;
    EXPECT_TRUE(evictions.Describe(name).has_value()) << name;
  }
  EXPECT_EQ(evictions.Create("no-such", 0), nullptr);

  auto& policies = cache::CachePolicyRegistry::Global();
  for (const std::string& eviction : EvictionPolicies()) {
    for (const char* suffix : {"-c25", "-c50", "-c100"}) {
      const std::string name = eviction + suffix;
      ASSERT_TRUE(policies.Contains(name)) << name;
      const auto info = policies.Describe(name);
      ASSERT_TRUE(info.has_value()) << name;
      EXPECT_EQ(info->eviction, eviction) << name;
    }
  }
  EXPECT_EQ(policies.Find("no-such"), nullptr);

  cache::CachePolicyRegistry fresh;
  cache::RegisterBuiltinCachePolicies(fresh);
  EXPECT_EQ(fresh.size(), 12u);
  EXPECT_THROW(fresh.Register("Bad Name!", nullptr), std::invalid_argument);
}

}  // namespace
