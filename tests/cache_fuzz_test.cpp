// Randomized differential testing of the cache tier.
//
// A naive plain-map reference simulator re-derives CacheEngine's
// directory bookkeeping per access — free admission of the first C
// registered variables, global 1-based ticks, LRU/LFU/sampled-LRU
// victim selection with the engine's exact tie-breaks — and the
// classified event streams must match bit-for-bit on adversarial
// random access mixes with far more variables than frames.
//
// cache-shift-aware ranks victims with placement internals the
// reference deliberately does not model; there the engine's own event
// stream is replayed against the reference directory instead: every
// classification, victim residency, evicted occupant and writeback
// flag must be consistent with the tracked state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cache/engine.h"
#include "sim/experiment.h"
#include "trace/access_sequence.h"
#include "util/rng.h"

namespace {

using namespace rtmp;

constexpr std::size_t kVariables = 60;  ///< 3x over-committed ...
constexpr std::size_t kCapacity = 20;   ///< ... against the frame pool.
constexpr std::size_t kStreamLength = 2000;
constexpr std::uint64_t kEvictionSeed = 0xF00D;

struct RefFrame {
  std::uint32_t occupant = cache::kNoFrame;
  std::uint64_t last_use = 0;
  std::uint64_t uses = 0;
  bool dirty = false;
};

/// Plain-map mirror of the engine's directory. Holds no device, no
/// windows, no placement — just the residency state machine.
class ReferenceCache {
 public:
  ReferenceCache(std::string policy, std::uint64_t seed)
      : policy_(std::move(policy)), rng_(seed) {
    frames_.resize(kCapacity);
    frame_of_.assign(kVariables, cache::kNoFrame);
    for (std::uint32_t id = 0; id < kCapacity; ++id) {
      frames_[id].occupant = id;  // free admission, identity frame map
      frame_of_[id] = id;
    }
  }

  /// Advances one access and returns the event the engine must emit.
  /// `forced_victim` substitutes for PickVictim on a miss when the
  /// reference does not re-derive the policy (cache-shift-aware).
  cache::CacheEvent Access(const trace::Access& access,
                           std::uint32_t forced_victim = cache::kNoFrame) {
    ++tick_;
    const std::uint32_t variable = access.variable;
    const std::uint32_t resident = frame_of_[variable];
    if (resident != cache::kNoFrame) {
      RefFrame& info = frames_[resident];
      info.last_use = tick_;
      ++info.uses;
      if (access.type == trace::AccessType::kWrite) info.dirty = true;
      ++hits;
      return {tick_, variable, resident, cache::CacheEvent::Kind::kHit,
              cache::kNoFrame, false};
    }
    const std::uint32_t victim =
        forced_victim != cache::kNoFrame ? forced_victim : PickVictim();
    ++misses;
    EXPECT_LT(victim, frames_.size());
    RefFrame& info = frames_[victim];
    EXPECT_NE(info.occupant, cache::kNoFrame);
    const std::uint32_t evicted = info.occupant;
    const bool wrote_back = info.dirty;
    if (wrote_back) ++writebacks;
    frame_of_[evicted] = cache::kNoFrame;
    frame_of_[variable] = victim;
    info.occupant = variable;
    info.dirty = access.type == trace::AccessType::kWrite;
    info.last_use = tick_;
    info.uses = 1;
    return {tick_, variable, victim, cache::CacheEvent::Kind::kMiss, evicted,
            wrote_back};
  }

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

 private:
  std::uint32_t PickVictim() {
    // Once the over-committed variable space is registered every frame
    // stays occupied, so the candidate set is all frames in ascending
    // id order — the same order CacheEngine::ResolveMiss scans.
    if (policy_ == "cache-lru") {
      std::uint32_t best = 0;
      for (std::uint32_t f = 1; f < frames_.size(); ++f) {
        if (frames_[f].last_use < frames_[best].last_use) best = f;
      }
      return best;
    }
    if (policy_ == "cache-lfu") {
      std::uint32_t best = 0;
      for (std::uint32_t f = 1; f < frames_.size(); ++f) {
        if (frames_[f].uses != frames_[best].uses) {
          if (frames_[f].uses < frames_[best].uses) best = f;
        } else if (frames_[f].last_use < frames_[best].last_use) {
          best = f;
        }
      }
      return best;
    }
    if (policy_ == "cache-sample") {
      // Five draws with replacement from the policy's own xoshiro
      // stream; with kCapacity > 5 the engine never takes its
      // degenerate full-LRU path, so draw counts stay aligned as long
      // as miss classification agrees — which is what is under test.
      std::uint32_t best = cache::kNoFrame;
      for (int draw = 0; draw < 5; ++draw) {
        const auto frame =
            static_cast<std::uint32_t>(rng_.NextBelow(frames_.size()));
        if (best == cache::kNoFrame ||
            frames_[frame].last_use < frames_[best].last_use ||
            (frames_[frame].last_use == frames_[best].last_use &&
             frame < best)) {
          best = frame;
        }
      }
      return best;
    }
    ADD_FAILURE() << "reference reached PickVictim for policy '" << policy_
                  << "' (classification diverged from the engine)";
    return 0;
  }

  std::string policy_;
  util::Rng rng_;
  std::vector<RefFrame> frames_;
  std::vector<std::uint32_t> frame_of_;
  std::uint64_t tick_ = 0;
};

/// Uniform chaos: every variable equally likely, 30% writes.
std::vector<trace::Access> UniformStream(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trace::Access> stream;
  stream.reserve(kStreamLength);
  for (std::size_t i = 0; i < kStreamLength; ++i) {
    stream.push_back(
        {static_cast<trace::VariableId>(rng.NextBelow(kVariables)),
         rng.NextBool(0.3) ? trace::AccessType::kWrite
                           : trace::AccessType::kRead});
  }
  return stream;
}

/// Rotating hot set: 85% of accesses hit a 12-variable window that
/// slides every 150 accesses — forces steady eviction churn with
/// reuse, the regime where LRU/LFU/sampled choices actually differ.
std::vector<trace::Access> HotSetStream(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trace::Access> stream;
  stream.reserve(kStreamLength);
  std::uint32_t base = 0;
  for (std::size_t i = 0; i < kStreamLength; ++i) {
    if (i != 0 && i % 150 == 0) base = (base + 7) % kVariables;
    const std::uint32_t variable =
        rng.NextBool(0.85)
            ? (base + static_cast<std::uint32_t>(rng.NextBelow(12))) %
                  kVariables
            : static_cast<std::uint32_t>(rng.NextBelow(kVariables));
    stream.push_back({variable, rng.NextBool(0.4)
                                    ? trace::AccessType::kWrite
                                    : trace::AccessType::kRead});
  }
  return stream;
}

cache::CacheResult RunEngine(const std::vector<trace::Access>& stream,
                             const std::string& eviction) {
  cache::CacheConfig config;
  config.eviction = eviction;
  config.capacity_slots = kCapacity;
  config.eviction_seed = kEvictionSeed;
  config.record_events = true;
  config.engine.reseed_strategy = "dma-sr";
  config.engine.window_accesses = 32;
  config.engine.detector.kind = online::DetectorKind::kFixedWindow;
  config.engine.detector.period = 1;
  cache::CacheEngine engine(config, sim::CellConfig(4, kCapacity));
  for (std::size_t v = 0; v < kVariables; ++v) {
    std::string name = "v";
    name += std::to_string(v);
    (void)engine.RegisterVariable(name);
  }
  engine.Feed(stream);
  EXPECT_LE(engine.resident(), engine.capacity());
  return engine.Finish();
}

void ExpectEventsEqual(const cache::CacheEvent& expected,
                       const cache::CacheEvent& actual,
                       const std::string& label) {
  ASSERT_TRUE(expected == actual)
      << label << " diverged at tick " << expected.tick << ": expected "
      << (expected.kind == cache::CacheEvent::Kind::kHit ? "hit" : "miss")
      << " var=" << expected.variable << " frame=" << expected.frame
      << " evicted=" << expected.evicted
      << " wrote_back=" << expected.wrote_back << "; engine emitted "
      << (actual.kind == cache::CacheEvent::Kind::kHit ? "hit" : "miss")
      << " var=" << actual.variable << " frame=" << actual.frame
      << " evicted=" << actual.evicted << " wrote_back=" << actual.wrote_back;
}

void ExpectConserved(const cache::CacheResult& result,
                     const std::string& label) {
  EXPECT_EQ(result.cache.hits + result.cache.misses, result.cache.accesses)
      << label;
  EXPECT_EQ(result.cache.fills, result.cache.misses) << label;
  EXPECT_EQ(result.online.stats.shifts,
            result.online.service_shifts + result.online.migration_shifts +
                result.cache.fill_shifts)
      << label;
}

struct StreamFlavor {
  const char* name;
  std::vector<trace::Access> (*make)(std::uint64_t seed);
};

constexpr StreamFlavor kFlavors[] = {{"uniform", UniformStream},
                                     {"hot-set", HotSetStream}};
constexpr std::uint64_t kStreamSeeds[] = {0x1111, 0x2222, 0x3333};

TEST(CacheFuzz, ExactEventStreamMatchesReference) {
  for (const std::string policy :
       {"cache-lru", "cache-lfu", "cache-sample"}) {
    for (const StreamFlavor& flavor : kFlavors) {
      for (const std::uint64_t seed : kStreamSeeds) {
        const std::vector<trace::Access> stream = flavor.make(seed);
        const cache::CacheResult result = RunEngine(stream, policy);
        const std::string label =
            policy + "/" + flavor.name + "/seed" + std::to_string(seed);
        ASSERT_EQ(result.events.size(), stream.size()) << label;

        ReferenceCache reference(policy, kEvictionSeed);
        for (std::size_t i = 0; i < stream.size(); ++i) {
          ExpectEventsEqual(reference.Access(stream[i]), result.events[i],
                            label);
          if (HasFatalFailure()) return;
        }
        EXPECT_EQ(result.cache.hits, reference.hits) << label;
        EXPECT_EQ(result.cache.misses, reference.misses) << label;
        EXPECT_EQ(result.cache.writebacks, reference.writebacks) << label;
        // The miss regime must be non-trivial for the run to mean much.
        EXPECT_GT(reference.misses, 100u) << label;
        EXPECT_GT(reference.hits, 100u) << label;
        ExpectConserved(result, label);
      }
    }
  }
}

TEST(CacheFuzz, ShiftAwareEventReplayIsConsistent) {
  for (const StreamFlavor& flavor : kFlavors) {
    for (const std::uint64_t seed : kStreamSeeds) {
      const std::vector<trace::Access> stream = flavor.make(seed);
      const cache::CacheResult result = RunEngine(stream, "cache-shift-aware");
      const std::string label =
          std::string("cache-shift-aware/") + flavor.name + "/seed" +
          std::to_string(seed);
      ASSERT_EQ(result.events.size(), stream.size()) << label;

      // Replay the engine's own victim choices through the reference
      // directory: residency classification, the evicted occupant and
      // the writeback flag are all forced moves once the victim frame
      // is fixed, so any bookkeeping drift in the engine surfaces as
      // an event mismatch here.
      ReferenceCache reference("cache-shift-aware", kEvictionSeed);
      for (std::size_t i = 0; i < stream.size(); ++i) {
        const cache::CacheEvent& actual = result.events[i];
        const std::uint32_t forced =
            actual.kind == cache::CacheEvent::Kind::kMiss ? actual.frame
                                                          : cache::kNoFrame;
        ExpectEventsEqual(reference.Access(stream[i], forced), actual, label);
        if (HasFatalFailure()) return;
      }
      EXPECT_EQ(result.cache.hits, reference.hits) << label;
      EXPECT_EQ(result.cache.writebacks, reference.writebacks) << label;
      ExpectConserved(result, label);
    }
  }
}

}  // namespace
