// Property layer over the cache tier: invariants that must hold for
// EVERY hybrid-memory run, not just the pinned oracles.
//
//  * Conservation — hits + misses == accesses, fills and writebacks
//    bounded by misses, and the controller total decomposes exactly:
//    stats.shifts == service + migration + fill shifts; the resident
//    set never exceeds the capacity.
//  * Determinism — reruns are bit-identical at a fixed seed (including
//    the randomized cache-sample policy), and cache cells in RunMatrix
//    are invariant under RTMPLACE_THREADS.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cache/cache_policy.h"
#include "cache/engine.h"
#include "sim/experiment.h"
#include "trace/access_sequence.h"
#include "workloads/workload.h"

namespace {

using namespace rtmp;

const std::vector<std::string>& PropertyWorkloads() {
  static const std::vector<std::string> workloads = {
      "pointer-chase",
      "kv-churn",
      "phased(gemm-tiled,stream-scan)",
  };
  return workloads;
}

const std::vector<std::string>& PropertyEvictions() {
  static const std::vector<std::string> evictions = {
      "cache-lru", "cache-lfu", "cache-sample", "cache-shift-aware"};
  return evictions;
}

cache::CacheConfig PropertyConfig(const std::string& eviction, double ratio) {
  cache::CacheConfig config;
  config.eviction = eviction;
  config.capacity_ratio = ratio;
  config.eviction_seed = 0xC0FFEE;
  config.engine.reseed_strategy = "dma-sr";
  config.engine.window_accesses = 64;
  config.engine.detector.kind = online::DetectorKind::kFixedWindow;
  config.engine.detector.period = 1;
  return config;
}

/// Pre-registers the whole variable space and feeds every access — the
/// RunCache recipe, inlined so the engine stays inspectable (resident()
/// and capacity() are engine accessors, consumed by Finish()).
cache::CacheResult RunInspected(const trace::AccessSequence& seq,
                                cache::CacheConfig config,
                                const rtm::RtmConfig& device,
                                std::size_t* capacity_out) {
  config.capacity_slots = cache::ResolveCapacity(config, seq.num_variables());
  cache::CacheEngine engine(config, device);
  for (trace::VariableId v = 0;
       v < static_cast<trace::VariableId>(seq.num_variables()); ++v) {
    (void)engine.RegisterVariable(seq.name_of(v));
  }
  EXPECT_LE(engine.resident(), engine.capacity());
  engine.Feed(seq.accesses());
  EXPECT_LE(engine.resident(), engine.capacity());
  *capacity_out = engine.capacity();
  return engine.Finish();
}

TEST(CacheConservation, HoldsForEveryPolicyAndCapacity) {
  bool saw_miss = false;
  for (const std::string& workload_name : PropertyWorkloads()) {
    const auto workload = workloads::ResolveWorkload(workload_name);
    ASSERT_NE(workload, nullptr) << workload_name;
    const auto benchmark = workload->Generate({});
    for (const std::string& eviction : PropertyEvictions()) {
      for (const double ratio : {0.25, 0.5, 1.0}) {
        for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
          const auto& seq = benchmark.sequences[s];
          if (seq.num_variables() == 0) continue;
          const cache::CacheConfig config = PropertyConfig(eviction, ratio);
          const rtm::RtmConfig device = sim::CellConfig(
              4, cache::ResolveCapacity(config, seq.num_variables()));
          std::size_t capacity = 0;
          const cache::CacheResult result =
              RunInspected(seq, config, device, &capacity);
          const std::string label = workload_name + "/" + eviction + "/" +
                                    std::to_string(ratio) + "/seq" +
                                    std::to_string(s);

          const cache::CacheStats& c = result.cache;
          saw_miss |= c.misses > 0;
          EXPECT_EQ(c.accesses, seq.size()) << label;
          EXPECT_EQ(c.hits + c.misses, c.accesses) << label;
          EXPECT_EQ(c.fills, c.misses) << label;
          EXPECT_LE(c.writebacks, c.misses) << label;
          // One device request per transfer: a read per writeback, a
          // write per fill (frames unplaced at hook time excepted —
          // frames are pre-registered, so there are none).
          EXPECT_EQ(c.fill_accesses, c.fills + c.writebacks) << label;
          // Backing-store terms follow the transfer counts linearly.
          const cache::BackingStoreConfig backing;
          EXPECT_DOUBLE_EQ(
              c.backing_ns,
              static_cast<double>(c.fills) * backing.fill_ns +
                  static_cast<double>(c.writebacks) * backing.writeback_ns)
              << label;

          // The decomposition invariant: every controller shift is
          // service, migration or fill — nothing double-counted,
          // nothing dropped.
          const online::OnlineResult& online = result.online;
          EXPECT_EQ(online.stats.shifts, online.service_shifts +
                                             online.migration_shifts +
                                             c.fill_shifts)
              << label;
          if (ratio >= 1.0) {
            EXPECT_EQ(c.misses, 0u) << label;
            EXPECT_EQ(c.fill_shifts, 0u) << label;
          }
        }
      }
    }
  }
  // The property run must actually exercise the miss path.
  EXPECT_TRUE(saw_miss);
}

TEST(CacheDeterminism, BitIdenticalAtAFixedSeed) {
  const auto workload = workloads::ResolveWorkload("kv-churn");
  ASSERT_NE(workload, nullptr);
  const auto benchmark = workload->Generate({});
  const auto& seq = benchmark.sequences[0];
  ASSERT_GT(seq.num_variables(), 0u);

  for (const std::string& eviction : PropertyEvictions()) {
    cache::CacheConfig config = PropertyConfig(eviction, 0.5);
    config.record_events = true;
    const rtm::RtmConfig device =
        sim::CellConfig(4, cache::ResolveCapacity(config, seq.num_variables()));
    const cache::CacheResult a = cache::RunCache(seq, config, device);
    const cache::CacheResult b = cache::RunCache(seq, config, device);

    EXPECT_EQ(a.cache.hits, b.cache.hits) << eviction;
    EXPECT_EQ(a.cache.misses, b.cache.misses) << eviction;
    EXPECT_EQ(a.cache.writebacks, b.cache.writebacks) << eviction;
    EXPECT_EQ(a.cache.fill_shifts, b.cache.fill_shifts) << eviction;
    EXPECT_EQ(a.online.stats.shifts, b.online.stats.shifts) << eviction;
    EXPECT_TRUE(a.online.final_placement == b.online.final_placement)
        << eviction;
    // The whole classified event stream, not just the totals.
    EXPECT_TRUE(a.events == b.events) << eviction;
  }
}

TEST(CacheDeterminism, MatrixCellsInvariantUnderThreadCount) {
  sim::ExperimentOptions options;
  options.dbc_counts = {4, 8};
  options.strategies = {};
  options.extra_strategies = {"cache-lru-c50", "cache-sample-c50",
                              "cache-shift-aware-c25"};

  const std::vector<std::string> specs = {"pointer-chase", "kv-churn"};

  options.num_threads = 1;
  const auto serial = sim::RunMatrix(specs, options);

  ASSERT_EQ(setenv("RTMPLACE_THREADS", "3", /*overwrite=*/1), 0);
  options.num_threads = sim::ThreadCountFromEnv(1);
  EXPECT_EQ(options.num_threads, 3u);
  const auto parallel = sim::RunMatrix(specs, options);
  ASSERT_EQ(unsetenv("RTMPLACE_THREADS"), 0);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
    EXPECT_EQ(serial[i].strategy_name, parallel[i].strategy_name);
    EXPECT_EQ(serial[i].metrics.shifts, parallel[i].metrics.shifts);
    EXPECT_EQ(serial[i].metrics.accesses, parallel[i].metrics.accesses);
    EXPECT_EQ(serial[i].placement_cost, parallel[i].placement_cost);
    EXPECT_DOUBLE_EQ(serial[i].metrics.runtime_ns,
                     parallel[i].metrics.runtime_ns);
  }
}

}  // namespace
