#include <gtest/gtest.h>

#include <utility>

#include "rtm/controller.h"
#include "rtm/device.h"
#include "trace/access_sequence.h"

namespace rtmp::rtm {
namespace {

std::vector<TimedRequest> BackToBack(
    std::initializer_list<std::pair<unsigned, std::uint32_t>> accesses) {
  std::vector<TimedRequest> requests;
  for (const auto& [dbc, domain] : accesses) {
    requests.push_back(TimedRequest{0.0, dbc, domain,
                                    trace::AccessType::kRead});
  }
  return requests;
}

TEST(Controller, SerialModeMatchesDeviceRuntime) {
  const RtmConfig config = RtmConfig::Paper(4);
  const auto requests =
      BackToBack({{0, 10}, {1, 50}, {0, 30}, {2, 5}, {1, 50}, {0, 10}});

  RtmController controller(config, ControllerConfig{});
  (void)controller.Execute(requests);

  RtmDevice device(config);
  for (const auto& r : requests) device.Access(r.dbc, r.domain, r.type);

  EXPECT_EQ(controller.stats().shifts, device.stats().shifts);
  EXPECT_DOUBLE_EQ(controller.stats().makespan_ns, device.stats().runtime_ns);
  EXPECT_DOUBLE_EQ(controller.stats().channel_busy_ns,
                   device.stats().runtime_ns);
  EXPECT_DOUBLE_EQ(controller.stats().hidden_shift_ns, 0.0);
}

TEST(Controller, ProactiveAlignmentHidesShiftsBehindOtherDbcs) {
  const RtmConfig config = RtmConfig::Paper(4);
  // Ping-pong between two DBCs with long jumps inside each: while DBC0's
  // access is on the channel, DBC1 can pre-shift, and vice versa.
  std::vector<TimedRequest> requests;
  for (int i = 0; i < 20; ++i) {
    requests.push_back(
        TimedRequest{0.0, 0u, static_cast<std::uint32_t>(i % 2 ? 200 : 10),
                     trace::AccessType::kRead});
    requests.push_back(
        TimedRequest{0.0, 1u, static_cast<std::uint32_t>(i % 2 ? 20 : 180),
                     trace::AccessType::kRead});
  }

  RtmController serial(config, ControllerConfig{});
  (void)serial.Execute(requests);
  ControllerConfig proactive_config;
  proactive_config.proactive_alignment = true;
  proactive_config.lookahead = 1;
  RtmController proactive(config, proactive_config);
  (void)proactive.Execute(requests);

  EXPECT_EQ(serial.stats().shifts, proactive.stats().shifts);
  EXPECT_LT(proactive.stats().makespan_ns, serial.stats().makespan_ns);
  EXPECT_GT(proactive.stats().hidden_shift_ns, 0.0);
}

TEST(Controller, ProactiveNeverSlowerThanSerial) {
  const RtmConfig config = RtmConfig::Paper(8);
  std::vector<TimedRequest> requests;
  std::uint32_t domain = 3;
  for (int i = 0; i < 100; ++i) {
    domain = (domain * 37 + 11) % config.domains_per_dbc;
    requests.push_back(TimedRequest{0.0, static_cast<unsigned>(i % 8), domain,
                                    i % 3 == 0 ? trace::AccessType::kWrite
                                               : trace::AccessType::kRead});
  }
  RtmController serial(config, ControllerConfig{});
  (void)serial.Execute(requests);
  for (const unsigned lookahead : {0u, 1u, 2u, 8u}) {
    ControllerConfig pc;
    pc.proactive_alignment = true;
    pc.lookahead = lookahead;
    RtmController proactive(config, pc);
    (void)proactive.Execute(requests);
    EXPECT_LE(proactive.stats().makespan_ns,
              serial.stats().makespan_ns + 1e-9)
        << lookahead;
    EXPECT_EQ(proactive.stats().shifts, serial.stats().shifts) << lookahead;
  }
}

TEST(Controller, DeeperLookaheadHidesAtLeastAsMuch) {
  const RtmConfig config = RtmConfig::Paper(4);
  std::vector<TimedRequest> requests;
  std::uint32_t domain = 7;
  for (int i = 0; i < 60; ++i) {
    domain = (domain * 53 + 29) % config.domains_per_dbc;
    requests.push_back(TimedRequest{0.0, static_cast<unsigned>((i * 7) % 4),
                                    domain, trace::AccessType::kRead});
  }
  double last_hidden = -1.0;
  for (const unsigned lookahead : {0u, 1u, 4u}) {
    ControllerConfig pc;
    pc.proactive_alignment = true;
    pc.lookahead = lookahead;
    RtmController controller(config, pc);
    (void)controller.Execute(requests);
    EXPECT_GE(controller.stats().hidden_shift_ns, last_hidden) << lookahead;
    last_hidden = controller.stats().hidden_shift_ns;
  }
}

TEST(Controller, HiddenPlusExposedEqualsShiftBusy) {
  const RtmConfig config = RtmConfig::Paper(4);
  ControllerConfig pc;
  pc.proactive_alignment = true;
  RtmController controller(config, pc);
  const auto timings = controller.Execute(
      BackToBack({{0, 100}, {1, 200}, {0, 20}, {1, 10}, {2, 99}}));
  double hidden = 0.0;
  for (const auto& t : timings) hidden += t.hidden_shift_ns;
  EXPECT_DOUBLE_EQ(hidden, controller.stats().hidden_shift_ns);
  EXPECT_LE(controller.stats().hidden_shift_ns,
            controller.stats().shift_busy_ns + 1e-9);
  EXPECT_NEAR(controller.stats().hidden_shift_ns +
                  controller.stats().exposed_shift_ns,
              controller.stats().shift_busy_ns, 1e-9);
}

TEST(Controller, ChannelBusyNeverExceedsMakespan) {
  // Regression: the proactive path used to book exposed shift time (a DBC
  // occupancy) on the shared channel, reporting > 100% channel utilization
  // on shift-heavy single-DBC streams.
  const RtmConfig config = RtmConfig::Paper(4);
  std::vector<TimedRequest> requests;
  std::uint32_t domain = 1;
  for (int i = 0; i < 80; ++i) {
    // All on one DBC with long jumps: nothing can hide, shifts dominate.
    domain = (domain * 61 + 17) % config.domains_per_dbc;
    requests.push_back(TimedRequest{0.0, 0u, domain,
                                    trace::AccessType::kRead});
  }
  for (const bool proactive : {false, true}) {
    for (const unsigned lookahead : {0u, 1u, 4u}) {
      ControllerConfig pc;
      pc.proactive_alignment = proactive;
      pc.lookahead = lookahead;
      RtmController controller(config, pc);
      (void)controller.Execute(requests);
      const ControllerStats& stats = controller.stats();
      EXPECT_LE(stats.channel_busy_ns, stats.makespan_ns + 1e-9)
          << "proactive=" << proactive << " lookahead=" << lookahead;
      EXPECT_NEAR(stats.hidden_shift_ns + stats.exposed_shift_ns,
                  stats.shift_busy_ns, 1e-9);
      if (!proactive) {
        // Serial mode: every shift stalls the requester on the channel.
        EXPECT_DOUBLE_EQ(stats.exposed_shift_ns, stats.shift_busy_ns);
        EXPECT_DOUBLE_EQ(stats.hidden_shift_ns, 0.0);
      } else {
        // Proactive mode: shifts occupy the DBC, so the channel is busy
        // for exactly the access time of this all-read stream.
        EXPECT_NEAR(stats.channel_busy_ns,
                    static_cast<double>(requests.size()) *
                        config.params.read_latency_ns,
                    1e-6);
      }
    }
  }
}

TEST(Controller, RespectsArrivalTimes) {
  const RtmConfig config = RtmConfig::Paper(2);
  std::vector<TimedRequest> requests{
      {0.0, 0, 5, trace::AccessType::kRead},
      {1000.0, 0, 5, trace::AccessType::kRead},  // arrives after a gap
  };
  RtmController controller(config, ControllerConfig{});
  const auto timings = controller.Execute(requests);
  EXPECT_GE(timings[1].access_start_ns, 1000.0);
}

TEST(Controller, RejectsDecreasingArrivals) {
  RtmController controller(RtmConfig::Paper(2), ControllerConfig{});
  std::vector<TimedRequest> bad{
      {10.0, 0, 1, trace::AccessType::kRead},
      {5.0, 0, 2, trace::AccessType::kRead},
  };
  EXPECT_THROW((void)controller.Execute(bad), std::invalid_argument);
}

TEST(Controller, RejectsBadDbc) {
  RtmController controller(RtmConfig::Paper(2), ControllerConfig{});
  std::vector<TimedRequest> bad{{0.0, 9, 1, trace::AccessType::kRead}};
  EXPECT_THROW((void)controller.Execute(bad), std::out_of_range);
}

TEST(Controller, EnergyUsesMakespanForLeakage) {
  const RtmConfig config = RtmConfig::Paper(2);
  RtmController controller(config, ControllerConfig{});
  (void)controller.Execute(BackToBack({{0, 10}, {1, 400}, {0, 200}}));
  const EnergyBreakdown energy = controller.Energy();
  EXPECT_DOUBLE_EQ(energy.leakage_pj,
                   config.params.leakage_mw * controller.stats().makespan_ns);
}

TEST(Controller, ResetRestoresCleanState) {
  RtmController controller(RtmConfig::Paper(2), ControllerConfig{});
  (void)controller.Execute(BackToBack({{0, 100}, {0, 5}}));
  controller.Reset();
  EXPECT_EQ(controller.stats().requests, 0u);
  const auto timings = controller.Execute(BackToBack({{0, 100}}));
  EXPECT_EQ(timings[0].shifts, 0u);  // first access free again
}

TEST(Controller, ReplaySequenceWrapsPlacements) {
  const auto seq = trace::AccessSequence::FromCompactString("abab");
  const std::vector<std::pair<unsigned, std::uint32_t>> locations{
      {0u, 0u}, {1u, 3u}};
  const ControllerStats stats =
      ReplaySequence(seq, locations, RtmConfig::Paper(2), ControllerConfig{});
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.shifts, 0u);  // both DBCs keep their ports aligned
  EXPECT_THROW((void)ReplaySequence(seq, {{0u, 0u}}, RtmConfig::Paper(2),
                                    ControllerConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtmp::rtm
