#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/cost_evaluator.h"
#include "core/cost_model.h"
#include "core/genetic.h"
#include "core/placement.h"
#include "core/strategy_registry.h"
#include "rtm/config.h"
#include "sim/simulator.h"
#include "trace/access_sequence.h"
#include "util/rng.h"
#include "workloads/workload.h"

namespace rtmp::core {
namespace {

using trace::AccessSequence;
using trace::VariableId;

AccessSequence RandomSequence(std::size_t num_variables, std::size_t length,
                              util::Rng& rng) {
  AccessSequence seq;
  for (std::size_t v = 0; v < num_variables; ++v) {
    seq.AddVariable(std::to_string(v));
  }
  for (std::size_t i = 0; i < length; ++i) {
    seq.Append(static_cast<VariableId>(rng.NextBelow(num_variables)));
  }
  return seq;
}

std::vector<CostOptions> OptionMatrix(std::uint32_t domains) {
  std::vector<CostOptions> matrix;
  for (const auto alignment : {rtm::InitialAlignment::kFirstAccess,
                               rtm::InitialAlignment::kZero}) {
    CostOptions single;
    single.initial_alignment = alignment;
    matrix.push_back(single);

    CostOptions offset_port;
    offset_port.initial_alignment = alignment;
    offset_port.port_offsets = {domains / 2};
    offset_port.domains_per_dbc = domains;
    matrix.push_back(offset_port);

    CostOptions two_ports;
    two_ports.initial_alignment = alignment;
    two_ports.port_offsets = {0, domains - 1};
    two_ports.domains_per_dbc = domains;
    matrix.push_back(two_ports);
  }
  return matrix;
}

/// One random structure-preserving placement edit, applied to BOTH the
/// evaluator and a shadow placement kept with plain Placement calls.
void RandomEdit(CostEvaluator& evaluator, Placement& shadow, util::Rng& rng) {
  const std::uint32_t q = shadow.num_dbcs();
  switch (rng.NextBelow(3)) {
    case 0: {  // move a variable to the end of a DBC with room
      const auto v =
          static_cast<VariableId>(rng.NextBelow(shadow.num_variables()));
      std::vector<std::uint32_t> targets;
      const std::uint32_t limit =
          evaluator.options().domains_per_dbc == 0
              ? kUnboundedCapacity
              : evaluator.options().domains_per_dbc;
      for (std::uint32_t d = 0; d < q; ++d) {
        const bool same = shadow.SlotOf(v).dbc == d;
        if (same || (shadow.FreeIn(d) > 0 && shadow.dbc(d).size() < limit)) {
          targets.push_back(d);
        }
      }
      const std::uint32_t target = rng.Pick(targets);
      evaluator.ApplyMove(v, target);
      shadow.MoveToEnd(v, target);
      return;
    }
    case 1: {  // transpose inside a non-trivial DBC
      std::vector<std::uint32_t> candidates;
      for (std::uint32_t d = 0; d < q; ++d) {
        if (shadow.dbc(d).size() >= 2) candidates.push_back(d);
      }
      if (candidates.empty()) return;
      const std::uint32_t d = rng.Pick(candidates);
      const std::size_t size = shadow.dbc(d).size();
      const auto i = static_cast<std::size_t>(rng.NextBelow(size));
      const auto j = static_cast<std::size_t>(rng.NextBelow(size));
      evaluator.ApplyTranspose(d, i, j);
      shadow.Transpose(d, i, j);
      return;
    }
    default: {  // shuffle one DBC wholesale
      const auto d = static_cast<std::uint32_t>(rng.NextBelow(q));
      std::vector<VariableId> order = shadow.dbc(d);
      if (order.size() < 2) return;
      rng.Shuffle(order);
      evaluator.ApplyReorder(d, order);
      shadow.Reorder(d, order);
      return;
    }
  }
}

TEST(CostEvaluator, EvaluateMatchesShiftCostOnRandomInputs) {
  util::Rng rng(0xC0FFEE);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.NextBelow(12);
    const auto seq = RandomSequence(n, rng.NextBelow(80), rng);
    const auto q = static_cast<std::uint32_t>(1 + rng.NextBelow(4));
    for (const CostOptions& options : OptionMatrix(/*domains=*/16)) {
      CostEvaluator evaluator(seq, options);
      for (int sample = 0; sample < 4; ++sample) {
        const Placement p =
            RandomPlacement(n, q, /*capacity=*/16, rng);
        EXPECT_EQ(evaluator.Evaluate(p), ShiftCost(seq, p, options));
        EXPECT_EQ(evaluator.Cost(), ShiftCost(seq, p, options));
      }
    }
  }
}

TEST(CostEvaluator, PerDbcCostMatchesDecomposition) {
  util::Rng rng(42);
  const auto seq = RandomSequence(9, 70, rng);
  for (const CostOptions& options : OptionMatrix(16)) {
    CostEvaluator evaluator(seq, options);
    const Placement p = RandomPlacement(9, 3, 16, rng);
    (void)evaluator.Evaluate(p);
    EXPECT_EQ(evaluator.PerDbcCost(), PerDbcShiftCost(seq, p, options));
  }
}

TEST(CostEvaluator, IncrementalChainsMatchShiftCost) {
  util::Rng rng(0xABCDEF);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 2 + rng.NextBelow(10);
    const auto seq = RandomSequence(n, 10 + rng.NextBelow(60), rng);
    const auto q = static_cast<std::uint32_t>(2 + rng.NextBelow(3));
    for (const CostOptions& options : OptionMatrix(16)) {
      CostEvaluator evaluator(seq, options);
      Placement shadow = RandomPlacement(n, q, 16, rng);
      evaluator.Bind(shadow);
      for (int step = 0; step < 12; ++step) {
        RandomEdit(evaluator, shadow, rng);
        ASSERT_EQ(evaluator.placement(), shadow);
        ASSERT_EQ(evaluator.Cost(), ShiftCost(seq, shadow, options))
            << "round " << round << " step " << step;
      }
    }
  }
}

TEST(CostEvaluator, UndoRewindsWholeChains) {
  util::Rng rng(0x5EED);
  for (int round = 0; round < 15; ++round) {
    const std::size_t n = 2 + rng.NextBelow(8);
    const auto seq = RandomSequence(n, 10 + rng.NextBelow(50), rng);
    for (const CostOptions& options : OptionMatrix(16)) {
      CostEvaluator evaluator(seq, options);
      Placement shadow = RandomPlacement(n, 3, 16, rng);
      evaluator.Bind(shadow);
      const Placement original = evaluator.placement();
      const std::uint64_t original_cost = evaluator.Cost();
      for (int step = 0; step < 8; ++step) {
        RandomEdit(evaluator, shadow, rng);
      }
      while (evaluator.undo_depth() > 0) {
        evaluator.Undo();
        ASSERT_EQ(evaluator.Cost(),
                  ShiftCost(seq, evaluator.placement(), options));
      }
      EXPECT_EQ(evaluator.placement(), original);
      EXPECT_EQ(evaluator.Cost(), original_cost);
    }
  }
}

TEST(CostEvaluator, PeeksPredictApplyExactly) {
  // Trial scoring must return exactly the cost the Apply would produce,
  // and must not disturb the bound state.
  util::Rng rng(0xFEED);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 2 + rng.NextBelow(10);
    const auto seq = RandomSequence(n, 10 + rng.NextBelow(80), rng);
    const auto q = static_cast<std::uint32_t>(2 + rng.NextBelow(3));
    for (const CostOptions& options : OptionMatrix(16)) {
      CostEvaluator evaluator(seq, options);
      Placement shadow = RandomPlacement(n, q, 16, rng);
      evaluator.Bind(shadow);
      for (int step = 0; step < 10; ++step) {
        const std::uint64_t before = evaluator.Cost();
        std::uint64_t peeked = 0;
        switch (rng.NextBelow(3)) {
          case 0: {
            const auto v =
                static_cast<VariableId>(rng.NextBelow(shadow.num_variables()));
            const auto d = static_cast<std::uint32_t>(rng.NextBelow(q));
            peeked = evaluator.PeekMove(v, d);
            ASSERT_EQ(evaluator.Cost(), before);
            ASSERT_EQ(evaluator.placement(), shadow);
            ASSERT_EQ(evaluator.ApplyMove(v, d), peeked);
            shadow.MoveToEnd(v, d);
            break;
          }
          case 1: {
            const auto d = static_cast<std::uint32_t>(rng.NextBelow(q));
            const std::size_t size = shadow.dbc(d).size();
            if (size < 2) continue;
            const auto i = static_cast<std::size_t>(rng.NextBelow(size));
            const auto j = static_cast<std::size_t>(rng.NextBelow(size));
            peeked = evaluator.PeekTranspose(d, i, j);
            ASSERT_EQ(evaluator.Cost(), before);
            ASSERT_EQ(evaluator.ApplyTranspose(d, i, j), peeked);
            shadow.Transpose(d, i, j);
            break;
          }
          default: {
            const auto d = static_cast<std::uint32_t>(rng.NextBelow(q));
            std::vector<VariableId> order = shadow.dbc(d);
            if (order.size() < 2) continue;
            rng.Shuffle(order);
            peeked = evaluator.PeekReorder(d, order);
            ASSERT_EQ(evaluator.Cost(), before);
            ASSERT_EQ(evaluator.ApplyReorder(d, order), peeked);
            shadow.Reorder(d, order);
            break;
          }
        }
        ASSERT_EQ(evaluator.Cost(), ShiftCost(seq, shadow, options));
      }
    }
  }
}

TEST(CostEvaluator, PeeksValidateLikeApplies) {
  const auto seq = AccessSequence::FromCompactString("abcabc");
  CostEvaluator evaluator(seq, {});
  evaluator.Bind(Placement::FromLists({{0, 1}, {2}}, 3, 2));
  EXPECT_THROW((void)evaluator.PeekMove(0, 7), std::invalid_argument);
  EXPECT_THROW((void)evaluator.PeekMove(2, 0), std::invalid_argument);  // full
  EXPECT_THROW((void)evaluator.PeekTranspose(0, 0, 5), std::out_of_range);
  EXPECT_THROW((void)evaluator.PeekReorder(0, {0}), std::invalid_argument);
  EXPECT_THROW((void)evaluator.PeekReorder(0, {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)evaluator.PeekReorder(0, {0, 2}), std::invalid_argument);
}

TEST(CostEvaluator, EvaluateDiffPathTracksGradualMutation) {
  // Exercises the splice-based diff path: consecutive placements differ by
  // one edit, exactly the GA's evaluation pattern.
  util::Rng rng(7);
  const auto seq = RandomSequence(10, 120, rng);
  const CostOptions options;  // single port, first access free
  CostEvaluator evaluator(seq, options);
  Placement p = RandomPlacement(10, 4, 16, rng);
  for (int step = 0; step < 60; ++step) {
    const auto v = static_cast<VariableId>(rng.NextBelow(10));
    const auto d = static_cast<std::uint32_t>(rng.NextBelow(4));
    p.MoveToEnd(v, d);
    ASSERT_EQ(evaluator.Evaluate(p), ShiftCost(seq, p, options)) << step;
  }
}

TEST(CostEvaluator, ArenaRebindReusesWarmStorage) {
  // The edge arenas grow while the first Bind fills them, then go quiet:
  // rebinds of same-shaped placements clear-but-keep-capacity and refill
  // without a single reallocation (the arena_growths() invariant behind
  // the mutation-scoring throughput numbers).
  util::Rng rng(2026);
  const auto seq = RandomSequence(24, 4000, rng);
  CostEvaluator evaluator(seq, CostOptions{});
  EXPECT_EQ(evaluator.arena_growths(), 0u);

  const Placement p = RandomPlacement(24, 4, 16, rng);
  evaluator.Bind(p);
  const std::size_t cold = evaluator.arena_growths();
  EXPECT_GT(cold, 0u);  // the first Bind had to allocate

  for (int round = 0; round < 5; ++round) {
    evaluator.Bind(p);
    EXPECT_EQ(evaluator.Evaluate(p), evaluator.Cost());
  }
  EXPECT_EQ(evaluator.arena_growths(), cold);

  // Reordering inside DBCs keeps the partition — hence the edge sets —
  // identical, so rebinding a permuted placement is growth-free too.
  Placement permuted = p;
  for (std::uint32_t d = 0; d < permuted.num_dbcs(); ++d) {
    std::vector<VariableId> order = permuted.dbc(d);
    std::reverse(order.begin(), order.end());
    permuted.Reorder(d, order);
  }
  evaluator.Bind(permuted);
  EXPECT_EQ(evaluator.arena_growths(), cold);
}

TEST(CostEvaluator, SinglePortFastPathReportsIncremental) {
  const auto seq = AccessSequence::FromCompactString("abab");
  CostOptions single;
  EXPECT_TRUE(CostEvaluator(seq, single).incremental());
  CostOptions dual;
  dual.port_offsets = {0, 3};
  EXPECT_FALSE(CostEvaluator(seq, dual).incremental());
}

TEST(CostEvaluator, AgreesWithCostModelOnDomainValidation) {
  const auto seq = AccessSequence::FromCompactString("abc");
  const auto deep = Placement::FromLists({{0, 1, 2}}, 3);
  CostOptions options;
  options.domains_per_dbc = 2;  // three variables cannot fit
  EXPECT_THROW((void)ShiftCost(seq, deep, options), std::invalid_argument);
  CostEvaluator evaluator(seq, options);
  EXPECT_THROW(evaluator.Bind(deep), std::invalid_argument);
  EXPECT_THROW((void)evaluator.Evaluate(deep), std::invalid_argument);

  // A move that would overflow the DBC depth is rejected up front.
  CostOptions roomy;
  roomy.domains_per_dbc = 2;
  const auto tight = Placement::FromLists({{0, 1}, {2}}, 3);
  CostEvaluator bounded(seq, roomy);
  bounded.Bind(tight);
  EXPECT_THROW((void)bounded.ApplyMove(2, 0), std::invalid_argument);
  EXPECT_EQ(bounded.undo_depth(), 0u);
  EXPECT_EQ(bounded.Cost(), ShiftCost(seq, tight, roomy));
}

TEST(CostEvaluator, ThrowsLikeShiftCostOnUnplacedVariables) {
  const auto seq = AccessSequence::FromCompactString("ab");
  const auto partial = Placement::FromLists({{0}}, 2);  // b unplaced
  CostEvaluator evaluator(seq, {});
  EXPECT_THROW((void)evaluator.Evaluate(partial), std::logic_error);
}

TEST(CostEvaluator, RequiresBindingAndNonEmptyUndoStack) {
  const auto seq = AccessSequence::FromCompactString("ab");
  CostEvaluator evaluator(seq, {});
  EXPECT_THROW((void)evaluator.Cost(), std::logic_error);
  EXPECT_THROW((void)evaluator.placement(), std::logic_error);
  EXPECT_THROW(evaluator.Undo(), std::logic_error);
  evaluator.Bind(Placement::FromLists({{0, 1}}, 2));
  EXPECT_THROW(evaluator.Undo(), std::logic_error);
  CostOptions no_ports;
  no_ports.port_offsets = {};
  EXPECT_THROW(CostEvaluator(seq, no_ports), std::invalid_argument);
}

TEST(CostEvaluator, HandlesPlacementsWithMoreVariablesThanTheSequence) {
  // ShiftCost accepts placements that declare (and place) variables the
  // sequence never accesses; the evaluator must too. Regression: the
  // per-variable scratch tables used to be sized to the sequence only.
  const auto seq = AccessSequence::FromCompactString("abab");  // 2 variables
  CostEvaluator evaluator(seq, {});
  Placement p = Placement::FromLists({{0, 3, 1, 4}, {2}}, 5);
  evaluator.Bind(p);
  EXPECT_EQ(evaluator.Cost(), ShiftCost(seq, p));
  EXPECT_EQ(evaluator.PeekTranspose(0, 0, 2),
            evaluator.ApplyTranspose(0, 0, 2));
  p.Transpose(0, 0, 2);
  EXPECT_EQ(evaluator.Cost(), ShiftCost(seq, p));
  // Moving an unaccessed variable shifts the offsets of accessed ones.
  EXPECT_EQ(evaluator.PeekMove(3, 1), evaluator.ApplyMove(3, 1));
  p.MoveToEnd(3, 1);
  EXPECT_EQ(evaluator.Cost(), ShiftCost(seq, p));
  std::vector<VariableId> order{4, 1, 0};
  EXPECT_EQ(evaluator.PeekReorder(0, order), evaluator.ApplyReorder(0, order));
  p.Reorder(0, order);
  EXPECT_EQ(evaluator.Cost(), ShiftCost(seq, p));
  evaluator.Undo();
  evaluator.Undo();
  evaluator.Undo();
  EXPECT_EQ(evaluator.Cost(),
            ShiftCost(seq, Placement::FromLists({{0, 3, 1, 4}, {2}}, 5)));
  // Evaluate's diff path with an extra-variable move.
  Placement q = Placement::FromLists({{0, 3, 1}, {2, 4}}, 5);
  EXPECT_EQ(evaluator.Evaluate(q), ShiftCost(seq, q));
}

TEST(CostEvaluator, ApplyReturnsTheNewTotal) {
  const auto seq = AccessSequence::FromCompactString("abcabcabc");
  CostEvaluator evaluator(seq, {});
  Placement p = Placement::FromLists({{0, 1, 2}}, 3, 3);
  evaluator.Bind(p);
  const std::uint64_t swapped = evaluator.ApplyTranspose(0, 0, 2);
  p.Transpose(0, 0, 2);
  EXPECT_EQ(swapped, ShiftCost(seq, p));
  evaluator.Undo();
  p.Transpose(0, 0, 2);
  EXPECT_EQ(evaluator.Cost(), ShiftCost(seq, p));
}

// ---- cross-engine pin over the workload registry ---------------------------
//
// For every generator/synthetic workload crossed with a sampled strategy
// set, the three shift-count engines must agree on every sequence: the
// flat analytic ShiftCost, the incremental CostEvaluator::Evaluate, and
// the device-level sim::Simulate replay. The agreed values additionally
// fold into one fingerprint pinned below: a behavioural change in any
// engine, any of the new workload generators, or any sampled heuristic
// fails this test by value, not just by crash.
TEST(CrossEngine, WorkloadsAgreeAcrossEnginesAndMatchPinnedFingerprint) {
  // The 14 non-suite workloads (the suite itself is pinned by the bench
  // goldens) x four constructive heuristics spanning both inter policies
  // and three intra heuristics.
  const char* kWorkloads[] = {
      "gen-uniform",  "gen-zipf",    "gen-phased",   "gen-markov",
      "gen-loopnest", "gen-sequential", "stencil",   "gemm-tiled",
      "hash-join",    "bfs-frontier", "kv-churn",    "fft-butterfly",
      "pointer-chase", "stream-scan"};
  const char* kStrategies[] = {"afd-ofu", "dma-chen", "dma-sr", "dma2-sr"};

  std::uint64_t fingerprint = 0xCBF29CE484222325ULL;
  for (const char* workload_name : kWorkloads) {
    const auto workload =
        workloads::WorkloadRegistry::Global().Find(workload_name);
    ASSERT_NE(workload, nullptr) << workload_name;
    const auto benchmark =
        workload->Generate({/*seed=*/42, /*scale=*/0.5});
    for (const unsigned dbcs : {4u, 16u}) {
      rtm::RtmConfig config = rtm::RtmConfig::Paper(dbcs);
      for (const char* strategy_name : kStrategies) {
        const auto strategy =
            StrategyRegistry::Global().Find(strategy_name);
        ASSERT_NE(strategy, nullptr) << strategy_name;
        for (std::size_t s = 0; s < benchmark.sequences.size(); ++s) {
          const trace::AccessSequence& seq = benchmark.sequences[s];
          rtm::RtmConfig cfg = config;
          if (seq.num_variables() > cfg.word_capacity()) {
            cfg.domains_per_dbc = static_cast<unsigned>(
                (seq.num_variables() + dbcs - 1) / dbcs);
          }
          PlacementRequest request;
          request.sequence = &seq;
          request.num_dbcs = cfg.total_dbcs();
          request.capacity = cfg.domains_per_dbc;
          request.options.cost.initial_alignment = cfg.initial_alignment;
          request.compute_cost = false;
          const Placement placement = strategy->Run(request).placement;

          CostOptions cost_options;
          cost_options.initial_alignment = cfg.initial_alignment;
          const std::uint64_t analytic =
              ShiftCost(seq, placement, cost_options);
          CostEvaluator evaluator(seq, cost_options);
          const std::uint64_t incremental = evaluator.Evaluate(placement);
          const std::uint64_t simulated =
              sim::Simulate(seq, placement, cfg).stats.shifts;
          ASSERT_EQ(analytic, incremental)
              << workload_name << " x " << strategy_name << " @ " << dbcs
              << " DBCs, sequence " << s;
          ASSERT_EQ(analytic, simulated)
              << workload_name << " x " << strategy_name << " @ " << dbcs
              << " DBCs, sequence " << s;
          fingerprint = (fingerprint ^ analytic) * 0x100000001B3ULL;
        }
      }
    }
  }
  // Pinned at seed 42, scale 0.5. An intentional generator or heuristic
  // change moves this value: re-pin it from the failure message and
  // call the change out in the PR.
  EXPECT_EQ(fingerprint, 0xE7AF507FBF5FE9C2ULL);
}

}  // namespace
}  // namespace rtmp::core
