#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/placement.h"
#include "trace/access_sequence.h"

namespace rtmp::core {
namespace {

using trace::AccessSequence;

TEST(CostModel, SingleDbcWalk) {
  const auto seq = AccessSequence::FromCompactString("abcba");
  // a=0, b=1, c=2 at offsets 0,1,2.
  const auto p = Placement::FromLists({{0, 1, 2}}, 3);
  // free, 1, 1, 1, 1 = 4
  EXPECT_EQ(ShiftCost(seq, p), 4u);
}

TEST(CostModel, FirstAccessFreePerDbc) {
  const auto seq = AccessSequence::FromCompactString("ab");
  // Both variables in separate DBCs at offset 3 via padding variables.
  const auto p = Placement::FromLists({{2, 3, 0}, {4, 5, 1}}, 6);
  EXPECT_EQ(ShiftCost(seq, p), 0u);  // each DBC's first access is free
}

TEST(CostModel, ZeroAlignmentPaysInitialDistance) {
  const auto seq = AccessSequence::FromCompactString("ab");
  const auto p = Placement::FromLists({{2, 3, 0}, {4, 5, 1}}, 6);
  CostOptions options;
  options.initial_alignment = rtm::InitialAlignment::kZero;
  EXPECT_EQ(ShiftCost(seq, p, options), 4u);  // offset 2 + offset 2
}

TEST(CostModel, PerDbcDecompositionSumsToTotal) {
  const auto seq = AccessSequence::FromCompactString("abcabcabc");
  const auto p = Placement::FromLists({{0, 2}, {1}}, 3);
  const auto per_dbc = PerDbcShiftCost(seq, p);
  std::uint64_t sum = 0;
  for (const auto c : per_dbc) sum += c;
  EXPECT_EQ(sum, ShiftCost(seq, p));
}

TEST(CostModel, InterleavedAccessesDoNotDisturbOtherDbcs) {
  const auto seq = AccessSequence::FromCompactString("axbxaxbx");
  // a,b in DBC0 (offsets 0,1); x in DBC1.
  const auto p = Placement::FromLists({{0, 2}, {1}}, 3);
  // DBC0 walk: a(free) b(1) a(1) b(1) = 3; DBC1: all self-accesses = 0.
  EXPECT_EQ(ShiftCost(seq, p), 3u);
}

TEST(CostModel, SelfAccessesAreFree) {
  const auto seq = AccessSequence::FromCompactString("aaaa");
  const auto p = Placement::FromLists({{1, 0}}, 2);
  EXPECT_EQ(ShiftCost(seq, p), 0u);
}

TEST(CostModel, SinglePortOffsetDoesNotChangeInterAccessCost) {
  const auto seq = AccessSequence::FromCompactString("abab");
  const auto p = Placement::FromLists({{0, 1}}, 2);
  CostOptions at_zero;
  at_zero.port_offsets = {0};
  CostOptions at_five;
  at_five.port_offsets = {5};
  at_five.domains_per_dbc = 8;
  EXPECT_EQ(ShiftCost(seq, p, at_zero), ShiftCost(seq, p, at_five));
}

TEST(CostModel, SinglePortOffsetMattersOnlyForPaidFirstAccess) {
  const auto seq = AccessSequence::FromCompactString("a");
  const auto p = Placement::FromLists({{1, 0}}, 2);  // a at offset 1
  CostOptions options;
  options.initial_alignment = rtm::InitialAlignment::kZero;
  options.port_offsets = {3};
  options.domains_per_dbc = 4;
  // Alignment 0, target = 1 - 3 = -2 -> 2 shifts.
  EXPECT_EQ(ShiftCost(seq, p, options), 2u);
}

TEST(CostModel, TwoPortsHalveLongJumps) {
  // Variables at offsets 0 and 9; ports at 0 and 9.
  const auto seq = AccessSequence::FromCompactString("abababab");
  std::vector<std::vector<VariableId>> lists{{0, 2, 3, 4, 5, 6, 7, 8, 9, 1}};
  const auto p = Placement::FromLists(lists, 10);
  CostOptions one_port;
  one_port.domains_per_dbc = 10;
  CostOptions two_ports;
  two_ports.port_offsets = {0, 9};
  two_ports.domains_per_dbc = 10;
  const auto single = ShiftCost(seq, p, one_port);
  const auto dual = ShiftCost(seq, p, two_ports);
  EXPECT_EQ(single, 7u * 9u);  // every hop pays 9
  EXPECT_EQ(dual, 0u);         // each variable has its own port
}

TEST(CostModel, MultiPortNeverWorseThanSinglePort) {
  const auto seq =
      AccessSequence::FromCompactString("abcdefghabcdefghhgfedcba");
  const auto p =
      Placement::FromLists({{0, 1, 2, 3, 4, 5, 6, 7}}, 8);
  CostOptions one;
  one.domains_per_dbc = 8;
  CostOptions two;
  two.port_offsets = {0, 4};
  two.domains_per_dbc = 8;
  EXPECT_LE(ShiftCost(seq, p, two), ShiftCost(seq, p, one));
}

TEST(CostModel, ThrowsOnUnplacedAccessedVariable) {
  const auto seq = AccessSequence::FromCompactString("ab");
  const auto p = Placement::FromLists({{0}}, 2);  // b unplaced
  EXPECT_THROW((void)ShiftCost(seq, p), std::logic_error);
}

TEST(CostModel, RejectsPlacementsDeeperThanDbc) {
  // Regression: the analytic path used to accept placements whose offsets
  // exceed domains_per_dbc while sim::Simulate rejected the same placement.
  const auto seq = AccessSequence::FromCompactString("abcd");
  const auto p = Placement::FromLists({{0, 1, 2}, {3}}, 4);
  CostOptions options;
  options.domains_per_dbc = 2;  // DBC0 holds 3 variables: offset 2 invalid
  EXPECT_THROW((void)ShiftCost(seq, p, options), std::invalid_argument);
  EXPECT_THROW((void)PerDbcShiftCost(seq, p, options), std::invalid_argument);
  options.domains_per_dbc = 3;
  EXPECT_NO_THROW((void)ShiftCost(seq, p, options));
  options.domains_per_dbc = 0;  // unset: no validation, as before
  EXPECT_NO_THROW((void)ShiftCost(seq, p, options));
}

TEST(CostModel, RejectsPortsOutsideTheDbc) {
  const auto seq = AccessSequence::FromCompactString("ab");
  const auto p = Placement::FromLists({{0, 1}}, 2);
  CostOptions options;
  options.port_offsets = {4};
  options.domains_per_dbc = 4;  // valid offsets are 0..3
  EXPECT_THROW((void)ShiftCost(seq, p, options), std::invalid_argument);
  options.port_offsets = {3};
  EXPECT_NO_THROW((void)ShiftCost(seq, p, options));
}

TEST(CostModel, ThrowsOnEmptyPortList) {
  const auto seq = AccessSequence::FromCompactString("a");
  const auto p = Placement::FromLists({{0}}, 1);
  CostOptions options;
  options.port_offsets = {};
  EXPECT_THROW((void)ShiftCost(seq, p, options), std::invalid_argument);
}

TEST(CostModel, WalkCostMatchesShiftCostOnSingleDbc) {
  const auto seq = AccessSequence::FromCompactString("abcabacbc");
  const std::vector<VariableId> order{2, 0, 1};
  const auto p = Placement::FromLists({order}, 3);
  EXPECT_EQ(WalkCost(seq.accesses(), order, 3), ShiftCost(seq, p));
}

TEST(CostModel, WalkCostFirstAccessPaysMode) {
  // Ids by first appearance: b = 0, a = 1. Order {1, 0}: a at offset 0,
  // b at offset 1.
  const auto seq = AccessSequence::FromCompactString("ba");
  const std::vector<VariableId> order{1, 0};
  EXPECT_EQ(WalkCost(seq.accesses(), order, 2, /*first_access_pays=*/false),
            1u);  // b free, then hop to a
  EXPECT_EQ(WalkCost(seq.accesses(), order, 2, /*first_access_pays=*/true),
            2u);  // start at offset 0: reach b (1), back to a (1)
}

TEST(CostModel, WalkCostThrowsOnMissingVariable) {
  const auto seq = AccessSequence::FromCompactString("ab");
  const std::vector<VariableId> order{0};
  EXPECT_THROW((void)WalkCost(seq.accesses(), order, 2), std::logic_error);
}

TEST(CostModel, EmptySequenceCostsNothing) {
  trace::AccessSequence seq;
  seq.AddVariable("a");
  const auto p = Placement::FromLists({{0}}, 1);
  EXPECT_EQ(ShiftCost(seq, p), 0u);
}

}  // namespace
}  // namespace rtmp::core
